"""``repro.obs`` — causal tracing & observability over the simulated stack.

The subsystem the aggregate :class:`~repro.simkit.trace.Metrics` cannot be:
nested, causally-linked spans across RPC, VFS, BlobSeer and deployment
layers, with Chrome/Perfetto export and critical-path analysis. Tracing is
strictly an *observer* of simulated time — installing a tracer leaves every
figure bit-identical — and the default :data:`~repro.obs.span.NULL_TRACER`
makes a disabled run pay only one branch per instrumentation site.

Typical use::

    from repro.cloud import build_cloud, deploy
    from repro import obs

    cloud = build_cloud(24, seed=1)
    tracer = obs.install_tracer(cloud.fabric)
    result = deploy(cloud, image, 8, "mirror")
    obs.write_trace_json("deploy.trace.json", tracer)   # -> ui.perfetto.dev
    boot = obs.boot_spans(tracer.spans)[0]
    print(obs.render_critical_path(boot, tracer.spans))
"""

from .analyze import (
    Segment,
    attribute,
    boot_spans,
    category_breakdown,
    coverage,
    critical_path,
    render_breakdown_table,
    render_critical_path,
    snapshot_spans,
)
from .export import (
    read_spans_jsonl,
    to_span_dicts,
    to_trace_events,
    write_spans_jsonl,
    write_trace_json,
)
from .span import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "install_tracer",
    "uninstall_tracer",
    "Segment",
    "attribute",
    "critical_path",
    "category_breakdown",
    "coverage",
    "boot_spans",
    "snapshot_spans",
    "render_breakdown_table",
    "render_critical_path",
    "to_trace_events",
    "write_trace_json",
    "to_span_dicts",
    "write_spans_jsonl",
    "read_spans_jsonl",
]


def install_tracer(fabric, trace_id=None) -> Tracer:
    """Enable tracing on ``fabric``; returns the live :class:`Tracer`.

    Wires the tracer into the three places instrumentation looks for it:
    ``fabric.tracer`` (RPC, VFS, BlobSeer, deployment sites),
    ``fabric.network.tracer`` (flow begin/end), and ``env._tracer`` (the
    engine's process-spawn context-propagation hook).
    """
    tracer = Tracer(fabric.env, trace_id=trace_id)
    fabric.tracer = tracer
    fabric.network.tracer = tracer
    fabric.env._tracer = tracer
    return tracer


def uninstall_tracer(fabric) -> None:
    """Restore the zero-overhead null tracer on ``fabric``."""
    fabric.tracer = NULL_TRACER
    fabric.network.tracer = NULL_TRACER
    fabric.env._tracer = None
