"""Access-pattern-guided prefetching (the paper's §7 future work).

    "With respect to multideployment, one possible optimization is to build
    a prefetching scheme based on previous experience with the access
    pattern."

Every multideployment boots the *same* image through the same code path, so
the chunk-access order observed on one instance is an excellent predictor
for all others. Two pieces:

* :class:`AccessProfile` — a recorder attached to a mirror handle that logs
  the order in which chunk indices are first touched. Profiles merge across
  instances (order by median first-access rank) and serialize to a plain
  dict, the form a cloud middleware would store next to the image.
* :class:`Prefetcher` — a background process on a freshly opened handle
  that walks the profile ahead of the boot, fetching predicted chunks with
  a bounded look-ahead window so it never floods the repository: it pauses
  whenever it is ``window`` chunks ahead of what the boot has consumed.

The ablation benchmark ``benchmarks/bench_ablations.py`` quantifies the
boot-time reduction; correctness tests live in
``tests/core/test_prefetch_profile.py``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Generator, List, Optional

from ..common.errors import MirrorStateError
from .vfs import MirrorHandle


class AccessProfile:
    """Observed chunk-access order of an image's boot phase."""

    def __init__(self, chunk_size: int):
        self.chunk_size = chunk_size
        #: per chunk index: ranks of its first access across recordings
        self._ranks: Dict[int, List[int]] = defaultdict(list)
        self.recordings = 0

    # ------------------------------------------------------------------ #
    def record_run(self, first_access_order: List[int]) -> None:
        """Fold one instance's first-access order into the profile."""
        for rank, idx in enumerate(first_access_order):
            self._ranks[idx].append(rank)
        self.recordings += 1

    def predicted_order(self) -> List[int]:
        """Chunk indices ordered by median first-access rank."""

        def median(values: List[int]) -> float:
            s = sorted(values)
            mid = len(s) // 2
            return s[mid] if len(s) % 2 else (s[mid - 1] + s[mid]) / 2

        return sorted(self._ranks, key=lambda idx: (median(self._ranks[idx]), idx))

    # ------------------------------------------------------------------ #
    def to_state(self) -> dict:
        return {
            "chunk_size": self.chunk_size,
            "recordings": self.recordings,
            "ranks": {int(k): list(v) for k, v in self._ranks.items()},
        }

    @classmethod
    def from_state(cls, state: dict) -> "AccessProfile":
        profile = cls(state["chunk_size"])
        profile.recordings = state["recordings"]
        for idx, ranks in state["ranks"].items():
            profile._ranks[int(idx)] = list(ranks)
        return profile


class ProfileRecorder:
    """Wraps a handle to log the first-access order of chunks."""

    def __init__(self, handle: MirrorHandle):
        self.handle = handle
        self._seen: set[int] = set()
        self.order: List[int] = []

    def read(self, offset: int, nbytes: int) -> Generator:
        for idx in self.handle.modmgr.chunks_overlapping(offset, offset + nbytes):
            if idx not in self._seen:
                self._seen.add(idx)
                self.order.append(idx)
        data = yield from self.handle.read(offset, nbytes)
        return data

    def write(self, offset: int, payload) -> Generator:
        yield from self.handle.write(offset, payload)

    def finish_into(self, profile: AccessProfile) -> None:
        profile.record_run(self.order)


class Prefetcher:
    """Background chunk prefetch driven by an :class:`AccessProfile`."""

    def __init__(self, handle: MirrorHandle, profile: AccessProfile, window: int = 16):
        if profile.chunk_size != handle.chunk_size:
            raise MirrorStateError("profile chunk size does not match the image")
        if window < 1:
            raise MirrorStateError("prefetch window must be >= 1")
        self.handle = handle
        self.profile = profile
        self.window = window
        self.fetched = 0
        self._stopped = False
        self._process = None

    # ------------------------------------------------------------------ #
    def start(self):
        """Spawn the background prefetch process; returns it."""
        env = self.handle.vfs.host.env
        self._process = env.process(self._run(), name="profile-prefetcher")
        return self._process

    def stop(self) -> None:
        self._stopped = True

    def _consumed(self) -> int:
        """How many profile chunks the foreground boot has explicitly read."""
        touched = self.handle.touched_chunks
        return sum(1 for idx in self.profile.predicted_order() if idx in touched)

    def _run(self) -> Generator:
        env = self.handle.vfs.host.env
        order = self.profile.predicted_order()
        for idx in order:
            if self._stopped or self.handle.closed:
                return self.fetched
            # bounded look-ahead: stay at most `window` chunks ahead
            while self.fetched - self._consumed() >= self.window:
                yield env.timeout(0.02)
                if self._stopped or self.handle.closed:
                    return self.fetched
            lo, hi = self.handle.modmgr.chunk_bounds(idx)
            if self.handle.modmgr.is_mirrored(lo, hi):
                continue  # the boot got there first
            plan = self.handle.modmgr.plan_read(lo, hi)
            if plan.fetch_chunks:
                chunks = yield from self.handle.translator._fetch_chunk_set(
                    plan.fetch_chunks
                )
                yield from self.handle.translator._apply_gaps(chunks, plan.fill_gaps)
                for fetched_idx in plan.fetch_chunks:
                    self.handle.modmgr.record_fetch(fetched_idx)
                self.fetched += len(plan.fetch_chunks)
                self.handle.vfs.host.fabric.metrics.count("prefetch-chunk", len(plan.fetch_chunks))
        return self.fetched


def record_boot_profile(handle: MirrorHandle) -> ProfileRecorder:
    """Convenience: attach a recorder to a handle (used by the middleware)."""
    return ProfileRecorder(handle)
