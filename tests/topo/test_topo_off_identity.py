"""The topology-off guarantee: disabled fabric leaves every timeline alone.

Two invariants protect the seed model. A build that never mentions racks
must stay bit-identical to the pre-topology tree (guaranteed trivially: no
topology object exists). And an *explicit single-rack* topology — the
degenerate fabric whose one top-of-rack switch is non-blocking — must only
add tier accounting, never move an event: the network layer keeps the flat
engine whenever ``multi_rack`` is false. These tests pin the second
invariant across every workload family (multideployment, multisnapshot,
p2p deploy, long-horizon churn).
"""

from repro.calibration import Calibration, ImageSpec
from repro.churn import ChurnEngine, ChurnSpec
from repro.cloud import build_cloud, deploy, snapshot_all
from repro.common.units import KiB, MB, MiB
from repro.topo import Topology
from repro.vmsim import make_image

CALIB = Calibration(
    image=ImageSpec(size=32 * MiB, chunk_size=256 * KiB, boot_touched_bytes=4 * MiB)
)
N_NODES = 8
SEED = 11


def single_rack_topology():
    topo = Topology(n_racks=1, rack_uplink=100 * MB)
    topo.place_blocked([f"node{i:03d}" for i in range(N_NODES)])
    return topo


def _build(flat, **cloud_kw):
    if not flat:
        cloud_kw["topology"] = single_rack_topology()
    cloud = build_cloud(N_NODES, seed=SEED, calib=CALIB, **cloud_kw)
    image = make_image(
        CALIB.image.size, CALIB.image.boot_touched_bytes, n_regions=16
    )
    return cloud, image


def _timeline(cloud, extra=()):
    return {
        "now": cloud.env.now,
        "events": cloud.env.event_count,
        "traffic": dict(cloud.metrics.traffic),
        "extra": tuple(extra),
    }


def _deploy_timeline(flat, **cloud_kw):
    cloud, image = _build(flat, **cloud_kw)
    res = deploy(cloud, image, N_NODES, "mirror")
    return cloud, _timeline(
        cloud,
        tuple(res.boot_times) + (res.completion_time, res.total_traffic),
    )


class TestSingleRackIsBitIdentical:
    def test_multideployment(self):
        _flat_cloud, flat = _deploy_timeline(flat=True)
        topo_cloud, topo = _deploy_timeline(flat=False)
        assert flat == topo
        # the degenerate fabric still classifies traffic...
        assert topo_cloud.metrics.topo_scope_totals() != {}
        # ...but never activates the path engine
        assert not topo_cloud.fabric.network._path

    def test_multideployment_with_p2p(self):
        _a, flat = _deploy_timeline(flat=True, p2p=True)
        _b, topo = _deploy_timeline(flat=False, p2p=True)
        assert flat == topo

    def test_multisnapshot(self):
        def cycle(flat):
            cloud, image = _build(flat)
            res = deploy(cloud, image, N_NODES, "mirror")
            snap = snapshot_all(cloud, res.vms, "mirror")
            durations = tuple(s.duration for s in snap.per_instance)
            return _timeline(
                cloud,
                durations + (snap.completion_time, snap.total_bytes_moved),
            )

        assert cycle(flat=True) == cycle(flat=False)

    def test_churn_run(self):
        spec = ChurnSpec(
            n_deploys=24,
            rate=1.5,
            n_tenants=3,
            mean_lifetime=10.0,
            min_lifetime=2.0,
            snapshot_fraction=0.25,
            diff_bytes=256 * KiB,
            policy="least-loaded",
            gc_interval=30.0,
            sample_interval=15.0,
        )

        def cycle(flat):
            cloud, image = _build(flat, with_pvfs=False)
            res = ChurnEngine(cloud, image, spec).run()
            return _timeline(cloud, (repr(res.summary),))

        assert cycle(flat=True) == cycle(flat=False)

    def test_flat_metrics_have_no_topo_traffic(self):
        cloud, _ = _deploy_timeline(flat=True)
        assert cloud.metrics.topo_traffic == {}
