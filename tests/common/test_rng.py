"""Tests for deterministic RNG streams."""

from repro.common.rng import RngStreams


def test_same_seed_same_stream():
    a = RngStreams(7).get("boot", 3)
    b = RngStreams(7).get("boot", 3)
    assert list(a.integers(0, 1000, 16)) == list(b.integers(0, 1000, 16))


def test_different_names_independent():
    s = RngStreams(7)
    a = list(s.get("boot", 0).integers(0, 10**9, 8))
    b = list(s.get("boot", 1).integers(0, 10**9, 8))
    c = list(s.get("snapshot", 0).integers(0, 10**9, 8))
    assert a != b
    assert a != c


def test_stream_cached_not_restarted():
    s = RngStreams(7)
    first = s.get("x").integers(0, 10**9)
    second = s.get("x").integers(0, 10**9)
    # Two draws from the same cached generator advance its state.
    fresh = RngStreams(7).get("x")
    assert [first, second] == list(fresh.integers(0, 10**9, 2))


def test_fork_is_deterministic_and_distinct():
    parent = RngStreams(7)
    child1 = parent.fork("run", 1)
    child2 = parent.fork("run", 2)
    again = RngStreams(7).fork("run", 1)
    assert child1.seed == again.seed
    assert child1.seed != child2.seed


def test_string_hash_stable_across_instances():
    # Would fail if we relied on Python's salted str hash.
    a = RngStreams(0).get("stable-name").integers(0, 10**9)
    b = RngStreams(0).get("stable-name").integers(0, 10**9)
    assert a == b
