"""Tests for the VM instance / hypervisor model."""

import numpy as np
import pytest

from repro.blobseer import BlobSeerDeployment
from repro.calibration import BootModel
from repro.common.errors import SimulationError
from repro.common.payload import Payload
from repro.common.units import KiB, MiB
from repro.simkit.host import Fabric
from repro.vmsim import VMInstance, boot_trace, make_image
from repro.vmsim.backends import MirrorBackend
from repro.vmsim.boottrace import BootOp

CHUNK = 64 * KiB
IMG = 8 * MiB


def setup(seed=41):
    fab = Fabric(seed=seed)
    hosts = [fab.add_host(f"n{i}") for i in range(4)]
    manager = fab.add_host("m")
    dep = BlobSeerDeployment(fab, hosts, hosts, manager)
    rec = dep.seed_blob(Payload.opaque("img", IMG), CHUNK)
    backend = MirrorBackend(hosts[0], dep, rec.blob_id, rec.version)
    vm = VMInstance("vm0", hosts[0], backend, BootModel(), np.random.default_rng(seed))
    return fab, vm


class TestBoot:
    def test_boot_records_time_and_sample(self):
        fab, vm = setup()
        image = make_image(IMG, 1 * MiB, n_regions=6)
        trace = boot_trace(image, BootModel(), np.random.default_rng(2))
        t = fab.run(fab.env.process(vm.boot(trace)))
        assert t == vm.boot_time > 0
        assert vm.booted_at == fab.env.now
        assert fab.metrics.samples["boot-time"].count == 1

    def test_boot_includes_hypervisor_init(self):
        fab, vm = setup()
        # empty trace: boot time ~= init overhead alone
        t = fab.run(fab.env.process(vm.boot([])))
        model = BootModel()
        assert model.hypervisor_init_min <= t
        assert t <= model.hypervisor_init_max + 0.1

    def test_two_instances_skewed(self):
        """§3.1.3: randomized init creates inter-instance access skew."""
        fab, vm1 = setup()
        # second VM on another host, same deployment
        dep = vm1.backend.deployment
        host2 = fab.hosts["n1"]
        backend2 = MirrorBackend(host2, dep, vm1.backend.blob_id, vm1.backend.version)
        vm2 = VMInstance("vm1", host2, backend2, BootModel(), np.random.default_rng(99))
        image = make_image(IMG, 1 * MiB, n_regions=6)
        t1 = boot_trace(image, BootModel(), np.random.default_rng(1))
        t2 = boot_trace(image, BootModel(), np.random.default_rng(2))
        p1 = fab.env.process(vm1.boot(t1))
        p2 = fab.env.process(vm2.boot(t2))
        fab.run(fab.env.all_of([p1, p2]))
        assert vm1.boot_time != vm2.boot_time

    def test_unknown_op_kind_rejected(self):
        fab, vm = setup()

        def scenario():
            yield from vm.backend.open()
            yield from vm.run_ops([BootOp("format-disk", 0, 10)])

        with pytest.raises(SimulationError):
            fab.run(fab.env.process(scenario()))

    def test_shutdown_closes_backend(self):
        fab, vm = setup()
        image = make_image(IMG, 1 * MiB, n_regions=6)
        trace = boot_trace(image, BootModel(), np.random.default_rng(3))
        fab.run(fab.env.process(vm.boot(trace)))
        fab.run(fab.env.process(vm.shutdown()))
        assert vm.backend.handle.closed

    def test_run_ops_zero_duration_cpu_skipped(self):
        fab, vm = setup()

        def scenario():
            yield from vm.backend.open()
            t0 = fab.env.now
            yield from vm.run_ops([BootOp("cpu", duration=0.0)])
            return fab.env.now - t0

        assert fab.run(fab.env.process(scenario())) == 0.0
