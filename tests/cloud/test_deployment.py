"""Integration tests: multideployment and multisnapshotting orchestration."""

import pytest

from repro.calibration import Calibration, ImageSpec
from repro.cloud import build_cloud, deploy, seed_image, snapshot_all
from repro.common.errors import MiddlewareError
from repro.common.units import KiB, MiB
from repro.vmsim import make_image
from repro.vmsim.workloads import read_your_writes_workload

SMALL = Calibration(
    image=ImageSpec(size=128 * MiB, chunk_size=256 * KiB, boot_touched_bytes=12 * MiB)
)


def small_cloud(n=6, seed=11):
    cloud = build_cloud(n, seed=seed, calib=SMALL)
    image = make_image(SMALL.image.size, SMALL.image.boot_touched_bytes, n_regions=16)
    return cloud, image


class TestDeploy:
    @pytest.mark.parametrize("approach", ["mirror", "qcow2-pvfs", "prepropagation"])
    def test_all_instances_boot(self, approach):
        cloud, image = small_cloud()
        res = deploy(cloud, image, 6, approach)
        assert len(res.boot_times) == 6
        assert all(t > 0 for t in res.boot_times)
        assert res.completion_time >= max(res.boot_times)

    def test_mirror_has_no_init_phase(self):
        cloud, image = small_cloud()
        res = deploy(cloud, image, 4, "mirror")
        assert res.init_time == 0.0

    def test_prepropagation_init_dominates(self):
        cloud, image = small_cloud()
        res = deploy(cloud, image, 6, "prepropagation")
        assert res.init_time > 0
        # after init, boots are purely local and fast
        assert res.init_time > res.avg_boot_time

    def test_mirror_traffic_far_below_prepropagation(self):
        c1, img1 = small_cloud()
        mirror = deploy(c1, img1, 6, "mirror")
        c2, img2 = small_cloud()
        prep = deploy(c2, img2, 6, "prepropagation")
        # prepropagation moves ~6 full images; mirror only the touched set
        assert prep.total_traffic > 4 * mirror.total_traffic
        assert mirror.total_traffic < 6 * SMALL.image.size / 3

    def test_mirror_completion_beats_prepropagation(self):
        c1, img1 = small_cloud()
        mirror = deploy(c1, img1, 6, "mirror")
        c2, img2 = small_cloud()
        prep = deploy(c2, img2, 6, "prepropagation")
        assert mirror.completion_time < prep.completion_time

    def test_too_many_instances_rejected(self):
        cloud, image = small_cloud(n=2)
        with pytest.raises(MiddlewareError):
            deploy(cloud, image, 3, "mirror")

    def test_unknown_approach_rejected(self):
        cloud, image = small_cloud(n=2)
        with pytest.raises(MiddlewareError):
            deploy(cloud, image, 2, "bittorrent")

    def test_deterministic_given_seed(self):
        def once():
            cloud, image = small_cloud(seed=42)
            res = deploy(cloud, image, 5, "mirror")
            return res.completion_time, res.total_traffic, tuple(res.boot_times)

        assert once() == once()

    def test_boot_skew_emerges(self):
        """Instances do not hit the repository in lock-step (§3.1.3)."""
        cloud, image = small_cloud()
        res = deploy(cloud, image, 6, "mirror")
        assert len(set(res.boot_times)) == 6  # all distinct


class TestSnapshotCampaign:
    def _deployed(self, approach, n=6):
        cloud, image = small_cloud()
        res = deploy(cloud, image, n, approach)
        diff = 5 * MiB

        def apply_diff(vm, i):
            ops = read_your_writes_workload(
                image.write_base, diff, cloud.fabric.rng.get("app", i), reread_fraction=0.1
            )
            yield from vm.run_ops(ops)

        procs = [cloud.env.process(apply_diff(vm, i)) for i, vm in enumerate(res.vms)]
        cloud.run(cloud.env.all_of(procs))
        return cloud, image, res

    @pytest.mark.parametrize("approach", ["mirror", "qcow2-pvfs"])
    def test_snapshot_all(self, approach):
        cloud, image, res = self._deployed(approach)
        snap = snapshot_all(cloud, res.vms, approach)
        assert len(snap.per_instance) == 6
        assert snap.avg_time > 0
        assert snap.completion_time >= max(s.duration for s in snap.per_instance)
        # moved roughly the diffs, nowhere near full images
        assert snap.total_bytes_moved < 6 * SMALL.image.size / 4

    def test_mirror_stores_only_diffs_repository_wide(self):
        cloud, image, res = self._deployed("mirror")
        before = cloud.blobseer.stored_bytes()
        snapshot_all(cloud, res.vms, "mirror")
        added = cloud.blobseer.stored_bytes() - before
        # 6 VMs x ~5 MiB diff, chunk-rounded; far below 6 full images
        assert added < 6 * 12 * MiB

    def test_mirror_second_campaign_moves_only_new_dirt(self):
        cloud, image, res = self._deployed("mirror")
        snapshot_all(cloud, res.vms, "mirror")
        snap2 = snapshot_all(cloud, res.vms, "mirror")
        assert snap2.total_bytes_moved == 0  # nothing written since

    def test_qcow2_recopies_whole_delta_file(self):
        cloud, image, res = self._deployed("qcow2-pvfs")
        s1 = snapshot_all(cloud, res.vms, "qcow2-pvfs")
        s2 = snapshot_all(cloud, res.vms, "qcow2-pvfs")
        assert s2.total_bytes_moved >= s1.total_bytes_moved  # no shadowing

    def test_each_mirror_snapshot_is_distinct_blob(self):
        cloud, image, res = self._deployed("mirror")
        snap = snapshot_all(cloud, res.vms, "mirror")
        blobs = {s.ident.split("@")[0] for s in snap.per_instance}
        assert len(blobs) == 6
