"""End-to-end churn runs: accounting, GC bounding, parallel determinism."""

import pytest

from repro.runner import PointSpec, SweepRunner, execute_point


def churn_spec(n=24, seed=5, **params):
    defaults = {"rate": 3.0, "tenants": 3, "mean_lifetime": 10.0,
                "min_lifetime": 3.0, "gc_interval": 20.0}
    defaults.update(params)
    return PointSpec(
        kind="churn", profile="churn-smoke", n=n, seed=seed,
        params=tuple(defaults.items()),
    )


class TestAccounting:
    def test_request_conservation(self):
        res = execute_point(churn_spec())
        m = res.metrics
        # every deploy either booted, was rejected, or was canceled in queue
        assert m["booted"] + m["rejected"] + m["canceled"] == 24
        assert m["completed"] == m["booted"]
        placements = res.series["placements"]
        assert len(placements) == 24
        assert sum(1 for p in placements if p == -1) == m["rejected"]
        assert sum(1 for p in placements if p == -2) == m["canceled"]
        assert all(p >= 0 for p in placements
                   if p not in (-1, -2))

    def test_snapshots_accounted(self):
        res = execute_point(churn_spec(snapshot_fraction=1.0))
        m = res.metrics
        # a snapshot is taken iff its instance was actually running
        assert m["snapshots_taken"] + m["snapshots_missed"] > 0
        assert m["snapshots_taken"] <= m["booted"]

    def test_rejections_under_tiny_queue(self):
        res = execute_point(churn_spec(max_queue=0, rate=8.0))
        assert res.metrics["rejected"] > 0
        assert res.metrics["rejection_rate"] > 0.0


class TestStorageHygiene:
    def test_gc_bounds_footprint_vs_ablation(self):
        with_gc = execute_point(churn_spec(n=30, snapshot_fraction=0.8))
        no_gc = execute_point(
            churn_spec(n=30, snapshot_fraction=0.8, gc_interval=0.0))
        assert with_gc.metrics["bytes_reclaimed"] > 0
        assert with_gc.metrics["gc_sweeps"] > 0
        assert no_gc.metrics["bytes_reclaimed"] == 0
        assert (with_gc.metrics["footprint_final"]
                < no_gc.metrics["footprint_final"])
        # without GC the repository only ever grows
        fp = no_gc.series["footprint_bytes"]
        assert all(b >= a for a, b in zip(fp, fp[1:]))

    def test_boot_slos_populated(self):
        m = execute_point(churn_spec()).metrics
        assert 0 < m["boot_p50_exact"] <= m["boot_p99_exact"]
        assert 0 < m["utilization"] <= 1.0
        assert m["makespan"] > 0


class TestDeterminism:
    def test_same_spec_identical_result(self):
        a, b = execute_point(churn_spec()), execute_point(churn_spec())
        assert a.metrics == b.metrics
        assert a.series == b.series
        assert a.event_count == b.event_count

    def test_parallel_bit_identical_to_sequential(self):
        specs = [churn_spec(seed=s, policy=p)
                 for s in (5, 6) for p in ("first-fit", "locality")]
        seq = SweepRunner(jobs=1, cache=None).run(specs)
        par = SweepRunner(jobs=4, cache=None).run(specs)
        for a, b in zip(seq, par):
            assert a.spec == b.spec
            assert a.metrics == b.metrics
            assert a.series == b.series
            assert a.event_count == b.event_count

    def test_policy_changes_placements_not_trace(self):
        ff = execute_point(churn_spec(policy="first-fit"))
        ll = execute_point(churn_spec(policy="least-loaded"))
        assert ff.metrics["trace_crc"] == ll.metrics["trace_crc"]
        assert ff.series["placements"] != ll.series["placements"]


class TestOffPath:
    def test_churn_run_leaves_other_kinds_untouched(self):
        """fig4-style points are bit-identical before/after a churn run."""
        deploy = PointSpec(kind="deploy", profile="churn-smoke",
                           approach="mirror", n=4, seed=1)
        before = execute_point(deploy)
        execute_point(churn_spec())
        after = execute_point(deploy)
        assert before.metrics == after.metrics
        assert before.series == after.series
        assert before.event_count == after.event_count


class TestRestores:
    def test_restores_complete_when_snapshots_retained(self):
        res = execute_point(churn_spec(
            snapshot_fraction=1.0, restore_fraction=1.0,
            retain_snapshots=True,
        ))
        m = res.metrics
        # most restores land (a few targets may not have snapshotted yet:
        # queueing delays a VM's life past its trace-scheduled restore)
        assert m["restores_completed"] > m["restores_missed"]
        # retained lineages restore from published heads, never retired ones
        assert m["restores_from_retired"] == 0
        assert m["restore_p99_exact"] > 0
        assert m["restore_mean_hops"] >= 1

    def test_retention_trades_restores_for_footprint(self):
        """Default retention: restores race GC — some come from retired
        lineage records, and any whose chunks were swept are missed."""
        res = execute_point(churn_spec(
            snapshot_fraction=1.0, restore_fraction=1.0,
        ))
        m = res.metrics
        assert m["restores_completed"] + m["restores_missed"] > 0
        assert m["restores_from_retired"] > 0

    def test_restore_fraction_off_path_identity(self):
        """Satellite: restore_fraction=0 leaves the trace bit-identical."""
        default = execute_point(churn_spec())
        explicit = execute_point(churn_spec(restore_fraction=0.0))
        assert default.metrics["trace_crc"] == explicit.metrics["trace_crc"]
        assert default.metrics == explicit.metrics
        assert default.series == explicit.series
        assert default.event_count == explicit.event_count
        assert default.metrics["restores_completed"] == 0

    def test_restore_arrivals_change_trace_but_stay_deterministic(self):
        on = execute_point(churn_spec(restore_fraction=1.0,
                                      snapshot_fraction=1.0))
        again = execute_point(churn_spec(restore_fraction=1.0,
                                         snapshot_fraction=1.0))
        off = execute_point(churn_spec(snapshot_fraction=1.0))
        assert on.metrics == again.metrics
        assert on.event_count == again.event_count
        assert on.metrics["trace_crc"] != off.metrics["trace_crc"]
