"""Per-instance lifecycle processes: boot -> run -> snapshot* -> teardown.

Each placed :class:`~repro.churn.arrivals.DeployRequest` becomes one
:class:`VmRuntime` driven by a single simulation process
(:func:`run_instance`): it opens a mirror backend on the placed node, boots
the tenant's image through the paper's on-demand VFS, then sleeps until the
dispatcher delivers snapshot or teardown requests. Snapshots write the §5.3
local diff and run the CLONE + COMMIT cycle; retention pruning unpublishes
older mid-life snapshots as new ones land. Teardown shuts the hypervisor
down, unlinks the local mirror file (and its persisted modification state)
so compute-node storage stays bounded over tens of thousands of requests,
unpublishes the instance's retired snapshot lineage (making it reclaimable
by the next :func:`~repro.blobseer.gc.collect_garbage` sweep), and releases
the slot back to the scheduler — which may immediately pop queued deploys.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from ..simkit import rpc
from ..vmsim.backends import MirrorBackend
from ..vmsim.boottrace import boot_trace
from ..vmsim.hypervisor import VMInstance
from ..vmsim.workloads import read_your_writes_workload
from .arrivals import DeployRequest

if TYPE_CHECKING:  # pragma: no cover
    from .engine import ChurnEngine


class VmRuntime:
    """Control-plane state of one placed instance."""

    __slots__ = (
        "req", "node", "state", "snap_pending", "teardown_flag",
        "proc", "published", "retired", "_wake",
    )

    def __init__(self, req: DeployRequest, node: int):
        self.req = req
        self.node = node
        self.state = "placed"  # placed -> booting -> running -> done
        self.snap_pending = 0
        self.teardown_flag = False
        self.proc = None
        #: (blob_id, version) of every still-published mid-life snapshot
        self.published: List[Tuple[int, int]] = []
        #: snapshots unpublished at teardown — restore targets until the
        #: next GC sweep reclaims their chunks (see RestoreRequest)
        self.retired: List[Tuple[int, int]] = []
        self._wake = None

    # -- dispatcher side ------------------------------------------------ #
    def deliver_snapshot(self) -> None:
        self.snap_pending += 1
        self._trigger()

    def deliver_teardown(self) -> None:
        self.teardown_flag = True
        self._trigger()

    def _trigger(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()


def run_instance(engine: "ChurnEngine", rt: VmRuntime):
    """The lifecycle process of one placed deploy (a generator)."""
    env = engine.cloud.env
    fabric = engine.cloud.fabric
    calib = engine.cloud.calib
    req = rt.req
    tracer = fabric.tracer
    span = None
    if tracer.enabled:
        span = tracer.start(
            f"churn:vm:{req.req_id}", "churn",
            tenant=req.tenant, node=rt.node,
        )
    try:
        host = engine.cloud.compute[rt.node]
        rec = engine.tenant_images[req.tenant]
        backend = MirrorBackend(
            host, engine.cloud.blobseer, rec.blob_id, rec.version, calib.fuse,
            path=f"/mirror/churn-r{req.req_id}",
        )
        vm = VMInstance(
            f"churn-{req.req_id:05d}", host, backend, calib.boot,
            fabric.rng.get("churn-vm", req.req_id),
        )
        trace = boot_trace(
            engine.image, calib.boot, fabric.rng.get("churn-trace", req.req_id)
        )
        rt.state = "booting"
        queue_wait = env.now - req.at
        yield from vm.boot(trace)
        engine.slo.on_boot(queue_wait, vm.boot_time)
        if engine.locality is not None:
            engine.locality.note_hosted(rt.node, req.tenant)

        rt.state = "running"
        seq = 0
        while True:
            rt._wake = env.event()
            while rt.snap_pending > 0:
                rt.snap_pending -= 1
                yield from _take_snapshot(engine, rt, vm, seq)
                seq += 1
            if rt.teardown_flag:
                break
            yield rt._wake

        yield from _teardown(engine, rt, vm)
    except BaseException as exc:
        if span is not None:
            span.set_error(exc)
        raise
    finally:
        if span is not None:
            span.finish()
        rt.state = "done"
        engine.release(rt)


def _take_snapshot(engine: "ChurnEngine", rt: VmRuntime, vm: VMInstance, seq: int):
    """Write the local diff, CLONE + COMMIT, prune retained snapshots."""
    spec = engine.spec
    fabric = engine.cloud.fabric
    if spec.diff_bytes > 0:
        ops = read_your_writes_workload(
            engine.image.write_base, spec.diff_bytes,
            fabric.rng.get("churn-diff", rt.req.req_id, seq),
            reread_fraction=0.05,
        )
        yield from vm.run_ops(ops)
    snap = yield from vm.backend.snapshot()
    engine.slo.on_snapshot(snap.duration)
    handle = vm.backend.handle
    rt.published.append((handle.target_blob, handle.target_version))
    # retention: unpublish mid-life snapshots beyond the newest K
    dep = engine.cloud.blobseer
    while len(rt.published) > spec.retention_per_vm:
        blob_id, version = rt.published.pop(0)
        yield from rpc.call(
            vm.host, dep.vmanager_host, "blob-vmgr", "delete_version",
            blob_id, version,
        )


def _teardown(engine: "ChurnEngine", rt: VmRuntime, vm: VMInstance):
    """Shutdown, local-file cleanup, lineage unpublish."""
    dep = engine.cloud.blobseer
    handle = vm.backend.handle
    clone_blob: Optional[int] = None
    if handle is not None and handle.target_blob != handle.source_blob:
        clone_blob = handle.target_blob
    yield from vm.shutdown()
    if handle is not None:
        # drop the local mirror file and its persisted modification state;
        # without this, node-local storage grows with every request served
        handle.local.unlink()
    if clone_blob is not None and not engine.spec.retain_snapshots:
        # unpublish the whole retired lineage: the clone blob (and every
        # chunk only it references) becomes garbage for the next GC sweep
        yield from rpc.call(
            vm.host, dep.vmanager_host, "blob-vmgr", "delete_blob", clone_blob
        )
        rt.retired.extend(rt.published)
        rt.published.clear()
        engine.slo.on_retire()
    engine.slo.on_complete()
