"""Measurement side of the simulator: traffic counters, timelines, samples.

Everything the benchmark harness reports — total network traffic (Fig. 4d),
boot/snapshot latencies (Figs. 4a/b, 5a/b), Bonnie++ throughput (Figs. 6/7) —
is recorded here. Metrics are deliberately dumb containers: they never affect
simulated behaviour, so enabling/disabling them cannot change a timeline.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class SampleStats:
    """Streaming summary of a sample series (count/mean/min/max/stdev).

    Variance uses Welford's online algorithm: the naive
    ``E[x^2] - E[x]^2`` form cancels catastrophically when the spread is
    tiny relative to the magnitude (e.g. millisecond jitter on timelines
    hours into a simulation) and can even go negative.
    """

    count: int = 0
    total: float = 0.0
    #: Welford state: running mean and sum of squared deviations from it
    welford_mean: float = 0.0
    welford_m2: float = 0.0
    min_value: float = math.inf
    max_value: float = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        delta = value - self.welford_mean
        self.welford_mean += delta / self.count
        self.welford_m2 += delta * (value - self.welford_mean)
        self.min_value = min(self.min_value, value)
        self.max_value = max(self.max_value, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def stdev(self) -> float:
        """Population standard deviation."""
        if self.count < 2:
            return 0.0
        return math.sqrt(max(0.0, self.welford_m2 / self.count))


@dataclass
class Metrics:
    """Per-simulation measurement sink."""

    #: bytes moved over the wire, by category ("bulk", "message", "chunk", ...)
    traffic: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    #: named duration/value samples, e.g. "boot-time", "snapshot-time"
    samples: Dict[str, SampleStats] = field(default_factory=lambda: defaultdict(SampleStats))
    #: raw sample values for series that need percentiles or per-VM detail
    raw: Dict[str, List[float]] = field(default_factory=lambda: defaultdict(list))
    #: event counters, e.g. "remote-read", "chunk-fetch", "rpc"
    counters: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    #: (time, value) timelines, e.g. queue depths
    timelines: Dict[str, List[Tuple[float, float]]] = field(
        default_factory=lambda: defaultdict(list)
    )

    # ------------------------------------------------------------------ #
    def add_traffic(self, nbytes: int, kind: str = "bulk") -> None:
        self.traffic[kind] += int(nbytes)

    def total_traffic(self) -> int:
        return sum(self.traffic.values())

    def sample(self, name: str, value: float) -> None:
        self.samples[name].add(value)
        self.raw[name].append(value)

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] += n

    def record(self, name: str, t: float, value: float) -> None:
        self.timelines[name].append((t, value))

    # ------------------------------------------------------------------ #
    def summary(self) -> str:
        """Human-readable dump, used by examples and failure diagnostics."""
        lines: List[str] = ["traffic:"]
        for kind in sorted(self.traffic):
            lines.append(f"  {kind:<16} {self.traffic[kind] / 2**20:10.1f} MiB")
        if self.samples:
            lines.append("samples:")
            for name in sorted(self.samples):
                s = self.samples[name]
                lines.append(
                    f"  {name:<24} n={s.count:<6} mean={s.mean:.4f}"
                    f" min={s.min_value:.4f} max={s.max_value:.4f}"
                )
        if self.counters:
            lines.append("counters:")
            for name in sorted(self.counters):
                lines.append(f"  {name:<24} {self.counters[name]}")
        return "\n".join(lines)
