"""Retry/backoff policy for the resilient storage-client paths.

A :class:`RetryPolicy` is a pure value attached to a
:class:`~repro.blobseer.service.BlobSeerDeployment`. When set, the BlobSeer
client wraps its data/metadata RPCs in per-call timeouts, bounded
exponential-backoff retries and replica failover; when ``None`` (the
default), every client path is byte-identical to the retry-free code —
the fault subsystem is strictly off-path when disabled.

This module has no imports from the rest of :mod:`repro` so it can be used
from both the simkit layer and the storage layer without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """How a client survives provider failures instead of hanging."""

    #: total tries per logical operation (first attempt included)
    attempts: int = 4
    #: delay before the second attempt (seconds, simulated)
    base_delay: float = 0.25
    #: multiplier applied to the delay after each failed attempt
    backoff: float = 2.0
    #: ceiling on the inter-attempt delay (seconds, simulated)
    max_delay: float = 4.0
    #: per-RPC watchdog: an unanswered call is abandoned after this long
    rpc_timeout: float = 30.0

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError(
                f"need 0 <= base_delay <= max_delay, got "
                f"{self.base_delay}/{self.max_delay}"
            )
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.rpc_timeout <= 0:
            raise ValueError(f"rpc_timeout must be positive, got {self.rpc_timeout}")

    def delay_for(self, attempt: int) -> float:
        """Backoff delay after failed attempt number ``attempt`` (0-based)."""
        return min(self.base_delay * self.backoff**attempt, self.max_delay)

    def to_json(self) -> dict:
        return {
            "attempts": self.attempts,
            "base_delay": self.base_delay,
            "backoff": self.backoff,
            "max_delay": self.max_delay,
            "rpc_timeout": self.rpc_timeout,
        }

    @classmethod
    def from_json(cls, data: dict) -> "RetryPolicy":
        return cls(
            attempts=int(data.get("attempts", 4)),
            base_delay=float(data.get("base_delay", 0.25)),
            backoff=float(data.get("backoff", 2.0)),
            max_delay=float(data.get("max_delay", 4.0)),
            rpc_timeout=float(data.get("rpc_timeout", 30.0)),
        )
