"""Result series and derived metrics for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union


@dataclass
class Series:
    """A named y-over-x curve, e.g. boot time versus instance count."""

    name: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.x.append(float(x))
        self.y.append(float(y))

    def at(self, x: float, tol: float = 0.0) -> float:
        """The y value at x.

        The exact match is the fast path. With ``tol > 0`` the nearest
        measured x within ``tol`` is accepted instead (useful when x values
        went through float arithmetic); a miss raises :class:`KeyError`
        either way.
        """
        xf = float(x)
        try:
            return self.y[self.x.index(xf)]
        except ValueError:
            pass
        if tol > 0 and self.x:
            nearest = min(range(len(self.x)), key=lambda i: abs(self.x[i] - xf))
            if abs(self.x[nearest] - xf) <= tol:
                return self.y[nearest]
            raise KeyError(
                f"{self.name}: no point within {tol} of x={x} "
                f"(nearest measured x={self.x[nearest]})"
            )
        raise KeyError(f"{self.name}: no point at x={x}") from None

    def last(self) -> float:
        return self.y[-1]

    def is_monotonic_nondecreasing(self, tolerance: float = 0.0) -> bool:
        return all(b >= a - tolerance for a, b in zip(self.y, self.y[1:]))

    def max(self) -> float:
        return max(self.y)

    def __len__(self) -> int:
        return len(self.x)


def speedup(baseline: Series, ours: Series, name: str | None = None) -> Series:
    """Pointwise ``baseline / ours`` over the common x values (Fig. 4c)."""
    common = [x for x in baseline.x if x in ours.x]
    out = Series(name or f"speedup vs {baseline.name}")
    for x in common:
        out.add(x, baseline.at(x) / ours.at(x))
    return out


def collect(results: Sequence, x_attr: str, y_attr: str, name: str) -> Series:
    """Build a series by pulling two attributes off a result list."""
    out = Series(name)
    for r in results:
        out.add(getattr(r, x_attr), getattr(r, y_attr))
    return out


def from_points(
    points: Sequence,
    metric: Union[str, Callable],
    name: str,
    x: Optional[Callable] = None,
) -> Series:
    """Build a series from a sweep's ``PointResult`` list.

    ``metric`` is a metric name (looked up in ``point.metrics``, falling back
    to an attribute/property of the point) or a callable ``point -> y``. The
    x value defaults to the point's instance count (``point.spec.n``);
    pass ``x`` to extract something else.
    """
    out = Series(name)
    for p in points:
        if callable(metric):
            value = metric(p)
        elif metric in getattr(p, "metrics", {}):
            value = p.metrics[metric]
        else:
            value = getattr(p, metric)
        out.add(p.spec.n if x is None else x(p), value)
    return out


@dataclass
class Figure:
    """One reproduced paper figure: a set of series plus metadata."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: Dict[str, Series] = field(default_factory=dict)

    def add_series(self, s: Series) -> None:
        self.series[s.name] = s
