"""BlobSeer's simulated services: data providers, metadata providers, the
version manager.

Each service wraps pure state (chunk stores, metadata shards, the blob
registry) with the simulated costs that shape the paper's results:

* **Data provider** — serves chunk GETs (disk read on RAM-cache miss, free on
  hit: repeated multideployment reads of a hot image are memory-served, as on
  the real testbed) and chunk PUTs with BlobSeer's *asynchronous write
  pipeline*: the ack returns once the data sits in the provider's RAM buffer;
  a background flusher commits it to disk. Buffer exhaustion throttles acks —
  this is exactly the "write pressure that eventually has to be committed to
  disk" degradation of Fig. 5(a).
* **Metadata provider** — one shard of the distributed segment-tree node
  space (nodes are assigned to shards by id hash). Nodes are immutable, so
  clients may cache them; fetch cost is charged per node batch.
* **Version manager** — the serialization point: FIFO publish queue over the
  :class:`~repro.blobseer.vmanager.BlobRegistry`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..calibration import ServiceModel
from ..common.errors import ChunkNotFoundError, ProviderUnavailableError
from ..common.payload import Payload
from ..common.units import MiB
from ..simkit.core import Timeout
from ..simkit.host import Host
from ..simkit.resources import Container, Resource
from ..simkit.rpc import Sized
from .metadata import MetadataStore, NodeId, TreeNode
from .store import ChunkStore
from .vmanager import BlobRegistry, SnapshotRecord

#: wire size of one serialized tree node (range + child ids + chunk ref)
NODE_WIRE_BYTES = 72


class DataProviderService:
    """One compute node's slice of the aggregated storage pool (§3.1.1)."""

    def __init__(
        self,
        host: Host,
        model: ServiceModel,
        write_buffer_bytes: int = 64 * MiB,
        async_ack: bool = True,
        cache_chunks: bool = False,
    ):
        self.host = host
        self.model = model
        self.async_ack = async_ack
        #: whether served chunks stay RAM-resident (kernel page cache). The
        #: conservative default is off: commodity providers persist chunks on
        #: disk and a GET pays a random read — the same assumption the PVFS
        #: baseline gets, so the comparison stays apples-to-apples.
        self.cache_chunks = cache_chunks
        self.store = ChunkStore()
        #: chunk keys currently resident in RAM (page cache / write buffer)
        self.ram: set[int] = set()
        self._buffer = Container(host.env, capacity=float(write_buffer_bytes))
        self._buffer.level = float(write_buffer_bytes)  # full budget available
        self._pending_flush = 0
        #: chunk keys acked but not yet committed to disk (lost on a crash)
        self._unflushed: set[int] = set()

    # ------------------------------------------------------------------ #
    def rpc_get_chunks(self, caller: Host, keys: Sequence):
        """Serve chunks (or sub-chunk ranges); streamed back as one flow.

        Each request item is either a chunk key (whole chunk) or a
        ``(key, lo, hi)`` triple for a byte range within the chunk — the
        latter supports the no-prefetch ablation of the paper's first
        mirroring strategy.
        """
        env = self.host.env
        parts: List[Payload] = []
        for item in keys:
            key, lo, hi = item if isinstance(item, tuple) else (item, None, None)
            yield Timeout(env, self.model.chunk_request_overhead)
            payload = self.store.get(key)
            if key not in self.ram:
                nbytes = payload.size if lo is None else hi - lo
                # random read: the chunk sits somewhere on the provider disk
                yield from self.host.disk.read(nbytes, sequential=False)
                if self.cache_chunks:
                    self.ram.add(key)
            parts.append(payload if lo is None else payload.slice(lo, hi))
        combined = Payload.concat(parts)
        metrics = self.host.fabric.metrics
        metrics.counters["chunk-get"] += len(keys)
        metrics.counters["provider-bytes"] += combined.size
        return combined

    def rpc_put_chunks(self, caller: Host, items: Sequence[Tuple[int, Payload]]):
        """Store chunks; ack semantics depend on the async-write pipeline."""
        env = self.host.env
        total = sum(p.size for _, p in items)
        for key, payload in items:
            yield Timeout(env, self.model.chunk_request_overhead)
            if not self.store.has(key):
                # Puts are idempotent: a client retrying after a partial
                # replicated write may resend chunks this provider already
                # holds; re-storing an immutable chunk is a no-op.
                self.store.put(key, payload)
            if self.cache_chunks:
                self.ram.add(key)
        self.host.fabric.metrics.counters["chunk-put"] += len(items)
        if self.async_ack:
            # Reserve RAM buffer (throttles when the flusher lags), ack,
            # commit to disk in the background.
            yield self._buffer.get(float(total))
            self._pending_flush += total
            self._unflushed.update(key for key, _ in items)
            self.host.spawn(self._flush(items), name="provider-flush")
        else:
            for _key, payload in items:
                yield from self.host.disk.write(payload.size, sequential=False)
        return None

    def rpc_put_chunks_chain(
        self, caller: Host, items: Sequence[Tuple[int, Payload]], chain: Sequence[str]
    ):
        """Pipelined replication: store locally, then forward down ``chain``.

        The client streams each replica group to the head provider only; the
        head forwards to the next replica, and so on — k-1 provider-to-provider
        transfers replace k-1 client uplink transfers (classic chain
        replication, cheap when the client NIC is the bottleneck).
        """
        yield from self.rpc_put_chunks(caller, items)
        if chain:
            from ..simkit import rpc

            next_host = self.host.fabric.hosts[chain[0]]
            total = sum(p.size for _, p in items)
            yield from rpc.call(
                self.host,
                next_host,
                "blob-data",
                "put_chunks_chain",
                items,
                tuple(chain[1:]),
                request_bytes=total + rpc.REQUEST_BYTES,
            )
        return None

    def _flush(self, items: Sequence[Tuple[int, Payload]]):
        # chunks land wherever the provider's store has room: one random
        # write per chunk
        total = 0
        for _key, payload in items:
            yield from self.host.disk.write(payload.size, sequential=False)
            self._unflushed.discard(_key)
            total += payload.size
        self._pending_flush -= total
        yield self._buffer.put(float(total))

    # ------------------------------------------------------------------ #
    def on_host_crash(self):
        """Volatile state dies with the node; disk-committed chunks survive.

        Called by :meth:`~repro.simkit.host.Host.fail`. Acked-but-unflushed
        chunks are lost (the async-ack window is exactly the durability gap
        the replication layer exists to cover), the RAM cache empties, and
        any client blocked on the write buffer gets an immediate failure
        instead of hanging on a dead flusher.
        """
        self.ram.clear()
        for key in self._unflushed:
            self.store.discard(key)
        self._unflushed.clear()
        self._buffer.fail_waiters(
            ProviderUnavailableError(f"{self.host.name} crashed")
        )
        # Fresh, full buffer for the post-recovery life of the service.
        self._buffer = Container(self.host.env, capacity=self._buffer.capacity)
        self._buffer.level = self._buffer.capacity
        self._pending_flush = 0

    # ------------------------------------------------------------------ #
    def drain(self):
        """Wait until all buffered writes hit the disk (durability barrier)."""
        env = self.host.env
        while self._pending_flush > 0:
            yield env.timeout(0.01)

    @property
    def stored_bytes(self) -> int:
        return self.store.total_bytes()


class MetadataProviderService:
    """One shard of the distributed metadata (segment-tree nodes)."""

    def __init__(self, host: Host, model: ServiceModel):
        self.host = host
        self.model = model
        self.nodes: Dict[NodeId, TreeNode] = {}

    def rpc_get_nodes(self, caller: Host, ids: Sequence[NodeId]):
        env = self.host.env
        yield Timeout(env, self.model.metadata_node_overhead * len(ids))
        nodes = self.nodes
        out: Dict[NodeId, TreeNode] = {}
        try:
            for nid in ids:
                out[nid] = nodes[nid]
        except KeyError:
            raise ChunkNotFoundError(f"metadata shard {self.host.name}: node {nid}")
        self.host.fabric.metrics.counters["meta-get"] += len(ids)
        # Wire-size the batch so big metadata fetches cost transfer time.
        return Sized(out, NODE_WIRE_BYTES * len(ids))

    def rpc_put_nodes(self, caller: Host, nodes: Dict[NodeId, TreeNode]):
        env = self.host.env
        yield Timeout(env, self.model.metadata_node_overhead * len(nodes))
        self.nodes.update(nodes)
        self.host.fabric.metrics.counters["meta-put"] += len(nodes)
        return None

    def on_host_crash(self):
        """Metadata shards are DRAM-resident: a crash loses the shard.

        Surviving replicas on the other metadata homes (``meta_replication``
        in :class:`~repro.blobseer.service.BlobSeerDeployment`) are the only
        way reads keep working afterwards.
        """
        self.nodes.clear()


class VersionManagerService:
    """Snapshot ordering and the publish protocol (one instance per deployment)."""

    def __init__(self, host: Host, registry: BlobRegistry, model: ServiceModel):
        self.host = host
        self.registry = registry
        self.model = model
        self._serializer = Resource(host.env, capacity=1)

    def _serialized(self, work_seconds: float):
        req = self._serializer.request()
        yield req
        try:
            yield self.host.env.timeout(work_seconds)
        finally:
            self._serializer.release()

    def rpc_create_blob(self, caller: Host, size: int, chunk_size: int):
        yield from self._serialized(self.model.publish_overhead)
        return self.registry.create_blob(size, chunk_size)

    def rpc_publish(self, caller: Host, blob_id: int, root: Optional[NodeId]):
        yield from self._serialized(self.model.publish_overhead)
        return self.registry.publish(blob_id, root)

    def rpc_clone(self, caller: Host, blob_id: int, version: Optional[int]):
        yield from self._serialized(self.model.publish_overhead)
        return self.registry.clone(blob_id, version)

    def rpc_lookup(self, caller: Host, blob_id: int, version: Optional[int]):
        yield self.host.env.timeout(self.model.publish_overhead / 4)
        return self.registry.lookup(blob_id, version)

    def rpc_delete_version(self, caller: Host, blob_id: int, version: int):
        yield from self._serialized(self.model.publish_overhead)
        self.registry.delete_version(blob_id, version)
        return None

    def rpc_delete_blob(self, caller: Host, blob_id: int):
        yield from self._serialized(self.model.publish_overhead)
        self.registry.delete_blob(blob_id)
        return None

    # ------------------------------------------------------------------ #
    # lineage control plane (:mod:`repro.lineage`)
    # ------------------------------------------------------------------ #
    def rpc_lineage_entry(self, caller: Host, blob_id: int, version: int):
        """Fetch one snapshot's permanent lineage record.

        This is the per-hop cost of an ancestry walk (restore-to-version
        opens a chain one record at a time, like a qcow2 chain open): a
        read-only registry lookup, unserialized, same price as ``lookup``.
        """
        yield self.host.env.timeout(self.model.publish_overhead / 4)
        return self.registry.lineage_entry(blob_id, version)

    def rpc_clone_lineage(self, caller: Host, blob_id: int, version: int):
        """CLONE from the lineage log (source may be retired); serialized."""
        yield from self._serialized(self.model.publish_overhead)
        return self.registry.clone_from_lineage(blob_id, version)

    def rpc_pin_version(self, caller: Host, blob_id: int, version: int):
        """Take a restore/compaction lease on a snapshot (cheap lookup cost)."""
        yield self.host.env.timeout(self.model.publish_overhead / 4)
        self.registry.pin_version(blob_id, version)
        return None

    def rpc_unpin_version(self, caller: Host, blob_id: int, version: int):
        """Drop a lease; any delete deferred behind it completes now."""
        yield self.host.env.timeout(self.model.publish_overhead / 4)
        self.registry.unpin_version(blob_id, version)
        return None

    def rpc_set_skip(self, caller: Host, blob_id: int, version: int, skip):
        """Write a flattening skip pointer (a metadata write; serialized)."""
        yield from self._serialized(self.model.publish_overhead)
        self.registry.set_skip(blob_id, version, skip)
        return None

    def rpc_dedup_query(self, caller: Host, chunks, index):
        """Look up content fingerprints in the dedup index.

        ``chunks`` maps chunk index -> payload (standing in for its digest);
        ``index`` is the deployment's content-addressed index. Returns the
        subset with an existing :class:`ChunkRef`.
        """
        yield self.host.env.timeout(self.model.metadata_node_overhead * len(chunks))
        hits = {}
        for idx, payload in chunks.items():
            ref = index.get(payload)
            if ref is not None:
                hits[idx] = ref
        self.host.fabric.metrics.count("dedup-query", len(chunks))
        self.host.fabric.metrics.count("dedup-hit", len(hits))
        return hits
