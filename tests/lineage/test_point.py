"""The ``lineage`` runner point: metrics, compaction effect, off-path identity."""

from repro.runner import PointSpec, execute_point


def lineage_spec(depth=4, seed=3, **params):
    return PointSpec(
        kind="lineage", profile="lineage-smoke", approach="mirror",
        n=depth, seed=seed, params=tuple(sorted(params.items())),
    )


class TestExecutor:
    def test_metrics_conserve_and_scale_with_depth(self):
        res = execute_point(lineage_spec(depth=4))
        m = res.metrics
        assert m["chain_depth"] == 4
        # uncompacted scan: 4 commits + clone v1 + source v1 + source v0
        assert m["scan_hops"] == 4 + 3
        assert m["restore_time"] > m["scan_time"] > 0
        assert m["conserved"] == 1.0
        assert m["footprint_matches"] == 1.0
        assert m["dedup_exclusive"] + m["dedup_shared"] == m["dedup_live"]
        assert len(res.series["snapshot_durations"]) == 4
        assert len(res.series["chain"]) == m["scan_hops"]

    def test_compaction_bounds_the_scan(self):
        plain = execute_point(lineage_spec(depth=8))
        flat = execute_point(lineage_spec(
            depth=8, compact=True, policy="flatten", depth_bound=2,
        ))
        assert flat.metrics["skips_written"] > 0
        assert flat.metrics["scan_hops"] <= 2 + 2
        assert flat.metrics["scan_hops"] < plain.metrics["scan_hops"]
        assert flat.metrics["restore_time"] < plain.metrics["restore_time"]

    def test_merge_reclaims(self):
        res = execute_point(lineage_spec(
            depth=8, compact=True, policy="merge", depth_bound=2,
        ))
        assert res.metrics["versions_merged"] > 0
        assert res.metrics["conserved"] == 1.0

    def test_deterministic(self):
        a = execute_point(lineage_spec(depth=5, compact=True))
        b = execute_point(lineage_spec(depth=5, compact=True))
        assert a.metrics == b.metrics
        assert a.series == b.series
        assert a.event_count == b.event_count


class TestOffPath:
    def test_lineage_run_leaves_other_kinds_untouched(self):
        """fig4-style points are bit-identical before/after a lineage run."""
        deploy = PointSpec(kind="deploy", profile="lineage-smoke",
                           approach="mirror", n=4, seed=1)
        before = execute_point(deploy)
        execute_point(lineage_spec(depth=5, compact=True, policy="merge"))
        after = execute_point(deploy)
        assert before.metrics == after.metrics
        assert before.series == after.series
        assert before.event_count == after.event_count
