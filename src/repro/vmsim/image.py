"""VM image content model and boot hot-set layout.

A :class:`VmImage` bundles the image payload with the *hot set*: the regions
a boot of the installed OS actually touches (§2.3 — a VM never reads most of
its image). The hot set is derived deterministically from the image tag, so
every VM instance booting the same image touches the same bytes (they run
the same OS), while per-instance trace jitter lives in the boot-trace
generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..common.errors import SimulationError
from ..common.payload import Payload
from ..common.rng import RngStreams
from ..common.units import KiB, MiB


@dataclass(frozen=True)
class HotRegion:
    """One contiguous region the boot reads (a file or file group)."""

    offset: int
    size: int


@dataclass
class VmImage:
    """An image payload plus its boot-access layout."""

    tag: str
    payload: Payload
    #: regions read during boot, in access order (boot sector first)
    hot_regions: List[HotRegion]
    #: area receiving boot-time writes (logs, /etc contextualization)
    write_base: int

    @property
    def size(self) -> int:
        return self.payload.size

    def touched_bytes(self) -> int:
        return sum(r.size for r in self.hot_regions)


def make_image(
    size: int,
    touched_bytes: int,
    n_regions: int = 64,
    tag: str = "debian-sid",
    payload: Payload | None = None,
    seed: int = 0,
) -> VmImage:
    """Build an image whose boot touches ``touched_bytes`` in ``n_regions``.

    Region sizes follow a lognormal distribution (a few big binaries, many
    small config files), placed without overlap across the image; the boot
    sector (first 4 KiB) is always region zero. The layout is a pure
    function of ``(tag, seed)``.
    """
    if touched_bytes >= size:
        raise SimulationError("hot set must be smaller than the image")
    if payload is None:
        payload = Payload.opaque(tag, size)
    if payload.size != size:
        raise SimulationError("payload size mismatch")
    rng = RngStreams(seed).get("image-layout", tag)

    boot_sector = HotRegion(0, 4 * KiB)
    remaining = touched_bytes - boot_sector.size
    n_rest = n_regions - 1
    raw = rng.lognormal(mean=0.0, sigma=1.0, size=n_rest)
    sizes = np.maximum((raw / raw.sum() * remaining).astype(np.int64), 4 * KiB)
    # Place regions at increasing offsets with random gaps: slack spread
    # uniformly over the image keeps regions non-overlapping and ordered.
    total = int(sizes.sum())
    slack = size - total - boot_sector.size - 64 * KiB
    if slack < 0:
        raise SimulationError("hot regions do not fit the image")
    gaps = rng.dirichlet(np.ones(n_rest)) * slack
    regions = [boot_sector]
    cursor = boot_sector.size + 16 * KiB
    for region_size, gap in zip(sizes, gaps):
        cursor += int(gap)
        regions.append(HotRegion(int(cursor), int(region_size)))
        cursor += int(region_size)
    # Boot-time writes land in a dedicated area after the last hot region
    # when possible; otherwise in the largest tail gap.
    write_base = min(cursor + 16 * KiB, size - 32 * MiB if size > 64 * MiB else size // 2)
    return VmImage(tag=tag, payload=payload, hot_regions=regions, write_base=int(write_base))
