"""Tracked snapshot-lineage benchmark: restore latency vs chain depth.

The paper's title promises going *back and forth*; this harness pins the
"back" half. One VM commits an ever-deeper snapshot chain (``lineage``
profile), then a restore-to-version boots the chain head on another node.
The restore scan pays one version-manager round-trip per ancestry hop —
the qcow2 backing-chain analogue — so uncompacted restore latency grows
with chain depth, and depth-bounded compaction
(:mod:`repro.lineage.compact`) is what keeps it flat.

Tracked grid, seed 1: depths × {uncompacted, flatten-compacted} plus one
delta-merge point at the deepest chain. Each point runs in a **forked
child** through :func:`repro.runner.execute_point`, exactly what a cached
sweep would replay. A separate determinism probe runs a subset through
:class:`repro.runner.SweepRunner` at ``jobs=1`` and ``jobs=4`` and requires
bit-identical results.

Results are tracked in ``BENCH_lineage.json`` at the repository root.
Running as a script re-measures and **gates**: non-zero exit if

* any simulated outcome drifts from the committed ``current`` section
  (rerun with ``--update`` if intentional),
* aggregate wall-clock throughput (total events / total wall over the
  whole grid — single points finish in ~0.1 s, far too noisy to gate
  individually) falls more than ``REGRESSION_TOLERANCE`` below the
  committed numbers, or
* the acceptance invariants fail: uncompacted scan hops/latency must grow
  monotonically with depth while the compacted scan stays bounded by
  ``DEPTH_BOUND + 2`` hops at every depth; dedup accounting must conserve
  bytes (exclusive + shared == live == stored-after-GC) everywhere; the
  merge point must actually merge versions and reclaim bytes; and the
  jobs=1 vs jobs=4 runs must be bit-identical.

Usage::

    make perf                                      # measure + gate
    make lineage-smoke                             # tiny-depth gate check
    PYTHONPATH=src python benchmarks/bench_lineage.py --update
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_lineage.json"

if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from gates import (  # noqa: E402
    field_drift, jcopy, load_tracked, rss_mib, run_in_child,
    throughput_floor, write_tracked,
)
from repro.runner import PointSpec, SweepRunner, execute_point  # noqa: E402

#: allowed fractional drop in events/s before the throughput gate fails
REGRESSION_TOLERANCE = 0.25

#: fixed seed — simulated outcomes are identical across runs and machines
SEED = 1

#: chain depths of the tracked grid (n = COMMITs on one VM's clone)
DEPTHS = (4, 8, 16, 32)

#: anchor spacing of the compacted points; the bounded-scan gate allows
#: ``DEPTH_BOUND + 2`` hops
DEPTH_BOUND = 4

#: simulated-outcome fields recorded per point; all deterministic, so the
#: gate requires them to match the committed numbers exactly
SIM_FIELDS = (
    "chain_depth", "scan_hops", "scan_time", "clone_time", "open_time",
    "restore_time", "boot_time",
    "dedup_exclusive", "dedup_shared", "dedup_live", "dedup_stored",
    "conserved", "footprint_matches",
    "forest_snapshots", "forest_max_depth",
    "skips_written", "versions_merged", "gc_bytes_reclaimed",
)


def _params(mode: str, depth_bound: int) -> tuple:
    if mode == "off":
        return ()
    return (("compact", True), ("policy", mode), ("depth_bound", depth_bound))


def _spec(mode: str, depth: int, profile: str, depth_bound: int) -> PointSpec:
    return PointSpec(
        kind="lineage", profile=profile, approach="mirror", n=depth,
        seed=SEED, params=_params(mode, depth_bound),
    )


def _measure_once(mode: str, depth: int, profile: str, depth_bound: int) -> dict:
    t0 = time.perf_counter()
    res = execute_point(_spec(mode, depth, profile, depth_bound))
    wall = time.perf_counter() - t0
    row = {k: res.metrics[k] for k in SIM_FIELDS}
    row["events"] = res.event_count
    row["wall_s"] = round(wall, 3)
    row["events_per_s"] = round(res.event_count / wall, 1) if wall else 0.0
    row["peak_rss_mib"] = rss_mib()
    return row


def measure_point(mode: str, depth: int, profile: str,
                  depth_bound: int = DEPTH_BOUND) -> dict:
    """Measure one lineage point in a forked child (true per-point RSS)."""
    return run_in_child(
        _measure_once, mode, depth, profile, depth_bound,
        label=f"lineage point {mode}@d{depth}",
    )


def check_determinism(profile: str, depths, depth_bound: int) -> dict:
    """jobs=1 vs jobs=4 over the uncompacted grid must be bit-identical."""
    specs = [_spec("off", d, profile, depth_bound) for d in depths]
    t0 = time.perf_counter()
    seq = SweepRunner(jobs=1, cache=None).run(specs)
    par = SweepRunner(jobs=4, cache=None).run(specs)
    wall = time.perf_counter() - t0
    identical = all(
        a.metrics == b.metrics and a.series == b.series
        and a.event_count == b.event_count
        for a, b in zip(seq, par)
    )
    return {
        "identical": identical,
        "points": len(specs),
        "wall_s": round(wall, 3),
    }


def measure(profile: str = "lineage", depths=DEPTHS,
            depth_bound: int = DEPTH_BOUND, verbose: bool = True) -> dict:
    """Measure the tracked grid; {"restore": {...}, "determinism": {...}}."""
    out = {"restore": {}}
    for mode in ("off", "flatten"):
        for depth in depths:
            row = measure_point(mode, depth, profile, depth_bound)
            out["restore"][f"{mode}-d{depth}"] = row
            if verbose:
                print(f"restore/{mode}-d{depth}: {row['scan_hops']:.0f} hops, "
                      f"restore {row['restore_time'] * 1e3:.2f} ms, "
                      f"sharing {row['dedup_shared'] / 2**20:.1f} MiB shared "
                      f"({row['wall_s']:.1f}s wall, "
                      f"{row['peak_rss_mib']} MiB RSS)")
    row = measure_point("merge", depths[-1], profile, depth_bound)
    out["restore"][f"merge-d{depths[-1]}"] = row
    if verbose:
        print(f"restore/merge-d{depths[-1]}: {row['versions_merged']:.0f} "
              f"versions merged, {row['gc_bytes_reclaimed'] / 2**20:.1f} MiB "
              f"reclaimed, {row['scan_hops']:.0f} hops "
              f"({row['wall_s']:.1f}s wall)")
    out["determinism"] = check_determinism(profile, depths[:2], depth_bound)
    if verbose:
        d = out["determinism"]
        print(f"determinism: jobs=1 vs jobs=4 identical={d['identical']} "
              f"over {d['points']} points ({d['wall_s']:.1f}s wall)")
    return out


# --------------------------------------------------------------------------- #
# tracked file + gates
# --------------------------------------------------------------------------- #
def load_committed() -> dict:
    return load_tracked(BENCH_PATH)


def _by_depth(rows: dict, mode: str):
    """(depth, row) pairs of one compaction mode, sorted by depth."""
    out = []
    for label, row in rows.items():
        prefix = f"{mode}-d"
        if label.startswith(prefix):
            out.append((int(label[len(prefix):]), row))
    return sorted(out)


def check_acceptance(fresh: dict, depth_bound: int = DEPTH_BOUND) -> list:
    """The lineage invariants; human-readable failures (empty = ok)."""
    failures = []
    rows = fresh.get("restore", {})

    for label, row in sorted(rows.items()):
        if row["conserved"] != 1.0 or row["footprint_matches"] != 1.0:
            failures.append(
                f"{label}: dedup accounting does not conserve bytes "
                f"(conserved={row['conserved']}, "
                f"matches={row['footprint_matches']})"
            )

    off = _by_depth(rows, "off")
    for (d1, r1), (d2, r2) in zip(off, off[1:]):
        if not r2["scan_hops"] > r1["scan_hops"]:
            failures.append(
                f"uncompacted scan hops not monotone: d{d2} has "
                f"{r2['scan_hops']:.0f} hops vs d{d1}'s {r1['scan_hops']:.0f}"
            )
        if not r2["scan_time"] > r1["scan_time"]:
            failures.append(
                f"uncompacted scan latency not monotone: d{d2} "
                f"{r2['scan_time']:.6f}s vs d{d1} {r1['scan_time']:.6f}s"
            )

    flat = _by_depth(rows, "flatten")
    for d, row in flat:
        if row["scan_hops"] > depth_bound + 2:
            failures.append(
                f"flatten-d{d}: {row['scan_hops']:.0f} scan hops exceed the "
                f"compaction bound {depth_bound} + 2"
            )
    if off and flat:
        deepest_off = off[-1][1]
        deepest_flat = flat[-1][1]
        if not deepest_flat["scan_time"] < deepest_off["scan_time"]:
            failures.append(
                "compaction does not reduce the deepest chain's scan latency"
            )

    merges = _by_depth(rows, "merge")
    for d, row in merges:
        if not row["versions_merged"] > 0:
            failures.append(f"merge-d{d}: no versions were merged")
        if not row["gc_bytes_reclaimed"] > 0:
            failures.append(f"merge-d{d}: the post-merge GC reclaimed nothing")

    det = fresh.get("determinism")
    if det is not None and not det["identical"]:
        failures.append("jobs=1 vs jobs=4 sweep results are not bit-identical")
    return failures


def _aggregate_eps(rows: dict) -> float:
    """Total events / total wall over a grid (per-point walls are noise)."""
    events = sum(r["events"] for r in rows.values())
    wall = sum(r["wall_s"] for r in rows.values())
    return events / wall if wall > 0 else 0.0


def check_regression(fresh: dict, committed: dict,
                     depth_bound: int = DEPTH_BOUND) -> list:
    """Gate fresh numbers against the committed ``current`` section."""
    failures = []
    current = committed.get("current", {}).get("restore", {})
    for label, now in sorted(fresh.get("restore", {}).items()):
        failures += field_drift(
            f"restore/{label}", now, current.get(label), SIM_FIELDS
        )
    failures += throughput_floor(
        "restore aggregate",
        round(_aggregate_eps(fresh.get("restore", {}))),
        round(_aggregate_eps(current)),
        REGRESSION_TOLERANCE,
    )
    failures += check_acceptance(fresh, depth_bound)
    return failures


# --------------------------------------------------------------------------- #
# smoke mode: tiny depths, asserts the gate logic itself
# --------------------------------------------------------------------------- #
def run_smoke() -> int:
    """``make lineage-smoke``: tiny chains + gate-logic self-test.

    Measures a reduced grid on the ``lineage-smoke`` profile (8 nodes,
    sub-second points), then exercises the gates against synthetic
    committed data: pass on identical numbers, flag a drifted outcome, a
    throughput collapse, and each acceptance violation on doctored copies.
    """
    bound = 2
    fresh = measure(profile="lineage-smoke", depths=(2, 5), depth_bound=bound)

    if check_acceptance(fresh, bound):
        print("smoke: acceptance failed on a fresh run:",
              check_acceptance(fresh, bound), file=sys.stderr)
        return 1

    committed = {"current": jcopy(fresh)}
    drift = check_regression(fresh, committed, bound)
    if drift:
        print("smoke: gate failed on identical numbers:", drift, file=sys.stderr)
        return 1

    drifted = jcopy(committed)
    drifted["current"]["restore"]["off-d2"]["scan_hops"] += 1
    if not any("scan_hops" in f for f in check_regression(fresh, drifted, bound)):
        print("smoke: gate missed a simulated-outcome drift", file=sys.stderr)
        return 1

    slow = jcopy(committed)
    for row in slow["current"]["restore"].values():
        row["wall_s"] = row["wall_s"] / 1000.0 + 1e-6
    if not any("events/s" in f for f in check_regression(fresh, slow, bound)):
        print("smoke: gate missed a throughput collapse", file=sys.stderr)
        return 1

    synth = jcopy(fresh)
    synth["restore"]["off-d5"]["scan_hops"] = (
        synth["restore"]["off-d2"]["scan_hops"])
    if not any("not monotone" in f for f in check_acceptance(synth, bound)):
        print("smoke: gate missed a monotonicity violation", file=sys.stderr)
        return 1

    synth = jcopy(fresh)
    synth["restore"]["flatten-d5"]["scan_hops"] = 99
    if not any("exceed the" in f for f in check_acceptance(synth, bound)):
        print("smoke: gate missed a compaction-bound violation", file=sys.stderr)
        return 1

    synth = jcopy(fresh)
    synth["restore"]["off-d2"]["conserved"] = 0.0
    if not any("conserve" in f for f in check_acceptance(synth, bound)):
        print("smoke: gate missed a conservation violation", file=sys.stderr)
        return 1

    synth = jcopy(fresh)
    synth["determinism"]["identical"] = False
    if not any("bit-identical" in f for f in check_acceptance(synth, bound)):
        print("smoke: gate missed a determinism violation", file=sys.stderr)
        return 1

    print("lineage smoke passed (gate logic verified)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite BENCH_lineage.json's 'current' section with this run",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny-depth run on the lineage-smoke profile + gate self-test",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return run_smoke()

    fresh = measure()

    if args.update:
        committed = load_committed() if BENCH_PATH.exists() else {}
        committed.setdefault("profile", "lineage")
        committed.setdefault("seed", SEED)
        committed["depth_bound"] = DEPTH_BOUND
        committed["depths"] = list(DEPTHS)
        committed["current"] = fresh
        failures = check_acceptance(fresh)
        if failures:
            for f in failures:
                print(f"LINEAGE ACCEPTANCE: {f}", file=sys.stderr)
            return 1
        write_tracked(BENCH_PATH, committed)
        print(f"updated {BENCH_PATH}")
        return 0

    if not BENCH_PATH.exists() or not load_committed().get("current"):
        print(f"no committed numbers at {BENCH_PATH}; run with --update first")
        return 1
    failures = check_regression(fresh, load_committed())
    if failures:
        for f in failures:
            print(f"LINEAGE REGRESSION: {f}", file=sys.stderr)
        return 1
    print("lineage gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
