# Convenience targets for the reproduction.

.PHONY: install test bench bench-quick perf examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:           ## full paper-profile figure reproduction (~25 min)
	pytest benchmarks/ --benchmark-only

bench-quick:     ## scaled-down smoke of every figure (~40 s)
	REPRO_BENCH_PROFILE=quick pytest benchmarks/ --benchmark-only

perf:            ## simulator throughput gate vs BENCH_simkit.json (~15 s)
	PYTHONPATH=src python benchmarks/bench_simperf.py

examples:
	python examples/quickstart.py
	python examples/multideployment.py
	python examples/debug_cloning.py
	python examples/montecarlo_suspend_resume.py

clean:
	rm -rf .pytest_cache benchmarks/results src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
