"""Multisnapshotting runners (§5.3, Fig. 5).

Concurrently persist the local modifications of N running VM instances:

* ``mirror`` — broadcast ``CLONE`` to every mirroring module, then
  ``COMMIT`` (exactly the paper's global-snapshot protocol, §3.2);
  subsequent campaigns only need the ``COMMIT``;
* ``qcow2-pvfs`` — concurrently copy each node's qcow2 file back to PVFS.

Both campaigns are synchronized to start at the same simulated instant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..vmsim.backends import SnapshotResult
from .cluster import Cloud


@dataclass
class SnapshotCampaignResult:
    """Outcome of snapshotting a whole deployment (one point of Fig. 5)."""

    approach: str
    n_instances: int
    per_instance: List[SnapshotResult] = field(default_factory=list)
    #: wall time until the slowest instance's snapshot finished (Fig. 5b)
    completion_time: float = 0.0
    #: bytes physically persisted across all instances
    total_bytes_moved: int = 0

    @property
    def avg_time(self) -> float:
        """Average per-instance snapshot duration (Fig. 5a)."""
        if not self.per_instance:
            return 0.0
        return sum(s.duration for s in self.per_instance) / len(self.per_instance)


def snapshot_all(cloud: Cloud, vms: Sequence, approach: str) -> SnapshotCampaignResult:
    """Snapshot every VM's backend concurrently; returns campaign metrics."""
    result = SnapshotCampaignResult(approach=approach, n_instances=len(vms))
    t_start = cloud.env.now
    tracer = cloud.fabric.tracer

    def one(vm):
        if tracer.enabled:
            with tracer.start(f"snapshot:{vm.name}", "snapshot", host=vm.host.name):
                snap = yield from vm.backend.snapshot()
        else:
            snap = yield from vm.backend.snapshot()
        return snap

    def master():
        root = None
        if tracer.enabled:
            root = tracer.start(
                f"snapshot-campaign:{approach}", "snapshot", n_instances=len(vms)
            )
        procs = [
            cloud.env.process(one(vm), name=f"snap-{vm.name}") for vm in vms
        ]
        snaps = yield cloud.env.all_of(procs)
        result.per_instance = list(snaps)
        if root is not None:
            root.finish()

    cloud.run(cloud.env.process(master(), name=f"snapshot-{approach}"))
    result.completion_time = cloud.env.now - t_start
    result.total_bytes_moved = sum(s.bytes_moved for s in result.per_instance)
    return result
