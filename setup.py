"""Shim so `pip install -e .` works without the `wheel` package installed.

All real metadata lives in pyproject.toml; this file only enables the legacy
`setup.py develop` editable-install path on minimal environments.
"""

from setuptools import setup

setup()
