"""End-to-end resilience points: acceptance shape + bit-identical replay.

These run the registered ``resilience`` point kind through the same executor
(and sweep engine) the benchmarks use, at the micro profile: 6 pool nodes,
2 instances, ~9 simulated seconds of fault-free boot. Crashes at window=1.0
land squarely inside the boot phase.
"""

import pytest

from repro.runner import PointSpec, SweepRunner
from repro.runner.points import execute_point


def rspec(replication, crashes, **extra):
    params = {
        "replication": replication,
        "crashes": crashes,
        "window": 1.0,
        "rpc_timeout": 1.0,
    }
    params.update(extra)
    return PointSpec(
        kind="resilience", profile="micro-test", approach="mirror",
        n=2, seed=1, params=tuple(params.items()),
    )


def identical(a, b):
    assert a.spec == b.spec
    assert a.metrics == b.metrics
    assert a.series == b.series
    assert a.counters == b.counters
    assert a.event_count == b.event_count


class TestAcceptance:
    def test_replication_survives_crashes_that_kill_unreplicated(
        self, micro_profile
    ):
        """The PR's reason to exist: replication 2 completes a deployment
        that replication 1 cannot, under the same crash plan."""
        fragile = execute_point(rspec(1, 2))
        replicated = execute_point(rspec(2, 2))
        assert fragile.metrics["survival_rate"] < 1.0
        assert fragile.metrics["boots_failed"] > 0
        assert replicated.metrics["survival_rate"] == 1.0
        assert replicated.metrics["boots_failed"] == 0
        # resilience is not free: the survivors boot slower than fault-free
        clean = execute_point(rspec(2, 0))
        assert clean.metrics["survival_rate"] == 1.0
        assert (
            replicated.metrics["completion_time"]
            > clean.metrics["completion_time"]
        )

    def test_crashes_beyond_spare_pool_rejected(self, micro_profile):
        from repro.runner import SweepError

        with pytest.raises(SweepError, match="spare"):
            SweepRunner(jobs=1, cache=None).run([rspec(1, 99)])


class TestDeterminism:
    def test_same_spec_bit_identical_across_runs(self, micro_profile):
        identical(execute_point(rspec(2, 2)), execute_point(rspec(2, 2)))

    def test_random_plan_bit_identical_across_runs(self, micro_profile):
        spec = rspec(2, 2, plan="random", faults_seed=5)
        identical(execute_point(spec), execute_point(spec))

    def test_parallel_bit_identical_to_sequential(self, micro_profile):
        """jobs=4 workers replay exactly the jobs=1 timelines, faults and all."""
        specs = [rspec(1, 0), rspec(1, 2), rspec(2, 2), rspec(2, 2, mttr=2.0)]
        seq = SweepRunner(jobs=1, cache=None).run(specs)
        par = SweepRunner(jobs=4, cache=None).run(specs)
        for a, b in zip(seq, par):
            identical(a, b)

    def test_faults_leave_no_residue_in_the_worker(self, micro_profile):
        """A crashing point must not contaminate the next point's timeline
        (the RPC failure registry is process-global and fabrics can reuse
        memory addresses within one worker)."""
        crashy_then_clean = SweepRunner(jobs=1, cache=None).run(
            [rspec(1, 2), rspec(1, 0)]
        )
        clean_alone = execute_point(rspec(1, 0))
        identical(crashy_then_clean[1], clean_alone)
