"""Property tests for qcow2 file (de)serialization — snapshot copy fidelity."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.qcow2 import HEADER_BYTES, Qcow2Image
from repro.common.payload import Payload

CL = 64
IMG = 8 * CL


def pattern(n, seed=1):
    return bytes((i * 131 + seed * 17) % 256 for i in range(n))


def backing():
    data = pattern(IMG)
    payload = Payload.from_bytes(data)
    return data, lambda off, n: payload.slice(off, off + n)


write_op = st.tuples(st.integers(0, IMG - 1), st.integers(1, 2 * CL), st.integers(0, 1000))


@settings(max_examples=120)
@given(st.lists(write_op, max_size=10))
def test_serialize_deserialize_preserves_guest_view(writes):
    data, backing_read = backing()
    img = Qcow2Image(IMG, backing_read, cluster_size=CL)
    for off, ln, seed in writes:
        ln = min(ln, IMG - off)
        img.write(off, Payload.from_bytes(pattern(ln, seed)))
    file_payload, index = img.serialize()
    # the file holds exactly header + allocated clusters
    assert file_payload.size == img.file_bytes
    assert sorted(index) == index  # canonical order
    reopened = Qcow2Image.deserialize(file_payload, index, IMG, backing_read, cluster_size=CL)
    assert reopened.flatten() == img.flatten()
    assert reopened.allocated_clusters == img.allocated_clusters


@settings(max_examples=60)
@given(st.lists(write_op, max_size=8))
def test_deserialized_copy_diverges_independently(writes):
    data, backing_read = backing()
    img = Qcow2Image(IMG, backing_read, cluster_size=CL)
    for off, ln, seed in writes:
        ln = min(ln, IMG - off)
        img.write(off, Payload.from_bytes(pattern(ln, seed)))
    file_payload, index = img.serialize()
    copy = Qcow2Image.deserialize(file_payload, index, IMG, backing_read, cluster_size=CL)
    snapshot_view = img.flatten()
    copy.write(0, Payload.from_bytes(b"DIVERGED"))
    # the original is untouched by writes to the copy
    assert img.flatten() == snapshot_view


def test_empty_image_serializes_to_header_only():
    _, backing_read = backing()
    img = Qcow2Image(IMG, backing_read, cluster_size=CL)
    file_payload, index = img.serialize()
    assert file_payload.size == HEADER_BYTES
    assert index == []
