"""Exception hierarchy for the reproduction library.

All library-defined exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class SimulationError(ReproError):
    """Internal inconsistency detected by the discrete-event engine."""


class InterruptedError_(ReproError):
    """A simulated process was interrupted while waiting on an event.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`InterruptedError` (which has OS-signal semantics).
    """

    def __init__(self, cause: object = None):
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


class StorageError(ReproError):
    """Base class for storage-service failures (BlobSeer, PVFS, NFS)."""


class UnknownBlobError(StorageError):
    """Lookup of a blob id that was never created (or has been deleted)."""


class UnknownVersionError(StorageError):
    """Lookup of a snapshot version that was never published for a blob."""


class ChunkNotFoundError(StorageError):
    """A data provider was asked for a chunk key it does not hold."""


class LineageError(StorageError):
    """Invalid snapshot-lineage operation (restore, pinning, compaction).

    Raised e.g. when restoring a retired version whose chunks were already
    garbage-collected, or when a compaction skip pointer is malformed.
    """


class ProviderUnavailableError(StorageError):
    """The targeted data provider is offline (failure-injection runs)."""


class OutOfRangeError(StorageError):
    """A read or write exceeds the addressed object's size."""


class ImageFormatError(ReproError):
    """Malformed on-disk structure in the qcow2-like image format."""


class MirrorStateError(ReproError):
    """Invalid operation on the mirroring VFS (e.g. I/O on a closed handle)."""


class MiddlewareError(ReproError):
    """Cloud-middleware level orchestration failure."""
