"""Turning a :class:`~repro.faults.plan.FaultPlan` into simulated incidents.

The injector schedules one simkit process per fault event. Crash events call
:meth:`~repro.simkit.host.Host.fail` (RPC registry, NIC flow abort, process
interrupts, service crash hooks) and — for transient faults — revive the
host after its ``duration``. Degradations drive
:meth:`~repro.simkit.disk.Disk.stall` and
:meth:`~repro.simkit.network.FlowNetwork.set_nic_capacity`.

With an empty plan ``arm()`` schedules nothing at all, so an armed-but-empty
injector cannot perturb a timeline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from ..common.errors import SimulationError
from .plan import KINDS, FaultEvent, FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from ..cloud.cluster import Cloud


class FaultInjector:
    """Applies one fault plan to one cloud, exactly once."""

    def __init__(self, cloud: "Cloud", plan: FaultPlan):
        self.cloud = cloud
        self.plan = plan
        self.armed = False
        #: (simulated time, event) log of incidents actually applied
        self.applied: List[tuple] = []

    # ------------------------------------------------------------------ #
    def arm(self) -> "FaultInjector":
        """Schedule every event of the plan, relative to the current time."""
        if self.armed:
            raise SimulationError("fault injector armed twice")
        self.armed = True
        self._validate()
        env = self.cloud.env
        for event in self.plan.events:  # already sorted by (at, kind, target)
            env.process(
                self._drive(event), name=f"fault-{event.kind}-{event.target}"
            )
        return self

    def _validate(self) -> None:
        hosts = self.cloud.fabric.hosts
        windows: Dict[str, List[tuple]] = {}
        for event in self.plan.events:
            if event.target not in hosts:
                raise SimulationError(f"fault plan targets unknown host {event.target!r}")
            if event.kind in ("provider-crash", "meta-crash"):
                windows.setdefault(event.target, []).append(
                    (event.at, event.at + event.duration if event.duration > 0 else None)
                )
        for target, spans in windows.items():
            spans.sort(key=lambda s: s[0])
            for (_, end), (nxt, _) in zip(spans, spans[1:]):
                if end is None or nxt < end:
                    raise SimulationError(
                        f"overlapping crash windows for host {target!r}"
                    )

    # ------------------------------------------------------------------ #
    def _drive(self, event: FaultEvent):
        cloud = self.cloud
        env = cloud.env
        metrics = cloud.metrics
        if event.at > 0:
            yield env.timeout(event.at)
        host = cloud.fabric.hosts[event.target]
        self.applied.append((env.now, event))
        metrics.count(f"fault-{event.kind}")
        metrics.record("fault-injections", env.now, float(KINDS.index(event.kind)))
        if event.kind in ("provider-crash", "meta-crash"):
            host.fail(cause=event.kind)
            if event.duration > 0:
                yield env.timeout(event.duration)
                host.recover()
        elif event.kind == "disk-stall":
            host.disk.stall(event.factor)
            if event.duration > 0:
                yield env.timeout(event.duration)
                host.disk.unstall()
        elif event.kind == "nic-degrade":
            nic = host.nic
            up, down = nic.up_capacity, nic.down_capacity
            cloud.fabric.network.set_nic_capacity(
                nic, up / event.factor, down / event.factor
            )
            if event.duration > 0:
                yield env.timeout(event.duration)
                cloud.fabric.network.set_nic_capacity(nic, up, down)
        else:  # pragma: no cover — plan validation rejects unknown kinds
            raise SimulationError(f"unhandled fault kind {event.kind!r}")
