"""Fixtures for the lineage test suite (builders live in helpers.py)."""

import pytest

from helpers import build_chain, make


@pytest.fixture
def chain():
    """(fab, dep, hosts, seed record, chain records) with a depth-5 chain."""
    fab, dep, hosts, rec = make()
    records = build_chain(fab, dep, hosts[0], rec, depth=5)
    return fab, dep, hosts, rec, records
