"""Deterministic fault injection and the recovery mechanisms it exercises.

The paper's design principle 3 (§3.1) notes the striped repository supports
chunk replication, but the evaluation runs failure-free. This subsystem adds
the failure story:

* :mod:`repro.faults.plan` — declarative, seed-reproducible schedules of
  injectable events (provider/metadata-host crash + restart, disk stall,
  NIC degradation);
* :mod:`repro.faults.injector` — applies a plan to a built cloud on the
  simkit event loop;
* :mod:`repro.faults.policy` — the client-side :class:`RetryPolicy`
  (per-RPC timeouts, bounded exponential backoff, replica failover);
* :mod:`repro.faults.scenario` — :func:`resilient_deploy`, a
  multideployment that degrades instead of crashing when boots fail.

Everything here is strictly off-path when disabled: an empty plan schedules
no events, and with ``retry=None`` + ``replication_factor=1`` the storage
client runs its original byte-identical code.
"""

from .injector import FaultInjector
from .plan import KINDS, FaultEvent, FaultPlan
from .policy import RetryPolicy
from .scenario import ResilienceResult, resilient_deploy

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "KINDS",
    "ResilienceResult",
    "RetryPolicy",
    "resilient_deploy",
]
