"""High-level convenience API over the mirroring VFS.

Most callers (examples, the cloud middleware, tests) want a one-liner to
mount a repository snapshot on a compute node; :func:`mount` provides it.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..blobseer.service import BlobSeerDeployment
from ..calibration import FuseModel
from ..simkit.host import Host
from .vfs import MirrorHandle, MirrorVFS


def mount(
    host: Host,
    deployment: BlobSeerDeployment,
    blob_id: int,
    version: Optional[int] = None,
    path: Optional[str] = None,
    fuse: Optional[FuseModel] = None,
) -> Generator:
    """Open a repository snapshot as a mirrored local image on ``host``.

    Process-style helper::

        handle = yield from mount(node, deployment, blob_id, version)
        data = yield from handle.read(0, 4096)

    Returns a :class:`~repro.core.vfs.MirrorHandle`.
    """
    vfs = MirrorVFS(host, deployment.client(host), fuse)
    handle = yield from vfs.open(blob_id, version, path)
    return handle
