"""Tests for cluster construction options."""

import pytest

from repro.calibration import Calibration, ImageSpec
from repro.cloud import build_cloud
from repro.common.units import KiB, MiB

SMALL = Calibration(
    image=ImageSpec(size=32 * MiB, chunk_size=256 * KiB, boot_touched_bytes=4 * MiB)
)


class TestBuildCloud:
    def test_topology(self):
        cloud = build_cloud(6, seed=1, calib=SMALL)
        assert len(cloud.compute) == 6
        assert cloud.manager.name == "manager"
        assert cloud.nfs_host.name == "nfs-server"
        assert cloud.blobseer is not None
        assert cloud.pvfs is not None

    def test_services_optional(self):
        cloud = build_cloud(4, seed=1, calib=SMALL, with_blobseer=False)
        assert cloud.blobseer is None
        assert cloud.pvfs is not None
        cloud2 = build_cloud(4, seed=1, calib=SMALL, with_pvfs=False)
        assert cloud2.pvfs is None

    def test_storage_on_compute_nodes(self):
        """§3.1.1: the pool aggregates the compute nodes' local disks."""
        cloud = build_cloud(5, seed=1, calib=SMALL)
        assert set(cloud.blobseer.data_services) == {h.name for h in cloud.compute}
        assert set(cloud.pvfs.io_servers) == {h.name for h in cloud.compute}

    def test_calibration_applied(self):
        cloud = build_cloud(2, seed=1, calib=SMALL)
        tb = SMALL.testbed
        node = cloud.compute[0]
        assert node.nic.up_capacity == tb.nic_bandwidth
        assert node.disk.read_bandwidth == tb.disk_read_bandwidth
        assert node.disk.seek_time == tb.disk_seek_time
        assert cloud.fabric.connection_setup == SMALL.service.connection_setup

    def test_dedup_flag(self):
        cloud = build_cloud(2, seed=1, calib=SMALL, dedup=True)
        assert cloud.blobseer.dedup_index is not None
        cloud2 = build_cloud(2, seed=1, calib=SMALL)
        assert cloud2.blobseer.dedup_index is None

    def test_placement_strategy(self):
        cloud = build_cloud(3, seed=1, calib=SMALL, placement="least-loaded")
        assert cloud.blobseer.policy.strategy == "least-loaded"

    def test_fairness_mode(self):
        cloud = build_cloud(2, seed=1, calib=SMALL, fairness="maxmin")
        assert cloud.fabric.network.fairness == "maxmin"

    def test_write_buffer_from_calibration(self):
        cloud = build_cloud(2, seed=1, calib=SMALL)
        svc = next(iter(cloud.blobseer.data_services.values()))
        assert svc._buffer.capacity == float(SMALL.service.provider_write_buffer)
