"""Boot-phase access-trace generation (§2.3).

A boot is a sequence of CPU bursts interleaved with random small reads and
writes against the virtual disk. Every instance of the same image follows
the same hot-region order (same OS), but per-instance timing jitter plus the
randomized hypervisor initialization overhead produce the natural access
skew the paper measures (~100 ms between two instances hitting the boot
sector, §3.1.3) — which is exactly what de-synchronizes chunk accesses and
lets striping spread the load.

Reads are *correlated*: each hot region is consumed as a few consecutive
sub-reads ("a read on one region followed by a read in the neighborhood",
§3.3) — the access pattern the full-chunk prefetch strategy exploits and
per-request baselines pay for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..calibration import BootModel
from ..common.units import KiB
from .image import VmImage


@dataclass(frozen=True, slots=True)
class BootOp:
    """One step of a boot trace."""

    kind: str  # "cpu" | "read" | "write"
    offset: int = 0
    nbytes: int = 0
    duration: float = 0.0


def boot_trace(image: VmImage, model: BootModel, rng: np.random.Generator) -> List[BootOp]:
    """Generate one instance's boot trace.

    Deterministic given ``rng`` state; distinct instances pass distinct
    sub-streams and get jittered-but-similar traces.
    """
    ops: List[BootOp] = []
    regions = list(image.hot_regions)
    # Mild per-instance reordering of neighbours (service start order jitter),
    # never moving the boot sector.
    for i in range(1, len(regions) - 1):
        if rng.random() < 0.25:
            regions[i], regions[i + 1] = regions[i + 1], regions[i]

    # Split regions into correlated sub-reads.
    reads: List[BootOp] = []
    for region in regions:
        n_sub = 1 if region.size <= 64 * KiB else int(rng.integers(2, 5))
        cuts = np.linspace(0, region.size, n_sub + 1).astype(np.int64)
        for a, b in zip(cuts[:-1], cuts[1:]):
            if b > a:
                reads.append(BootOp("read", region.offset + int(a), int(b - a)))

    # Boot-time writes: small scattered config/log writes in the write area.
    writes: List[BootOp] = []
    per_write = max(512, model.write_bytes // max(1, model.write_ops))
    cursor = image.write_base
    for k in range(model.write_ops):
        if k % 6 == 5:
            cursor += int(rng.integers(1, 4)) * 128 * KiB  # jump: new file/dir
        writes.append(BootOp("write", int(cursor), int(per_write)))
        cursor += per_write

    # Interleave: reads keep their order (boot sequence); writes are spliced
    # into the second half of the boot (daemons writing state at start-up).
    ops.extend(reads[: len(reads) // 2])
    half = reads[len(reads) // 2 :]
    stride = max(1, len(half) // max(1, len(writes)))
    w = 0
    for i, op in enumerate(half):
        ops.append(op)
        if w < len(writes) and i % stride == stride - 1:
            ops.append(writes[w])
            w += 1
    ops.extend(writes[w:])

    # CPU bursts between I/Os: exponential durations normalized to the
    # model's total guest CPU time.
    n_io = len(ops)
    bursts = rng.exponential(1.0, size=n_io + 1)
    bursts = bursts / bursts.sum() * model.cpu_seconds
    out: List[BootOp] = []
    for burst, op in zip(bursts, ops):
        out.append(BootOp("cpu", duration=float(burst)))
        out.append(op)
    out.append(BootOp("cpu", duration=float(bursts[-1])))
    return out


def trace_stats(ops: List[BootOp]) -> dict:
    """Aggregate measures of a trace (used by tests and calibration)."""
    return {
        "reads": sum(1 for o in ops if o.kind == "read"),
        "writes": sum(1 for o in ops if o.kind == "write"),
        "read_bytes": sum(o.nbytes for o in ops if o.kind == "read"),
        "write_bytes": sum(o.nbytes for o in ops if o.kind == "write"),
        "cpu_seconds": sum(o.duration for o in ops if o.kind == "cpu"),
    }
