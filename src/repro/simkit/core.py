"""Discrete-event simulation engine.

A compact, deterministic, generator-based engine in the style of SimPy:
simulated activities are Python generators that ``yield`` events; the
:class:`Environment` owns a priority queue of scheduled events and advances
virtual time event by event.

Design points that matter for this reproduction:

* **Determinism.** Ties in the event queue are broken by a monotonically
  increasing sequence number, so two runs with the same seed produce the
  *identical* timeline (asserted by tests). No wall-clock anywhere.
* **Failure propagation.** An event may *fail* with an exception; waiting
  processes get the exception thrown into their generator at the yield point,
  so simulated RPC errors surface exactly like real ones.
* **Interrupts.** ``process.interrupt(cause)`` models external cancellation
  (e.g. premature VM termination during the boot phase, §2.3 of the paper).
"""

from __future__ import annotations

import gc
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

from ..common.errors import InterruptedError_, SimulationError

#: Type of the generators driving simulated processes.
ProcessGen = Generator["Event", Any, Any]

_PENDING = object()


class Event:
    """A one-shot occurrence in simulated time.

    Life cycle: *pending* -> *triggered* (scheduled with a value or an error)
    -> *processed* (callbacks ran). Processes subscribe by yielding the event.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_processed")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[[Event], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._processed = False

    # ---- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value read before trigger")
        return self._value

    # ---- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully at the current simulated time."""
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        self._value = value
        env = self.env
        env._seq += 1
        heappush(env._queue, (env.now, env._seq, self))
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception (propagates to waiters)."""
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() expects an exception instance")
        self._value = exc
        self._ok = False
        env = self.env
        env._seq += 1
        heappush(env._queue, (env.now, env._seq, self))
        return self

    def on_waiter_cancelled(self) -> None:
        """Hook: a process waiting on this event was interrupted away.

        Subclasses whose pending state lives in a queue (notably
        :class:`~repro.simkit.resources.Request`) override this to withdraw
        themselves, so no capacity is ever granted to a dead waiter.
        """


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        # Hot path (one per simulated I/O, CPU burst, or control message):
        # initialize fields inline instead of chaining to Event.__init__.
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._processed = False
        self.delay = delay
        env._seq += 1
        heappush(env._queue, (env.now + delay, env._seq, self))


class Process(Event):
    """A running activity; also an event firing when the generator returns."""

    __slots__ = ("gen", "name", "_waiting_on", "_send")

    def __init__(
        self,
        env: "Environment",
        gen: ProcessGen,
        name: str = "",
        _boot: "Event | None" = None,
    ):
        # Hot path (one per parallel fetch group / spawned activity):
        # initialize Event fields inline and build the bootstrap event
        # without going through the factory helpers.
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._processed = False
        self.gen = gen
        self._send = gen.send
        self.name = name or getattr(gen, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Observability hook: propagate the spawner's trace context into the
        # child (None unless a tracer is installed; spans never schedule
        # events, so the timeline is untouched either way).
        tracer = env._tracer
        if tracer is not None:
            tracer.on_spawn(self)
        if _boot is not None:
            # Shared bootstrap (see Environment.process_batch): resumes run
            # in callback (creation) order, which is exactly the order K
            # individual boot events would pop — they'd be heap-adjacent
            # with consecutive sequence numbers at the same timestamp.
            _boot.callbacks.append(self._resume)
            return
        # Bootstrap: resume the generator at time `now` without payload.
        boot = Event.__new__(Event)
        boot.env = env
        boot.callbacks = [self._resume]
        boot._value = None
        boot._ok = True
        boot._processed = False
        env._seq += 1
        heappush(env._queue, (env.now, env._seq, boot))

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`InterruptedError_` into the process at its yield point."""
        if self.triggered:
            return
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
            else:
                target.on_waiter_cancelled()
        self._waiting_on = None
        kick = Event(self.env)
        kick._value = InterruptedError_(cause)
        kick._ok = False
        kick.callbacks.append(self._resume_interrupt)
        self.env._schedule(kick, 0.0)

    # ---- internals ----------------------------------------------------------
    # The resume path runs once per processed event; it deliberately avoids
    # allocating a closure per resume (advance-thunk style) and instead
    # dispatches on a throw flag.
    def _resume(self, trigger: Event) -> None:
        # Hot path — runs once per processed event. The _step body is inlined
        # here (with the cached bound `gen.send`) so a resume costs a single
        # Python-level call; the rare throw path delegates to _step.
        if not trigger._ok:
            self._step(trigger._value, True)
            return
        self._waiting_on = None
        env = self.env
        env._active_process = self
        try:
            target = self._send(trigger._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Exception as exc:
            self.fail(exc)
            return
        finally:
            env._active_process = None
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        if target._processed:
            # Already-fired event: resume immediately (still via the queue so
            # ordering stays deterministic).
            kick = Event(env)
            kick._value = target._value
            kick._ok = target._ok
            kick.callbacks.append(self._resume)
            env._schedule(kick, 0.0)
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target

    def _resume_interrupt(self, trigger: Event) -> None:
        if self.triggered:
            return  # finished before the interrupt was delivered
        self._step(trigger._value, True)

    def _step(self, value: Any, throw: bool) -> None:
        self._waiting_on = None
        env = self.env
        env._active_process = self
        try:
            if throw:
                target = self.gen.throw(value)
            else:
                target = self._send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Exception as exc:
            self.fail(exc)
            return
        finally:
            env._active_process = None
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        if target._processed:
            kick = Event(env)
            kick._value = target._value
            kick._ok = target._ok
            kick.callbacks.append(self._resume)
            env._schedule(kick, 0.0)
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target


class Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events: List[Event] = list(events)
        self._n_fired = 0
        if not self.events:
            self.succeed([])
            return
        for ev in self.events:
            if ev._processed:
                self._on_fire(ev)
            else:
                assert ev.callbacks is not None
                ev.callbacks.append(self._on_fire)

    def _on_fire(self, ev: Event) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Fires when every constituent event has fired; value = list of values.

    Fails fast if any constituent fails.
    """

    __slots__ = ()

    def _on_fire(self, ev: Event) -> None:
        if self._value is not _PENDING:
            return
        if not ev._ok:
            self.fail(ev._value)
            return
        self._n_fired += 1
        if self._n_fired == len(self.events):
            self.succeed([e._value for e in self.events])


class AnyOf(Condition):
    """Fires when the first constituent event fires; value = (event, value)."""

    __slots__ = ()

    def _on_fire(self, ev: Event) -> None:
        if self._value is not _PENDING:
            return
        if not ev._ok:
            self.fail(ev._value)
            return
        self.succeed((ev, ev._value))


class Environment:
    """Owner of simulated time and the event queue."""

    def __init__(self):
        self.now: float = 0.0
        self._queue: List[tuple[float, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self.event_count = 0  # processed events, for perf introspection
        #: installed :class:`repro.obs.span.Tracer`, or None (the default);
        #: checked once per Process creation for context propagation
        self._tracer = None

    # ---- factory helpers ------------------------------------------------- #
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        return Process(self, gen, name)

    def process_batch(self, gens: Iterable[ProcessGen], name: str = "") -> List[Process]:
        """Spawn several processes sharing ONE bootstrap event.

        Timeline-identical to spawning them one by one (individual boot
        events would sit adjacently in the heap and pop consecutively), but
        a K-way fan-out costs one scheduled event instead of K. This is the
        fast path under every parallel RPC scatter in the storage client.
        """
        boot = Event.__new__(Event)
        boot.env = self
        boot.callbacks = []
        boot._value = None
        boot._ok = True
        boot._processed = False
        procs = [Process(self, gen, name, _boot=boot) for gen in gens]
        if procs:
            self._seq += 1
            heappush(self._queue, (self.now, self._seq, boot))
        return procs

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # ---- scheduling ------------------------------------------------------- #
    def _schedule(self, event: Event, delay: float) -> None:
        self._seq += 1
        heappush(self._queue, (self.now + delay, self._seq, event))

    def schedule_at(self, event: Event, when: float, value: Any = None) -> Event:
        """Trigger ``event`` with ``value`` at absolute simulated time ``when``.

        Fast path for hot callers (the flow network's completion sentinel and
        control-message delivery): it avoids allocating an intermediate
        :class:`Timeout` plus a relay callback, and the event fires at exactly
        the float ``when`` rather than ``now + (when - now)``.
        """
        if event._value is not _PENDING:
            raise SimulationError("event already triggered")
        if when < self.now:
            raise SimulationError(f"schedule_at({when}) is in the past (now={self.now})")
        event._value = value
        self._seq += 1
        heappush(self._queue, (when, self._seq, event))
        return event

    def step(self) -> None:
        """Process the next scheduled event (advances ``now``)."""
        queue = self._queue
        if not queue:
            raise SimulationError(
                "step() on an empty event queue: the simulation has drained "
                "(or deadlocked) and no further event can be processed"
            )
        when, _, event = queue[0]
        # Validate *before* popping so a failure leaves the queue and `now`
        # consistent (the event is not silently lost).
        if when < self.now - 1e-12:
            raise SimulationError("time went backwards")
        heappop(queue)
        self.now = when
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        self.event_count += 1
        if callbacks:
            for cb in callbacks:
                cb(event)

    def run(self, until: "Event | float | None" = None) -> Any:
        """Run until an event fires, a time is reached, or the queue drains.

        * ``until`` is an :class:`Event`: run until it is processed and
          return its value (re-raising its failure).
        * ``until`` is a number: run until simulated time reaches it.
        * ``until`` is None: run until no events remain.
        """
        # The loops below inline step()'s body: one Python-level call per
        # processed event is measurable at the event rates the paper sweeps
        # drive (hundreds of thousands of events per run).
        # (The "time went backwards" sanity check lives in step(); the
        # schedulers already reject past times, so the inlined loops skip it.)
        #
        # Cyclic GC is paused for the duration of the loop: the engine
        # allocates hundreds of thousands of short-lived events per run and
        # collector passes cost a measurable slice of wall time, while the
        # simulator creates no mid-run garbage cycles it needs collected
        # (events free by refcount; process<->generator cycles are reclaimed
        # once the run returns and GC is re-enabled).
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            return self._run_inner(until)
        finally:
            if gc_was_enabled:
                gc.enable()

    def _run_inner(self, until: "Event | float | None") -> Any:
        queue = self._queue
        pop = heappop  # local binding: one global lookup saved per event
        if isinstance(until, Event):
            stop = until
            count = 0
            try:
                while not stop._processed:
                    if not queue:
                        raise SimulationError(
                            f"deadlock: event queue empty before {stop!r} fired"
                        )
                    when, _, event = pop(queue)
                    self.now = when
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    count += 1
                    if callbacks:
                        for cb in callbacks:
                            cb(event)
            finally:
                self.event_count += count
            if not stop.ok:
                raise stop._value
            return stop._value
        if until is None:
            count = 0
            try:
                while queue:
                    when, _, event = pop(queue)
                    self.now = when
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    count += 1
                    if callbacks:
                        for cb in callbacks:
                            cb(event)
            finally:
                self.event_count += count
            return None
        horizon = float(until)
        # Exception-safe horizon handling: if a callback raises mid-loop,
        # `now` still reflects the last event actually processed (step()
        # validates before popping, so no event is lost either); only on a
        # clean drain is the clock advanced to the horizon.
        queue = self._queue
        while queue and queue[0][0] <= horizon:
            self.step()
        if self.now < horizon:
            self.now = horizon
        return None
