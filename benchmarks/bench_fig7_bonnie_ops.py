"""Figure 7 — Bonnie++ operations per second (paper §5.4).

Same run as Figure 6, metadata-class metrics: random seeks, file creation,
file deletion. The mirror pays FUSE's extra user/kernel context switches per
operation, so its ops/s are lower — the paper's acknowledged trade-off
("since such operations are relatively rare and execute very fast, the
performance penalty in real life is not an issue").
"""

import pytest

from repro.analysis import check_shape, render_bars

from bench_fig6_bonnie_throughput import _run_bonnie
from common import emit


@pytest.mark.parametrize("kind", ["local", "mirror"])
def test_fig7_run(benchmark, sweep_cache, kind):
    if ("bonnie", kind) in sweep_cache:  # reuse the Fig. 6 run when present
        point = sweep_cache[("bonnie", kind)]
        benchmark.pedantic(lambda: point, rounds=1, iterations=1)
    else:
        # a fig7-only session still shares the simulation via the result cache
        point = benchmark.pedantic(lambda: _run_bonnie(kind), rounds=1, iterations=1)
        sweep_cache[("bonnie", kind)] = point
    assert point.metrics["rnd_seek_ops"] > 0


def test_fig7_report(benchmark, sweep_cache):
    local = sweep_cache[("bonnie", "local")].metrics
    ours = sweep_cache[("bonnie", "mirror")].metrics
    groups = {
        "local": [local["rnd_seek_ops"], local["create_ops"], local["delete_ops"]],
        "our-approach": [ours["rnd_seek_ops"], ours["create_ops"], ours["delete_ops"]],
    }
    table = benchmark.pedantic(
        lambda: render_bars(
            "fig7: Bonnie++ operations per second",
            ["RndSeek", "CreatF", "DelF"],
            groups,
            fmt="{:12.0f}",
        ),
        rounds=1,
        iterations=1,
    )
    checks = [
        check_shape(
            "ours lower in every ops/s metric (FUSE context switches)",
            ours["rnd_seek_ops"] < local["rnd_seek_ops"]
            and ours["create_ops"] < local["create_ops"]
            and ours["delete_ops"] < local["delete_ops"],
        ),
        check_shape(
            "gap is a small constant factor (2-4x), not orders of magnitude",
            all(
                1.5 < l / o < 5.0
                for l, o in [
                    (local["rnd_seek_ops"], ours["rnd_seek_ops"]),
                    (local["create_ops"], ours["create_ops"]),
                    (local["delete_ops"], ours["delete_ops"]),
                ]
            ),
        ),
    ]
    emit("fig7", table + "\n" + "\n".join(checks),
         {"labels": ["RndSeek", "CreatF", "DelF"], "groups": groups,
          "checks": checks})
    assert all(c.startswith("[PASS]") for c in checks), "\n".join(checks)
