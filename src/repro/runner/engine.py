"""The sweep-execution engine: cache, fan out, stream back in order.

:class:`SweepRunner` takes a list of :class:`~repro.runner.spec.PointSpec`
and produces one :class:`~repro.runner.spec.PointResult` per spec, **in the
input order** regardless of which worker finishes first. Each point is an
independent deterministic simulation (fresh cloud, fixed seed), so the
runner adds parallelism and memoization without perturbing a single
simulated timeline: sequential and parallel runs of the same sweep are
bit-identical.

Execution strategy per point:

1. result-cache lookup by content key (unless disabled or ``refresh``),
2. misses fan out over a ``multiprocessing`` pool (``fork`` start method);
   with ``jobs=1``, a single pending point, or on platforms without
   ``fork`` the runner degrades to plain in-process execution,
3. a point that raises is surfaced as :class:`SweepError` naming the
   failing spec (the worker catches and ships the traceback — the pool
   never hangs on a crashed point).
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from .cache import ResultCache, point_key
from .points import execute_point
from .spec import PointResult, PointSpec


class SweepError(RuntimeError):
    """A sweep point failed; carries the failing spec and the worker trace."""

    def __init__(self, spec: PointSpec, message: str, trace: str = ""):
        self.spec = spec
        self.trace = trace
        super().__init__(f"sweep point [{spec.label()}] failed: {message}")


@dataclass
class SweepStats:
    """Bookkeeping of one :meth:`SweepRunner.run` call."""

    points: int = 0
    executed: int = 0
    cached: int = 0
    wall_s: float = 0.0

    @property
    def points_per_s(self) -> float:
        return self.points / self.wall_s if self.wall_s > 0 else 0.0


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _execute_indexed(item):
    """Pool worker: never raises — errors travel back as values."""
    index, spec = item
    try:
        return index, ("ok", execute_point(spec))
    except Exception as exc:  # noqa: BLE001 — surfaced as SweepError by the parent
        return index, (
            "err", spec, f"{type(exc).__name__}: {exc}", traceback.format_exc()
        )


class SweepRunner:
    """Execute sweeps of independent measurement points.

    :param jobs: worker processes for cache misses (default: all cores);
        ``1`` forces in-process sequential execution.
    :param cache: a :class:`ResultCache`, or ``None`` to disable caching.
    :param refresh: ignore cached entries and recompute (results are still
        stored, refreshing the cache content).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        refresh: bool = False,
    ):
        self.jobs = int(jobs) if jobs else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.cache = cache
        self.refresh = refresh
        self.stats = SweepStats()

    # ------------------------------------------------------------------ #
    def run(self, specs: Sequence[PointSpec]) -> List[PointResult]:
        """All results, ordered like ``specs``."""
        return list(self.run_iter(specs))

    def run_iter(self, specs: Sequence[PointSpec]) -> Iterator[PointResult]:
        """Stream results in deterministic input order as they become ready."""
        specs = list(specs)
        t0 = time.perf_counter()
        self.stats = SweepStats(points=len(specs))
        results: dict = {}
        pending: List[tuple] = []  # (index, spec, key)

        for index, spec in enumerate(specs):
            key = point_key(spec) if self.cache is not None else None
            hit = None
            if self.cache is not None and not self.refresh:
                hit = self.cache.lookup(spec, key)
            if hit is not None:
                self.stats.cached += 1
                results[index] = hit
            else:
                pending.append((index, spec, key))

        emit_from = 0

        def drain():
            nonlocal emit_from
            while emit_from in results:
                yield results.pop(emit_from)
                emit_from += 1

        for index, outcome in self._execute(pending):
            if outcome[0] == "err":
                _, spec, message, trace = outcome
                raise SweepError(spec, message, trace)
            result = outcome[1]
            self.stats.executed += 1
            if self.cache is not None:
                key = next(k for i, s, k in pending if i == index)
                self.cache.store(result, key)
            results[index] = result
            self.stats.wall_s = time.perf_counter() - t0
            yield from drain()

        self.stats.wall_s = time.perf_counter() - t0
        yield from drain()
        if results:  # pragma: no cover — defensive: a worker vanished
            missing = sorted(results)
            raise SweepError(specs[missing[0]], "no result returned")

    # ------------------------------------------------------------------ #
    def _execute(self, pending: List[tuple]) -> Iterable[tuple]:
        """Yield ``(index, outcome)`` for every pending point, any order."""
        items = [(index, spec) for index, spec, _key in pending]
        workers = min(self.jobs, len(items))
        if workers <= 1 or not _fork_available():
            for item in items:
                yield _execute_indexed(item)
            return
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=workers) as pool:
            for index, outcome in pool.imap_unordered(_execute_indexed, items):
                yield index, outcome
