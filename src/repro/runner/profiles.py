"""Benchmark profiles: named parameter sets for the paper's sweeps.

A :class:`BenchProfile` pins everything a measurement point needs beyond the
calibration constants: pool size, the instance counts the figure sweeps,
image geometry, and the workload knobs of the §5.4/§5.5 experiments. Two
profiles ship by default:

* ``paper`` — the full §5.1 setup: 120-node pool, 2 GiB image, 256 KiB
  chunks, up to 110 concurrent instances;
* ``quick`` — a scaled-down profile for smoke-testing the harness
  (``REPRO_BENCH_PROFILE=quick``).

Profiles are resolved *by name* so a :class:`~repro.runner.spec.PointSpec`
stays a small picklable value that worker processes can reconstruct.
Ad-hoc profiles (ablations, tests) register themselves with
:func:`register_profile` before the sweep fans out.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..calibration import DEFAULT, Calibration, ImageSpec
from ..common.units import KiB, MB, MiB, MILLISECONDS

#: environment variable selecting the benchmark profile
PROFILE_ENV = "REPRO_BENCH_PROFILE"


@dataclass(frozen=True)
class BenchProfile:
    name: str
    pool_nodes: int
    instance_counts: tuple
    image_size: int
    chunk_size: int
    touched_bytes: int
    n_regions: int
    diff_bytes: int
    mc_workers: int
    mc_total_compute: float
    bonnie_working_set: int
    #: restrict the BlobSeer data/metadata providers to the first K pool
    #: nodes (None = every compute node hosts a provider, the §3.1.1
    #: co-located default). A concentrated repository is what makes the
    #: paper's fan-in contention regime reachable at large n.
    data_nodes: Optional[int] = None
    meta_nodes: Optional[int] = None
    #: profile-level calibration overrides, same ``("section.field", value)``
    #: shape as spec overrides; spec overrides apply on top and win.
    calib_overrides: tuple = ()


PAPER = BenchProfile(
    name="paper",
    pool_nodes=120,
    instance_counts=(1, 20, 40, 60, 80, 110),
    image_size=DEFAULT.image.size,          # 2 GiB
    chunk_size=DEFAULT.image.chunk_size,    # 256 KiB
    touched_bytes=DEFAULT.image.boot_touched_bytes,  # ~109 MiB
    n_regions=64,
    diff_bytes=DEFAULT.snapshot.diff_bytes,  # 15 MiB
    mc_workers=100,
    mc_total_compute=1000.0,
    bonnie_working_set=800 * MiB,
)

QUICK = BenchProfile(
    name="quick",
    pool_nodes=24,
    instance_counts=(1, 8, 16, 24),
    image_size=512 * MiB,
    chunk_size=256 * KiB,
    touched_bytes=32 * MiB,
    n_regions=32,
    diff_bytes=6 * MiB,
    mc_workers=16,
    mc_total_compute=120.0,
    bonnie_working_set=128 * MiB,
)

P2P = BenchProfile(
    name="p2p",
    pool_nodes=80,
    instance_counts=(16, 32, 64),
    image_size=256 * MiB,
    chunk_size=256 * KiB,
    touched_bytes=24 * MiB,
    n_regions=32,
    diff_bytes=6 * MiB,
    mc_workers=16,
    mc_total_compute=120.0,
    bonnie_working_set=128 * MiB,
)

#: The paper-scale fabric profile for the tracked scale benchmark
#: (``benchmarks/bench_scale.py``). The repository is *concentrated* on the
#: first 8 pool nodes (dedicated repository nodes, as in López García &
#: Fernández del Castillo) and the providers get NVMe-class disks, so the
#: GigE fabric — not the disks — is the bottleneck: hundreds of concurrent
#: flows fan in on 8 uplinks, the contention regime the paper's fig4/fig5
#: campaigns study at n in the hundreds.
SCALE = BenchProfile(
    name="scale",
    pool_nodes=520,
    instance_counts=(64, 256, 512),
    image_size=32 * MiB,
    chunk_size=256 * KiB,
    touched_bytes=8 * MiB,
    n_regions=32,
    diff_bytes=2 * MiB,
    mc_workers=16,
    mc_total_compute=120.0,
    bonnie_working_set=128 * MiB,
    data_nodes=8,
    meta_nodes=8,
    calib_overrides=(
        ("testbed.disk_read_bandwidth", 1000 * MB),
        ("testbed.disk_write_bandwidth", 1000 * MB),
        ("testbed.disk_seek_time", 0.05 * MILLISECONDS),
    ),
)

#: Tiny sibling of ``scale`` for CI smoke runs (``make scale-smoke``): the
#: same concentrated-repository shape at an n that simulates in well under a
#: second, so the gate logic is exercised on every push.
SCALE_SMOKE = BenchProfile(
    name="scale-smoke",
    pool_nodes=20,
    instance_counts=(4, 12),
    image_size=8 * MiB,
    chunk_size=256 * KiB,
    touched_bytes=2 * MiB,
    n_regions=16,
    diff_bytes=1 * MiB,
    mc_workers=4,
    mc_total_compute=30.0,
    bonnie_working_set=32 * MiB,
    data_nodes=4,
    meta_nodes=4,
    calib_overrides=SCALE.calib_overrides,
)

#: Long-horizon churn runs (``benchmarks/bench_churn.py``): thousands of
#: small instances arriving, snapshotting and tearing down over a shared
#: pool. Small images keep a 10k-request horizon tractable while the
#: concentrated 8-node repository preserves the paper's fan-in regime; for
#: a churn point ``n`` counts *deploy requests*, not concurrent instances.
CHURN = BenchProfile(
    name="churn",
    pool_nodes=48,
    instance_counts=(400, 1500),
    image_size=32 * MiB,
    chunk_size=256 * KiB,
    touched_bytes=16 * MiB,
    n_regions=16,
    diff_bytes=2 * MiB,
    mc_workers=8,
    mc_total_compute=60.0,
    bonnie_working_set=64 * MiB,
    data_nodes=8,
    meta_nodes=8,
    #: NVMe repository disks (as in ``scale``) but a *rate-limited* tenant
    #: NIC and a stripped-down appliance guest: churn studies placement, so
    #: boots must be dominated by the image-fetch I/O placement actually
    #: influences. Commodity clouds cap per-instance bandwidth well below
    #: line rate (~400 Mbit here), which also puts the 8 repository uplinks
    #: in the paper's fan-in-contention regime during arrival bursts.
    calib_overrides=SCALE.calib_overrides + (
        ("testbed.nic_bandwidth", 50 * MB),
        ("boot.cpu_seconds", 0.5),
        ("boot.hypervisor_init_min", 0.1),
        ("boot.hypervisor_init_max", 0.4),
    ),
)

#: Tiny sibling of ``churn`` for CI smoke runs and the determinism tests.
CHURN_SMOKE = BenchProfile(
    name="churn-smoke",
    pool_nodes=10,
    instance_counts=(30, 60),
    image_size=8 * MiB,
    chunk_size=256 * KiB,
    touched_bytes=2 * MiB,
    n_regions=8,
    diff_bytes=512 * KiB,
    mc_workers=4,
    mc_total_compute=30.0,
    bonnie_working_set=32 * MiB,
    data_nodes=4,
    meta_nodes=4,
    calib_overrides=SCALE.calib_overrides,
)

#: Snapshot-lineage runs (``benchmarks/bench_lineage.py``): one VM commits a
#: chain of snapshots; for a lineage point ``n`` is the *chain depth* (COMMIT
#: count), not an instance count. Small images and the concentrated NVMe
#: repository keep deep chains fast to build — the measured quantity is the
#: restore *scan*, whose cost is version-manager round-trips, not data I/O.
LINEAGE = BenchProfile(
    name="lineage",
    pool_nodes=12,
    instance_counts=(2, 4, 8, 16, 32),
    image_size=32 * MiB,
    chunk_size=256 * KiB,
    touched_bytes=8 * MiB,
    n_regions=16,
    diff_bytes=1 * MiB,
    mc_workers=4,
    mc_total_compute=30.0,
    bonnie_working_set=32 * MiB,
    data_nodes=4,
    meta_nodes=4,
    calib_overrides=SCALE.calib_overrides,
)

#: Tiny sibling of ``lineage`` for CI smoke runs and the determinism tests.
LINEAGE_SMOKE = BenchProfile(
    name="lineage-smoke",
    pool_nodes=8,
    instance_counts=(2, 5),
    image_size=8 * MiB,
    chunk_size=256 * KiB,
    touched_bytes=2 * MiB,
    n_regions=8,
    diff_bytes=256 * KiB,
    mc_workers=4,
    mc_total_compute=30.0,
    bonnie_working_set=32 * MiB,
    data_nodes=4,
    meta_nodes=4,
    calib_overrides=SCALE.calib_overrides,
)

#: Hierarchical-fabric runs (``benchmarks/bench_topo.py``): the co-located
#: repository of §3.1.1 (every compute node is a provider) spread over
#: racks with oversubscribed uplinks. NVMe-class disks keep the *network*
#: the bottleneck, so the cross-rack byte volume — the quantity the
#: locality-aware policies attack — is what sets deployment time. For a
#: topo point ``n`` is the concurrent-instance count, as in ``scale``.
TOPO = BenchProfile(
    name="topo",
    pool_nodes=264,
    instance_counts=(64, 256),
    image_size=32 * MiB,
    chunk_size=256 * KiB,
    touched_bytes=8 * MiB,
    n_regions=32,
    diff_bytes=2 * MiB,
    mc_workers=16,
    mc_total_compute=120.0,
    bonnie_working_set=128 * MiB,
    meta_nodes=8,
    calib_overrides=SCALE.calib_overrides,
)

#: Tiny sibling of ``topo`` for CI smoke runs and the determinism tests.
TOPO_SMOKE = BenchProfile(
    name="topo-smoke",
    pool_nodes=16,
    instance_counts=(8, 12),
    image_size=8 * MiB,
    chunk_size=256 * KiB,
    touched_bytes=2 * MiB,
    n_regions=16,
    diff_bytes=512 * KiB,
    mc_workers=4,
    mc_total_compute=30.0,
    bonnie_working_set=32 * MiB,
    meta_nodes=4,
    calib_overrides=SCALE.calib_overrides,
)

_REGISTRY: Dict[str, BenchProfile] = {
    PAPER.name: PAPER, QUICK.name: QUICK, P2P.name: P2P,
    SCALE.name: SCALE, SCALE_SMOKE.name: SCALE_SMOKE,
    CHURN.name: CHURN, CHURN_SMOKE.name: CHURN_SMOKE,
    LINEAGE.name: LINEAGE, LINEAGE_SMOKE.name: LINEAGE_SMOKE,
    TOPO.name: TOPO, TOPO_SMOKE.name: TOPO_SMOKE,
}


def register_profile(profile: BenchProfile) -> BenchProfile:
    """Register (or replace) a profile so specs can resolve it by name."""
    _REGISTRY[profile.name] = profile
    return profile


def known_profiles() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def resolve_profile(name: str) -> BenchProfile:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark profile {name!r}; known profiles: "
            f"{', '.join(known_profiles())}"
        ) from None


def active_profile() -> BenchProfile:
    """The profile selected by ``REPRO_BENCH_PROFILE`` (default ``paper``).

    An unrecognized value raises instead of silently falling back to the
    full paper profile (a typo like ``qiuck`` used to cost minutes of
    unintended wall time).
    """
    value = os.environ.get(PROFILE_ENV)
    if value is None or value == "":
        return PAPER
    if value not in _REGISTRY:
        raise ValueError(
            f"unrecognized {PROFILE_ENV}={value!r}; known profiles: "
            f"{', '.join(known_profiles())}"
        )
    return _REGISTRY[value]


def apply_overrides(calib: Calibration, overrides: Iterable[tuple]) -> Calibration:
    """Return ``calib`` with ``("section.field", value)`` overrides applied."""
    for path, value in overrides:
        try:
            section_name, field_name = path.split(".", 1)
            section = getattr(calib, section_name)
            section = dataclasses.replace(section, **{field_name: value})
        except (ValueError, AttributeError, TypeError):
            raise ValueError(f"bad calibration override {path!r}") from None
        calib = dataclasses.replace(calib, **{section_name: section})
    return calib


def profile_calibration(
    profile: BenchProfile, overrides: Iterable[tuple] = ()
) -> Calibration:
    """The calibration a profile's points run under (plus spec overrides)."""
    calib = Calibration(
        image=ImageSpec(
            size=profile.image_size,
            chunk_size=profile.chunk_size,
            boot_touched_bytes=profile.touched_bytes,
        )
    )
    calib = apply_overrides(calib, profile.calib_overrides)
    return apply_overrides(calib, overrides)
