"""Deepest-cover attribution, critical path, and coverage on synthetic trees."""

import pytest

from repro.obs.analyze import (
    attribute,
    boot_spans,
    category_breakdown,
    coverage,
    critical_path,
    render_breakdown_table,
    render_critical_path,
    snapshot_spans,
)
from repro.obs.span import Tracer


class StubEnv:
    def __init__(self):
        self.now = 0.0
        self._active_process = None


def build(spec):
    """Build spans from (name, category, t0, t1, parent_name) tuples."""
    env = StubEnv()
    tr = Tracer(env)
    by_name = {}
    for name, cat, t0, t1, parent in spec:
        env.now = t0
        span = tr.start(name, cat, parent=by_name.get(parent))
        env.now = t1
        span.finish()
        by_name[name] = span
    return tr, by_name


class TestAttribute:
    def test_partition_is_exact(self):
        tr, s = build(
            [
                ("root", "vm", 0.0, 10.0, None),
                ("a", "cpu", 1.0, 4.0, "root"),
                ("b", "net", 6.0, 9.0, "root"),
            ]
        )
        segs = attribute(s["root"], tr.spans)
        assert segs[0].t0 == 0.0 and segs[-1].t1 == 10.0
        # contiguous: each segment starts where the previous ended
        for prev, nxt in zip(segs, segs[1:]):
            assert prev.t1 == nxt.t0
        assert sum(g.duration for g in segs) == pytest.approx(10.0)
        named = [(g.span.name, g.t0, g.t1) for g in segs]
        assert named == [
            ("root", 0.0, 1.0),
            ("a", 1.0, 4.0),
            ("root", 4.0, 6.0),
            ("b", 6.0, 9.0),
            ("root", 9.0, 10.0),
        ]

    def test_deepest_span_wins(self):
        tr, s = build(
            [
                ("root", "vm", 0.0, 10.0, None),
                ("outer", "vfs", 0.0, 10.0, "root"),
                ("inner", "net", 3.0, 7.0, "outer"),
            ]
        )
        segs = attribute(s["root"], tr.spans)
        assert [(g.span.name, g.t0, g.t1) for g in segs] == [
            ("outer", 0.0, 3.0),
            ("inner", 3.0, 7.0),
            ("outer", 7.0, 10.0),
        ]

    def test_equal_depth_tie_goes_to_later_start(self):
        tr, s = build(
            [
                ("root", "vm", 0.0, 10.0, None),
                ("early", "cpu", 0.0, 8.0, "root"),
                ("late", "net", 4.0, 10.0, "root"),
            ]
        )
        segs = attribute(s["root"], tr.spans)
        assert [(g.span.name, g.t0, g.t1) for g in segs] == [
            ("early", 0.0, 4.0),
            ("late", 4.0, 10.0),
        ]

    def test_child_clipped_to_root_interval(self):
        tr, s = build(
            [
                ("root", "vm", 2.0, 8.0, None),
                ("wide", "net", 0.0, 10.0, "root"),
            ]
        )
        segs = attribute(s["root"], tr.spans)
        assert [(g.span.name, g.t0, g.t1) for g in segs] == [("wide", 2.0, 8.0)]

    def test_zero_length_root_yields_nothing(self):
        tr, s = build([("root", "vm", 5.0, 5.0, None)])
        assert attribute(s["root"], tr.spans) == []

    def test_foreign_trees_are_ignored(self):
        tr, s = build(
            [
                ("root", "vm", 0.0, 4.0, None),
                ("other-root", "vm", 0.0, 4.0, None),
                ("other-child", "net", 1.0, 3.0, "other-root"),
            ]
        )
        segs = attribute(s["root"], tr.spans)
        assert all(g.span.name == "root" for g in segs)


class TestBreakdownAndCoverage:
    def test_breakdown_sums_to_root_duration(self):
        tr, s = build(
            [
                ("root", "vm", 0.0, 10.0, None),
                ("a", "cpu", 0.0, 3.0, "root"),
                ("b", "net", 3.0, 7.0, "root"),
                ("c", "cpu", 8.0, 10.0, "root"),
            ]
        )
        b = category_breakdown(s["root"], tr.spans)
        assert b == {"cpu": 5.0, "net": 4.0, "vm": 1.0}
        assert sum(b.values()) == pytest.approx(s["root"].duration)

    def test_coverage_excludes_root_and_other(self):
        tr, s = build(
            [
                ("root", "vm", 0.0, 10.0, None),
                ("a", "cpu", 0.0, 5.0, "root"),
                ("junk", "other", 5.0, 7.0, "root"),
            ]
        )
        # 5 s explained by "a"; the "other" span and the root gap do not count
        assert coverage(s["root"], tr.spans) == pytest.approx(0.5)

    def test_full_coverage(self):
        tr, s = build(
            [
                ("root", "vm", 0.0, 4.0, None),
                ("a", "cpu", 0.0, 4.0, "root"),
            ]
        )
        assert coverage(s["root"], tr.spans) == pytest.approx(1.0)


class TestCriticalPath:
    def test_merges_and_filters(self):
        tr, s = build(
            [
                ("root", "vm", 0.0, 10.0, None),
                ("a", "cpu", 0.0, 5.0, "root"),
                ("blip", "net", 5.0, 5.001, "root"),
                ("b", "cpu", 5.001, 10.0, "root"),
            ]
        )
        path = critical_path(s["root"], tr.spans, min_duration=0.01)
        assert [g.span.name for g in path] == ["a", "b"]

    def test_render_critical_path_folds_short_segments(self):
        tr, s = build(
            [
                ("root", "vm", 0.0, 10.0, None),
                ("a", "cpu", 0.0, 9.99, "root"),
                ("blip", "net", 9.99, 10.0, "root"),
            ]
        )
        text = render_critical_path(s["root"], tr.spans, min_fraction=0.01)
        assert "critical path of root (10.000 s):" in text
        assert "[cpu] a" in text
        assert "shorter segments" in text
        assert "blip" not in text


class TestHelpers:
    def test_root_selectors(self):
        tr, s = build(
            [
                ("boot:vm001", "vm", 0.0, 2.0, None),
                ("boot:vm000", "vm", 0.0, 1.0, None),
                ("snapshot:vm000", "snapshot", 2.0, 3.0, None),
                ("rpc:x", "rpc", 0.0, 1.0, None),
            ]
        )
        assert [b.name for b in boot_spans(tr.spans)] == ["boot:vm000", "boot:vm001"]
        assert [b.name for b in snapshot_spans(tr.spans)] == ["snapshot:vm000"]

    def test_render_breakdown_table(self):
        tr, s = build(
            [
                ("boot:vm000", "vm", 0.0, 10.0, None),
                ("a", "cpu", 0.0, 6.0, "boot:vm000"),
                ("b", "net", 6.0, 10.0, "boot:vm000"),
            ]
        )
        text = render_breakdown_table([s["boot:vm000"]], tr.spans)
        for token in ("boot:vm000", "cpu", "net", "total"):
            assert token in text
