"""The sentinel completion scheme is equivalent to per-flow timers.

The flow network wakes completing flows through a single earliest-ETA
sentinel timer over a lazily-invalidated heap, and skips re-arming flows
whose fair share did not change. This file keeps the *legacy* scheme — one
timer per flow per rate change, the O(flows) design the sentinel replaced —
alive as an in-test oracle and checks, over randomized workloads and both
fairness disciplines, that every flow completes at the same simulated time
under both schemes.

Times are compared with a tiny absolute tolerance: skipping the re-arm of an
unchanged-rate flow avoids one ``remaining -= rate * dt`` round trip, which
can move a completion by a few float ulps (never more).
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.common.units import MB
from repro.simkit.core import Environment, Event
from repro.simkit.network import FlowNetwork

N_HOSTS = 4
CAP = 100 * MB
TOL = 1e-9  # seconds; ulp-level float drift only

flow_spec = st.tuples(
    st.integers(0, N_HOSTS - 1),  # src
    st.integers(0, N_HOSTS - 1),  # dst
    st.integers(1, 40),           # size in MB
    st.integers(0, 150),          # start time in ms
)


class LegacyTimerNetwork(FlowNetwork):
    """Oracle: the pre-sentinel wakeup scheme.

    Every rate change arms a fresh absolute-time timer for that flow; stale
    timers are invalidated by the flow's generation counter. This is O(n)
    timer events per rebalance of n flows — the cost the sentinel removed —
    but its completion timeline is the reference the fast path must match.
    """

    def __init__(self, *args, **kw):
        # per-flow timers hook _set_rate, which only the legacy (per-flow)
        # rebalance engine calls; the cohort engine would bypass the oracle
        kw["rebalance"] = "legacy"
        super().__init__(*args, **kw)

    def _set_rate(self, flow, new_rate, now):
        old = flow.rate
        if old > 0.0:
            rem = flow.remaining - old * (now - flow.t_last)
            flow.remaining = rem if rem > 0.0 else 0.0
        flow.t_last = now
        flow.rate = new_rate
        flow.wake_seq += 1
        if new_rate > 0.0:
            flow.ctime = now + flow.remaining / new_rate
            gen = flow.wake_seq
            ev = Event(self.env)
            ev.callbacks.append(lambda _ev, f=flow, g=gen: self._on_timer(f, g))
            self.env.schedule_at(ev, flow.ctime)

    def _arm_sentinel(self):
        pass  # no shared sentinel; each flow carries its own timers

    def _on_timer(self, flow, gen):
        if gen != flow.wake_seq or flow not in self._flows:
            return  # superseded by a later rate change (or already done)
        self._complete(flow)


def run_workload(net_cls, flows, fairness):
    env = Environment()
    net = net_cls(env, fairness=fairness, latency=0.0)
    nics = [net.add_nic(f"h{i}", CAP) for i in range(N_HOSTS)]
    finish = {}

    def starter(i, src, dst, size_mb, start_ms):
        yield env.timeout(start_ms / 1000.0)
        done = net.transfer(nics[src], nics[dst], size_mb * MB)
        yield done
        finish[i] = env.now

    for i, (src, dst, size_mb, start_ms) in enumerate(flows):
        env.process(starter(i, src, dst, size_mb, start_ms))
    env.run()
    assert not net._flows, "flows left dangling"
    return finish


@settings(max_examples=60, deadline=None)
@given(st.lists(flow_spec, min_size=1, max_size=12))
@pytest.mark.parametrize("fairness", ["equal-share", "maxmin"])
def test_sentinel_matches_per_flow_timers(fairness, flows):
    fast = run_workload(FlowNetwork, flows, fairness)
    legacy = run_workload(LegacyTimerNetwork, flows, fairness)
    assert fast.keys() == legacy.keys()
    for i in fast:
        assert fast[i] == pytest.approx(legacy[i], abs=TOL), (
            f"flow {i}: sentinel={fast[i]!r} legacy={legacy[i]!r}"
        )


@pytest.mark.parametrize("fairness", ["equal-share", "maxmin"])
def test_sentinel_schedules_fewer_timers(fairness):
    """The point of the scheme: a fan-in burst costs far fewer events."""
    flows = [(src, 0, 10, 0) for src in range(1, N_HOSTS)] * 4

    def events_with(net_cls):
        env = Environment()
        net = net_cls(env, fairness=fairness, latency=0.0)
        nics = [net.add_nic(f"h{i}", CAP) for i in range(N_HOSTS)]
        for src, dst, size_mb, _ in flows:
            net.transfer(nics[src], nics[dst], size_mb * MB)
        env.run()
        return env.event_count

    assert events_with(FlowNetwork) < events_with(LegacyTimerNetwork)
