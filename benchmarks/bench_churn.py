"""Tracked long-horizon churn benchmark for the multi-tenant control plane.

Where ``bench_scale`` pins the *single-burst* concurrency regime, this
harness pins the *steady-state* one: thousands of deploy/snapshot/teardown
requests arriving over a shared 48-node pool (``churn`` profile, 8
concentrated repository nodes, rate-limited tenant NICs) while the periodic
garbage collector keeps the repository bounded.

Two tracked grids, both at seed 1:

* ``policy``   — first-fit vs least-loaded vs locality-aware placement at
  n=1500 deploy requests with the cooperative peer exchange enabled;
* ``gc``       — the storage ablation at n=600: periodic GC sweeps vs no
  GC at all (``gc_interval=0``), same arrival trace.

Each point runs in a **forked child** (true per-point peak RSS) through the
same :func:`repro.runner.execute_point` path the sweep engine uses, so the
numbers here are exactly what a cached sweep would replay.

Results are tracked in ``BENCH_churn.json`` at the repository root. Running
as a script re-measures and **gates**: non-zero exit if

* any simulated outcome drifts from the committed ``current`` section
  (the metrics are deterministic — any change means the simulated workload
  changed; rerun with ``--update`` if intentional),
* wall-clock throughput (requests/s) falls more than
  ``REGRESSION_TOLERANCE`` below the committed numbers, or
* the acceptance invariants fail: locality-aware placement must beat
  first-fit on p99 boot latency, GC must keep the repository bounded while
  the no-GC ablation grows monotonically, and the tracked grids must cover
  at least ``MIN_REQUESTS`` simulated requests.

Usage::

    make perf                                    # measure + regression gate
    make churn-smoke                             # tiny-n gate-logic check
    PYTHONPATH=src python benchmarks/bench_churn.py --update
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_churn.json"

if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from gates import (  # noqa: E402
    field_drift, jcopy, load_tracked, rss_mib, run_in_child,
    throughput_floor, write_tracked,
)
from repro.runner import PointSpec, execute_point  # noqa: E402

#: allowed fractional drop in requests/s before the throughput gate fails
REGRESSION_TOLERANCE = 0.25

#: the tracked grids must cover at least this many simulated requests
MIN_REQUESTS = 10_000

#: fixed seed — simulated outcomes are identical across runs and machines
SEED = 1

#: placement policies of the tracked ``policy`` grid
POLICIES = ("first-fit", "least-loaded", "locality")

#: steady-state workload shared by every tracked point: ~96 slots offered
#: rate*mean_lifetime ≈ 96 concurrent VMs, so the pool runs near saturation
#: with bursts spilling into the bounded admission queue
WORKLOAD = (
    ("rate", 6.0),
    ("tenants", 8),
    ("mean_lifetime", 16.0),
    ("min_lifetime", 4.0),
)

#: deploy-request counts for the two grids
POLICY_N = 1500
GC_N = 600

#: simulated-outcome fields recorded per point; all deterministic, so the
#: gate requires them to match the committed numbers exactly
SIM_FIELDS = (
    "boot_p50_exact", "boot_p99_exact", "boot_mean",
    "queue_wait_p99_exact", "snapshot_p99_exact",
    "rejection_rate", "utilization",
    "booted", "rejected", "snapshots_taken",
    "gc_sweeps", "bytes_reclaimed", "footprint_peak", "footprint_final",
    "makespan", "n_requests", "trace_crc",
)


def _spec(label: str, n: int, profile: str, gc_interval: float = 60.0) -> PointSpec:
    policy = label if label in POLICIES else "least-loaded"
    return PointSpec(
        kind="churn", profile=profile, approach=label, n=n, seed=SEED,
        params=WORKLOAD + (
            ("policy", policy),
            ("p2p", True),
            ("cache_mib", 64),
            ("gc_interval", gc_interval),
        ),
    )


def _measure_once(label: str, n: int, profile: str, gc_interval: float) -> dict:
    t0 = time.perf_counter()
    res = execute_point(_spec(label, n, profile, gc_interval))
    wall = time.perf_counter() - t0
    fp = res.series["footprint_bytes"]
    row = {k: res.metrics[k] for k in SIM_FIELDS}
    row["footprint_monotone"] = all(b >= a for a, b in zip(fp, fp[1:]))
    row["events"] = res.event_count
    row["wall_s"] = round(wall, 3)
    row["requests_per_s"] = round(res.metrics["n_requests"] / wall, 1) if wall else 0.0
    row["peak_rss_mib"] = rss_mib()
    return row


def measure_point(label: str, n: int, profile: str, gc_interval: float = 60.0) -> dict:
    """Measure one churn point in a forked child (true per-point peak RSS)."""
    return run_in_child(
        _measure_once, label, n, profile, gc_interval,
        label=f"churn point {label}@{n}",
    )


def measure(profile: str = "churn", policy_n: int = POLICY_N, gc_n: int = GC_N,
            verbose: bool = True) -> dict:
    """Measure both tracked grids; returns {"policy": {...}, "gc": {...}}."""
    out = {"policy": {}, "gc": {}}
    for policy in POLICIES:
        row = measure_point(policy, policy_n, profile)
        out["policy"][policy] = row
        if verbose:
            print(f"policy/{policy}@{policy_n}: boot p99 {row['boot_p99_exact']:.3f}s, "
                  f"rejection {row['rejection_rate']:.1%}, "
                  f"{row['n_requests']:.0f} requests in {row['wall_s']:.1f}s wall "
                  f"({row['requests_per_s']} req/s, {row['peak_rss_mib']} MiB RSS)")
    for label, interval in (("gc", 60.0), ("nogc", 0.0)):
        row = measure_point(label, gc_n, profile, gc_interval=interval)
        out["gc"][label] = row
        if verbose:
            print(f"gc/{label}@{gc_n}: peak {row['footprint_peak'] / 2**20:.0f} MiB, "
                  f"final {row['footprint_final'] / 2**20:.0f} MiB, "
                  f"reclaimed {row['bytes_reclaimed'] / 2**20:.0f} MiB, "
                  f"monotone={row['footprint_monotone']} "
                  f"({row['wall_s']:.1f}s wall)")
    return out


# --------------------------------------------------------------------------- #
# tracked file + gates
# --------------------------------------------------------------------------- #
def load_committed() -> dict:
    return load_tracked(BENCH_PATH)


def _points(section: dict):
    for grid, rows in sorted(section.items()):
        for label, row in sorted(rows.items()):
            yield grid, label, row


def check_acceptance(fresh: dict) -> list:
    """The churn invariants; a list of human-readable failures (empty = ok)."""
    failures = []
    pol, gc = fresh.get("policy", {}), fresh.get("gc", {})

    total = sum(row.get("n_requests", 0) for _, _, row in _points(fresh))
    if total < MIN_REQUESTS:
        failures.append(
            f"tracked grids cover only {total:.0f} simulated requests "
            f"(need >= {MIN_REQUESTS})"
        )

    ff, loc = pol.get("first-fit"), pol.get("locality")
    if ff and loc and not loc["boot_p99_exact"] < ff["boot_p99_exact"]:
        failures.append(
            f"locality p99 boot {loc['boot_p99_exact']:.3f}s does not beat "
            f"first-fit {ff['boot_p99_exact']:.3f}s with p2p enabled"
        )

    with_gc, no_gc = gc.get("gc"), gc.get("nogc")
    if with_gc and no_gc:
        if not with_gc["bytes_reclaimed"] > 0:
            failures.append("GC run reclaimed no bytes")
        if not with_gc["footprint_peak"] < no_gc["footprint_peak"]:
            failures.append(
                f"GC peak footprint {with_gc['footprint_peak']:.0f} is not "
                f"below the no-GC peak {no_gc['footprint_peak']:.0f}"
            )
        if not no_gc["footprint_monotone"]:
            failures.append("no-GC ablation footprint is not monotone growth")
    return failures


def check_regression(fresh: dict, committed: dict) -> list:
    """Gate fresh numbers against the committed ``current`` section."""
    failures = []
    current = committed.get("current", {})
    for grid, label, now in _points(fresh):
        base = current.get(grid, {}).get(label)
        if base is None:
            continue
        failures += field_drift(
            f"{grid}/{label}", now, base, SIM_FIELDS + ("footprint_monotone",)
        )
        failures += throughput_floor(
            f"{grid}/{label}", now["requests_per_s"], base["requests_per_s"],
            REGRESSION_TOLERANCE, unit="requests/s",
        )
    failures += check_acceptance(fresh)
    return failures


# --------------------------------------------------------------------------- #
# smoke mode: tiny n, asserts the gate logic itself
# --------------------------------------------------------------------------- #
def run_smoke() -> int:
    """``make churn-smoke``: tiny points on churn-smoke + gate self-test.

    Measures a reduced grid on the ``churn-smoke`` profile (10 nodes,
    sub-second points), then exercises :func:`check_regression` against
    synthetic committed data: the gate must pass on matching numbers, flag
    a drifted simulated outcome, flag a throughput collapse, and flag each
    acceptance violation on doctored copies.
    """
    fresh = measure(profile="churn-smoke", policy_n=40, gc_n=30)

    ok = dict(fresh)
    # at smoke n the acceptance invariants are not meaningful; check the
    # gate pieces separately so pass/fail is about the *logic*, not noise
    committed = {"current": jcopy(fresh)}
    drift = [f for f in check_regression(fresh, committed)
             if "!= committed" in f or "requests/s" in f]
    if drift:
        print("smoke: gate failed on identical numbers:", drift, file=sys.stderr)
        return 1

    drifted = jcopy(committed)
    drifted["current"]["policy"]["first-fit"]["trace_crc"] += 1
    if not any("trace_crc" in f for f in check_regression(fresh, drifted)):
        print("smoke: gate missed a simulated-outcome drift", file=sys.stderr)
        return 1

    slow = jcopy(committed)
    for rows in slow["current"].values():
        for row in rows.values():
            row["requests_per_s"] = row["requests_per_s"] * 100 + 1000
    if not any("requests/s" in f for f in check_regression(fresh, slow)):
        print("smoke: gate missed a throughput collapse", file=sys.stderr)
        return 1

    synth = jcopy(fresh)
    for _, _, row in _points(synth):
        row["n_requests"] = MIN_REQUESTS  # silence the size floor
    synth["policy"]["locality"]["boot_p99_exact"] = (
        synth["policy"]["first-fit"]["boot_p99_exact"] + 1.0)
    if not any("does not beat" in f for f in check_acceptance(synth)):
        print("smoke: gate missed a locality-vs-first-fit violation", file=sys.stderr)
        return 1
    synth = jcopy(fresh)
    for _, _, row in _points(synth):
        row["n_requests"] = MIN_REQUESTS
    synth["gc"]["gc"]["bytes_reclaimed"] = 0
    synth["gc"]["nogc"]["footprint_monotone"] = False
    bad = check_acceptance(synth)
    if not any("reclaimed no bytes" in f for f in bad) or not any(
            "monotone" in f for f in bad):
        print("smoke: gate missed a GC-ablation violation", file=sys.stderr)
        return 1
    if any(row["n_requests"] < 10 for _, _, row in _points(fresh)):
        print("smoke: suspiciously few simulated requests", file=sys.stderr)
        return 1

    print("churn smoke passed (gate logic verified)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite BENCH_churn.json's 'current' section with this run",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny-n run on the churn-smoke profile + gate-logic self-test",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return run_smoke()

    fresh = measure()

    if args.update:
        committed = load_committed() if BENCH_PATH.exists() else {}
        committed.setdefault("profile", "churn")
        committed.setdefault("seed", SEED)
        committed["workload"] = dict(WORKLOAD)
        committed["current"] = fresh
        failures = check_acceptance(fresh)
        if failures:
            for f in failures:
                print(f"CHURN ACCEPTANCE: {f}", file=sys.stderr)
            return 1
        write_tracked(BENCH_PATH, committed)
        print(f"updated {BENCH_PATH}")
        return 0

    if not BENCH_PATH.exists() or not load_committed().get("current"):
        print(f"no committed numbers at {BENCH_PATH}; run with --update first")
        return 1
    failures = check_regression(fresh, load_committed())
    if failures:
        for f in failures:
            print(f"CHURN REGRESSION: {f}", file=sys.stderr)
        return 1
    print("churn gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
