"""Tests for the analysis helpers (series, speedups, reports)."""

import math

import pytest

from repro.analysis import (
    Figure,
    Series,
    check_shape,
    from_points,
    render_bars,
    render_figure,
    speedup,
)


class TestSeries:
    def test_add_and_at(self):
        s = Series("x")
        s.add(1, 10.0)
        s.add(20, 30.0)
        assert s.at(1) == 10.0
        assert s.at(20) == 30.0
        assert len(s) == 2

    def test_at_missing_raises(self):
        s = Series("x")
        s.add(1, 10.0)
        with pytest.raises(KeyError):
            s.at(2)

    def test_last_and_max(self):
        s = Series("x")
        for i, v in enumerate([5.0, 9.0, 7.0]):
            s.add(i, v)
        assert s.last() == 7.0
        assert s.max() == 9.0

    def test_monotonicity(self):
        up = Series("up")
        for i in range(5):
            up.add(i, float(i))
        assert up.is_monotonic_nondecreasing()
        down = Series("down")
        down.add(0, 2.0)
        down.add(1, 1.0)
        assert not down.is_monotonic_nondecreasing()
        assert down.is_monotonic_nondecreasing(tolerance=1.5)


class TestSeriesAtTolerance:
    def _series(self):
        s = Series("s")
        s.add(1.0, 10.0)
        s.add(2.0, 20.0)
        return s

    def test_exact_match_wins_even_with_tol(self):
        s = self._series()
        s.add(2.05, 99.0)
        assert s.at(2.0, tol=0.1) == 20.0

    def test_nearest_within_tol(self):
        s = self._series()
        assert s.at(2.04, tol=0.1) == 20.0
        assert s.at(0.96, tol=0.1) == 10.0

    def test_near_miss_outside_tol_raises(self):
        s = self._series()
        with pytest.raises(KeyError, match="nearest measured"):
            s.at(2.5, tol=0.1)

    def test_zero_tol_keeps_strict_lookup(self):
        with pytest.raises(KeyError):
            self._series().at(2.0000001)

    def test_empty_series_raises(self):
        with pytest.raises(KeyError):
            Series("empty").at(1.0, tol=10.0)


class _FakePoint:
    """Shape-compatible stand-in for a runner PointResult."""

    def __init__(self, n, metrics=None, **attrs):
        self.spec = type("Spec", (), {"n": n})()
        self.metrics = metrics or {}
        for name, value in attrs.items():
            setattr(self, name, value)


class TestFromPoints:
    def test_metric_name_from_metrics_dict(self):
        points = [_FakePoint(1, {"avg_boot_time": 2.0}),
                  _FakePoint(10, {"avg_boot_time": 3.0})]
        s = from_points(points, "avg_boot_time", "boot")
        assert s.name == "boot"
        assert s.x == [1.0, 10.0]
        assert s.y == [2.0, 3.0]

    def test_metric_attribute_fallback(self):
        points = [_FakePoint(1, completion_time=5.0)]
        s = from_points(points, "completion_time", "done")
        assert s.y == [5.0]

    def test_metric_callable(self):
        points = [_FakePoint(2, {"total_traffic": 100.0})]
        s = from_points(points, lambda p: p.metrics["total_traffic"] / 2, "half")
        assert s.y == [50.0]

    def test_custom_x_extractor(self):
        points = [_FakePoint(1, {"m": 7.0}, seed=4)]
        s = from_points(points, "m", "by-seed", x=lambda p: p.seed)
        assert s.x == [4.0]

    def test_real_point_result(self):
        from repro.runner import PointResult, PointSpec

        spec = PointSpec(kind="deploy", profile="quick", approach="mirror", n=5)
        point = PointResult(spec=spec, metrics={"avg_boot_time": 1.5},
                            series={"boot_times": (1.5,)}, counters={},
                            event_count=1, wall_s=0.0)
        s = from_points([point], "avg_boot_time", "boot")
        assert s.x == [5.0] and s.y == [1.5]


class TestSpeedup:
    def test_pointwise_ratio(self):
        base = Series("base")
        ours = Series("ours")
        for n in (1, 10, 100):
            base.add(n, 100.0)
            ours.add(n, n * 1.0)
        sp = speedup(base, ours)
        assert sp.at(1) == 100.0
        assert sp.at(100) == 1.0

    def test_common_x_only(self):
        base = Series("base")
        ours = Series("ours")
        base.add(1, 10.0)
        base.add(2, 20.0)
        ours.add(2, 5.0)
        sp = speedup(base, ours)
        assert sp.x == [2.0]
        assert sp.y == [4.0]

    def test_custom_name(self):
        sp = speedup(Series("b"), Series("o"), "my-speedup")
        assert sp.name == "my-speedup"


class TestRenderFigure:
    def _figure(self):
        fig = Figure("fig9", "Fake", "instances", "seconds")
        a = Series("alpha")
        b = Series("beta")
        a.add(1, 1.5)
        a.add(10, 2.5)
        b.add(10, 4.0)
        fig.add_series(a)
        fig.add_series(b)
        return fig

    def test_contains_all_points(self):
        text = render_figure(self._figure())
        assert "fig9" in text
        assert "alpha" in text and "beta" in text
        assert "1.50" in text and "2.50" in text and "4.00" in text

    def test_missing_points_dashed(self):
        text = render_figure(self._figure())
        row1 = next(line for line in text.splitlines() if line.startswith("1 "))
        assert "-" in row1  # beta has no x=1 point

    def test_render_bars(self):
        text = render_bars(
            "title", ["A", "B"], {"g1": [1.0, 2.0], "g2": [3.0, 4.0]}
        )
        assert "title" in text
        for token in ("A", "B", "g1", "g2", "1.0", "4.0"):
            assert token in text


class TestCheckShape:
    def test_pass_fail(self):
        assert check_shape("ok", True) == "[PASS] ok"
        assert check_shape("bad", False) == "[FAIL] bad"
