"""Declarative, seed-reproducible fault plans.

A :class:`FaultPlan` is a pure value: a schedule of :class:`FaultEvent`\\ s
to inject into a running cloud. Plans are data, not behaviour — the
:class:`~repro.faults.injector.FaultInjector` turns them into simkit
processes. Because a plan is either written out explicitly or generated from
an integer seed, the same (cloud seed, fault plan) pair always reproduces
the same timeline bit for bit, across runs and across sweep workers.

Event times are *relative to the moment the plan is armed* (deployments arm
right before the boot phase, so ``at=2.0`` means two simulated seconds into
the multideployment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

#: injectable event kinds
KINDS = ("provider-crash", "meta-crash", "disk-stall", "nic-degrade")


@dataclass(frozen=True)
class FaultEvent:
    """One injectable incident.

    * ``provider-crash`` / ``meta-crash`` — the target host crashes (RPCs
      fail, flows abort, spawned processes die, volatile state is lost) and,
      if ``duration`` > 0, recovers that many seconds later. The two kinds
      crash the *whole host*; the distinct labels record which service the
      plan meant to hit (providers and metadata shards are co-located).
    * ``disk-stall`` — the target's disk bandwidths divide by ``factor``
      for ``duration`` seconds (0 = permanently).
    * ``nic-degrade`` — the target's NIC capacities divide by ``factor``
      for ``duration`` seconds (0 = permanently).
    """

    at: float
    kind: str
    target: str
    duration: float = 0.0
    factor: float = 2.0

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {KINDS}")
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")
        if self.duration < 0:
            raise ValueError(f"fault duration must be >= 0, got {self.duration}")
        if self.factor < 1.0:
            raise ValueError(f"degradation factor must be >= 1, got {self.factor}")

    def to_json(self) -> dict:
        return {
            "at": self.at,
            "kind": self.kind,
            "target": self.target,
            "duration": self.duration,
            "factor": self.factor,
        }

    @classmethod
    def from_json(cls, data: dict) -> "FaultEvent":
        return cls(
            at=float(data["at"]),
            kind=str(data["kind"]),
            target=str(data["target"]),
            duration=float(data.get("duration", 0.0)),
            factor=float(data.get("factor", 2.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered schedule of fault events (empty plan = no faults)."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self):
        object.__setattr__(
            self,
            "events",
            tuple(sorted(self.events, key=lambda e: (e.at, e.kind, e.target))),
        )

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def describe(self) -> str:
        if not self.events:
            return "empty fault plan"
        return "; ".join(
            f"t={e.at:g}s {e.kind} {e.target}"
            + (f" for {e.duration:g}s" if e.duration > 0 else " (permanent)")
            for e in self.events
        )

    # ------------------------------------------------------------------ #
    def to_json(self) -> dict:
        return {"events": [e.to_json() for e in self.events]}

    @classmethod
    def from_json(cls, data: dict) -> "FaultPlan":
        return cls(tuple(FaultEvent.from_json(e) for e in data.get("events", ())))

    # ------------------------------------------------------------------ #
    # generators
    # ------------------------------------------------------------------ #
    @classmethod
    def staggered_crashes(
        cls,
        targets: Sequence[str],
        n_crashes: int,
        window: float,
        mttr: float = 0.0,
        kind: str = "provider-crash",
    ) -> "FaultPlan":
        """Fully deterministic plan: crashes evenly spaced across ``window``.

        Victims cycle through every *other* entry of ``targets`` (then the
        odd entries), so with round-robin replica placement two adjacent
        providers — which share chunks at replication 2 — are never both hit
        until more than half the targets are down. ``mttr`` > 0 revives each
        victim that many seconds after its crash; 0 means permanent loss.
        """
        if not targets:
            raise ValueError("no targets to crash")
        if n_crashes > len(targets):
            raise ValueError(f"{n_crashes} crashes > {len(targets)} targets")
        order = list(targets[::2]) + list(targets[1::2])
        events = [
            FaultEvent(
                at=window * (i + 1) / (n_crashes + 1),
                kind=kind,
                target=order[i],
                duration=mttr,
            )
            for i in range(n_crashes)
        ]
        return cls(tuple(events))

    @classmethod
    def random_crashes(
        cls,
        targets: Sequence[str],
        n_crashes: int,
        window: float,
        mttr: float = 0.0,
        seed: int = 0,
        kind: str = "provider-crash",
    ) -> "FaultPlan":
        """Seed-reproducible random plan: distinct victims, uniform times."""
        if not targets:
            raise ValueError("no targets to crash")
        if n_crashes > len(targets):
            raise ValueError(f"{n_crashes} crashes > {len(targets)} targets")
        rng = np.random.default_rng(seed)
        victims = rng.choice(len(targets), size=n_crashes, replace=False)
        times = np.sort(rng.uniform(0.0, window, size=n_crashes))
        events = [
            FaultEvent(
                at=float(t), kind=kind, target=targets[int(v)], duration=mttr
            )
            for t, v in zip(times, victims)
        ]
        return cls(tuple(events))

    @classmethod
    def degradations(
        cls,
        targets: Sequence[str],
        kind: str,
        at: float,
        duration: float,
        factor: float,
    ) -> "FaultPlan":
        """One simultaneous ``disk-stall``/``nic-degrade`` on every target."""
        return cls(
            tuple(
                FaultEvent(at=at, kind=kind, target=t, duration=duration, factor=factor)
                for t in targets
            )
        )
