"""Reproduction of Nicolae et al., *Going Back and Forth: Efficient
Multi-Deployment and Multi-Snapshotting on Clouds* (HPDC 2011).

The package provides:

* :mod:`repro.core` — the paper's contribution: a mirroring virtual file
  system for VM images with lazy on-demand fetch and ``CLONE``/``COMMIT``
  snapshotting primitives;
* :mod:`repro.blobseer` — a functional reimplementation of the BlobSeer
  versioning storage service (striping, shadowing, cloning);
* :mod:`repro.simkit` — a deterministic discrete-event cluster simulator
  standing in for the Grid'5000 testbed;
* :mod:`repro.baselines` — the comparison systems: taktuk-style broadcast
  prepropagation, a PVFS-like striped file system, and a qcow2-like
  copy-on-write image format;
* :mod:`repro.vmsim` — VM life-cycle workloads (boot traces, Bonnie++-like
  micro-benchmark, Monte Carlo application);
* :mod:`repro.cloud` — cluster construction and multideployment /
  multisnapshotting orchestration;
* :mod:`repro.analysis` — series handling and paper-style reports.

Quickstart::

    from repro.cloud import build_cloud
    from repro.cloud.deployment import deploy_mirror

    cloud = build_cloud(compute_nodes=16, seed=1)
    result = deploy_mirror(cloud, n_instances=16)
    print(result.completion_time, result.total_traffic)
"""

__version__ = "1.0.0"
