"""Payload algebra: the content model for every byte moved by the system.

The reproduction moves both *real* data (unit and integration tests verify
end-to-end content equality on megabyte-scale images) and *virtual* data
(benchmarks deploy 2 GB images to a hundred simulated nodes — materializing
those would be pointless). A :class:`Payload` is a size-exact, sliceable,
concatenable description of byte content built from three kinds of atoms:

``BytesAtom``
    literal bytes (used by tests and by small VM writes),
``ZeroAtom``
    a run of zero bytes (sparse-file holes),
``OpaqueAtom``
    a window ``[offset, offset+size)`` into an abstract content source
    identified by a string tag (e.g. ``"debian-sid-image"``). Slicing keeps
    the window arithmetic exact, so content *identity* remains checkable
    without content *materialization*.

Two payloads compare equal iff their normalized atom sequences are equal.
Within one experiment a given opaque tag always denotes the same underlying
content, so this equality is sound; the test-suite additionally checks the
real-bytes path against flat reference buffers.

:class:`SparseFile` is a writable sparse byte space assembled from payloads.
It backs the local-mirror file, the simulated local file systems and the
chunk stores.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple, Union

from .errors import OutOfRangeError


# --------------------------------------------------------------------------- #
# atoms
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class BytesAtom:
    data: bytes

    @property
    def size(self) -> int:
        return len(self.data)

    def window(self, lo: int, hi: int) -> "BytesAtom":
        if lo == 0 and hi == len(self.data):
            return self  # whole-atom window: no byte copy (atoms are immutable)
        return BytesAtom(self.data[lo:hi])


@dataclass(frozen=True)
class ZeroAtom:
    nbytes: int

    @property
    def size(self) -> int:
        return self.nbytes

    def window(self, lo: int, hi: int) -> "ZeroAtom":
        return ZeroAtom(hi - lo)


@dataclass(frozen=True)
class OpaqueAtom:
    tag: str
    offset: int
    nbytes: int

    @property
    def size(self) -> int:
        return self.nbytes

    def window(self, lo: int, hi: int) -> "OpaqueAtom":
        return OpaqueAtom(self.tag, self.offset + lo, hi - lo)


Atom = Union[BytesAtom, ZeroAtom, OpaqueAtom]


def _merge(a: Atom, b: Atom) -> Atom | None:
    """Coalesce two adjacent atoms into one when they form a contiguous run."""
    if isinstance(a, ZeroAtom) and isinstance(b, ZeroAtom):
        return ZeroAtom(a.nbytes + b.nbytes)
    if isinstance(a, BytesAtom) and isinstance(b, BytesAtom):
        return BytesAtom(a.data + b.data)
    if (
        isinstance(a, OpaqueAtom)
        and isinstance(b, OpaqueAtom)
        and a.tag == b.tag
        and a.offset + a.nbytes == b.offset
    ):
        return OpaqueAtom(a.tag, a.offset, a.nbytes + b.nbytes)
    return None


# --------------------------------------------------------------------------- #
# payload
# --------------------------------------------------------------------------- #
class Payload:
    """An immutable sequence of content atoms with exact size accounting."""

    __slots__ = ("_atoms", "_size")

    def __init__(self, atoms: Iterable[Atom] = ()):
        normalized: List[Atom] = []
        for atom in atoms:
            if atom.size == 0:
                continue
            if normalized:
                merged = _merge(normalized[-1], atom)
                if merged is not None:
                    normalized[-1] = merged
                    continue
            normalized.append(atom)
        self._atoms: Tuple[Atom, ...] = tuple(normalized)
        self._size = sum(a.size for a in self._atoms)

    # ---- constructors ---------------------------------------------------- #
    @classmethod
    def _from_normalized(cls, atoms: Iterable[Atom], size: int) -> "Payload":
        """Build a payload from an already-normalized atom run (no re-merge).

        Used by :meth:`slice`: windows of a normalized sequence stay
        normalized (trimming an atom cannot make it mergeable with an
        interior neighbour), so the O(atoms) normalization pass is skipped.
        """
        p = object.__new__(cls)
        p._atoms = tuple(atoms)
        p._size = size
        return p

    @staticmethod
    def from_bytes(data: bytes) -> "Payload":
        return Payload([BytesAtom(bytes(data))])

    @staticmethod
    def zeros(nbytes: int) -> "Payload":
        return Payload([ZeroAtom(int(nbytes))])

    @staticmethod
    def opaque(tag: str, nbytes: int, offset: int = 0) -> "Payload":
        return Payload([OpaqueAtom(tag, int(offset), int(nbytes))])

    @staticmethod
    def concat(parts: Sequence["Payload"]) -> "Payload":
        if len(parts) == 1:
            return parts[0]  # immutable, so share it
        atoms: List[Atom] = []
        for part in parts:
            atoms.extend(part._atoms)
        return Payload(atoms)

    # ---- queries --------------------------------------------------------- #
    @property
    def size(self) -> int:
        return self._size

    @property
    def atoms(self) -> Tuple[Atom, ...]:
        return self._atoms

    def is_materialized(self) -> bool:
        """True iff the payload contains no opaque atoms (bytes recoverable)."""
        return all(not isinstance(a, OpaqueAtom) for a in self._atoms)

    def to_bytes(self) -> bytes:
        """Materialize to real bytes; raises on opaque content."""
        chunks: List[bytes] = []
        for atom in self._atoms:
            if isinstance(atom, BytesAtom):
                chunks.append(atom.data)
            elif isinstance(atom, ZeroAtom):
                chunks.append(b"\x00" * atom.nbytes)
            else:
                raise ValueError(
                    f"cannot materialize opaque content {atom.tag!r}"
                    f"[{atom.offset}:{atom.offset + atom.nbytes}]"
                )
        return b"".join(chunks)

    def slice(self, lo: int, hi: int) -> "Payload":
        """Return the payload window ``[lo, hi)``; bounds must be in range."""
        if lo < 0 or hi > self._size or lo > hi:
            raise OutOfRangeError(f"slice [{lo},{hi}) of payload size {self._size}")
        if lo == 0 and hi == self._size:
            return self  # whole-payload slice: immutable, so share it
        atoms = self._atoms
        if len(atoms) == 1:
            # Single-atom payloads (one opaque chunk, one zero run) dominate
            # the fetch paths; window them without the scan below.
            return Payload._from_normalized((atoms[0].window(lo, hi),), hi - lo)
        out: List[Atom] = []
        cursor = 0
        for atom in self._atoms:
            a_lo, a_hi = cursor, cursor + atom.size
            w_lo, w_hi = max(lo, a_lo), min(hi, a_hi)
            if w_lo < w_hi:
                out.append(atom.window(w_lo - a_lo, w_hi - a_lo))
            cursor = a_hi
            if cursor >= hi:
                break
        return Payload._from_normalized(out, hi - lo)

    def __getitem__(self, key: slice) -> "Payload":
        if not isinstance(key, slice) or key.step not in (None, 1):
            raise TypeError("Payload supports contiguous slicing only")
        lo = 0 if key.start is None else key.start
        hi = self._size if key.stop is None else key.stop
        return self.slice(lo, hi)

    def __add__(self, other: "Payload") -> "Payload":
        return Payload.concat([self, other])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Payload):
            return NotImplemented
        return self._atoms == other._atoms

    def __hash__(self) -> int:
        return hash(self._atoms)

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        parts = []
        for atom in self._atoms[:4]:
            if isinstance(atom, BytesAtom):
                parts.append(f"bytes[{atom.size}]")
            elif isinstance(atom, ZeroAtom):
                parts.append(f"zero[{atom.size}]")
            else:
                parts.append(f"{atom.tag}@{atom.offset}+{atom.nbytes}")
        if len(self._atoms) > 4:
            parts.append("...")
        return f"Payload({', '.join(parts)}, size={self._size})"


#: The canonical empty payload.
EMPTY = Payload()


# --------------------------------------------------------------------------- #
# sparse writable byte space
# --------------------------------------------------------------------------- #
class SparseFile:
    """A fixed-size sparse byte space; unwritten regions read as zeros.

    Segments are kept as a sorted list of ``(lo, hi, payload)`` triples with
    no overlaps; writes splice, reads stitch payload windows together with
    zero-fill for holes. Used for local-disk files, chunk stores, and the
    mirror file.
    """

    __slots__ = ("size", "_segments")

    def __init__(self, size: int, base: Payload | None = None):
        self.size = int(size)
        self._segments: List[Tuple[int, int, Payload]] = []
        if base is not None:
            if base.size != size:
                raise OutOfRangeError("base payload size mismatch")
            self._segments.append((0, size, base))

    def _overlap_window(self, lo: int, hi: int) -> Tuple[int, int]:
        """Index range ``[i, j)`` of segments overlapping ``[lo, hi)``.

        Comparison probes like ``(lo,)`` sort strictly before any segment
        triple sharing the same start, so payloads are never compared.
        """
        segments = self._segments
        k = bisect_left(segments, (lo,))
        i = k - 1 if k > 0 and segments[k - 1][1] > lo else k
        j = bisect_left(segments, (hi,), i)
        return i, j

    def write(self, offset: int, payload: Payload) -> None:
        lo, hi = offset, offset + payload.size
        if lo < 0 or hi > self.size:
            raise OutOfRangeError(f"write [{lo},{hi}) beyond size {self.size}")
        if lo == hi:
            return
        # Bisect to the overlapped segment window and splice in place rather
        # than rebuilding the whole segment list per write.
        segments = self._segments
        i, j = self._overlap_window(lo, hi)
        repl: List[Tuple[int, int, Payload]] = []
        if i < j:
            s_lo, s_hi, s_pl = segments[i]
            if s_lo < lo:
                repl.append((s_lo, lo, s_pl.slice(0, lo - s_lo)))
        repl.append((lo, hi, payload))
        if i < j:
            s_lo, s_hi, s_pl = segments[j - 1]
            if s_hi > hi:
                repl.append((hi, s_hi, s_pl.slice(hi - s_lo, s_hi - s_lo)))
        segments[i:j] = repl

    def read(self, offset: int, nbytes: int) -> Payload:
        lo, hi = offset, offset + nbytes
        if lo < 0 or hi > self.size:
            raise OutOfRangeError(f"read [{lo},{hi}) beyond size {self.size}")
        segments = self._segments
        i, j = self._overlap_window(lo, hi)
        if i == j:
            return Payload.zeros(hi - lo) if hi > lo else EMPTY
        parts: List[Payload] = []
        cursor = lo
        for s_lo, s_hi, s_pl in segments[i:j]:
            if s_lo > cursor:
                parts.append(Payload.zeros(s_lo - cursor))
                cursor = s_lo
            w_hi = min(s_hi, hi)
            parts.append(s_pl.slice(cursor - s_lo, w_hi - s_lo))
            cursor = w_hi
        if cursor < hi:
            parts.append(Payload.zeros(hi - cursor))
        return Payload.concat(parts)

    def written_bytes(self) -> int:
        """Bytes covered by explicit segments (the file's physical footprint)."""
        return sum(hi - lo for lo, hi, _ in self._segments)

    def snapshot_payload(self) -> Payload:
        """The whole file content as one payload (zero-filled holes)."""
        return self.read(0, self.size)
