"""Application-phase workloads (§2.3).

After boot, the paper distinguishes (1) negligible disk access — CPU-bound
jobs or jobs using dedicated storage — and (2) read-your-writes access, e.g.
web servers maintaining logs and object caches inside the image. Both are
provided as trace generators compatible with
:meth:`repro.vmsim.hypervisor.VMInstance.run_ops`.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..common.units import KiB
from .boottrace import BootOp


def cpu_workload(seconds: float, slices: int = 10) -> List[BootOp]:
    """Pure computation: CPU bursts only (negligible disk access)."""
    return [BootOp("cpu", duration=seconds / slices) for _ in range(slices)]


def read_your_writes_workload(
    base_offset: int,
    total_bytes: int,
    rng: np.random.Generator,
    write_block: int = 8 * KiB,
    reread_fraction: float = 0.5,
    cpu_between: float = 0.002,
) -> List[BootOp]:
    """Log/object-cache pattern: append writes, re-read some of what was written.

    All reads target previously written offsets, so a lazy-mirroring backend
    serves them locally (the property §5.4 measures).
    """
    ops: List[BootOp] = []
    written: List[tuple[int, int]] = []
    cursor = base_offset
    remaining = total_bytes
    while remaining > 0:
        blk = min(write_block, remaining)
        ops.append(BootOp("cpu", duration=cpu_between))
        ops.append(BootOp("write", cursor, blk))
        written.append((cursor, blk))
        cursor += blk
        remaining -= blk
        if rng.random() < reread_fraction and written:
            off, ln = written[int(rng.integers(0, len(written)))]
            ops.append(BootOp("read", off, ln))
    return ops


def log_append_workload(
    base_offset: int, n_appends: int, append_bytes: int, cpu_between: float = 0.01
) -> List[BootOp]:
    """Sequential append-only log (webserver access log)."""
    ops: List[BootOp] = []
    cursor = base_offset
    for _ in range(n_appends):
        ops.append(BootOp("cpu", duration=cpu_between))
        ops.append(BootOp("write", cursor, append_bytes))
        cursor += append_bytes
    return ops
