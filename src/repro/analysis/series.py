"""Result series and derived metrics for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass
class Series:
    """A named y-over-x curve, e.g. boot time versus instance count."""

    name: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.x.append(float(x))
        self.y.append(float(y))

    def at(self, x: float) -> float:
        """The y value at an exact x (raises if the point was not measured)."""
        try:
            return self.y[self.x.index(float(x))]
        except ValueError:
            raise KeyError(f"{self.name}: no point at x={x}") from None

    def last(self) -> float:
        return self.y[-1]

    def is_monotonic_nondecreasing(self, tolerance: float = 0.0) -> bool:
        return all(b >= a - tolerance for a, b in zip(self.y, self.y[1:]))

    def max(self) -> float:
        return max(self.y)

    def __len__(self) -> int:
        return len(self.x)


def speedup(baseline: Series, ours: Series, name: str | None = None) -> Series:
    """Pointwise ``baseline / ours`` over the common x values (Fig. 4c)."""
    common = [x for x in baseline.x if x in ours.x]
    out = Series(name or f"speedup vs {baseline.name}")
    for x in common:
        out.add(x, baseline.at(x) / ours.at(x))
    return out


def collect(results: Sequence, x_attr: str, y_attr: str, name: str) -> Series:
    """Build a series by pulling two attributes off a result list."""
    out = Series(name)
    for r in results:
        out.add(getattr(r, x_attr), getattr(r, y_attr))
    return out


@dataclass
class Figure:
    """One reproduced paper figure: a set of series plus metadata."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: Dict[str, Series] = field(default_factory=dict)

    def add_series(self, s: Series) -> None:
        self.series[s.name] = s
