"""Figure 8 — Monte Carlo application in the real world (paper §5.5).

100 workers estimate π, each periodically saving a ~10 MB intermediate
result inside its VM image. Two settings:

* **Uninterrupted** — deploy and run to completion (multideployment only):
  prepropagation vs qcow2-over-PVFS vs our approach.
* **Suspend/Resume** — run half-way, multisnapshot, terminate, redeploy
  every instance *on a different node*, resume from the saved intermediate
  result: our approach vs qcow2-over-PVFS (prepropagation cannot
  multisnapshot).

Each setting is a ``kind="montecarlo"`` sweep point executed by
:mod:`repro.runner.points`, which asserts correctness end-to-end inside the
simulation: resumed workers continue from the saved progress carried through
the snapshot, never from scratch (a violation raises and fails the point).
"""

import pytest

from repro.analysis import check_shape, render_bars

from common import PointSpec, active_profile, emit, run_sweep

PROFILE = active_profile()


def _mc_point(approach: str, mode: str):
    spec = PointSpec(
        kind="montecarlo", profile=PROFILE.name, approach=approach, seed=8,
        params=(("mode", mode),),
    )
    return run_sweep([spec])[0]


@pytest.mark.parametrize("approach", ["prepropagation", "qcow2-pvfs", "mirror"])
def test_fig8_uninterrupted(benchmark, sweep_cache, approach):
    point = benchmark.pedantic(
        lambda: _mc_point(approach, "uninterrupted"), rounds=1, iterations=1
    )
    t = point.metrics["completion_time"]
    sweep_cache[("fig8-uninterrupted", approach)] = t
    assert t > PROFILE.mc_total_compute  # computation dominates


@pytest.mark.parametrize("approach", ["qcow2-pvfs", "mirror"])
def test_fig8_suspend_resume(benchmark, sweep_cache, approach):
    point = benchmark.pedantic(
        lambda: _mc_point(approach, "suspend-resume"), rounds=1, iterations=1
    )
    t = point.metrics["completion_time"]
    sweep_cache[("fig8-suspend", approach)] = t
    assert t > PROFILE.mc_total_compute


def test_fig8_report(benchmark, sweep_cache):
    uninterrupted = {
        a: sweep_cache[("fig8-uninterrupted", a)]
        for a in ("prepropagation", "qcow2-pvfs", "mirror")
    }
    suspend = {a: sweep_cache[("fig8-suspend", a)] for a in ("qcow2-pvfs", "mirror")}
    groups = {
        "pre-propagation": [uninterrupted["prepropagation"], float("nan")],
        "qcow2-over-PVFS": [uninterrupted["qcow2-pvfs"], suspend["qcow2-pvfs"]],
        "our-approach": [uninterrupted["mirror"], suspend["mirror"]],
    }
    table = benchmark.pedantic(
        lambda: render_bars(
            "fig8: Monte Carlo completion time (s), 100 VM instances",
            ["Uninterrupted", "Suspend/Resume"],
            groups,
        ),
        rounds=1,
        iterations=1,
    )
    gain = 1 - suspend["mirror"] / suspend["qcow2-pvfs"]
    checks = [
        check_shape(
            "uninterrupted: prepropagation worst (costly init phase)",
            uninterrupted["prepropagation"] > uninterrupted["qcow2-pvfs"] > uninterrupted["mirror"],
        ),
        check_shape(
            f"suspend/resume: ours faster by a few percent (paper ~5%; got {gain:.1%})",
            0.0 < gain < 0.25,
        ),
        check_shape(
            "suspend/resume costs more than uninterrupted (double boot)",
            suspend["mirror"] > uninterrupted["mirror"],
        ),
    ]
    json_groups = {  # NaN (prepropagation cannot multisnapshot) -> null
        k: [None if v != v else v for v in vals] for k, vals in groups.items()
    }
    emit("fig8", table + "\n" + "\n".join(checks),
         {"labels": ["Uninterrupted", "Suspend/Resume"], "groups": json_groups,
          "checks": checks})
    assert all(c.startswith("[PASS]") for c in checks), "\n".join(checks)
