"""Baseline systems the paper compares against.

* :mod:`~repro.baselines.qcow2` — copy-on-write image format with backing files;
* :mod:`~repro.baselines.pvfs` — striped distributed file system;
* :mod:`~repro.baselines.nfs` — central file server;
* :mod:`~repro.baselines.broadcast` — taktuk-style multicast tree;
* :mod:`~repro.baselines.prepropagation` — full-image deployment scheme.
"""

from .broadcast import BroadcastReport, broadcast, build_tree, tree_depth
from .nfs import NfsClient, NfsServer
from .prepropagation import prepropagate
from .pvfs import PvfsClient, PvfsDeployment, PvfsFileMeta
from .qcow2 import DEFAULT_CLUSTER, IoReport, Qcow2Image

__all__ = [
    "BroadcastReport",
    "DEFAULT_CLUSTER",
    "IoReport",
    "NfsClient",
    "NfsServer",
    "PvfsClient",
    "PvfsDeployment",
    "PvfsFileMeta",
    "Qcow2Image",
    "broadcast",
    "build_tree",
    "prepropagate",
    "tree_depth",
]
