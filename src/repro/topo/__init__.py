"""Hierarchical datacenter topology: racks, aggregation pods, and core.

The flat simulator assumes every NIC hangs off one non-blocking switch.
This package models the usual production shape instead — hosts grouped
into racks, racks into pods, pods behind a core — with an explicit
oversubscription ratio at the rack uplink.  The fabric model plugs in
*under* :class:`repro.simkit.network.FlowNetwork` (flows traverse the
bottleneck set of links on their path) and *over* the placement / peer
selection policies (which can rank candidates by rack distance).
"""

from .fabric import Topology, build_topology

__all__ = ["Topology", "build_topology"]
