"""Tests for the discrete-event engine."""

import pytest

from repro.common.errors import InterruptedError_, SimulationError
from repro.simkit.core import Environment


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(2.5)
        return env.now

    assert env.run(env.process(proc())) == 2.5
    assert env.now == 2.5


def test_sequential_timeouts_accumulate():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        yield env.timeout(0.5)
        return env.now

    assert env.run(env.process(proc())) == 1.5


def test_timeout_carries_value():
    env = Environment()

    def proc():
        v = yield env.timeout(1.0, value="payload")
        return v

    assert env.run(env.process(proc())) == "payload"


def test_processes_interleave_deterministically():
    env = Environment()
    log = []

    def worker(name, delay):
        yield env.timeout(delay)
        log.append((env.now, name))

    env.process(worker("b", 2.0))
    env.process(worker("a", 1.0))
    env.process(worker("c", 1.0))
    env.run()
    # Equal times resolved by creation order (a before c).
    assert log == [(1.0, "a"), (1.0, "c"), (2.0, "b")]


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    out = []

    def waiter():
        v = yield gate
        out.append(v)

    def opener():
        yield env.timeout(3.0)
        gate.succeed("open")

    env.process(waiter())
    env.process(opener())
    env.run()
    assert out == ["open"]
    assert env.now == 3.0


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()

    def waiter():
        with pytest.raises(ValueError, match="boom"):
            yield gate
        return "handled"

    def failer():
        yield env.timeout(1.0)
        gate.fail(ValueError("boom"))

    p = env.process(waiter())
    env.process(failer())
    assert env.run(p) == "handled"


def test_process_exception_propagates_to_run():
    env = Environment()

    def bad():
        yield env.timeout(1.0)
        raise RuntimeError("kaput")

    with pytest.raises(RuntimeError, match="kaput"):
        env.run(env.process(bad()))


def test_waiting_on_already_processed_event():
    env = Environment()
    ev = env.event()
    ev.succeed(99)
    env.run(until=0.0)  # process the trigger
    assert ev.processed

    def late():
        v = yield ev
        return v

    assert env.run(env.process(late())) == 99


def test_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_all_of_collects_values():
    env = Environment()

    def proc():
        values = yield env.all_of([env.timeout(1.0, "a"), env.timeout(2.0, "b")])
        return values, env.now

    values, t = env.run(env.process(proc()))
    assert values == ["a", "b"]
    assert t == 2.0


def test_all_of_empty_fires_immediately():
    env = Environment()

    def proc():
        v = yield env.all_of([])
        return v

    assert env.run(env.process(proc())) == []


def test_any_of_returns_first():
    env = Environment()

    def proc():
        slow = env.timeout(5.0, "slow")
        fast = env.timeout(1.0, "fast")
        ev, value = yield env.any_of([slow, fast])
        return value, env.now

    assert env.run(env.process(proc())) == ("fast", 1.0)


def test_interrupt_raises_at_yield_point():
    env = Environment()
    caught = []

    def sleeper():
        try:
            yield env.timeout(100.0)
        except InterruptedError_ as exc:
            caught.append(exc.cause)
            return "interrupted"
        return "completed"

    p = env.process(sleeper())

    def killer():
        yield env.timeout(2.0)
        p.interrupt("shutdown")

    env.process(killer())
    assert env.run(p) == "interrupted"
    assert caught == ["shutdown"]
    assert env.now == 2.0


def test_interrupt_after_completion_is_noop():
    env = Environment()

    def quick():
        yield env.timeout(1.0)
        return "done"

    p = env.process(quick())
    env.run(p)
    p.interrupt("late")  # must not raise
    env.run()


def test_run_until_time_leaves_future_events():
    env = Environment()
    fired = []

    def proc():
        yield env.timeout(10.0)
        fired.append(True)

    env.process(proc())
    env.run(until=5.0)
    assert env.now == 5.0
    assert not fired
    env.run()
    assert fired


def test_deadlock_detected():
    env = Environment()

    def stuck():
        yield env.event()  # never triggered

    p = env.process(stuck())
    with pytest.raises(SimulationError, match="deadlock"):
        env.run(p)


def test_yielding_non_event_is_error():
    env = Environment()

    def bad():
        yield 42

    with pytest.raises(SimulationError, match="expected an Event"):
        env.run(env.process(bad()))


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_subprocess_composition():
    env = Environment()

    def child(n):
        yield env.timeout(n)
        return n * 2

    def parent():
        a = yield env.process(child(1.0))
        b = yield env.process(child(2.0))
        return a + b

    assert env.run(env.process(parent())) == 6
    assert env.now == 3.0


def test_determinism_same_structure_same_timeline():
    def build():
        env = Environment()
        log = []

        def w(i):
            yield env.timeout(i % 3 * 0.5)
            log.append((env.now, i))

        for i in range(20):
            env.process(w(i))
        env.run()
        return log

    assert build() == build()
