"""Resilient multideployment: boot a VM fleet while faults are injected.

The figure-4 :func:`~repro.cloud.deployment.deploy` treats any boot failure
as fatal (and rightly so — the paper's runs are failure-free). Under an
active fault plan a VM's boot may legitimately die: its host crashed, or
every replica of a chunk it needs is gone. :func:`resilient_deploy` runs the
same deployment but guards each boot, so the sweep measures *degradation* —
how many instances still booted, and how much slower — instead of crashing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..common.errors import InterruptedError_, StorageError
from .plan import FaultPlan


@dataclass
class ResilienceResult:
    """Outcome of one multideployment under faults (one resilience point)."""

    approach: str
    n_instances: int
    #: initialization phase duration (before faults are armed)
    init_time: float
    #: boot duration of every instance that completed
    boot_times: List[float] = field(default_factory=list)
    #: vm name -> exception class name, for every boot that did not complete
    failed: Dict[str, str] = field(default_factory=dict)
    #: wall time until every boot completed or failed, excl. init
    completion_time: float = 0.0
    #: bytes that crossed the network during the boot phase
    total_traffic: int = 0
    vms: list = field(default_factory=list)

    @property
    def boots_completed(self) -> int:
        return len(self.boot_times)

    @property
    def boots_failed(self) -> int:
        return len(self.failed)

    @property
    def survival_rate(self) -> float:
        return self.boots_completed / self.n_instances if self.n_instances else 1.0

    @property
    def avg_boot_time(self) -> float:
        return sum(self.boot_times) / len(self.boot_times) if self.boot_times else 0.0


def _guarded_boot(vm, trace, result: ResilienceResult):
    metrics = vm.host.fabric.metrics
    try:
        yield from vm.boot(trace)
    except (StorageError, InterruptedError_) as exc:
        # The boot died with the fault (host crash kills the spawned boot
        # process; exhausted retries surface as StorageError). Record and
        # keep the rest of the fleet going.
        result.failed[vm.name] = type(exc).__name__
        metrics.count("boot-failed")


def resilient_deploy(
    cloud,
    image,
    n_instances: int,
    approach: str = "mirror",
    plan: Optional[FaultPlan] = None,
    idents: Optional[dict] = None,
) -> ResilienceResult:
    """Deploy ``n_instances`` while ``plan`` (if any) injects faults.

    The initialization phase (image seeding, broadcast/qcow2 creation, VM
    construction) runs fault-free; the plan is armed at the start of the
    boot phase, so event times are relative to "all hypervisors launch".
    """
    from ..cloud.deployment import deploy
    from ..vmsim.boottrace import boot_trace

    base = deploy(cloud, image, n_instances, approach, idents=idents, run_boot=False)
    if plan is not None and plan.events:
        cloud.inject_faults(plan)

    fabric = cloud.fabric
    env = cloud.env
    t0 = env.now
    traffic0 = cloud.metrics.total_traffic()
    result = ResilienceResult(
        approach=approach,
        n_instances=n_instances,
        init_time=base.init_time,
        vms=base.vms,
    )
    boots = []
    for i, vm in enumerate(base.vms):
        trace = boot_trace(image, cloud.calib.boot, fabric.rng.get("fault-trace", approach, i))
        # host.spawn (not env.process): a crash of the VM's node must kill
        # the in-flight boot, exactly like the hypervisor process dying.
        boots.append(vm.host.spawn(_guarded_boot(vm, trace, result), name=f"boot-{vm.name}"))
    if boots:
        cloud.run(env.all_of(boots))
    result.completion_time = env.now - t0
    result.boot_times = [vm.boot_time for vm in base.vms if vm.boot_time is not None]
    result.total_traffic = cloud.metrics.total_traffic() - traffic0
    return result
