"""Shared machinery of the tracked benchmark harnesses.

Every tracked benchmark (``bench_scale``, ``bench_churn``,
``bench_lineage``, ``bench_topo``) follows the same protocol: measure a
deterministic grid point-by-point in forked children, compare the simulated
outcomes *exactly* against a committed ``BENCH_*.json``, gate wall-clock
throughput with a fractional tolerance, and self-test the gate logic in a
``--smoke`` mode against doctored copies of its own output. This module
holds the protocol pieces so each harness only writes its grid, its
acceptance invariants, and its printout.

* :func:`run_in_child` — run a measurement callable in a forked child so
  ``ru_maxrss`` is a true per-point peak, not a harness high-water mark;
* :func:`rss_mib` — the current process's peak RSS (the child calls it);
* :func:`load_tracked` / :func:`write_tracked` — the ``BENCH_*.json``
  round-trip (sorted keys, trailing newline — stable diffs);
* :func:`jcopy` — JSON-round-trip deep copy (what the smoke self-tests
  doctor);
* :func:`field_drift` — exact-match comparison of deterministic simulated
  outcomes against the committed row;
* :func:`throughput_floor` — the fractional wall-clock regression gate.
"""

from __future__ import annotations

import json
import multiprocessing
import resource
from pathlib import Path
from typing import Callable, Iterable, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent


def rss_mib() -> float:
    """Peak RSS of the current process in MiB (Linux ``ru_maxrss`` is KiB)."""
    return round(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1
    )


def _child(conn, fn: Callable[..., dict], args: tuple) -> None:
    try:
        conn.send(fn(*args))
    except BaseException as exc:  # surface the child's failure, don't hang
        conn.send({"error": f"{type(exc).__name__}: {exc}"})
    finally:
        conn.close()


def run_in_child(fn: Callable[..., dict], *args, label: str = "point") -> dict:
    """Run ``fn(*args) -> dict`` in a forked child and return its result.

    The fork gives a true per-point peak RSS (the child starts from the
    parent's COW image, so its ``ru_maxrss`` reflects this workload alone).
    Where fork is unavailable the call degrades to in-process execution and
    RSS becomes a monotone high-water mark. A dict with an ``"error"`` key
    (or a crashed child) raises ``RuntimeError`` with the child's traceback
    summary.
    """
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        return fn(*args)
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_child, args=(child_conn, fn, args))
    proc.start()
    child_conn.close()
    row = parent_conn.recv()
    proc.join()
    parent_conn.close()
    if "error" in row:
        raise RuntimeError(f"{label} failed in child: {row['error']}")
    return row


def load_tracked(path: Path) -> dict:
    with open(path) as fh:
        return json.load(fh)


def write_tracked(path: Path, data: dict) -> None:
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def jcopy(obj):
    """Deep copy via a JSON round-trip (doctorable smoke-test copies)."""
    return json.loads(json.dumps(obj))


def field_drift(
    label: str, now: dict, base: Optional[dict], fields: Iterable[str]
) -> List[str]:
    """Exact-match gate on deterministic simulated outcomes.

    Returns one failure line per field of ``now`` that differs from the
    committed ``base`` row; an absent ``base`` (a new grid point) passes.
    """
    if base is None:
        return []
    return [
        f"{label}: {field} {now[field]} != committed {base[field]} "
        "(the simulated workload changed; rerun with --update if intentional)"
        for field in fields
        if now[field] != base[field]
    ]


def throughput_floor(
    label: str,
    now_value: float,
    base_value: float,
    tolerance: float,
    unit: str = "events/s",
) -> List[str]:
    """Fractional wall-clock regression gate (empty list = within budget)."""
    if base_value and now_value < base_value * (1.0 - tolerance):
        return [
            f"{label}: {now_value} {unit} is more than {tolerance:.0%} "
            f"below the committed {base_value} {unit}"
        ]
    return []
