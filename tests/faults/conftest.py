"""Fixtures for the fault-injection tests: a tiny registered profile."""

import pytest

from repro.common.units import KiB, MiB
from repro.runner import BenchProfile, register_profile

#: same micro profile the runner tests use: one resilience point simulates
#: in well under a second, which keeps the jobs=1 vs jobs=4 comparison cheap
MICRO = BenchProfile(
    name="micro-test",
    pool_nodes=6,
    instance_counts=(1, 2),
    image_size=64 * MiB,
    chunk_size=256 * KiB,
    touched_bytes=8 * MiB,
    n_regions=16,
    diff_bytes=2 * MiB,
    mc_workers=3,
    mc_total_compute=10.0,
    bonnie_working_set=8 * MiB,
)


@pytest.fixture
def micro_profile():
    return register_profile(MICRO)
