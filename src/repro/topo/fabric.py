"""Topology model: hosts -> racks -> (optional pods) -> core.

A :class:`Topology` is a passive description shared by the flow network
(which turns it into trunk links) and the locality-aware policies (which
only need ``rack()`` / ``scope()``).  It never touches the event loop,
so attaching one with a single rack must leave every simulated timeline
bit-identical to the flat model — the network layer guarantees that by
only switching engines when ``multi_rack`` is true.

Capacities are bytes/second, like everywhere else in simkit.  The rack
uplink is usually *derived* from the host NIC speed and an
oversubscription ratio via :func:`build_topology`::

    rack_uplink = hosts_per_rack * nic_bandwidth / oversubscription

so ``oversubscription=1`` is a non-blocking fabric and larger values
squeeze the trunk.  ``core_capacity=None`` models a non-blocking core:
only the rack (and pod) uplinks constrain cross-rack traffic.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence

# Scope labels used for per-tier traffic accounting.  ``scope()`` returns
# one of these for any (src, dst) host pair on distinct hosts.
INTRA_RACK = "intra-rack"
CROSS_RACK = "cross-rack"
CROSS_POD = "cross-pod"

SCOPES = (INTRA_RACK, CROSS_RACK, CROSS_POD)


class Topology:
    """Static rack/pod layout plus per-tier trunk capacities.

    Host-to-rack assignment lives in ``rack_of``; hosts that were never
    placed default to rack 0, so infrastructure hosts (manager, NFS
    server) can be left implicit.
    """

    __slots__ = (
        "n_racks",
        "rack_uplink",
        "core_capacity",
        "racks_per_pod",
        "pod_uplink",
        "oversubscription",
        "rack_of",
    )

    def __init__(
        self,
        n_racks: int,
        rack_uplink: float,
        core_capacity: Optional[float] = None,
        racks_per_pod: int = 0,
        pod_uplink: Optional[float] = None,
        oversubscription: float = 1.0,
    ) -> None:
        if n_racks < 1:
            raise ValueError(f"n_racks must be >= 1, got {n_racks}")
        if rack_uplink <= 0:
            raise ValueError(f"rack_uplink must be positive, got {rack_uplink}")
        if core_capacity is not None and core_capacity <= 0:
            raise ValueError(f"core_capacity must be positive, got {core_capacity}")
        if racks_per_pod < 0:
            raise ValueError(f"racks_per_pod must be >= 0, got {racks_per_pod}")
        if racks_per_pod and pod_uplink is None:
            raise ValueError("pod_uplink is required when racks_per_pod is set")
        if pod_uplink is not None and pod_uplink <= 0:
            raise ValueError(f"pod_uplink must be positive, got {pod_uplink}")
        if oversubscription <= 0:
            raise ValueError(
                f"oversubscription must be positive, got {oversubscription}"
            )
        self.n_racks = int(n_racks)
        self.rack_uplink = float(rack_uplink)
        self.core_capacity = None if core_capacity is None else float(core_capacity)
        self.racks_per_pod = int(racks_per_pod)
        self.pod_uplink = None if pod_uplink is None else float(pod_uplink)
        self.oversubscription = float(oversubscription)
        self.rack_of: Dict[str, int] = {}

    # -- layout ---------------------------------------------------------

    @property
    def multi_rack(self) -> bool:
        return self.n_racks > 1

    @property
    def n_pods(self) -> int:
        if not self.racks_per_pod:
            return 1
        return (self.n_racks + self.racks_per_pod - 1) // self.racks_per_pod

    def place(self, host_name: str, rack: int) -> None:
        if not 0 <= rack < self.n_racks:
            raise ValueError(f"rack {rack} out of range [0, {self.n_racks})")
        self.rack_of[host_name] = rack

    def place_blocked(self, host_names: Sequence[str]) -> None:
        """Assign hosts to racks in contiguous blocks (node000.. in rack 0)."""
        if not host_names:
            return
        per_rack = math.ceil(len(host_names) / self.n_racks)
        for i, name in enumerate(host_names):
            self.place(name, min(i // per_rack, self.n_racks - 1))

    def rack(self, host_name: str) -> int:
        return self.rack_of.get(host_name, 0)

    def pod(self, rack: int) -> int:
        if not self.racks_per_pod:
            return 0
        return rack // self.racks_per_pod

    # -- classification -------------------------------------------------

    def scope(self, src_name: str, dst_name: str) -> str:
        """Classify a transfer between two distinct hosts by tier."""
        r1 = self.rack_of.get(src_name, 0)
        r2 = self.rack_of.get(dst_name, 0)
        if r1 == r2:
            return INTRA_RACK
        if self.racks_per_pod and r1 // self.racks_per_pod != r2 // self.racks_per_pod:
            return CROSS_POD
        return CROSS_RACK

    def same_rack(self, a: str, b: str) -> bool:
        return self.rack_of.get(a, 0) == self.rack_of.get(b, 0)

    def describe(self) -> str:
        parts = [f"{self.n_racks} rack(s), uplink {self.rack_uplink / 1e6:.1f} MB/s"]
        if self.racks_per_pod:
            parts.append(
                f"{self.n_pods} pod(s) of {self.racks_per_pod} rack(s), "
                f"pod uplink {self.pod_uplink / 1e6:.1f} MB/s"
            )
        if self.core_capacity is not None:
            parts.append(f"core {self.core_capacity / 1e6:.1f} MB/s")
        else:
            parts.append("non-blocking core")
        parts.append(f"oversubscription {self.oversubscription:g}:1")
        return ", ".join(parts)


def build_topology(
    host_names: Iterable[str],
    n_racks: int,
    nic_bandwidth: float,
    oversubscription: float = 4.0,
    rack_uplink: Optional[float] = None,
    core_capacity: Optional[float] = None,
    racks_per_pod: int = 0,
    pod_uplink: Optional[float] = None,
    infra_hosts: Iterable[str] = (),
) -> Topology:
    """Derive a topology from cluster shape and an oversubscription ratio.

    ``host_names`` are block-assigned to racks; ``infra_hosts`` (manager,
    NFS server, ...) land in rack 0.  The rack uplink defaults to the
    aggregate host bandwidth in a rack divided by ``oversubscription``;
    pass ``rack_uplink`` to pin it explicitly.
    """
    names = list(host_names)
    if rack_uplink is None:
        per_rack = math.ceil(max(1, len(names)) / max(1, n_racks))
        rack_uplink = per_rack * nic_bandwidth / oversubscription
    topo = Topology(
        n_racks=n_racks,
        rack_uplink=rack_uplink,
        core_capacity=core_capacity,
        racks_per_pod=racks_per_pod,
        pod_uplink=pod_uplink,
        oversubscription=oversubscription,
    )
    topo.place_blocked(names)
    for name in infra_hosts:
        topo.place(name, 0)
    return topo
