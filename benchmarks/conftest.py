"""Benchmark fixtures: per-session caches so one sweep feeds several panels."""

import pytest


@pytest.fixture(scope="session")
def sweep_cache():
    """Shared store for sweep results reused across figure panels."""
    return {}
