"""Multi-tenant churn: long-horizon arrivals, placement, lifecycle, SLOs.

The paper's benchmarks measure one-shot campaigns; this package turns the
same machinery into a steady-state system: open-loop request generators
(:mod:`~repro.churn.arrivals`), an admission/placement layer
(:mod:`~repro.churn.scheduler`), per-instance lifecycle processes with
snapshot retirement and periodic garbage collection
(:mod:`~repro.churn.lifecycle`), and p50/p95/p99 service-level metrics
(:mod:`~repro.churn.slo`) — orchestrated by
:class:`~repro.churn.engine.ChurnEngine`.
"""

from .arrivals import (
    ARRIVAL_KINDS, ChurnSpec, DeployRequest, RestoreRequest, SnapshotRequest,
    TeardownRequest, generate_trace, trace_crc,
)
from .engine import ChurnEngine, ChurnResult
from .lifecycle import VmRuntime
from .scheduler import POLICIES, LocalityMap, Scheduler
from .slo import SloTracker

__all__ = [
    "ARRIVAL_KINDS",
    "POLICIES",
    "ChurnEngine",
    "ChurnResult",
    "ChurnSpec",
    "DeployRequest",
    "LocalityMap",
    "RestoreRequest",
    "Scheduler",
    "SloTracker",
    "SnapshotRequest",
    "TeardownRequest",
    "VmRuntime",
    "generate_trace",
    "trace_crc",
]
