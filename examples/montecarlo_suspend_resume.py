#!/usr/bin/env python3
"""Monte Carlo workers with suspend/resume migration (paper §5.5).

Runs the paper's real-world workload end to end: a fleet of Monte Carlo
workers saving intermediate results inside their images is deployed with the
mirroring VFS, computed half-way, multisnapshotted, terminated, and resumed
*on different nodes* from the captured snapshots — continuing exactly where
they left off.

Run: ``python examples/montecarlo_suspend_resume.py [n_workers]``
"""

import sys

from repro.calibration import Calibration, ImageSpec
from repro.cloud import build_cloud
from repro.cloud.middleware import CloudMiddleware
from repro.common.units import KiB, MiB, fmt_time
from repro.vmsim import MonteCarloConfig, MonteCarloWorker, boot_trace, make_image


def main() -> None:
    n_workers = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    calib = Calibration(
        image=ImageSpec(size=256 * MiB, chunk_size=256 * KiB, boot_touched_bytes=16 * MiB)
    )
    cloud = build_cloud(2 * n_workers, seed=99, calib=calib)
    image = make_image(calib.image.size, calib.image.boot_touched_bytes, n_regions=24)
    mw = CloudMiddleware(cloud)
    cfg = MonteCarloConfig(
        total_compute=600.0, checkpoint_interval=60.0,
        state_bytes=10 * MiB, state_offset=image.write_base,
    )

    # --- phase 1: deploy and compute half of the samples --------------------
    res = mw.deploy_set(image, n_workers, "mirror")
    print(f"{n_workers} workers booted in {fmt_time(res.completion_time)} "
          f"(avg boot {fmt_time(res.avg_boot_time)})")
    workers = [MonteCarloWorker(vm.name, vm.backend, cfg) for vm in res.vms]
    cloud.run(cloud.env.all_of(
        [cloud.env.process(w.run(until_progress=300.0)) for w in workers]
    ))
    print(f"half-way point reached at t={fmt_time(cloud.env.now)} "
          f"(each worker computed {workers[0].progress:.0f}s worth of samples)")

    # --- phase 2: multisnapshot and terminate --------------------------------
    campaign = mw.snapshot_set(res.vms, "mirror")
    mw.terminate_set(res.vms)
    print(f"deployment snapshotted in {fmt_time(campaign.completion_time)} "
          f"({campaign.total_bytes_moved / 2**20:.0f} MiB of diffs persisted) "
          "and terminated")

    # --- phase 3: resume every worker on a different node --------------------
    fresh = cloud.compute[n_workers:]
    resumed = mw.resume_set(list(campaign.per_instance), fresh)
    boots = []
    for i, vm in enumerate(resumed):
        trace = boot_trace(image, calib.boot, cloud.fabric.rng.get("resume-trace", i))
        boots.append(cloud.env.process(vm.boot(trace)))
    cloud.run(cloud.env.all_of(boots))
    print(f"resumed on fresh nodes {fresh[0].name}..{fresh[-1].name}, rebooted")

    new_workers = [MonteCarloWorker(vm.name, vm.backend, cfg) for vm in resumed]
    cloud.run(cloud.env.all_of([cloud.env.process(w.run()) for w in new_workers]))
    assert all(w.finished for w in new_workers)
    print(f"all workers finished at t={fmt_time(cloud.env.now)}; "
          "progress was carried through the snapshots (no recomputation)")


if __name__ == "__main__":
    main()
