"""Hosts and the fabric bundle.

A :class:`Host` is one physical machine of the simulated cluster: a NIC on
the shared fabric, a local disk, a CPU core pool, and a local file system
namespace (sparse files holding payloads). A :class:`Fabric` bundles the
environment, the network, metrics and RNG streams — it is the single object
threaded through every service constructor.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from ..common.errors import SimulationError
from ..common.payload import SparseFile
from ..common.rng import RngStreams
from ..common.units import MB, MILLISECONDS
from ..obs.span import NULL_TRACER
from .core import Environment, Event
from .disk import Disk
from .network import FlowNetwork, Nic
from .resources import Resource
from .trace import Metrics


class Fabric:
    """Environment + network + metrics + RNG: the simulation context."""

    def __init__(
        self,
        seed: int = 0,
        nic_bandwidth: float = 117.5 * MB,
        latency: float = 0.1 * MILLISECONDS,
        fairness: str = "equal-share",
        rebalance: Optional[str] = None,
        topology=None,
    ):
        self.env = Environment()
        self.metrics = Metrics()
        #: observability: inert by default; :func:`repro.obs.install_tracer`
        #: swaps in a live tracer (never affects the timeline either way)
        self.tracer = NULL_TRACER
        self.network = FlowNetwork(
            self.env,
            metrics=self.metrics,
            latency=latency,
            fairness=fairness,
            rebalance=rebalance,
            topology=topology,
        )
        self.rng = RngStreams(seed)
        self.nic_bandwidth = nic_bandwidth
        self.hosts: Dict[str, Host] = {}
        #: per-pair TCP/service handshake cost charged on first contact
        #: (0 keeps unit tests exact; the calibrated clouds set it)
        self.connection_setup: float = 0.0
        self._rpc_conn_pairs: set = set()

    @property
    def topology(self):
        """The attached :class:`~repro.topo.Topology`, or None (flat fabric)."""
        return self.network.topology

    def add_host(
        self,
        name: str,
        cores: int = 8,
        disk_read_bw: float = 55 * MB,
        disk_write_bw: float = 55 * MB,
        disk_seek_time: float = 8 * MILLISECONDS,
        nic_bandwidth: Optional[float] = None,
    ) -> "Host":
        if name in self.hosts:
            raise SimulationError(f"duplicate host {name!r}")
        bw = nic_bandwidth if nic_bandwidth is not None else self.nic_bandwidth
        nic = self.network.add_nic(name, bw)
        disk = Disk(
            self.env,
            f"{name}:disk",
            read_bandwidth=disk_read_bw,
            write_bandwidth=disk_write_bw,
            seek_time=disk_seek_time,
            metrics=self.metrics,
        )
        host = Host(self, name, nic, disk, cores)
        self.hosts[name] = host
        return host

    def run(self, until=None):
        return self.env.run(until)


class Host:
    """One machine: NIC, disk, CPU pool, local sparse-file namespace."""

    def __init__(self, fabric: Fabric, name: str, nic: Nic, disk: Disk, cores: int):
        self.fabric = fabric
        self.env = fabric.env
        self.name = name
        self.nic = nic
        self.disk = disk
        self.cpu = Resource(fabric.env, capacity=cores)
        #: local file system: path -> SparseFile (content only; timing via disk)
        self.files: Dict[str, SparseFile] = {}
        #: RPC services bound on this host (service name -> object)
        self.services: Dict[str, object] = {}
        #: memoized (service, method) -> bound handler, filled by rpc.call
        self._rpc_cache: Dict[tuple, object] = {}
        #: crashed flag (fault injection); see :meth:`fail` / :meth:`recover`
        self.down = False
        #: processes started via :meth:`spawn` and still running — the set a
        #: crash must kill (insertion-ordered for deterministic interrupts)
        self._live_procs: Dict[object, None] = {}

    # ------------------------------------------------------------------ #
    # local file system (content plane; callers add disk timing explicitly)
    # ------------------------------------------------------------------ #
    def create_file(self, path: str, size: int) -> SparseFile:
        if path in self.files:
            raise SimulationError(f"{self.name}: file {path!r} already exists")
        f = SparseFile(size)
        self.files[path] = f
        return f

    def open_file(self, path: str) -> SparseFile:
        try:
            return self.files[path]
        except KeyError:
            raise SimulationError(f"{self.name}: no such file {path!r}") from None

    def unlink(self, path: str) -> None:
        self.files.pop(path, None)

    def exists(self, path: str) -> bool:
        return path in self.files

    # ------------------------------------------------------------------ #
    # computation
    # ------------------------------------------------------------------ #
    def compute(self, seconds: float) -> Generator[Event, None, None]:
        """Occupy one CPU core for ``seconds`` of simulated time."""
        req = self.cpu.request()
        yield req
        try:
            yield self.env.timeout(seconds)
        finally:
            self.cpu.release()

    def spawn(self, gen, name: str = ""):
        proc = self.env.process(gen, name=f"{self.name}:{name}")
        # Track until completion so a crash can interrupt it. The bookkeeping
        # adds no scheduled events, so timelines without faults are unchanged.
        live = self._live_procs
        live[proc] = None
        proc.callbacks.append(lambda _ev: live.pop(proc, None))
        return proc

    # ------------------------------------------------------------------ #
    # fault injection
    # ------------------------------------------------------------------ #
    def fail(self, cause: object = "host-crash") -> None:
        """Crash the host: RPCs to it fail, its flows abort, its processes die.

        Services bound on the host get an ``on_host_crash()`` hook (if they
        define one) to model volatile-state loss — e.g. a data provider's RAM
        write buffer and unflushed chunks.
        """
        if self.down:
            return
        self.down = True
        from . import rpc  # local import: rpc imports Host

        rpc.host_down(self)
        self.fabric.network.fail_nic(self.nic, cause=f"{self.name}: {cause}")
        for proc in list(self._live_procs):
            proc.interrupt(cause)
        self._live_procs.clear()
        for svc in self.services.values():
            hook = getattr(svc, "on_host_crash", None)
            if hook is not None:
                hook()
        self.fabric.metrics.count("host-crash")

    def recover(self) -> None:
        """Revive a crashed host (services get ``on_host_restart()``)."""
        if not self.down:
            return
        self.down = False
        from . import rpc

        rpc.host_up(self)
        for svc in self.services.values():
            hook = getattr(svc, "on_host_restart", None)
            if hook is not None:
                hook()
        self.fabric.metrics.count("host-restart")

    def __repr__(self) -> str:
        return f"Host({self.name})"
