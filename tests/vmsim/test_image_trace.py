"""Tests for image layout and boot-trace generation."""

import numpy as np
import pytest

from repro.calibration import BootModel
from repro.common.errors import SimulationError
from repro.common.units import KiB, MiB
from repro.vmsim.boottrace import boot_trace, trace_stats
from repro.vmsim.image import make_image


class TestMakeImage:
    def test_hot_set_totals(self):
        img = make_image(256 * MiB, 24 * MiB, n_regions=32)
        total = img.touched_bytes()
        # integer truncation/min-size clamping keeps it within a few percent
        assert 0.95 * 24 * MiB <= total <= 1.2 * 24 * MiB
        assert len(img.hot_regions) == 32

    def test_boot_sector_first(self):
        img = make_image(64 * MiB, 8 * MiB, n_regions=16)
        assert img.hot_regions[0].offset == 0
        assert img.hot_regions[0].size == 4 * KiB

    def test_regions_disjoint_and_ordered(self):
        img = make_image(256 * MiB, 32 * MiB, n_regions=48)
        prev_end = -1
        for r in img.hot_regions:
            assert r.offset > prev_end or prev_end == -1
            assert r.offset + r.size <= img.size
            prev_end = r.offset + r.size

    def test_deterministic_by_tag_and_seed(self):
        a = make_image(64 * MiB, 8 * MiB, tag="x", seed=3)
        b = make_image(64 * MiB, 8 * MiB, tag="x", seed=3)
        c = make_image(64 * MiB, 8 * MiB, tag="y", seed=3)
        assert a.hot_regions == b.hot_regions
        assert a.hot_regions != c.hot_regions

    def test_hot_set_must_fit(self):
        with pytest.raises(SimulationError):
            make_image(8 * MiB, 8 * MiB)

    def test_write_base_inside_image(self):
        img = make_image(256 * MiB, 24 * MiB)
        assert 0 < img.write_base < img.size


class TestBootTrace:
    def _trace(self, seed=0, model=None):
        img = make_image(256 * MiB, 24 * MiB, n_regions=32)
        model = model or BootModel()
        return img, boot_trace(img, model, np.random.default_rng(seed)), model

    def test_reads_cover_hot_set(self):
        img, ops, model = self._trace()
        stats = trace_stats(ops)
        assert stats["read_bytes"] == img.touched_bytes()

    def test_write_volume_matches_model(self):
        img, ops, model = self._trace()
        stats = trace_stats(ops)
        assert stats["writes"] == model.write_ops
        assert stats["write_bytes"] == pytest.approx(model.write_bytes, rel=0.1)

    def test_cpu_time_matches_model(self):
        img, ops, model = self._trace()
        assert trace_stats(ops)["cpu_seconds"] == pytest.approx(model.cpu_seconds, rel=1e-6)

    def test_boot_sector_is_first_read(self):
        img, ops, _ = self._trace()
        first_read = next(o for o in ops if o.kind == "read")
        assert first_read.offset == 0

    def test_cpu_interleaved_between_ios(self):
        img, ops, _ = self._trace()
        kinds = [o.kind for o in ops]
        for a, b in zip(kinds, kinds[1:]):
            assert not (a != "cpu" and b != "cpu"), "two I/Os without a CPU burst"

    def test_traces_jittered_but_same_volume(self):
        img = make_image(256 * MiB, 24 * MiB, n_regions=32)
        t1 = boot_trace(img, BootModel(), np.random.default_rng(1))
        t2 = boot_trace(img, BootModel(), np.random.default_rng(2))
        assert t1 != t2
        assert trace_stats(t1)["read_bytes"] == trace_stats(t2)["read_bytes"]

    def test_reads_within_image(self):
        img, ops, _ = self._trace()
        for o in ops:
            if o.kind in ("read", "write"):
                assert 0 <= o.offset
                assert o.offset + o.nbytes <= img.size
