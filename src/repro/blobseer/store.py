"""Provider-side chunk storage (content plane).

A :class:`ChunkStore` holds the actual chunk payloads of one data provider.
It is pure content: all timing (disk queue, RAM cache behaviour) lives in the
provider *service* wrapping it. Keys are the globally unique chunk keys
minted by clients at write time and recorded in the metadata leaves.
"""

from __future__ import annotations

from typing import Dict, Iterable, KeysView

from ..common.errors import ChunkNotFoundError
from ..common.payload import Payload


class ChunkStore:
    """Immutable-chunk key-value store of one data provider."""

    def __init__(self):
        self._chunks: Dict[int, Payload] = {}

    def put(self, key: int, payload: Payload) -> None:
        """Store a chunk. Keys are write-once (chunks are immutable)."""
        if key in self._chunks:
            raise ChunkNotFoundError(f"chunk key {key} already stored (immutable)")
        self._chunks[key] = payload

    def get(self, key: int) -> Payload:
        try:
            return self._chunks[key]
        except KeyError:
            raise ChunkNotFoundError(f"no chunk with key {key}") from None

    def has(self, key: int) -> bool:
        return key in self._chunks

    def discard(self, key: int) -> None:
        """Remove a chunk (used only by failure injection)."""
        self._chunks.pop(key, None)

    def wipe(self) -> int:
        """Drop every chunk (total disk loss); returns the number dropped."""
        n = len(self._chunks)
        self._chunks.clear()
        return n

    def keys(self) -> KeysView[int]:
        return self._chunks.keys()

    def total_bytes(self) -> int:
        return sum(p.size for p in self._chunks.values())

    def __len__(self) -> int:
        return len(self._chunks)


class KeyMinter:
    """Process-wide unique chunk-key allocator (one per BlobSeer deployment)."""

    def __init__(self):
        self._next = 1

    def mint(self, n: int = 1) -> Iterable[int]:
        start = self._next
        self._next += n
        return range(start, start + n)

    def mint_one(self) -> int:
        key = self._next
        self._next += 1
        return key
