"""The per-node peer chunk cache.

Every compute node that participates in cooperative chunk exchange keeps a
bounded, RAM-accounted LRU of image chunks it has already obtained — from
the BlobSeer providers, from a peer, or ahead of time via the
profile-guided prefetcher. The cache is keyed by the chunk's *storage key*
(:attr:`~repro.blobseer.metadata.ChunkRef.key`): keys are globally unique
and stable across snapshots that share content through metadata shadowing,
so a chunk cached while booting version ``v`` also serves peers reading any
later snapshot that still references it.

The cache is pure state: it never touches the simulated clock. Serving and
transfer costs live in :mod:`repro.p2p.exchange`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional, Tuple

from ..common.errors import StorageError
from ..common.payload import Payload


class PeerChunkCache:
    """Bounded LRU of ``chunk key -> payload``, accounted in bytes."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise StorageError(
                f"peer cache capacity must be positive, got {capacity_bytes}"
            )
        self.capacity_bytes = int(capacity_bytes)
        self.used_bytes = 0
        #: LRU order: oldest entry first, most recently used last
        self._entries: "OrderedDict[int, Payload]" = OrderedDict()
        # lifetime stats (observers only; never affect the timeline)
        self.insertions = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    def get(self, key: int) -> Optional[Payload]:
        """Return the cached payload (refreshing recency) or ``None``."""
        payload = self._entries.get(key)
        if payload is not None:
            self._entries.move_to_end(key)
        return payload

    def put(self, key: int, payload: Payload) -> bool:
        """Insert a chunk, evicting LRU entries to stay within capacity.

        A chunk bigger than the whole cache is rejected (returns ``False``)
        rather than flushing everything for one uncacheable entry.
        """
        size = payload.size
        if size > self.capacity_bytes:
            return False
        entries = self._entries
        old = entries.get(key)
        if old is not None:
            entries.move_to_end(key)
            return True
        entries[key] = payload
        self.used_bytes += size
        self.insertions += 1
        while self.used_bytes > self.capacity_bytes:
            _evicted_key, evicted = entries.popitem(last=False)
            self.used_bytes -= evicted.size
            self.evictions += 1
        return True

    def put_many(self, items: Iterable[Tuple[int, Payload]]) -> int:
        """Insert several chunks; returns how many were accepted."""
        accepted = 0
        for key, payload in items:
            if self.put(key, payload):
                accepted += 1
        return accepted

    # ------------------------------------------------------------------ #
    def __contains__(self, key: int) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self):
        return self._entries.keys()

    def clear(self) -> None:
        """Drop everything (volatile state lost on a host crash)."""
        self._entries.clear()
        self.used_bytes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PeerChunkCache({len(self)} chunks, "
            f"{self.used_bytes}/{self.capacity_bytes} B)"
        )
