"""System-level acceptance: tracing never perturbs the timeline, and the
span tree it produces actually explains where deployment time went.

Two pinned guarantees:

* **Bit-identity** — a traced run of the fig. 4 / fig. 5 cycles produces
  exactly the same clock, event count, traffic, and boot times as an
  untraced run. Spans are observers only.
* **Coverage** — every traced VM boot is >= 95% explained by specific
  (non-"other") descendant spans, and the per-category breakdown sums to
  the boot time within 1%.
"""

import json

import pytest

from repro import obs
from repro.calibration import Calibration, ImageSpec
from repro.cloud import build_cloud, deploy, snapshot_all
from repro.common.units import KiB, MiB
from repro.vmsim import make_image

CALIB = Calibration(
    image=ImageSpec(size=64 * MiB, chunk_size=256 * KiB, boot_touched_bytes=8 * MiB)
)
N_NODES = 8
N_INSTANCES = 4
SEED = 7


def run_cycle(approach="mirror", traced=False, with_snapshot=False):
    cloud = build_cloud(N_NODES, seed=SEED, calib=CALIB)
    tracer = obs.install_tracer(cloud.fabric) if traced else None
    image = make_image(CALIB.image.size, CALIB.image.boot_touched_bytes, n_regions=16)
    result = deploy(cloud, image, N_INSTANCES, approach)
    if with_snapshot:
        snapshot_all(cloud, result.vms, approach)
    fingerprint = {
        "now": cloud.env.now,
        "events": cloud.env.event_count,
        "traffic": dict(cloud.metrics.traffic),
        "boot_times": tuple(result.boot_times),
        "completion": result.completion_time,
    }
    return fingerprint, tracer


class TestBitIdentity:
    @pytest.mark.parametrize("approach", ["mirror", "qcow2-pvfs", "prepropagation"])
    def test_traced_deploy_matches_untraced(self, approach):
        plain, _ = run_cycle(approach, traced=False)
        traced, tracer = run_cycle(approach, traced=True)
        # exact equality on purpose: an enabled tracer must not move a
        # single event, which is what makes --trace safe on real figures
        assert traced == plain
        assert len(tracer.spans) > 0

    def test_traced_snapshot_cycle_matches_untraced(self):
        plain, _ = run_cycle("mirror", traced=False, with_snapshot=True)
        traced, tracer = run_cycle("mirror", traced=True, with_snapshot=True)
        assert traced == plain
        assert obs.snapshot_spans(tracer.spans)


class TestAcceptance:
    @pytest.fixture(scope="class")
    def traced_run(self):
        fingerprint, tracer = run_cycle("mirror", traced=True, with_snapshot=True)
        return fingerprint, tracer

    def test_no_spans_leak_open(self, traced_run):
        _, tracer = traced_run
        assert tracer.finish_open_spans() == 0

    def test_one_boot_root_per_instance(self, traced_run):
        _, tracer = traced_run
        roots = obs.boot_spans(tracer.spans)
        assert len(roots) == N_INSTANCES
        for root, boot_time in zip(roots, traced_run[0]["boot_times"]):
            assert root.duration == pytest.approx(boot_time)

    def test_boot_coverage_at_least_95_percent(self, traced_run):
        _, tracer = traced_run
        for root in obs.boot_spans(tracer.spans):
            assert obs.coverage(root, tracer.spans) >= 0.95, root.name

    def test_breakdown_sums_to_boot_time_within_1_percent(self, traced_run):
        _, tracer = traced_run
        for root in obs.boot_spans(tracer.spans):
            breakdown = obs.category_breakdown(root, tracer.spans)
            assert sum(breakdown.values()) == pytest.approx(
                root.duration, rel=0.01
            ), root.name
            # the breakdown must be explained by real categories
            assert "other" not in breakdown

    def test_snapshot_roots_cover_campaign(self, traced_run):
        _, tracer = traced_run
        snaps = obs.snapshot_spans(tracer.spans)
        assert len(snaps) == N_INSTANCES
        for root in snaps:
            breakdown = obs.category_breakdown(root, tracer.spans)
            assert sum(breakdown.values()) == pytest.approx(root.duration, rel=0.01)

    def test_trace_json_is_perfetto_loadable(self, traced_run, tmp_path):
        _, tracer = traced_run
        path = obs.write_trace_json(tmp_path / "fig.trace.json", tracer)
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert {ev["ph"] for ev in events} <= {"M", "X", "i"}
        complete = [ev for ev in events if ev["ph"] == "X"]
        assert len(complete) == len(tracer.spans)
        for ev in complete:
            assert ev["dur"] >= 0.0
            assert isinstance(ev["args"]["span_id"], int)

    def test_span_categories_are_specific(self, traced_run):
        _, tracer = traced_run
        cats = {s.category for s in tracer.spans}
        # the instrumented layers all show up in one deploy+snapshot cycle
        for expected in ("deploy", "vm", "cpu", "vfs", "rpc", "net", "snapshot"):
            assert expected in cats, expected
