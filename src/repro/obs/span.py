"""Causally-linked spans over simulated time: the tracing core.

A :class:`Span` is one timed operation — an RPC, a network flow, a VM boot
phase — carrying ``trace_id``/``span_id``/``parent_id`` links, sim-time
start/end, attributes and point events. A :class:`Tracer` produces spans and
threads *context* through the simulation so nesting comes out right without
any site passing parents around explicitly:

* **Within a process** spans nest on a per-process stack: a span started
  while another is open on the same simkit process becomes its child.
* **Across process spawns** the child process inherits, as ambient parent,
  whichever span was open in the spawner at spawn time (the engine calls
  :meth:`Tracer.on_spawn` from ``Process.__init__``). This is how a parallel
  chunk-fetch scatter, or a timeout-raced RPC child process, stays linked to
  the client span that caused it.
* **Across RPC boundaries** ``simkit.rpc.call`` opens a client span and a
  nested server span around the handler, so the request envelope carries the
  context exactly like a trace header would on a real wire.

Like :class:`~repro.simkit.trace.Metrics`, spans are observers only: the
tracer never schedules events, touches RNG streams, or adds simulated time,
so an enabled tracer leaves every timeline bit-identical (regression-tested).
The default tracer on every fabric is :data:`NULL_TRACER`, whose ``enabled``
flag is ``False`` — every instrumentation site guards on it, so a disabled
run pays one attribute load and branch per site.

This module deliberately imports nothing from the rest of ``repro`` so the
low-level simkit layers can depend on it without cycles.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]

#: monotonically increasing trace-id counter (per python process; trace ids
#: only need to be unique within one exported file)
_trace_counter = 0


class Span:
    """One timed, attributed operation in a trace tree."""

    __slots__ = (
        "tracer",
        "span_id",
        "parent_id",
        "name",
        "category",
        "t0",
        "t1",
        "attrs",
        "events",
        "track",
        "error",
        "_ctx_key",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        category: str,
        t0: float,
        track: int,
        ctx_key: int,
        attrs: Dict[str, Any],
    ):
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.t0 = t0
        self.t1: Optional[float] = None
        self.attrs = attrs
        self.events: List[Tuple[float, str, Dict[str, Any]]] = []
        self.track = track
        self.error: Optional[str] = None
        self._ctx_key = ctx_key

    # ------------------------------------------------------------------ #
    def set(self, **attrs: Any) -> "Span":
        """Attach/overwrite attributes."""
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point event at the current simulated time."""
        self.events.append((self.tracer.env.now, name, attrs))

    def set_error(self, exc) -> None:
        """Mark the span failed; accepts an exception or a message string."""
        if isinstance(exc, BaseException):
            self.error = f"{type(exc).__name__}: {exc}"
        else:
            self.error = str(exc)

    def finish(self) -> None:
        """Close the span at the current simulated time (idempotent)."""
        if self.t1 is None:
            self.t1 = self.tracer.env.now
            self.tracer._pop(self)

    @property
    def duration(self) -> float:
        """Span length; an open span reads as zero-length."""
        return (self.t1 - self.t0) if self.t1 is not None else 0.0

    # context-manager protocol: ``with tracer.start(...):``
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None and self.error is None:
            self.set_error(exc)
        self.finish()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = f"{self.t1:.6f}" if self.t1 is not None else "open"
        return f"Span#{self.span_id}({self.name!r}, {self.category}, {self.t0:.6f}->{end})"


class Tracer:
    """Span factory bound to one simulation :class:`Environment`."""

    enabled = True

    def __init__(self, env, trace_id: Optional[str] = None):
        global _trace_counter
        _trace_counter += 1
        self.env = env
        self.trace_id = trace_id if trace_id is not None else f"trace-{_trace_counter:04d}"
        self.spans: List[Span] = []
        self._next_span = 0
        #: per-process span stacks; key = id(Process), 0 = outside any process
        self._stacks: Dict[int, List[Span]] = {}
        #: ambient parent captured at spawn time (context propagation)
        self._inherit: Dict[int, Span] = {}
        #: export tracks: ctx key -> (track number, label)
        self._track_ids: Dict[int, int] = {0: 0}
        self._track_labels: Dict[int, str] = {0: "main"}
        self._next_track = 1

    # ------------------------------------------------------------------ #
    # context
    # ------------------------------------------------------------------ #
    def _ctx_key(self) -> int:
        proc = self.env._active_process
        return id(proc) if proc is not None else 0

    def current(self) -> Optional[Span]:
        """The innermost open span of the currently executing process.

        Falls back to the ambient parent inherited at spawn time when the
        process has not opened any span of its own yet.
        """
        key = self._ctx_key()
        stack = self._stacks.get(key)
        if stack:
            return stack[-1]
        if key:
            return self._inherit.get(key)
        return None

    def on_spawn(self, proc) -> None:
        """Engine hook: ``proc`` was just created; capture its ambient parent.

        Called from ``Process.__init__`` (only when a tracer is installed).
        Registers a completion callback to drop the bookkeeping — callbacks
        never schedule events, so the timeline is untouched.
        """
        parent = self.current()
        key = id(proc)
        if parent is not None:
            self._inherit[key] = parent
        if proc.callbacks is not None:
            proc.callbacks.append(lambda _ev, k=key: self._forget(k))

    def _forget(self, key: int) -> None:
        self._inherit.pop(key, None)
        self._stacks.pop(key, None)
        self._track_ids.pop(key, None)

    def _track_for(self, key: int) -> int:
        track = self._track_ids.get(key)
        if track is None:
            track = self._next_track
            self._next_track += 1
            self._track_ids[key] = track
            proc = self.env._active_process
            label = getattr(proc, "name", "") or f"proc-{track}"
            self._track_labels[track] = label
        return track

    # ------------------------------------------------------------------ #
    # span production
    # ------------------------------------------------------------------ #
    def _make(self, name: str, category: str, parent: Optional[Span], attrs) -> Span:
        key = self._ctx_key()
        if parent is None:
            parent = self.current()
        self._next_span += 1
        span = Span(
            self,
            self._next_span,
            parent.span_id if parent is not None else None,
            name,
            category,
            self.env.now,
            self._track_for(key),
            key,
            attrs,
        )
        self.spans.append(span)
        return span

    def start(self, name: str, category: str = "other", parent: Optional[Span] = None, **attrs) -> Span:
        """Open a span and push it on the current process's context stack.

        Subsequent spans started in the same process nest under it until it
        finishes. Use as a context manager for the common enclosing case.
        """
        span = self._make(name, category, parent, attrs)
        self._stacks.setdefault(span._ctx_key, []).append(span)
        return span

    def start_async(self, name: str, category: str = "other", parent: Optional[Span] = None, **attrs) -> Span:
        """Open a span *without* making it the ambient context.

        For operations that outlive the instant they were started from and
        complete elsewhere — network flows ending in the completion sentinel,
        for example. The span is still parented to the current context.
        """
        return self._make(name, category, parent, attrs)

    def _pop(self, span: Span) -> None:
        stack = self._stacks.get(span._ctx_key)
        if stack:
            try:
                stack.remove(span)
            except ValueError:
                pass

    # ------------------------------------------------------------------ #
    def finish_open_spans(self) -> int:
        """Close every span still open (end of run); returns how many."""
        n = 0
        for span in self.spans:
            if span.t1 is None:
                span.t1 = self.env.now
                n += 1
        self._stacks.clear()
        return n

    def track_label(self, track: int) -> str:
        return self._track_labels.get(track, f"proc-{track}")


class NullTracer:
    """The zero-overhead default: ``enabled`` is False, everything no-ops.

    Instrumentation sites branch on ``tracer.enabled`` and skip span
    construction entirely; the engine-level spawn hook is skipped too because
    installing a tracer also sets ``env._tracer``. The methods below exist so
    accidental unguarded use degrades to a no-op instead of crashing.
    """

    enabled = False
    spans: List[Span] = []

    def current(self) -> None:
        return None

    def on_spawn(self, proc) -> None:
        pass

    def start(self, name: str, category: str = "other", parent=None, **attrs) -> "_NullSpan":
        return _NULL_SPAN

    def start_async(self, name: str, category: str = "other", parent=None, **attrs) -> "_NullSpan":
        return _NULL_SPAN

    def finish_open_spans(self) -> int:
        return 0


class _NullSpan:
    """Inert span returned by :class:`NullTracer`."""

    __slots__ = ()

    def set(self, **attrs):
        return self

    def event(self, name, **attrs):
        pass

    def set_error(self, exc):
        pass

    def finish(self):
        pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        pass


_NULL_SPAN = _NullSpan()

#: Shared inert tracer; the default value of ``Fabric.tracer``.
NULL_TRACER = NullTracer()
