"""Path-mode flow engine: trunk routing, rates, accounting, fault injection.

A multi-rack :class:`Topology` switches :class:`FlowNetwork` into path mode,
where a flow's rate is the min share over its endpoints *and* every trunk on
its rack-to-rack path. These tests pin the routing table, the oversubscribed
rates, the per-tier byte accounting (full on complete, wire bytes for
messages, partial on abort), and mid-run trunk capacity changes.
"""

import pytest

from repro.common.errors import ProviderUnavailableError
from repro.common.units import MB
from repro.simkit.core import Environment
from repro.simkit.network import FlowNetwork
from repro.topo import Topology

CAP = 100 * MB


def two_rack_net(rack_uplink=CAP, **kw):
    """2 racks x 2 hosts: h0,h1 in rack 0; h2,h3 in rack 1."""
    topo = Topology(n_racks=2, rack_uplink=rack_uplink)
    for i in range(4):
        topo.place(f"h{i}", i // 2)
    env = Environment()
    net = FlowNetwork(env, latency=0.0, topology=topo, **kw)
    nics = [net.add_nic(f"h{i}", CAP) for i in range(4)]
    return env, net, nics


def finish_times(env, net, specs):
    """Run ``(src, dst, nbytes, start_s)`` specs; return completion times."""
    nics = [net.nic(f"h{i}") for i in range(4)]
    finish = {}

    def starter(i, src, dst, nbytes, start_s):
        yield env.timeout(start_s)
        yield net.transfer(nics[src], nics[dst], nbytes)
        finish[i] = env.now

    for i, spec in enumerate(specs):
        env.process(starter(i, *spec))
    env.run()
    return finish


class TestRouting:
    def test_same_rack_crosses_no_trunk(self):
        _, net, nics = two_rack_net()
        assert net._trunk_path(nics[0], nics[1]) == ()

    def test_cross_rack_pays_both_rack_trunks(self):
        _, net, nics = two_rack_net()
        path = net._trunk_path(nics[0], nics[2])
        assert [tl.name for tl in path] == ["rack0:up", "rack1:down"]

    def test_path_is_memoized(self):
        _, net, nics = two_rack_net()
        assert net._trunk_path(nics[0], nics[2]) is net._trunk_path(
            nics[0], nics[2]
        )

    def test_core_inserted_when_finite(self):
        topo = Topology(n_racks=2, rack_uplink=CAP, core_capacity=CAP)
        topo.place("a", 0)
        topo.place("b", 1)
        env = Environment()
        net = FlowNetwork(env, latency=0.0, topology=topo)
        a = net.add_nic("a", CAP)
        b = net.add_nic("b", CAP)
        assert [tl.name for tl in net._trunk_path(a, b)] == [
            "rack0:up", "core", "rack1:down",
        ]

    def test_pod_tier_routing(self):
        topo = Topology(
            n_racks=4, rack_uplink=CAP, racks_per_pod=2, pod_uplink=2 * CAP
        )
        for i in range(4):
            topo.place(f"h{i}", i)
        env = Environment()
        net = FlowNetwork(env, latency=0.0, topology=topo)
        nics = [net.add_nic(f"h{i}", CAP) for i in range(4)]
        same_pod = net._trunk_path(nics[0], nics[1])
        assert [tl.name for tl in same_pod] == ["rack0:up", "rack1:down"]
        cross_pod = net._trunk_path(nics[0], nics[3])
        assert [tl.name for tl in cross_pod] == [
            "rack0:up", "pod0:up", "pod1:down", "rack3:down",
        ]

    def test_maxmin_rejects_multi_rack(self):
        topo = Topology(n_racks=2, rack_uplink=CAP)
        with pytest.raises(ValueError):
            FlowNetwork(Environment(), fairness="maxmin", topology=topo)

    def test_single_rack_stays_off_path_engine(self):
        topo = Topology(n_racks=1, rack_uplink=CAP)
        net = FlowNetwork(Environment(), topology=topo)
        assert not net._path


class TestRates:
    def test_intra_rack_flow_unconstrained_by_trunk(self):
        env, net, _ = two_rack_net(rack_uplink=CAP / 4)
        finish = finish_times(env, net, [(0, 1, 100 * MB, 0.0)])
        assert finish[0] == pytest.approx(1.0)

    def test_cross_rack_flows_share_the_uplink(self):
        env, net, _ = two_rack_net()
        # Two flows out of rack 0: each NIC has a full 100 MB/s, but the
        # shared 100 MB/s rack0:up trunk halves both.
        finish = finish_times(
            env, net, [(0, 2, 100 * MB, 0.0), (1, 3, 100 * MB, 0.0)]
        )
        assert finish[0] == pytest.approx(2.0)
        assert finish[1] == pytest.approx(2.0)

    def test_oversubscribed_trunk_is_the_bottleneck(self):
        env, net, _ = two_rack_net(rack_uplink=CAP / 4)
        finish = finish_times(env, net, [(0, 2, 100 * MB, 0.0)])
        assert finish[0] == pytest.approx(4.0)

    def test_trunk_share_released_on_completion(self):
        env, net, _ = two_rack_net()
        # Flow 1 is half the size: it finishes at 1.5s (50 MB/s), then flow 0
        # gets the full trunk back for its remaining 25 MB.
        finish = finish_times(
            env, net, [(0, 2, 100 * MB, 0.0), (1, 3, 50 * MB, 0.0)]
        )
        assert finish[1] == pytest.approx(1.0)
        assert finish[0] == pytest.approx(1.5)


class TestTrunkCapacityChange:
    def test_rejects_non_positive(self):
        _, net, _ = two_rack_net()
        with pytest.raises(ValueError):
            net.set_trunk_capacity("rack0:up", 0)

    def test_mid_flow_squeeze_rebalances(self):
        env, net, nics = two_rack_net()
        finish = {}

        def starter():
            yield net.transfer(nics[0], nics[2], 100 * MB)
            finish["t"] = env.now

        def squeeze():
            yield env.timeout(0.5)
            net.set_trunk_capacity("rack0:up", CAP / 4)

        env.process(starter())
        env.process(squeeze())
        env.run()
        # 50 MB at 100 MB/s, then the remaining 50 MB at 25 MB/s.
        assert finish["t"] == pytest.approx(0.5 + 50.0 / 25.0)

    def test_mid_flow_relief_rebalances(self):
        env, net, nics = two_rack_net(rack_uplink=CAP / 4)
        finish = {}

        def starter():
            yield net.transfer(nics[0], nics[2], 100 * MB)
            finish["t"] = env.now

        def relieve():
            yield env.timeout(2.0)
            # both trunks on the path must widen, or the other stays the
            # bottleneck
            net.set_trunk_capacity("rack0:up", CAP)
            net.set_trunk_capacity("rack1:down", CAP)

        env.process(starter())
        env.process(relieve())
        env.run()
        # 50 MB at 25 MB/s, then the NIC (100 MB/s) limits the rest.
        assert finish["t"] == pytest.approx(2.0 + 50.0 / 100.0)


class TestAccounting:
    def test_completed_flow_charged_to_its_scope(self):
        env, net, _ = two_rack_net()
        finish_times(
            env, net, [(0, 1, 30 * MB, 0.0), (0, 2, 50 * MB, 0.0)]
        )
        scopes = net.metrics.topo_scope_totals()
        assert scopes["intra-rack"] == 30 * MB
        assert scopes["cross-rack"] == 50 * MB

    def test_message_charged_wire_bytes(self):
        env, net, nics = two_rack_net()
        net.message(nics[0], nics[2], 1000)
        net.message(nics[0], nics[2], 1000)
        env.run()
        wire = 1000 + net.message_header_bytes
        assert net.metrics.topo_kind_bytes("cross-rack", "message") == 2 * wire

    def test_failed_flow_charged_partial_bytes(self):
        env, net, nics = two_rack_net()
        failures = []

        def starter():
            try:
                yield net.transfer(nics[0], nics[2], 100 * MB)
            except ProviderUnavailableError as exc:
                failures.append(exc)

        def kill():
            yield env.timeout(0.5)
            net.fail_nic(nics[2])

        env.process(starter())
        env.process(kill())
        env.run()
        assert failures, "flow should have been aborted"
        # 0.5s at 100 MB/s on the wire before the abort.
        scopes = net.metrics.topo_scope_totals()
        assert scopes["cross-rack"] == pytest.approx(50 * MB)

    def test_single_rack_topology_accounts_without_path_engine(self):
        topo = Topology(n_racks=1, rack_uplink=CAP)
        topo.place("a", 0)
        topo.place("b", 0)
        env = Environment()
        net = FlowNetwork(env, latency=0.0, topology=topo)
        a = net.add_nic("a", CAP)
        b = net.add_nic("b", CAP)
        net.transfer(a, b, 10 * MB)
        env.run()
        assert net.metrics.topo_scope_totals() == {"intra-rack": 10 * MB}

    def test_flat_network_accounts_nothing(self):
        env = Environment()
        net = FlowNetwork(env, latency=0.0)
        a = net.add_nic("a", CAP)
        b = net.add_nic("b", CAP)
        net.transfer(a, b, 10 * MB)
        env.run()
        assert net.metrics.topo_traffic == {}
