"""Tracked hierarchical-fabric benchmark: locality vs the oversubscribed core.

The flat testbed of the paper's §5.1 gives every NIC the full fabric; real
datacenters do not. This harness pins the hierarchical model
(:mod:`repro.topo`): compute nodes block-assigned to racks, each rack's
uplink oversubscribed (``hosts_per_rack * NIC / ratio``), and every
cross-rack flow sharing the trunk bottlenecks. The measured question is
whether the locality consumers — rack-ranked peer selection, rack-diverse
replica placement, same-rack replica reads — actually keep deployment
traffic off the uplinks.

Tracked grids, seed 1, ``topo`` profile (264-node pool, 8 racks default):

* ``sweep``   — topology-blind vs locality-aware mirror deployment with the
  cooperative peer exchange at n ∈ {64, 256}, plus oversubscription 2× and
  8× locality points at n=256;
* ``replica`` — replication 2 over 2 racks with rack-diverse placement,
  p2p off, n=64: topology-blind reads split chunk fetches across racks,
  rack-aware reads must keep **all** payload bytes intra-rack;
* ``identity`` — a racks=1 ``topo`` point against the plain ``p2p`` point
  kind: the flat fabric must be bit-identical to the seed model;
* ``determinism`` — jobs=1 vs jobs=4 sweeps of the same specs must be
  bit-identical.

Each point runs in a **forked child** through
:func:`repro.runner.execute_point` (see :mod:`gates`). Results are tracked
in ``BENCH_topo.json`` at the repository root. Running as a script
re-measures and **gates**: non-zero exit if

* any simulated outcome drifts from the committed ``current`` section
  (rerun with ``--update`` if intentional),
* aggregate wall-clock throughput falls more than ``REGRESSION_TOLERANCE``
  below the committed numbers, or
* the acceptance invariants fail: locality must cut cross-rack bytes by at
  least ``MIN_CROSS_RACK_CUT`` at n=256; the rack-aware replica point must
  fetch zero cross-rack payload bytes while the blind one fetches plenty;
  the flat-fabric point must be bit-identical to the ``p2p`` kind; the
  locality completion time must degrade by at most
  ``MAX_OVERSUB_DEGRADATION`` from 2× to 8× oversubscription; and the
  jobs=1 vs jobs=4 runs must match exactly.

Usage::

    make perf                                    # measure + gate
    make topo-smoke                              # tiny-n gate-logic check
    PYTHONPATH=src python benchmarks/bench_topo.py --update
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_topo.json"

if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from gates import (  # noqa: E402
    field_drift, jcopy, load_tracked, rss_mib, run_in_child,
    throughput_floor, write_tracked,
)
from repro.runner import PointSpec, SweepRunner, execute_point  # noqa: E402

#: allowed fractional drop in events/s before the throughput gate fails
REGRESSION_TOLERANCE = 0.25

#: fixed seed — simulated outcomes are identical across runs and machines
SEED = 1

#: racks and oversubscription of the main sweep grid
RACKS = 8
OVERSUB = 4.0

#: acceptance floor: locality must cut cross-rack bytes by this fraction
#: at the largest sweep point
MIN_CROSS_RACK_CUT = 0.50

#: acceptance ceiling: locality completion time at 8x oversubscription may
#: exceed the 2x point by at most this factor
MAX_OVERSUB_DEGRADATION = 1.5

#: instance counts of the tracked sweep (the profile's)
COUNTS = (64, 256)

#: the oversubscription ablation (locality on, n = COUNTS[-1])
OVERSUBS = (2.0, 8.0)

#: the replica grid: replication over this many racks, p2p off
REPLICA_RACKS = 2
REPLICA_N = 64

#: simulated-outcome fields recorded per point; all deterministic, so the
#: gate requires them to match the committed numbers exactly
SIM_FIELDS = (
    "avg_boot_time", "completion_time", "total_traffic",
    "intra_rack_bytes", "cross_rack_bytes",
    "intra_rack_payload_bytes", "cross_rack_payload_bytes",
    "peer_hit_ratio", "bytes_from_peers", "bytes_from_providers",
)


def _sweep_spec(locality: bool, n: int, profile: str,
                racks: int = RACKS, oversub: float = OVERSUB) -> PointSpec:
    return PointSpec(
        kind="topo", profile=profile, approach="mirror", n=n, seed=SEED,
        params=(
            ("racks", racks),
            ("oversubscription", oversub),
            ("locality", locality),
            ("p2p", True),
        ),
    )


def _replica_spec(locality: bool, n: int, profile: str) -> PointSpec:
    """Replication-2 deployment, rack-diverse placement, provider-only reads.

    Both points place replicas rack-diverse (one copy per rack); only the
    *read* side differs, so the gate isolates the same-rack replica
    preference: with it every chunk fetch has an intra-rack copy to hit.
    """
    return PointSpec(
        kind="topo", profile=profile, approach="mirror", n=n, seed=SEED,
        params=(
            ("racks", REPLICA_RACKS),
            ("oversubscription", OVERSUB),
            ("locality", locality),
            ("p2p", False),
            ("replication", 2),
            ("placement", "rack-diverse"),
        ),
    )


def _measure_once(spec_kind: str, locality: bool, n: int, profile: str,
                  racks: int, oversub: float) -> dict:
    if spec_kind == "sweep":
        spec = _sweep_spec(locality, n, profile, racks, oversub)
    else:
        spec = _replica_spec(locality, n, profile)
    t0 = time.perf_counter()
    res = execute_point(spec)
    wall = time.perf_counter() - t0
    row = {k: res.metrics[k] for k in SIM_FIELDS}
    row["events"] = res.event_count
    row["wall_s"] = round(wall, 3)
    row["events_per_s"] = round(res.event_count / wall, 1) if wall else 0.0
    row["peak_rss_mib"] = rss_mib()
    return row


def measure_point(spec_kind: str, locality: bool, n: int, profile: str,
                  racks: int = RACKS, oversub: float = OVERSUB) -> dict:
    """Measure one topo point in a forked child (true per-point peak RSS)."""
    mode = "locality" if locality else "blind"
    return run_in_child(
        _measure_once, spec_kind, locality, n, profile, racks, oversub,
        label=f"topo point {spec_kind}/{mode}@{n}",
    )


def check_identity(profile: str, n: int) -> dict:
    """racks=1 ``topo`` vs the plain ``p2p`` kind: flat must equal seed."""
    flat = execute_point(PointSpec(
        kind="topo", profile=profile, approach="mirror", n=n, seed=SEED,
        params=(("racks", 1), ("locality", True), ("p2p", True)),
    ))
    ref = execute_point(PointSpec(
        kind="p2p", profile=profile, approach="mirror", n=n, seed=SEED,
        params=(("p2p", True),),
    ))
    return {
        "n": n,
        "identical": (
            flat.series["boot_times"] == ref.series["boot_times"]
            and flat.metrics["completion_time"] == ref.metrics["completion_time"]
            and flat.metrics["total_traffic"] == ref.metrics["total_traffic"]
            and flat.event_count == ref.event_count
        ),
        "flat_untracked": (
            flat.metrics["intra_rack_bytes"] == 0.0
            and flat.metrics["cross_rack_bytes"] == 0.0
        ),
    }


def check_determinism(profile: str, n: int) -> dict:
    """jobs=1 vs jobs=4 over blind+locality specs must be bit-identical."""
    specs = [_sweep_spec(loc, n, profile) for loc in (False, True)]
    t0 = time.perf_counter()
    seq = SweepRunner(jobs=1, cache=None).run(specs)
    par = SweepRunner(jobs=4, cache=None).run(specs)
    wall = time.perf_counter() - t0
    identical = all(
        a.metrics == b.metrics and a.series == b.series
        and a.event_count == b.event_count
        for a, b in zip(seq, par)
    )
    return {
        "identical": identical,
        "points": len(specs),
        "wall_s": round(wall, 3),
    }


def measure(profile: str = "topo", counts=COUNTS, oversubs=OVERSUBS,
            racks: int = RACKS, replica_n: int = REPLICA_N,
            verbose: bool = True) -> dict:
    """Measure all tracked grids; {"sweep", "replica", "identity", ...}."""
    out = {"sweep": {}, "replica": {}}
    for locality in (False, True):
        mode = "locality" if locality else "blind"
        for n in counts:
            row = measure_point("sweep", locality, n, profile, racks=racks)
            out["sweep"][f"{mode}-n{n}"] = row
            if verbose:
                print(f"sweep/{mode}-n{n}: "
                      f"cross {row['cross_rack_bytes'] / 2**20:.1f} MiB, "
                      f"intra {row['intra_rack_bytes'] / 2**20:.1f} MiB, "
                      f"completion {row['completion_time']:.2f}s "
                      f"({row['wall_s']:.1f}s wall, "
                      f"{row['peak_rss_mib']} MiB RSS)")
    for oversub in oversubs:
        row = measure_point(
            "sweep", True, counts[-1], profile, racks=racks, oversub=oversub
        )
        out["sweep"][f"locality-o{oversub:g}-n{counts[-1]}"] = row
        if verbose:
            print(f"sweep/locality-o{oversub:g}-n{counts[-1]}: "
                  f"completion {row['completion_time']:.2f}s, "
                  f"cross {row['cross_rack_bytes'] / 2**20:.1f} MiB "
                  f"({row['wall_s']:.1f}s wall)")
    for locality in (False, True):
        mode = "local" if locality else "blind"
        row = measure_point("replica", locality, replica_n, profile)
        out["replica"][mode] = row
        if verbose:
            print(f"replica/{mode}: cross payload "
                  f"{row['cross_rack_payload_bytes'] / 2**20:.1f} MiB, "
                  f"intra payload "
                  f"{row['intra_rack_payload_bytes'] / 2**20:.1f} MiB "
                  f"({row['wall_s']:.1f}s wall)")
    out["identity"] = check_identity(profile, counts[0])
    if verbose:
        ident = out["identity"]
        print(f"identity: racks=1 vs p2p-kind identical={ident['identical']} "
              f"untracked={ident['flat_untracked']} (n={ident['n']})")
    out["determinism"] = check_determinism(profile, counts[0])
    if verbose:
        d = out["determinism"]
        print(f"determinism: jobs=1 vs jobs=4 identical={d['identical']} "
              f"over {d['points']} points ({d['wall_s']:.1f}s wall)")
    return out


# --------------------------------------------------------------------------- #
# tracked file + gates
# --------------------------------------------------------------------------- #
def load_committed() -> dict:
    return load_tracked(BENCH_PATH)


def check_acceptance(fresh: dict, counts=COUNTS, oversubs=OVERSUBS) -> list:
    """The topology invariants; human-readable failures (empty = ok)."""
    failures = []
    sweep = fresh.get("sweep", {})
    n = counts[-1]

    blind = sweep.get(f"blind-n{n}")
    aware = sweep.get(f"locality-n{n}")
    if blind and aware:
        if blind["cross_rack_bytes"] <= 0:
            failures.append(
                f"blind-n{n} moved no cross-rack bytes; the sweep does not "
                "exercise the trunks"
            )
        else:
            cut = 1.0 - aware["cross_rack_bytes"] / blind["cross_rack_bytes"]
            if cut < MIN_CROSS_RACK_CUT:
                failures.append(
                    f"locality cuts cross-rack bytes only {cut:.1%} at n={n} "
                    f"(need >= {MIN_CROSS_RACK_CUT:.0%}: "
                    f"{aware['cross_rack_bytes']:.0f} vs "
                    f"{blind['cross_rack_bytes']:.0f})"
                )

    lo = sweep.get(f"locality-o{oversubs[0]:g}-n{n}")
    hi = sweep.get(f"locality-o{oversubs[-1]:g}-n{n}")
    if lo and hi and hi["completion_time"] > lo["completion_time"] * MAX_OVERSUB_DEGRADATION:
        failures.append(
            f"locality completion degrades {hi['completion_time'] / lo['completion_time']:.2f}x "
            f"from {oversubs[0]:g}x to {oversubs[-1]:g}x oversubscription "
            f"(allowed <= {MAX_OVERSUB_DEGRADATION}x); locality is not "
            "keeping the deployment off the uplinks"
        )

    replica = fresh.get("replica", {})
    rb, rl = replica.get("blind"), replica.get("local")
    if rl and rl["cross_rack_payload_bytes"] != 0.0:
        failures.append(
            f"rack-aware replica reads fetched "
            f"{rl['cross_rack_payload_bytes']:.0f} cross-rack payload bytes "
            "(must be 0: every chunk has a same-rack replica)"
        )
    if rb and not rb["cross_rack_payload_bytes"] > 0:
        failures.append(
            "topology-blind replica reads fetched no cross-rack payload; "
            "the replica grid does not discriminate"
        )

    ident = fresh.get("identity")
    if ident is not None:
        if not ident["identical"]:
            failures.append(
                "racks=1 topo point is not bit-identical to the p2p kind "
                "(the flat fabric drifted from the seed model)"
            )
        if not ident["flat_untracked"]:
            failures.append(
                "racks=1 topo point reported per-tier traffic (the flat "
                "fabric must not account scopes)"
            )

    det = fresh.get("determinism")
    if det is not None and not det["identical"]:
        failures.append("jobs=1 vs jobs=4 sweep results are not bit-identical")
    return failures


def _rows(fresh: dict):
    for grid in ("sweep", "replica"):
        for label, row in sorted(fresh.get(grid, {}).items()):
            yield grid, label, row


def _aggregate_eps(fresh: dict) -> float:
    """Total events / total wall over the grids (per-point walls are noise)."""
    events = sum(row["events"] for _, _, row in _rows(fresh))
    wall = sum(row["wall_s"] for _, _, row in _rows(fresh))
    return events / wall if wall > 0 else 0.0


def check_regression(fresh: dict, committed: dict,
                     counts=COUNTS, oversubs=OVERSUBS) -> list:
    """Gate fresh numbers against the committed ``current`` section."""
    failures = []
    current = committed.get("current", {})
    for grid, label, now in _rows(fresh):
        failures += field_drift(
            f"{grid}/{label}", now, current.get(grid, {}).get(label), SIM_FIELDS
        )
    failures += throughput_floor(
        "topo aggregate",
        round(_aggregate_eps(fresh)),
        round(_aggregate_eps(current)),
        REGRESSION_TOLERANCE,
    )
    failures += check_acceptance(fresh, counts, oversubs)
    return failures


# --------------------------------------------------------------------------- #
# smoke mode: tiny n, asserts the gate logic itself
# --------------------------------------------------------------------------- #
def run_smoke() -> int:
    """``make topo-smoke``: tiny fabric + gate-logic self-test.

    Measures a reduced grid on the ``topo-smoke`` profile (16 nodes, 4
    racks, sub-second points), then exercises the gates against synthetic
    committed data: pass on identical numbers, flag a drifted outcome, a
    throughput collapse, and each acceptance violation on doctored copies.
    """
    counts, oversubs = (8, 12), (2.0, 8.0)
    fresh = measure(profile="topo-smoke", counts=counts, oversubs=oversubs,
                    racks=4, replica_n=8)

    bad = check_acceptance(fresh, counts, oversubs)
    if bad:
        print("smoke: acceptance failed on a fresh run:", bad, file=sys.stderr)
        return 1

    committed = {"current": jcopy(fresh)}
    drift = check_regression(fresh, committed, counts, oversubs)
    if drift:
        print("smoke: gate failed on identical numbers:", drift, file=sys.stderr)
        return 1

    drifted = jcopy(committed)
    drifted["current"]["sweep"]["blind-n8"]["cross_rack_bytes"] += 1
    if not any("cross_rack_bytes" in f
               for f in check_regression(fresh, drifted, counts, oversubs)):
        print("smoke: gate missed a simulated-outcome drift", file=sys.stderr)
        return 1

    slow = jcopy(committed)
    for _, _, row in _rows(slow["current"]):
        row["wall_s"] = row["wall_s"] / 1000.0 + 1e-6
    if not any("events/s" in f
               for f in check_regression(fresh, slow, counts, oversubs)):
        print("smoke: gate missed a throughput collapse", file=sys.stderr)
        return 1

    synth = jcopy(fresh)
    synth["sweep"][f"locality-n{counts[-1]}"]["cross_rack_bytes"] = (
        synth["sweep"][f"blind-n{counts[-1]}"]["cross_rack_bytes"])
    if not any("cuts cross-rack" in f
               for f in check_acceptance(synth, counts, oversubs)):
        print("smoke: gate missed a vanished cross-rack cut", file=sys.stderr)
        return 1

    synth = jcopy(fresh)
    synth["replica"]["local"]["cross_rack_payload_bytes"] = 1.0
    if not any("must be 0" in f
               for f in check_acceptance(synth, counts, oversubs)):
        print("smoke: gate missed a cross-rack replica read", file=sys.stderr)
        return 1

    synth = jcopy(fresh)
    synth["identity"]["identical"] = False
    if not any("flat fabric drifted" in f
               for f in check_acceptance(synth, counts, oversubs)):
        print("smoke: gate missed a flat-fabric identity break", file=sys.stderr)
        return 1

    synth = jcopy(fresh)
    synth["sweep"][f"locality-o8-n{counts[-1]}"]["completion_time"] = (
        synth["sweep"][f"locality-o2-n{counts[-1]}"]["completion_time"] * 10)
    if not any("degrades" in f
               for f in check_acceptance(synth, counts, oversubs)):
        print("smoke: gate missed an oversubscription blow-up", file=sys.stderr)
        return 1

    synth = jcopy(fresh)
    synth["determinism"]["identical"] = False
    if not any("bit-identical" in f
               for f in check_acceptance(synth, counts, oversubs)):
        print("smoke: gate missed a determinism violation", file=sys.stderr)
        return 1

    print("topo smoke passed (gate logic verified)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite BENCH_topo.json's 'current' section with this run",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny-n run on the topo-smoke profile + gate self-test",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return run_smoke()

    fresh = measure()

    if args.update:
        committed = load_committed() if BENCH_PATH.exists() else {}
        committed.setdefault("profile", "topo")
        committed.setdefault("seed", SEED)
        committed["racks"] = RACKS
        committed["oversubscription"] = OVERSUB
        committed["counts"] = list(COUNTS)
        committed["current"] = fresh
        failures = check_acceptance(fresh)
        if failures:
            for f in failures:
                print(f"TOPO ACCEPTANCE: {f}", file=sys.stderr)
            return 1
        write_tracked(BENCH_PATH, committed)
        print(f"updated {BENCH_PATH}")
        return 0

    if not BENCH_PATH.exists() or not load_committed().get("current"):
        print(f"no committed numbers at {BENCH_PATH}; run with --update first")
        return 1
    failures = check_regression(fresh, load_committed())
    if failures:
        for f in failures:
            print(f"TOPO REGRESSION: {f}", file=sys.stderr)
        return 1
    print("topo gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
