"""Result cache: content keys, hit/miss, invalidation, replay fidelity."""

import pytest

import repro.runner.cache as cache_mod
from repro.runner import (
    PointSpec,
    ResultCache,
    SweepRunner,
    execute_point,
    point_key,
)


def _spec(n=1, **kw):
    return PointSpec(kind="deploy", profile="micro-test", approach="mirror",
                     n=n, seed=1, **kw)


class TestPointKey:
    def test_stable_for_equal_specs(self, micro_profile):
        assert point_key(_spec()) == point_key(_spec())

    def test_changes_with_spec_fields(self, micro_profile):
        base = point_key(_spec())
        assert point_key(_spec(n=2)) != base
        assert point_key(PointSpec(kind="deploy", profile="micro-test",
                                   approach="mirror", n=1, seed=2)) != base

    def test_changes_on_calibration_override(self, micro_profile):
        assert point_key(_spec()) != point_key(
            _spec(overrides=(("image.chunk_size", 65536),))
        )

    def test_changes_on_code_version(self, micro_profile, monkeypatch):
        before = point_key(_spec())
        monkeypatch.setattr(cache_mod, "CODE_VERSION", "sweep-cache-v999")
        assert point_key(_spec()) != before

    def test_changes_on_profile_content(self, micro_profile):
        """Re-registering a profile with different fields invalidates keys."""
        import dataclasses

        from repro.runner import register_profile

        before = point_key(_spec())
        try:
            register_profile(dataclasses.replace(micro_profile, pool_nodes=7))
            assert point_key(_spec()) != before
        finally:
            register_profile(micro_profile)


class TestResultCache:
    def test_miss_then_hit(self, micro_profile, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        assert cache.lookup(spec) is None
        result = execute_point(spec)
        cache.store(result)
        replay = cache.lookup(spec)
        assert replay is not None
        assert replay.cached
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1

    def test_replay_is_bit_identical(self, micro_profile, tmp_path):
        cache = ResultCache(tmp_path)
        result = execute_point(_spec())
        cache.store(result)
        replay = cache.lookup(_spec())
        assert replay.metrics == result.metrics
        assert replay.series == result.series
        assert replay.counters == result.counters
        assert replay.event_count == result.event_count

    def test_calibration_change_misses(self, micro_profile, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(execute_point(_spec()))
        assert cache.lookup(_spec(overrides=(("image.chunk_size", 65536),))) is None

    def test_corrupt_entry_is_a_miss(self, micro_profile, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        path = cache.store(execute_point(spec))
        path.write_text("{not json")
        assert cache.lookup(spec) is None

    def test_clear(self, micro_profile, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(execute_point(_spec()))
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0


class TestRunnerCacheIntegration:
    def test_second_run_executes_nothing(self, micro_profile, tmp_path):
        specs = [_spec(n=1), _spec(n=2)]
        first = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        a = first.run(specs)
        assert first.stats.executed == 2 and first.stats.cached == 0

        second = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        b = second.run(specs)
        assert second.stats.executed == 0 and second.stats.cached == 2
        for x, y in zip(a, b):
            assert x.metrics == y.metrics and x.series == y.series
            assert y.cached

    def test_refresh_recomputes_and_restores(self, micro_profile, tmp_path):
        specs = [_spec()]
        SweepRunner(jobs=1, cache=ResultCache(tmp_path)).run(specs)
        refresher = SweepRunner(jobs=1, cache=ResultCache(tmp_path), refresh=True)
        refresher.run(specs)
        assert refresher.stats.executed == 1 and refresher.stats.cached == 0
        # the refreshed entry is still replayable afterwards
        replay = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        replay.run(specs)
        assert replay.stats.cached == 1
