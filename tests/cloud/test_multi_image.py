"""Multi-tenancy: two different images deployed concurrently on one cloud."""

from repro.blobseer import BlobSeerDeployment
from repro.common.payload import Payload
from repro.common.units import KiB, MiB
from repro.core import mount
from repro.simkit.host import Fabric

CHUNK = 64 * KiB
IMG = 2 * MiB


def pattern(n, seed):
    return bytes((i * 131 + seed * 17) % 256 for i in range(n))


def test_two_images_isolated_end_to_end():
    fab = Fabric(seed=83)
    hosts = [fab.add_host(f"node{i}") for i in range(8)]
    manager = fab.add_host("manager")
    dep = BlobSeerDeployment(fab, hosts, hosts, manager)
    data_a = pattern(IMG, 1)
    data_b = pattern(IMG, 2)
    rec_a = dep.seed_blob(Payload.from_bytes(data_a), CHUNK)
    rec_b = dep.seed_blob(Payload.from_bytes(data_b), CHUNK)

    results = {}

    def tenant(name, rec, data, node, mark):
        handle = yield from mount(node, dep, rec.blob_id, rec.version, path=f"/{name}")
        head = yield from handle.read(0, 512)
        assert head.to_bytes() == data[:512]
        yield from handle.write(100, Payload.from_bytes(mark))
        yield from handle.ioctl_clone()
        snap = yield from handle.ioctl_commit()
        results[name] = snap

    procs = [
        fab.env.process(tenant("a", rec_a, data_a, hosts[0], b"TENANT-A")),
        fab.env.process(tenant("b", rec_b, data_b, hosts[1], b"TENANT-B")),
    ]
    fab.run(fab.env.all_of(procs))

    # each snapshot carries its own base + its own mark, no cross-talk
    reader = dep.client(hosts[5])

    def verify():
        for name, rec, data, mark in [
            ("a", rec_a, data_a, b"TENANT-A"),
            ("b", rec_b, data_b, b"TENANT-B"),
        ]:
            snap = results[name]
            img = yield from reader.read(snap.blob_id, snap.version, 0, IMG)
            expected = bytearray(data)
            expected[100 : 100 + len(mark)] = mark
            assert img.to_bytes() == bytes(expected)
        return True

    assert fab.run(fab.env.process(verify()))


def test_storage_accounts_both_images_plus_diffs():
    fab = Fabric(seed=84)
    hosts = [fab.add_host(f"node{i}") for i in range(4)]
    manager = fab.add_host("manager")
    dep = BlobSeerDeployment(fab, hosts, hosts, manager)
    dep.seed_blob(Payload.from_bytes(pattern(IMG, 1)), CHUNK)
    dep.seed_blob(Payload.from_bytes(pattern(IMG, 2)), CHUNK)
    assert dep.stored_bytes() == 2 * IMG
