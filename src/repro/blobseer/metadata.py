"""Versioned segment trees with shadowing and cloning (paper Fig. 3, [24]).

This is the metadata heart of BlobSeer, reimplemented as a pure data
structure so it can be tested exhaustively without the simulator.

A BLOB snapshot's metadata is a binary **segment tree over chunk indices**:
leaves cover one chunk each and carry a :class:`ChunkRef` (where the chunk's
data lives); an interior node covers the union of its children's ranges.
All nodes are **immutable** and stored in a :class:`MetadataStore` keyed by
a content-derived node id, so:

* **Shadowing** — writing a set of chunks builds new leaves plus new interior
  nodes *only along the changed paths*; every untouched subtree is shared by
  reference with the previous snapshot. A snapshot is fully described by its
  root id, and any snapshot can be read independently forever.
* **Cloning** — a clone is a brand-new root (for a new blob) whose children
  are the source root's children: O(1) metadata, zero data movement
  (Fig. 3(b); the paper notes the original BlobSeer lacked cloning and that
  it reduces to exactly this).
* Interior nodes may reference children "belonging to" older snapshots —
  sharing applies to unmodified *metadata*, not only unmodified chunks
  (Fig. 3(c)).

The tree spans ``[0, capacity)`` with ``capacity`` the smallest power of two
covering the chunk count; absent subtrees denote unwritten (hole) regions.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..common.errors import SimulationError

#: A node identifier inside a MetadataStore.
NodeId = int


@dataclass(frozen=True, slots=True)
class ChunkRef:
    """Location record for one stored chunk: where its bytes live.

    ``key`` is globally unique (assigned at write time); ``providers`` are
    the data-provider host names holding a replica; ``size`` is the chunk's
    byte length (the tail chunk of a blob may be short).
    """

    key: int
    providers: Tuple[str, ...]
    size: int


@dataclass(frozen=True, slots=True)
class TreeNode:
    """An immutable segment-tree node covering chunk indices ``[lo, hi)``."""

    lo: int
    hi: int
    #: child node ids (interior nodes); None = unwritten subtree
    left: Optional[NodeId]
    right: Optional[NodeId]
    #: leaf payload (exactly when hi == lo + 1)
    ref: Optional[ChunkRef]

    @property
    def is_leaf(self) -> bool:
        return self.hi == self.lo + 1

    @property
    def mid(self) -> int:
        return (self.lo + self.hi) // 2


class MetadataStore:
    """Append-only store of immutable tree nodes.

    Node ids are dense integers; nodes are deduplicated structurally (two
    writes producing an identical subtree share one node), which both matches
    content-addressed designs and makes sharing statistics exact.
    """

    def __init__(self):
        self._nodes: List[TreeNode] = []
        self._index: Dict[Tuple, NodeId] = {}

    def put(self, node: TreeNode) -> NodeId:
        key = (node.lo, node.hi, node.left, node.right, node.ref)
        nid = self._index.get(key)
        if nid is None:
            nid = len(self._nodes)
            self._nodes.append(node)
            self._index[key] = nid
        return nid

    def get(self, nid: NodeId) -> TreeNode:
        try:
            return self._nodes[nid]
        except IndexError:
            raise SimulationError(f"unknown metadata node {nid}") from None

    def __len__(self) -> int:
        return len(self._nodes)


def capacity_for(n_chunks: int) -> int:
    """Smallest power of two >= max(1, n_chunks)."""
    cap = 1
    while cap < n_chunks:
        cap *= 2
    return cap


# --------------------------------------------------------------------------- #
# construction and update
# --------------------------------------------------------------------------- #
def build_tree(store: MetadataStore, refs: Dict[int, ChunkRef], n_chunks: int) -> Optional[NodeId]:
    """Build a snapshot tree holding ``refs`` over an index space of ``n_chunks``.

    Returns the root id, or None for an entirely empty blob.
    """
    cap = capacity_for(n_chunks)
    keys = sorted(refs)
    return _build(store, refs, keys, 0, len(keys), 0, cap)


def _build(
    store: MetadataStore,
    refs: Dict[int, ChunkRef],
    keys: List[int],
    klo: int,
    khi: int,
    lo: int,
    hi: int,
) -> Optional[NodeId]:
    # ``keys[klo:khi]`` are the sorted ref indices inside ``[lo, hi)``: the
    # recursion splits index ranges by bisection instead of copying dicts,
    # so a dense n-chunk build is O(n log n) comparisons and zero rebuilds.
    if klo == khi:
        return None
    if hi - lo == 1:
        return store.put(TreeNode(lo, hi, None, None, refs[lo]))
    mid = (lo + hi) // 2
    split = bisect_left(keys, mid, klo, khi)
    left = _build(store, refs, keys, klo, split, lo, mid)
    right = _build(store, refs, keys, split, khi, mid, hi)
    if left is None and right is None:
        return None
    return store.put(TreeNode(lo, hi, left, right, None))


def write_chunks(
    store: MetadataStore,
    root: Optional[NodeId],
    updates: Dict[int, ChunkRef],
    n_chunks: int,
) -> Optional[NodeId]:
    """Produce the root of a new snapshot = old snapshot overwritten by ``updates``.

    Implements shadowing: only the paths from the root to updated leaves are
    new nodes; all other subtrees are shared with the input snapshot.
    """
    if not updates:
        return root
    cap = capacity_for(n_chunks)
    if root is not None:
        node = store.get(root)
        if (node.lo, node.hi) != (0, cap):
            raise SimulationError(
                f"root covers [{node.lo},{node.hi}), expected [0,{cap}) "
                "(blob resizing is not supported)"
            )
    keys = sorted(updates)
    return _write(store, root, updates, keys, 0, len(keys), 0, cap)


def _write(
    store: MetadataStore,
    nid: Optional[NodeId],
    updates: Dict[int, ChunkRef],
    keys: List[int],
    klo: int,
    khi: int,
    lo: int,
    hi: int,
) -> Optional[NodeId]:
    # Same index-range bisection as _build: no per-level dict filtering.
    if klo == khi:
        return nid
    if hi - lo == 1:
        return store.put(TreeNode(lo, hi, None, None, updates[lo]))
    mid = (lo + hi) // 2
    node = store.get(nid) if nid is not None else None
    split = bisect_left(keys, mid, klo, khi)
    left = _write(store, node.left if node else None, updates, keys, klo, split, lo, mid)
    right = _write(store, node.right if node else None, updates, keys, split, khi, mid, hi)
    if node is not None and left == node.left and right == node.right:
        return nid  # nothing changed in this subtree
    if left is None and right is None:
        return None
    return store.put(TreeNode(lo, hi, left, right, None))


def clone_root(store: MetadataStore, root: Optional[NodeId]) -> Optional[NodeId]:
    """Clone a snapshot into a new blob: a fresh root sharing both children.

    Per Fig. 3(b) the clone gets its *own* root node (it belongs to the new
    blob and will evolve independently) whose children are shared. With a
    structurally-deduplicating store the fresh root coincides with the source
    root — which is exactly the "minimal overhead in space and time" the
    paper claims; divergence happens on the first subsequent write.
    """
    if root is None:
        return None
    node = store.get(root)
    return store.put(TreeNode(node.lo, node.hi, node.left, node.right, node.ref))


# --------------------------------------------------------------------------- #
# lookup
# --------------------------------------------------------------------------- #
def lookup(store: MetadataStore, root: Optional[NodeId], index: int) -> Optional[ChunkRef]:
    """Find the chunk ref for one chunk index (None for holes)."""
    nid = root
    while nid is not None:
        node = store.get(nid)
        if node.is_leaf:
            return node.ref if node.lo == index else None
        nid = node.left if index < node.mid else node.right
    return None


def lookup_range(
    store: MetadataStore, root: Optional[NodeId], lo: int, hi: int
) -> Tuple[Dict[int, ChunkRef], int]:
    """Collect refs for chunk indices in ``[lo, hi)``.

    Returns ``(refs, nodes_visited)``; the visit count feeds the simulated
    metadata-access cost (each visited node is one metadata-provider fetch).
    """
    refs: Dict[int, ChunkRef] = {}
    visited = 0
    stack = [root] if root is not None else []
    while stack:
        nid = stack.pop()
        node = store.get(nid)
        visited += 1
        if node.hi <= lo or node.lo >= hi:
            continue
        if node.is_leaf:
            if node.ref is not None:
                refs[node.lo] = node.ref
            continue
        if node.right is not None:
            stack.append(node.right)
        if node.left is not None:
            stack.append(node.left)
    return refs, visited


def reachable_nodes(store: MetadataStore, root: Optional[NodeId]) -> Set[NodeId]:
    """All node ids reachable from a root (sharing statistics, GC support)."""
    seen: Set[NodeId] = set()
    stack = [root] if root is not None else []
    while stack:
        nid = stack.pop()
        if nid in seen:
            continue
        seen.add(nid)
        node = store.get(nid)
        for child in (node.left, node.right):
            if child is not None:
                stack.append(child)
    return seen


def shared_nodes(store: MetadataStore, roots: Iterable[Optional[NodeId]]) -> Dict[str, int]:
    """Sharing statistics across several snapshots.

    Returns ``{"union": ..., "sum": ...}``: the number of distinct nodes
    reachable from all the roots together versus the sum of per-root
    reachable counts. ``sum / union`` > 1 quantifies metadata sharing.
    """
    union: Set[NodeId] = set()
    total = 0
    for root in roots:
        nodes = reachable_nodes(store, root)
        union |= nodes
        total += len(nodes)
    return {"union": len(union), "sum": total}
