"""Mid-flow capacity changes: the cohort engine matches the per-flow oracle.

``set_nic_capacity`` is the one rebalance trigger that arrives from
*outside* the flow population (fault injection while transfers are in
flight), so it exercises the cohort engine's reshare/settle machinery on
shares that did not change through a flow starting or completing. This
property test drives randomized workloads where capacity changes land
mid-flow and checks every completion time against the legacy per-flow
engine, which recomputes each touched flow independently.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.common.units import MB
from repro.simkit.core import Environment
from repro.simkit.network import FlowNetwork

N_HOSTS = 4
CAP = 100 * MB
TOL = 1e-9  # seconds; ulp-level float drift only

flow_spec = st.tuples(
    st.integers(0, N_HOSTS - 1),  # src
    st.integers(0, N_HOSTS - 1),  # dst
    st.integers(1, 40),           # size in MB
    st.integers(0, 150),          # start time in ms
)

capacity_change = st.tuples(
    st.integers(0, N_HOSTS - 1),   # nic
    st.integers(10, 200),          # new capacity in MB/s
    st.integers(1, 400),           # when, in ms
)


def run_workload(flows, changes, rebalance):
    env = Environment()
    net = FlowNetwork(env, fairness="equal-share", latency=0.0, rebalance=rebalance)
    nics = [net.add_nic(f"h{i}", CAP) for i in range(N_HOSTS)]
    finish = {}

    def starter(i, src, dst, size_mb, start_ms):
        yield env.timeout(start_ms / 1000.0)
        done = net.transfer(nics[src], nics[dst], size_mb * MB)
        yield done
        finish[i] = env.now

    def changer(nic, cap_mb, at_ms):
        yield env.timeout(at_ms / 1000.0)
        net.set_nic_capacity(nics[nic], cap_mb * MB)

    for i, (src, dst, size_mb, start_ms) in enumerate(flows):
        env.process(starter(i, src, dst, size_mb, start_ms))
    for nic, cap_mb, at_ms in changes:
        env.process(changer(nic, cap_mb, at_ms))
    env.run()
    assert not net._flows, "flows left dangling"
    return finish


@settings(max_examples=60, deadline=None)
@given(
    st.lists(flow_spec, min_size=1, max_size=10),
    st.lists(capacity_change, min_size=1, max_size=6),
)
def test_cohort_matches_legacy_under_capacity_changes(flows, changes):
    cohort = run_workload(flows, changes, "cohort")
    legacy = run_workload(flows, changes, "legacy")
    assert cohort.keys() == legacy.keys()
    for i in cohort:
        assert cohort[i] == pytest.approx(legacy[i], abs=TOL), (
            f"flow {i}: cohort={cohort[i]!r} legacy={legacy[i]!r}"
        )


def test_capacity_drop_slows_active_flow():
    """Sanity anchor: one flow, one squeeze, exact closed-form times."""
    finish = run_workload(
        [(0, 1, 100, 0)], [(0, 25, 500)], "cohort"
    )
    # 50 MB at 100 MB/s, then 50 MB at 25 MB/s
    assert finish[0] == pytest.approx(0.5 + 2.0, abs=TOL)


def test_capacity_raise_speeds_up_active_flow():
    finish = run_workload(
        [(0, 1, 100, 0)], [(1, 200, 500)], "cohort"
    )
    # downlink relief alone does nothing: the 100 MB/s uplink still binds
    assert finish[0] == pytest.approx(1.0, abs=TOL)
