"""A minimal RPC layer over the flow network.

Services are plain objects bound to a host under a name; methods prefixed
``rpc_`` are remotely callable and written as generators (they may perform
disk I/O, timeouts, or nested RPCs). A call from host A to host B pays:

1. the request control message (latency + serialization),
2. the server-side handler's simulated work,
3. the response: a control message, or a fair-shared bulk flow when the
   handler returns a :class:`~repro.common.payload.Payload` bigger than the
   network's message threshold (this is how chunk fetches become flows).

Handlers execute inline in the calling process — server-side contention is
still modelled faithfully because it lives in the server's *resources*
(its disk queue, its NIC), not in a scheduler thread.

Failure injection: ``host_down(host)`` makes every call to that host raise
:class:`~repro.common.errors.ProviderUnavailableError` after one timeout
interval, which the replication layer of the storage service exercises.
"""

from __future__ import annotations

from typing import Any, Generator, Set

from ..common.errors import ProviderUnavailableError, SimulationError
from ..common.payload import Payload
from .core import Event
from .host import Host

#: Simulated time a caller waits before declaring an unreachable host dead.
RPC_TIMEOUT = 0.5

#: Wire size assumed for an RPC request / non-payload response envelope.
REQUEST_BYTES = 256
RESPONSE_BYTES = 192

_down_hosts: "Set[str]" = set()


def host_down(host: Host) -> None:
    """Mark ``host`` as failed: subsequent RPCs to it raise (failure injection)."""
    _down_hosts.add(_key(host))


def host_up(host: Host) -> None:
    _down_hosts.discard(_key(host))


def reset_failures() -> None:
    _down_hosts.clear()


def is_host_down(host: Host) -> bool:
    """True while ``host`` is in the failure registry (crash injected)."""
    return bool(_down_hosts) and _key(host) in _down_hosts


def _key(host: Host) -> str:
    return f"{id(host.fabric)}:{host.name}"


class Sized:
    """Wrap an RPC result with an explicit wire size.

    Handlers return ``Sized(value, nbytes)`` when the response is a plain
    Python object whose serialized size should still be charged to the
    network (e.g. a batch of metadata tree nodes). ``rpc.call`` unwraps it.
    """

    __slots__ = ("value", "nbytes")

    def __init__(self, value: Any, nbytes: int):
        self.value = value
        self.nbytes = int(nbytes)


def bind(host: Host, name: str, service: object) -> None:
    """Register ``service`` under ``name`` on ``host``."""
    if name in host.services:
        raise SimulationError(f"{host.name}: service {name!r} already bound")
    host.services[name] = service


def call(
    caller: Host,
    callee: Host,
    service_name: str,
    method: str,
    *args: Any,
    request_bytes: int = REQUEST_BYTES,
) -> Generator[Event, None, Any]:
    """Invoke ``rpc_<method>`` of ``service_name`` on ``callee`` from ``caller``.

    Use as ``result = yield from rpc.call(...)`` inside a process.
    """
    fabric = caller.fabric
    net = fabric.network
    metrics = fabric.metrics
    env = caller.env
    metrics.counters["rpc"] += 1
    tracer = fabric.tracer
    span = None
    if tracer.enabled:
        span = tracer.start(
            f"rpc:{service_name}.{method}", "rpc", src=caller.name, dst=callee.name
        )
    try:
        # The failure registry is empty in the vast majority of runs; skip the
        # per-call key construction + hash unless failures were injected.
        if _down_hosts and _key(callee) in _down_hosts:
            yield env.timeout(RPC_TIMEOUT)
            raise ProviderUnavailableError(f"{callee.name} unreachable")

        # First contact between two hosts pays connection setup (TCP + service
        # handshake). Configured per fabric; default 0 keeps unit tests exact.
        setup = fabric.connection_setup
        if setup > 0.0 and caller is not callee:
            pairs = fabric._rpc_conn_pairs
            pair = (caller.name, callee.name)
            if pair not in pairs:
                pairs.add(pair)
                metrics.counters["rpc-connect"] += 1
                yield env.timeout(setup)

        # 1. request envelope; bulk requests (e.g. chunk PUTs) ride the fabric
        if request_bytes > net.message_threshold:
            yield net.transfer(caller.nic, callee.nic, request_bytes, kind="payload")
        else:
            yield net.message(caller.nic, callee.nic, request_bytes, kind="rpc-request")

        # 2. server-side handler (dispatch memoized per callee: the service dict
        # probe + getattr with an f-string key is measurable at ~40k calls/run)
        try:
            handler = callee._rpc_cache[(service_name, method)]
        except KeyError:
            service = callee.services.get(service_name)
            if service is None:
                raise SimulationError(f"{callee.name}: no service {service_name!r}")
            handler = getattr(service, f"rpc_{method}", None)
            if handler is None:
                raise SimulationError(f"{service_name}: no RPC method {method!r}")
            callee._rpc_cache[(service_name, method)] = handler
        if span is not None:
            srv_span = tracer.start(
                f"serve:{service_name}.{method}", "rpc-server", host=callee.name
            )
            try:
                result = yield from handler(caller, *args)
            except BaseException as exc:
                srv_span.set_error(exc)
                raise
            finally:
                srv_span.finish()
        else:
            result = yield from handler(caller, *args)

        if _down_hosts and _key(callee) in _down_hosts:
            # Host died while serving (failure injected mid-call).
            raise ProviderUnavailableError(f"{callee.name} failed during call")

        # 3. response: bulk payloads ride the fair-shared fabric
        if isinstance(result, Sized):
            yield net.transfer(callee.nic, caller.nic, result.nbytes, kind="rpc-response")
            return result.value
        if isinstance(result, Payload) and result.size > net.message_threshold:
            yield net.transfer(callee.nic, caller.nic, result.size, kind="payload")
        else:
            size = result.size if isinstance(result, Payload) else RESPONSE_BYTES
            yield net.message(callee.nic, caller.nic, max(size, 1), kind="rpc-response")
        return result
    except BaseException as exc:
        if span is not None:
            span.set_error(exc)
        raise
    finally:
        if span is not None:
            span.finish()


def send_payload(
    sender: Host, receiver: Host, payload_bytes: int, kind: str = "payload"
) -> Generator[Event, None, None]:
    """One-way bulk push (used by writes: client streams a chunk to a provider)."""
    net = sender.fabric.network
    yield net.transfer(sender.nic, receiver.nic, payload_bytes, kind=kind)
