"""Snapshot-lineage control plane over the BlobSeer version manager.

The paper's title promises going *back and forth*; this package is the
"back" half. It reconstructs the full snapshot forest from the version
manager's lineage log (:mod:`~repro.lineage.tree`), attributes repository
footprint per version with exact sharing accounting
(:mod:`~repro.lineage.dedup`), boots a VM from any historical snapshot by
publishing it as a new branch head (:mod:`~repro.lineage.restore`), and
bounds the metadata amplification of ever-deepening snapshot chains with
flattening / delta-merge compaction (:mod:`~repro.lineage.compact`).

Everything here is strictly additive: a run that never imports this package
touches none of its code paths, and the registry-side lineage log is pure
bookkeeping with no simulated-time cost — figure timelines stay
bit-identical to a tree without the subsystem.
"""

from .compact import COMPACTION_POLICIES, CompactReport, compact_chain
from .dedup import DedupReport, VersionSharing, dedup_accounting
from .restore import RestoreResult, restore_to_version
from .tree import LineageForest

__all__ = [
    "COMPACTION_POLICIES",
    "CompactReport",
    "DedupReport",
    "LineageForest",
    "RestoreResult",
    "VersionSharing",
    "compact_chain",
    "dedup_accounting",
    "restore_to_version",
]
