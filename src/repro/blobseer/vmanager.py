"""The version manager: blob registry, snapshot ordering, publish protocol.

BlobSeer's version manager is the serialization point of the system: it
assigns monotonically increasing version numbers to published snapshots of
each blob and guarantees that a version becomes visible only once its data
and metadata are durable ("publish" is the linearization event).

:class:`BlobRegistry` is the pure state; :class:`VersionManagerService` (in
:mod:`repro.blobseer.provider`) wraps it for the simulated fabric.

The registry also implements CLONE at the registry level: a clone is a new
blob whose first snapshot shares the source snapshot's metadata root
(Fig. 3(b)); subsequent COMMITs to the clone are ordered within the clone
only, so clones evolve independently.

Beyond the published snapshot set, the registry keeps an append-only
**lineage log**: one :class:`LineageEntry` per snapshot ever published,
recording its parent edge (the previous snapshot of the same blob, or the
CLONE source for a clone's first snapshot), the metadata root and, once the
snapshot is unpublished, a ``retired`` marker. The log is what lets the
:mod:`repro.lineage` subsystem reconstruct the full snapshot forest —
including branches that churn has already torn down — and what
restore-to-version walks to reopen a historical chain. Entries are tiny
(a few ints) and never deleted, mirroring how the central
:class:`~repro.blobseer.metadata.MetadataStore` retains tree nodes.

The registry also supports refcounted **version pins** with deferred
deletes: while a restore (or compaction) holds a pin on ``(blob, version)``,
``delete_version`` / ``delete_blob`` targeting it do not unpublish — the
delete is recorded and replayed when the last pin drops. Since a deferred
version stays published, it remains a GC root, so a pinned snapshot can
never lose chunks to a concurrent sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..common.errors import LineageError, UnknownBlobError, UnknownVersionError
from .metadata import MetadataStore, NodeId, clone_root

#: a snapshot identity in the lineage log
VersionKey = Tuple[int, int]


@dataclass(frozen=True)
class SnapshotRecord:
    """One published snapshot of a blob."""

    blob_id: int
    version: int
    root: Optional[NodeId]
    size: int
    chunk_size: int


@dataclass
class LineageEntry:
    """One snapshot's permanent lineage record (survives unpublish).

    ``parent`` is the previous snapshot of the same blob for ordinary
    publishes, the CLONE source for a clone's first snapshot, and ``None``
    for a genesis snapshot (version 0, or a seeded blob's first publish).
    ``skip`` is an optional flattening pointer written by chain compaction:
    ancestry walks follow it instead of ``parent``, jumping over merged
    interior versions (the qcow2-chain-flattening analogue).
    """

    blob_id: int
    version: int
    parent: Optional[VersionKey]
    kind: str  # "create" | "publish" | "clone"
    root: Optional[NodeId]
    size: int
    chunk_size: int
    retired: bool = False
    skip: Optional[VersionKey] = None

    @property
    def key(self) -> VersionKey:
        return (self.blob_id, self.version)

    def next_hop(self) -> Optional[VersionKey]:
        """Where an ancestry walk goes from here (skip pointer wins)."""
        return self.skip if self.skip is not None else self.parent


class BlobRegistry:
    """Pure version-manager state: blobs and their totally ordered snapshots.

    Snapshot numbers are monotonically increasing per blob and never reused;
    individual versions (or whole blobs) can be *deleted*, which unpublishes
    them — the garbage collector (:mod:`repro.blobseer.gc`) then reclaims
    whatever chunks and metadata nodes no remaining snapshot references.
    """

    def __init__(self, metadata: MetadataStore):
        self.metadata = metadata
        self._blobs: Dict[int, Dict[int, SnapshotRecord]] = {}
        self._latest: Dict[int, int] = {}
        #: next version number per blob — deleted numbers are never reused
        self._next_version: Dict[int, int] = {}
        self._next_blob = 1
        #: append-only lineage log: every snapshot ever published
        self._lineage: Dict[VersionKey, LineageEntry] = {}
        #: refcounted version pins (restore / compaction leases)
        self._pins: Dict[VersionKey, int] = {}
        #: deletes deferred because their target was pinned
        self._deferred_versions: Set[VersionKey] = set()
        self._deferred_blobs: Set[int] = set()

    # ------------------------------------------------------------------ #
    def _log(
        self,
        rec: SnapshotRecord,
        parent: Optional[VersionKey],
        kind: str,
    ) -> None:
        self._lineage[(rec.blob_id, rec.version)] = LineageEntry(
            blob_id=rec.blob_id,
            version=rec.version,
            parent=parent,
            kind=kind,
            root=rec.root,
            size=rec.size,
            chunk_size=rec.chunk_size,
        )

    def create_blob(self, size: int, chunk_size: int) -> int:
        """Register a new empty blob; snapshot 0 is the all-holes version."""
        blob_id = self._next_blob
        self._next_blob += 1
        rec = SnapshotRecord(blob_id, 0, None, size, chunk_size)
        self._blobs[blob_id] = {0: rec}
        self._latest[blob_id] = 0
        self._next_version[blob_id] = 1
        self._log(rec, None, "create")
        return blob_id

    def publish(self, blob_id: int, root: Optional[NodeId]) -> SnapshotRecord:
        """Publish a new snapshot of ``blob_id``; returns the ordered record."""
        history = self._history(blob_id)
        last = history[self._latest[blob_id]]
        version = self._next_version[blob_id]
        rec = SnapshotRecord(blob_id, version, root, last.size, last.chunk_size)
        history[version] = rec
        self._latest[blob_id] = version
        self._next_version[blob_id] = version + 1
        self._log(rec, (blob_id, last.version), "publish")
        return rec

    def clone(self, blob_id: int, version: Optional[int] = None) -> SnapshotRecord:
        """CLONE: new blob whose snapshot 1 shares the source snapshot's tree."""
        src = self.lookup(blob_id, version)
        return self._clone_from(src)

    def clone_from_lineage(self, blob_id: int, version: int) -> SnapshotRecord:
        """CLONE from the lineage log: the source may already be retired.

        This is what restore-to-version uses — the lineage record retains
        the snapshot's metadata root after an unpublish, so a retired
        version whose chunks have not yet been garbage-collected can still
        be reopened as a new branch. Whether the chunks survive is the
        caller's problem (:func:`repro.lineage.restore.restore_to_version`
        verifies against the providers and pins in-flight state).
        """
        entry = self.lineage_entry(blob_id, version)
        src = SnapshotRecord(
            entry.blob_id, entry.version, entry.root, entry.size, entry.chunk_size
        )
        return self._clone_from(src)

    def _clone_from(self, src: SnapshotRecord) -> SnapshotRecord:
        new_root = clone_root(self.metadata, src.root)
        new_id = self._next_blob
        self._next_blob += 1
        zero = SnapshotRecord(new_id, 0, None, src.size, src.chunk_size)
        first = SnapshotRecord(new_id, 1, new_root, src.size, src.chunk_size)
        # version 0 of the clone is, as for any blob, the empty snapshot
        self._blobs[new_id] = {0: zero, 1: first}
        self._latest[new_id] = 1
        self._next_version[new_id] = 2
        self._log(zero, None, "create")
        self._log(first, (src.blob_id, src.version), "clone")
        return first

    def delete_version(self, blob_id: int, version: int) -> None:
        """Unpublish one snapshot (it must not be the blob's only one).

        If the version is pinned, the delete is *deferred*: it completes
        when the last pin drops, and until then the snapshot stays
        published (and therefore GC-rooted).
        """
        history = self._history(blob_id)
        if version not in history:
            raise UnknownVersionError(f"blob {blob_id} has no version {version}")
        if len(history) == 1:
            raise UnknownVersionError(
                f"blob {blob_id}: cannot delete its only snapshot; delete the blob"
            )
        if self._pins.get((blob_id, version), 0) > 0:
            self._deferred_versions.add((blob_id, version))
            return
        self._delete_version_now(blob_id, version)

    def _delete_version_now(self, blob_id: int, version: int) -> None:
        history = self._history(blob_id)
        del history[version]
        if self._latest[blob_id] == version:
            self._latest[blob_id] = max(history)
        self._retire(blob_id, version)

    def delete_blob(self, blob_id: int) -> None:
        """Unregister a blob and all its snapshots.

        If any of its versions is pinned, the whole delete is deferred
        until the last pin on the blob drops.
        """
        history = self._history(blob_id)  # existence check
        if any(self._pins.get((blob_id, v), 0) > 0 for v in history):
            self._deferred_blobs.add(blob_id)
            return
        self._delete_blob_now(blob_id)

    def _delete_blob_now(self, blob_id: int) -> None:
        for version in self._blobs[blob_id]:
            self._retire(blob_id, version)
        del self._blobs[blob_id]
        del self._latest[blob_id]
        del self._next_version[blob_id]
        self._deferred_blobs.discard(blob_id)
        self._deferred_versions = {
            key for key in self._deferred_versions if key[0] != blob_id
        }

    def _retire(self, blob_id: int, version: int) -> None:
        entry = self._lineage.get((blob_id, version))
        if entry is not None:
            entry.retired = True
        self._deferred_versions.discard((blob_id, version))

    # ------------------------------------------------------------------ #
    # version pins (restore / compaction leases)
    # ------------------------------------------------------------------ #
    def pin_version(self, blob_id: int, version: int) -> None:
        """Take a refcounted lease on a snapshot's lineage record.

        The version may already be retired (a restore from a retired
        mid-chain snapshot still pins it so a racing compaction cannot
        rewrite the record underneath the walk); pinning a never-published
        version raises.
        """
        key = (blob_id, version)
        if key not in self._lineage:
            raise UnknownVersionError(
                f"blob {blob_id} never published a version {version}"
            )
        self._pins[key] = self._pins.get(key, 0) + 1

    def unpin_version(self, blob_id: int, version: int) -> None:
        """Drop one pin; replays any delete deferred while the pin was held."""
        key = (blob_id, version)
        left = self._pins.get(key, 0) - 1
        if left < 0:
            raise LineageError(f"unpin without pin on blob {blob_id} v{version}")
        if left > 0:
            self._pins[key] = left
            return
        self._pins.pop(key, None)
        if blob_id in self._deferred_blobs:
            history = self._blobs.get(blob_id)
            if history is not None and not any(
                self._pins.get((blob_id, v), 0) > 0 for v in history
            ):
                self._delete_blob_now(blob_id)
            return
        if key in self._deferred_versions:
            self._delete_version_now(blob_id, version)

    def pin_count(self, blob_id: int, version: int) -> int:
        return self._pins.get((blob_id, version), 0)

    # ------------------------------------------------------------------ #
    # lineage log queries
    # ------------------------------------------------------------------ #
    def lineage_entry(self, blob_id: int, version: int) -> LineageEntry:
        """The permanent lineage record of a snapshot (live or retired)."""
        entry = self._lineage.get((blob_id, version))
        if entry is None:
            raise UnknownVersionError(
                f"blob {blob_id} never published a version {version}"
            )
        return entry

    def lineage_entries(self) -> List[LineageEntry]:
        """Every lineage record ever logged, in publish order."""
        return list(self._lineage.values())

    def set_skip(
        self, blob_id: int, version: int, skip: Optional[VersionKey]
    ) -> None:
        """Write (or clear) a flattening skip pointer on a lineage record."""
        entry = self.lineage_entry(blob_id, version)
        if skip is not None:
            if skip == (blob_id, version):
                raise LineageError(
                    f"blob {blob_id} v{version}: skip pointer cannot self-loop"
                )
            if skip not in self._lineage:
                raise UnknownVersionError(
                    f"skip target blob {skip[0]} v{skip[1]} was never published"
                )
        entry.skip = skip

    def is_published(self, blob_id: int, version: int) -> bool:
        """Whether the snapshot is still in the published (GC-rooted) set."""
        history = self._blobs.get(blob_id)
        return history is not None and version in history

    # ------------------------------------------------------------------ #
    def lookup(self, blob_id: int, version: Optional[int] = None) -> SnapshotRecord:
        """Fetch a snapshot record; ``version=None`` means the latest."""
        history = self._history(blob_id)
        if version is None:
            version = self._latest[blob_id]
        rec = history.get(version)
        if rec is None:
            raise UnknownVersionError(f"blob {blob_id} has no version {version}")
        return rec

    def versions(self, blob_id: int) -> List[int]:
        return sorted(self._history(blob_id))

    def blob_ids(self) -> List[int]:
        return sorted(self._blobs)

    def live_records(self) -> List[SnapshotRecord]:
        """Every published snapshot across all blobs (the GC root set)."""
        return [rec for history in self._blobs.values() for rec in history.values()]

    def _history(self, blob_id: int) -> Dict[int, SnapshotRecord]:
        try:
            return self._blobs[blob_id]
        except KeyError:
            raise UnknownBlobError(f"no blob {blob_id}") from None
