"""Shared foundations: units, errors, RNG streams, intervals, payload algebra."""

from .errors import (
    ChunkNotFoundError,
    ImageFormatError,
    InterruptedError_,
    MiddlewareError,
    MirrorStateError,
    OutOfRangeError,
    ProviderUnavailableError,
    ReproError,
    SimulationError,
    StorageError,
    UnknownBlobError,
    UnknownVersionError,
)
from .intervals import IntervalSet
from .payload import EMPTY, Payload, SparseFile
from .rng import RngStreams
from .units import GiB, KiB, MiB, GB, KB, MB, fmt_rate, fmt_size, fmt_time

__all__ = [
    "ChunkNotFoundError",
    "EMPTY",
    "GiB",
    "GB",
    "ImageFormatError",
    "InterruptedError_",
    "IntervalSet",
    "KiB",
    "KB",
    "MiB",
    "MB",
    "MiddlewareError",
    "MirrorStateError",
    "OutOfRangeError",
    "Payload",
    "ProviderUnavailableError",
    "ReproError",
    "RngStreams",
    "SimulationError",
    "SparseFile",
    "StorageError",
    "UnknownBlobError",
    "UnknownVersionError",
    "fmt_rate",
    "fmt_size",
    "fmt_time",
]
