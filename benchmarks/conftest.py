"""Benchmark fixtures: per-session caches so one sweep feeds several panels."""

import sys
from pathlib import Path

import pytest

# make `import repro` work without an installed package or PYTHONPATH=src
SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


@pytest.fixture(scope="session")
def sweep_cache():
    """Shared store for sweep results reused across figure panels."""
    return {}
