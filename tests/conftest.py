"""Shared fixtures for the test suite."""

import pytest

import repro.simkit.rpc as rpc
from repro.simkit import Fabric


@pytest.fixture(autouse=True)
def _clean_failure_registry():
    """Failure injection state is process-global; isolate tests."""
    rpc.reset_failures()
    yield
    rpc.reset_failures()


@pytest.fixture
def fabric():
    return Fabric(seed=1234)


def run_process(fab: Fabric, gen, name: str = "test"):
    """Run a generator as a process to completion and return its value."""
    proc = fab.env.process(gen, name=name)
    return fab.run(proc)
