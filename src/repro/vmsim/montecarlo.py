"""The Monte Carlo π application (§5.5, Fig. 8).

A loosely-coupled HPC workload: each of N workers samples points and
periodically saves an intermediate result file (~10 MB) *inside its VM
image*. After a suspend (multisnapshot + terminate) the worker can be
resumed from its snapshot **on a different node**: it reads the intermediate
file back and continues from where it left off — that is exactly the
suspend/resume cycle the second setting of Fig. 8 measures.

Progress is encoded in a small real-bytes header (sampled count) followed by
an opaque body standing in for the raw sample buffer, so resume correctness
is verified end-to-end through whichever storage stack carried the snapshot.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Generator

from ..common.payload import Payload
from ..common.units import MiB

_HEADER_FMT = "<dQ"  # (progress_seconds, magic)
_MAGIC = 0x5049_5349  # "PISI"
_HEADER_BYTES = struct.calcsize(_HEADER_FMT)


@dataclass
class MonteCarloConfig:
    """Per-worker workload shape."""

    #: total computation per worker, in simulated CPU-seconds
    total_compute: float = 1000.0
    #: compute time between checkpoint writes
    checkpoint_interval: float = 100.0
    #: intermediate result size (paper: ~10 MB per instance)
    state_bytes: int = 10 * MiB
    #: guest offset of the state file inside the image
    state_offset: int = 0


class MonteCarloWorker:
    """One worker VM's application process."""

    def __init__(self, name: str, backend, config: MonteCarloConfig):
        self.name = name
        self.backend = backend
        self.config = config
        self.env = backend.host.env
        self.progress: float = 0.0

    # ------------------------------------------------------------------ #
    def _load_progress(self) -> Generator:
        """Read the state header; returns saved progress (0.0 if fresh)."""
        header = yield from self.backend.read(self.config.state_offset, _HEADER_BYTES)
        raw = header.to_bytes() if header.is_materialized() else b"\x00" * _HEADER_BYTES
        progress, magic = struct.unpack(_HEADER_FMT, raw)
        return progress if magic == _MAGIC else 0.0

    def _save_state(self) -> Generator:
        header = Payload.from_bytes(struct.pack(_HEADER_FMT, self.progress, _MAGIC))
        body = Payload.opaque(f"mc-state-{self.name}", self.config.state_bytes - _HEADER_BYTES)
        yield from self.backend.write(self.config.state_offset, header + body)

    # ------------------------------------------------------------------ #
    def run(self, until_progress: float | None = None) -> Generator:
        """Compute (resuming from any saved state) up to ``until_progress``.

        Returns the progress reached. ``until_progress=None`` runs to
        completion.
        """
        target = self.config.total_compute if until_progress is None else until_progress
        self.progress = yield from self._load_progress()
        while self.progress < target - 1e-9:
            step = min(self.config.checkpoint_interval, target - self.progress)
            yield self.env.timeout(step)  # the sampling loop (pure CPU)
            self.progress += step
            yield from self._save_state()
        return self.progress

    @property
    def finished(self) -> bool:
        return self.progress >= self.config.total_compute - 1e-9
