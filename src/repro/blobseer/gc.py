"""Garbage collection of unpublished snapshots.

Shadowing means snapshots share chunks and metadata nodes, so nothing can be
deleted eagerly: a chunk written for snapshot v3 of a clone may be read
forever through snapshot v7 of another clone. Reclamation is therefore a
reachability sweep:

1. the *root set* is every snapshot still published in the
   :class:`~repro.blobseer.vmanager.BlobRegistry`;
2. metadata nodes reachable from any live root stay; all others are dropped
   from their metadata shards;
3. chunk keys referenced by any live leaf stay; all other chunks are
   discarded from their data providers.

The sweep is exact (no refcounts to maintain on the write path, which keeps
COMMIT latency unchanged) and idempotent. One subtlety: a COMMIT in flight
has already PUT chunks and scattered metadata nodes that no published root
reaches until its final publish lands; those are pinned via
:meth:`~repro.blobseer.service.BlobSeerDeployment.pin_inflight` and treated
as live, so a sweep racing a commit (or a long-horizon churn run with
periodic GC) never reclaims chunks the imminent snapshot will reference. Content-addressed deduplication
(:class:`~repro.blobseer.service.BlobSeerDeployment` with ``dedup=True``)
composes naturally: a deduplicated chunk survives as long as *any* snapshot
references it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set, TYPE_CHECKING

from .metadata import reachable_nodes

if TYPE_CHECKING:  # pragma: no cover
    from .service import BlobSeerDeployment


@dataclass
class GcReport:
    """Outcome of one collection sweep."""

    live_snapshots: int
    nodes_kept: int
    nodes_dropped: int
    chunks_kept: int
    chunks_dropped: int
    bytes_reclaimed: int


def collect_garbage(deployment: "BlobSeerDeployment") -> GcReport:
    """Reclaim every chunk and metadata node unreachable from live snapshots."""
    registry = deployment.registry
    metadata = deployment.metadata

    # 1. roots
    live = registry.live_records()

    # 2. metadata reachability
    live_nodes: Set[int] = set()
    for rec in live:
        live_nodes |= reachable_nodes(metadata, rec.root)
    # in-flight commits: nodes already scattered whose publish has not
    # landed yet are invisible from the roots but must survive
    # (see BlobSeerDeployment.pin_inflight)
    live_nodes |= set(deployment.inflight_nodes)

    # 3. chunk reachability (leaves of live trees)
    live_keys: Set[int] = set()
    for nid in live_nodes:
        node = metadata.get(nid)
        if node.ref is not None:
            live_keys.add(node.ref.key)
    # likewise for chunks already PUT by an in-flight commit
    live_keys |= set(deployment.inflight_keys)

    # 4. sweep metadata shards
    nodes_dropped = 0
    for shard in deployment.meta_services.values():
        dead = [nid for nid in shard.nodes if nid not in live_nodes]
        for nid in dead:
            del shard.nodes[nid]
        nodes_dropped += len(dead)

    # 5. sweep data providers
    chunks_dropped = 0
    bytes_reclaimed = 0
    chunks_kept = 0
    for provider in deployment.data_services.values():
        dead = [key for key in provider.store.keys() if key not in live_keys]
        for key in dead:
            bytes_reclaimed += provider.store.get(key).size
            provider.store.discard(key)
            provider.ram.discard(key)
        chunks_dropped += len(dead)
        chunks_kept += len(provider.store)

    # 6. dedup index entries pointing at collected chunks are stale
    if deployment.dedup_index is not None:
        stale = [fp for fp, ref in deployment.dedup_index.items() if ref.key not in live_keys]
        for fp in stale:
            del deployment.dedup_index[fp]

    return GcReport(
        live_snapshots=len(live),
        nodes_kept=len(live_nodes),
        nodes_dropped=nodes_dropped,
        chunks_kept=chunks_kept,
        chunks_dropped=chunks_dropped,
        bytes_reclaimed=bytes_reclaimed,
    )
