"""Point executors: turn a :class:`PointSpec` into a :class:`PointResult`.

Each executor builds a *fresh* simulated cloud (fixed seed, no state shared
with any other point), runs one experiment, and returns plain data. The
executors reproduce the figure benchmarks' measurement code exactly — same
RNG labels, same construction order — so routing a sweep through the runner
yields bit-identical series to the old in-line loops.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Tuple

from ..cloud import build_cloud, deploy, seed_image, snapshot_all
from ..common.errors import SimulationError
from ..vmsim import make_image
from ..vmsim.workloads import read_your_writes_workload
from .profiles import BenchProfile, profile_calibration, resolve_profile
from .spec import PointResult, PointSpec

_EXECUTORS: Dict[str, Callable] = {}


def point_kind(name: str):
    def register(fn):
        _EXECUTORS[name] = fn
        return fn
    return register


def known_kinds() -> Tuple[str, ...]:
    return tuple(sorted(_EXECUTORS))


def build_point_cloud(profile: BenchProfile, seed: int, calib=None, **cloud_kw):
    """Fresh cluster + image for one measurement point."""
    calib = calib if calib is not None else profile_calibration(profile)
    if profile.data_nodes is not None:
        cloud_kw.setdefault("data_nodes", profile.data_nodes)
    if profile.meta_nodes is not None:
        cloud_kw.setdefault("meta_nodes", profile.meta_nodes)
    cloud = build_cloud(profile.pool_nodes, seed=seed, calib=calib, **cloud_kw)
    image = make_image(
        calib.image.size, calib.image.boot_touched_bytes, n_regions=profile.n_regions
    )
    return cloud, image


def apply_diffs(cloud, image, vms, diff_bytes: int) -> None:
    """Each running VM writes ~``diff_bytes`` of local modifications (§5.3)."""

    def one(vm, i):
        ops = read_your_writes_workload(
            image.write_base, diff_bytes, cloud.fabric.rng.get("app-diff", i),
            reread_fraction=0.05,
        )
        yield from vm.run_ops(ops)

    procs = [cloud.env.process(one(vm, i)) for i, vm in enumerate(vms)]
    cloud.run(cloud.env.all_of(procs))


# --------------------------------------------------------------------------- #
# executors
# --------------------------------------------------------------------------- #
@point_kind("deploy")
def _run_deploy(spec: PointSpec, profile: BenchProfile, calib):
    """One Fig. 4 measurement: deploy ``n`` instances with ``approach``."""
    cloud, image = build_point_cloud(
        profile, spec.seed, calib=calib,
        fairness=spec.param("fairness", "equal-share"),
    )
    res = deploy(
        cloud, image, spec.n, spec.approach,
        mirror_prefetch=spec.param("mirror_prefetch", True),
    )
    metrics = {
        "init_time": res.init_time,
        "avg_boot_time": res.avg_boot_time,
        "completion_time": res.completion_time,
        "total_traffic": res.total_traffic,
    }
    series = {"boot_times": tuple(res.boot_times)}
    return cloud, metrics, series


@point_kind("snapshot")
def _run_snapshot(spec: PointSpec, profile: BenchProfile, calib):
    """One Fig. 5 measurement: deploy, write diffs, snapshot all."""
    cloud, image = build_point_cloud(profile, spec.seed, calib=calib)
    res = deploy(cloud, image, spec.n, spec.approach)
    diff_bytes = spec.param("diff_bytes", profile.diff_bytes)
    apply_diffs(cloud, image, res.vms, diff_bytes)
    snap = snapshot_all(cloud, res.vms, spec.approach)
    metrics = {
        "avg_time": snap.avg_time,
        "completion_time": snap.completion_time,
        "total_bytes_moved": snap.total_bytes_moved,
        "deploy_completion_time": res.completion_time,
    }
    series = {"snapshot_durations": tuple(s.duration for s in snap.per_instance)}
    return cloud, metrics, series


@point_kind("bonnie")
def _run_bonnie(spec: PointSpec, profile: BenchProfile, calib):
    """The §5.4 Bonnie++ run; ``approach`` is ``local`` or ``mirror``."""
    from ..vmsim import BonnieBenchmark
    from ..vmsim.backends import LocalRawBackend, MirrorBackend

    cloud, image = build_point_cloud(profile, spec.seed, calib=calib)
    idents = seed_image(cloud, image)
    node = cloud.compute[0]
    fuse = cloud.calib.fuse
    if spec.approach == "local":
        f = node.create_file("/local/image.raw", image.size)
        f.write(0, image.payload)
        backend = LocalRawBackend(node, "/local/image.raw", fuse)
        data_op, meta_op = fuse.local_data_op_overhead, fuse.local_per_op_overhead
    elif spec.approach == "mirror":
        rec = idents["blobseer"]
        backend = MirrorBackend(node, cloud.blobseer, rec.blob_id, rec.version, fuse)
        data_op, meta_op = fuse.data_op_overhead, fuse.per_op_overhead
    else:
        raise SimulationError(
            f"bonnie approach must be 'local' or 'mirror', got {spec.approach!r}"
        )
    base = image.size // 2  # working set in the free half of the image
    bench = BonnieBenchmark(
        backend, data_op, meta_op,
        working_set=profile.bonnie_working_set, base_offset=base,
    )
    out = {}

    def master():
        yield from backend.open()
        out["results"] = yield from bench.run()

    cloud.run(cloud.env.process(master(), name=f"bonnie-{spec.approach}"))
    r = out["results"]
    metrics = {
        "block_write_kbps": r.block_write_kbps,
        "block_read_kbps": r.block_read_kbps,
        "block_overwrite_kbps": r.block_overwrite_kbps,
        "rnd_seek_ops": r.rnd_seek_ops,
        "create_ops": r.create_ops,
        "delete_ops": r.delete_ops,
        "payload_traffic": cloud.metrics.traffic.get("payload", 0),
    }
    return cloud, metrics, {}


@point_kind("resilience")
def _run_resilience(spec: PointSpec, profile: BenchProfile, calib):
    """One resilience-sweep point: multideployment under injected crashes.

    Victims are *spare* pool nodes (nodes not running a VM), so the sweep
    measures how the storage layer — not the hypervisor hosts — degrades:
    a crashed spare takes its data provider (and metadata shard) down with
    whatever chunks it held.

    Params: ``replication`` (replica count), ``crashes`` (how many spares
    die), ``mttr`` (0 = permanent loss), ``window`` (crash spread, seconds
    into the boot phase), ``plan`` (``staggered`` | ``random``),
    ``faults_seed``, ``attempts`` / ``rpc_timeout`` / ``base_delay``
    (client retry policy), ``replica_write_mode`` (``parallel`` |
    ``pipeline``).
    """
    from ..faults import FaultPlan, RetryPolicy, resilient_deploy

    replication = int(spec.param("replication", 1))
    crashes = int(spec.param("crashes", 0))
    mttr = float(spec.param("mttr", 0.0))
    window = float(spec.param("window", 5.0))
    mode = spec.param("plan", "staggered")

    retry = RetryPolicy(
        attempts=int(spec.param("attempts", 4)),
        base_delay=float(spec.param("base_delay", 0.25)),
        rpc_timeout=float(spec.param("rpc_timeout", 2.0)),
    )
    cloud, image = build_point_cloud(
        profile, spec.seed, calib=calib,
        replication_factor=replication,
        replica_write_mode=spec.param("replica_write_mode", "parallel"),
        retry=retry,
    )
    spares = [h.name for h in cloud.compute[spec.n:]]
    if crashes > len(spares):
        raise SimulationError(
            f"resilience: {crashes} crashes exceed the {len(spares)} spare "
            f"nodes of a {profile.pool_nodes}-node pool with n={spec.n}"
        )
    if crashes == 0:
        plan = FaultPlan()
    elif mode == "staggered":
        plan = FaultPlan.staggered_crashes(spares, crashes, window, mttr=mttr)
    elif mode == "random":
        plan = FaultPlan.random_crashes(
            spares, crashes, window, mttr=mttr,
            seed=int(spec.param("faults_seed", spec.seed)),
        )
    else:
        raise SimulationError(
            f"resilience plan must be 'staggered' or 'random', got {mode!r}"
        )

    from ..simkit import rpc as _rpc

    try:
        res = resilient_deploy(
            cloud, image, spec.n, spec.approach or "mirror", plan=plan
        )
    finally:
        # The down-host registry is process-global and keyed by id(fabric);
        # purge it so a later point in this worker (which may reuse the
        # fabric's memory address) cannot inherit stale crash markers.
        _rpc.reset_failures()
    metrics = {
        "init_time": res.init_time,
        "avg_boot_time": res.avg_boot_time,
        "completion_time": res.completion_time,
        "total_traffic": res.total_traffic,
        "boots_completed": float(res.boots_completed),
        "boots_failed": float(res.boots_failed),
        "survival_rate": res.survival_rate,
    }
    series = {"boot_times": tuple(res.boot_times)}
    return cloud, metrics, series


@point_kind("p2p")
def _run_p2p(spec: PointSpec, profile: BenchProfile, calib):
    """One cooperative-exchange sweep point: mirror deploy, p2p on or off.

    Params: ``p2p`` (enable the exchange; default True), ``directory``
    (``announce`` | ``rendezvous``), ``cache_mib`` (per-node peer cache;
    omitted = the :class:`~repro.p2p.exchange.P2PConfig` default),
    ``locate_fanout`` (candidates tried per chunk before the providers).
    A point with ``p2p=False`` is the baseline the speedups are measured
    against — same seed, same image, provider-only fetch path.
    """
    from ..common.units import MiB

    enabled = bool(spec.param("p2p", True))
    cloud_kw = {}
    if enabled:
        cloud_kw = dict(
            p2p=True,
            p2p_directory=spec.param("directory", "announce"),
            p2p_locate_fanout=int(spec.param("locate_fanout", 2)),
        )
        cache_mib = spec.param("cache_mib")
        if cache_mib is not None:
            cloud_kw["p2p_cache_bytes"] = int(cache_mib) * MiB
    cloud, image = build_point_cloud(profile, spec.seed, calib=calib, **cloud_kw)
    res = deploy(cloud, image, spec.n, spec.approach or "mirror")
    metrics = {
        "avg_boot_time": res.avg_boot_time,
        "completion_time": res.completion_time,
        "total_traffic": res.total_traffic,
        "provider_bytes": float(cloud.metrics.counters.get("provider-bytes", 0)),
    }
    stats = res.p2p_stats if res.p2p_stats is not None else {}
    metrics["peer_hit_ratio"] = float(stats.get("peer_hit_ratio", 0.0))
    metrics["bytes_from_peers"] = float(stats.get("bytes_from_peers", 0))
    metrics["bytes_from_providers"] = float(stats.get("bytes_from_providers", 0))
    metrics["peer_failovers"] = float(stats.get("peer_failovers", 0))
    metrics["cache_evictions"] = float(stats.get("cache_evictions", 0))
    series = {"boot_times": tuple(res.boot_times)}
    return cloud, metrics, series


@point_kind("topo")
def _run_topo(spec: PointSpec, profile: BenchProfile, calib):
    """One hierarchical-fabric sweep point: mirror deploy on a rack fabric.

    Params: ``racks`` (default 8; ``1`` = flat fabric, bit-identical to the
    ``p2p`` kind with the same knobs), ``oversubscription`` (rack uplink =
    ``hosts_per_rack * nic_bw / oversubscription``; default 4.0),
    ``locality`` (enable the rack-aware consumers — peer ranking, replica
    reads; default True — False is the topology-blind baseline the
    cross-rack cut is measured against), ``p2p`` / ``directory`` /
    ``cache_mib`` / ``locate_fanout`` (the overlay knobs of the ``p2p``
    kind; p2p defaults True here), ``replication`` (provider replica
    count) and ``placement`` (defaults to ``rack-diverse`` on a multi-rack
    fabric with replication > 1, else ``round-robin``).

    Reported per-tier traffic splits the fluid-flow bytes by the scope of
    each flow's endpoints (intra-rack / cross-rack), overall and for the
    ``payload`` kind alone (provider chunk reads; peer-exchange chunk bytes
    travel as ``rpc-response``).
    """
    from ..common.units import MiB

    racks = int(spec.param("racks", 8))
    locality = bool(spec.param("locality", True))
    replication = int(spec.param("replication", 1))
    placement = spec.param("placement")
    if placement is None:
        placement = (
            "rack-diverse" if (locality and racks > 1 and replication > 1)
            else "round-robin"
        )
    cloud_kw = dict(
        racks=racks,
        oversubscription=float(spec.param("oversubscription", 4.0)),
        topo_aware=locality,
        placement=placement,
    )
    if replication > 1:
        cloud_kw["replication_factor"] = replication
    if bool(spec.param("p2p", True)):
        cloud_kw.update(
            p2p=True,
            p2p_directory=spec.param("directory", "announce"),
            p2p_locate_fanout=int(spec.param("locate_fanout", 2)),
        )
        cache_mib = spec.param("cache_mib")
        if cache_mib is not None:
            cloud_kw["p2p_cache_bytes"] = int(cache_mib) * MiB
    cloud, image = build_point_cloud(profile, spec.seed, calib=calib, **cloud_kw)
    res = deploy(cloud, image, spec.n, spec.approach or "mirror")
    m = cloud.metrics
    scopes = m.topo_scope_totals()
    metrics = {
        "avg_boot_time": res.avg_boot_time,
        "completion_time": res.completion_time,
        "total_traffic": res.total_traffic,
        "intra_rack_bytes": float(scopes.get("intra-rack", 0)),
        "cross_rack_bytes": float(
            scopes.get("cross-rack", 0) + scopes.get("cross-pod", 0)
        ),
        "intra_rack_payload_bytes": float(
            m.topo_kind_bytes("intra-rack", "payload")
        ),
        "cross_rack_payload_bytes": float(
            m.topo_kind_bytes("cross-rack", "payload")
            + m.topo_kind_bytes("cross-pod", "payload")
        ),
    }
    stats = res.p2p_stats if res.p2p_stats is not None else {}
    metrics["peer_hit_ratio"] = float(stats.get("peer_hit_ratio", 0.0))
    metrics["bytes_from_peers"] = float(stats.get("bytes_from_peers", 0))
    metrics["bytes_from_providers"] = float(stats.get("bytes_from_providers", 0))
    series = {"boot_times": tuple(res.boot_times)}
    return cloud, metrics, series


@point_kind("churn")
def _run_churn(spec: PointSpec, profile: BenchProfile, calib):
    """One long-horizon churn run; ``spec.n`` counts *deploy requests*.

    Params mirror :class:`~repro.churn.arrivals.ChurnSpec`: ``policy``
    (``first-fit`` | ``least-loaded`` | ``locality``), ``arrivals``
    (``poisson`` | ``diurnal`` | ``bursty``), ``rate``, ``tenants``,
    ``mean_lifetime``, ``min_lifetime``, ``snapshot_fraction``,
    ``restore_fraction`` (post-teardown restore-to-version arrivals),
    ``slots_per_node``, ``max_queue``, ``gc_interval`` (0 disables the
    periodic sweep — the storage-growth ablation), ``sample_interval``,
    ``retention``, ``retain_snapshots``, ``diff_kib``; plus the p2p overlay
    knobs of the ``p2p`` kind (``p2p``, ``directory``, ``cache_mib``,
    ``locate_fanout``) since locality-aware placement reads the peer
    caches. ``approach`` is ignored (churn always runs the mirror path).
    """
    from ..churn import ChurnEngine, ChurnSpec
    from ..common.units import KiB, MiB

    cloud_kw = {"with_pvfs": False}
    if bool(spec.param("p2p", False)):
        cloud_kw.update(
            p2p=True,
            p2p_directory=spec.param("directory", "announce"),
            p2p_locate_fanout=int(spec.param("locate_fanout", 2)),
        )
        cache_mib = spec.param("cache_mib")
        if cache_mib is not None:
            cloud_kw["p2p_cache_bytes"] = int(cache_mib) * MiB
    cloud, image = build_point_cloud(profile, spec.seed, calib=calib, **cloud_kw)
    churn_spec = ChurnSpec(
        n_deploys=spec.n,
        arrivals=spec.param("arrivals", "poisson"),
        rate=float(spec.param("rate", 2.0)),
        n_tenants=int(spec.param("tenants", 4)),
        mean_lifetime=float(spec.param("mean_lifetime", 40.0)),
        min_lifetime=float(spec.param("min_lifetime", 8.0)),
        snapshot_fraction=float(spec.param("snapshot_fraction", 0.5)),
        restore_fraction=float(spec.param("restore_fraction", 0.0)),
        diff_bytes=int(spec.param("diff_kib", profile.diff_bytes // KiB)) * KiB,
        policy=spec.param("policy", "first-fit"),
        slots_per_node=int(spec.param("slots_per_node", 2)),
        max_queue=int(spec.param("max_queue", 16)),
        gc_interval=float(spec.param("gc_interval", 60.0)),
        sample_interval=float(spec.param("sample_interval", 25.0)),
        retention_per_vm=int(spec.param("retention", 1)),
        retain_snapshots=bool(spec.param("retain_snapshots", False)),
    )
    res = ChurnEngine(cloud, image, churn_spec).run()
    s = res.summary
    metrics = {
        "boot_p50": s["boot_latency"]["p50"],
        "boot_p95": s["boot_latency"]["p95"],
        "boot_p99": s["boot_latency"]["p99"],
        "boot_p50_exact": s["boot_latency"]["p50_exact"],
        "boot_p99_exact": s["boot_latency"]["p99_exact"],
        "boot_mean": s["boot_latency"]["mean"],
        "queue_wait_p99_exact": s["queue_wait"]["p99_exact"],
        "queue_wait_mean": s["queue_wait"]["mean"],
        "snapshot_p99_exact": s["snapshot_latency"]["p99_exact"],
        "rejection_rate": s["rejection_rate"],
        "utilization": s["utilization"],
        "booted": float(s["requests"]["booted"]),
        "completed": float(s["requests"]["completed"]),
        "rejected": float(s["requests"]["rejected"]),
        "canceled": float(s["requests"]["canceled"]),
        "snapshots_taken": float(s["requests"]["snapshots_taken"]),
        "snapshots_missed": float(s["requests"]["snapshots_missed"]),
        "restores_completed": float(s["requests"]["restores_completed"]),
        "restores_missed": float(s["requests"]["restores_missed"]),
        "restores_from_retired": float(s["requests"]["restores_from_retired"]),
        "restore_p99_exact": s["restore_latency"]["p99_exact"],
        "restore_mean_hops": s["restore_latency"]["mean_hops"],
        "gc_sweeps": float(s["gc"]["sweeps"]),
        "bytes_reclaimed": float(s["gc"]["bytes_reclaimed"]),
        "footprint_peak": float(s["gc"]["footprint_peak"]),
        "footprint_final": float(s["gc"]["footprint_final"]),
        "makespan": s["makespan"],
        "n_requests": float(res.n_requests),
        "trace_crc": float(res.trace_crc),
    }
    series = {
        "placements": tuple(res.placements),
        "footprint_t": tuple(t for t, _ in res.footprint),
        "footprint_bytes": tuple(v for _, v in res.footprint),
    }
    return cloud, metrics, series


@point_kind("lineage")
def _run_lineage(spec: PointSpec, profile: BenchProfile, calib):
    """One snapshot-lineage point; ``spec.n`` is the *chain depth*.

    A single mirror-backed VM commits ``n`` snapshots (CLONE once, then
    COMMITs), building an ``n``-deep chain. The point then optionally
    compacts the chain, runs a GC sweep, computes the exact dedup
    accounting, and restores the chain head onto a different node — the
    measured quantity is the restore *scan*, whose per-hop version-manager
    round-trips are what compaction bounds.

    Params: ``compact`` (run :func:`~repro.lineage.compact_chain`; default
    False), ``policy`` (``flatten`` | ``merge``), ``depth_bound``,
    ``replication`` (provider replica count), ``p2p`` (enable the peer
    exchange on the restore fetch path).
    """
    from ..blobseer.gc import collect_garbage
    from ..lineage import (
        LineageForest, compact_chain, dedup_accounting, restore_to_version,
    )
    from ..vmsim import boot_trace

    depth = spec.n
    if depth < 1:
        raise SimulationError(f"lineage: chain depth must be >= 1, got {depth}")
    do_compact = bool(spec.param("compact", False))
    policy = spec.param("policy", "flatten")
    depth_bound = int(spec.param("depth_bound", 4))

    cloud_kw = {"with_pvfs": False}
    replication = int(spec.param("replication", 1))
    if replication > 1:
        cloud_kw["replication_factor"] = replication
    if bool(spec.param("p2p", False)):
        cloud_kw["p2p"] = True
    cloud, image = build_point_cloud(profile, spec.seed, calib=calib, **cloud_kw)
    dep = cloud.blobseer

    res = deploy(cloud, image, 1, "mirror")
    vm = res.vms[0]
    durations = []

    def step(i):
        ops = read_your_writes_workload(
            image.write_base, profile.diff_bytes,
            cloud.fabric.rng.get("lineage-diff", i), reread_fraction=0.05,
        )
        yield from vm.run_ops(ops)
        snap = yield from vm.backend.snapshot()
        durations.append(snap.duration)

    for i in range(depth):
        cloud.run(cloud.env.process(step(i), name=f"lineage-step-{i}"))
    handle = vm.backend.handle
    head = (handle.target_blob, handle.target_version)

    out = {}
    if do_compact:
        def run_compact():
            out["compact"] = yield from compact_chain(
                dep, vm.host, head[0], head[1],
                policy=policy, depth_bound=depth_bound,
            )
        cloud.run(cloud.env.process(run_compact(), name="lineage-compact"))
    gc_report = collect_garbage(dep)
    report = dedup_accounting(dep)

    node = cloud.compute[-1]
    def run_restore():
        out["restore"] = yield from restore_to_version(
            dep, node, head[0], head[1],
            image=image, boot_model=cloud.calib.boot,
            vm_rng=cloud.fabric.rng.get("lineage-restore-vm", 0),
            trace=boot_trace(
                image, cloud.calib.boot,
                cloud.fabric.rng.get("lineage-restore-trace", 0),
            ),
            fuse=cloud.calib.fuse,
        )
    cloud.run(cloud.env.process(run_restore(), name="lineage-restore"))

    restore = out["restore"]
    compact = out.get("compact")
    forest = LineageForest.from_registry(dep.registry)
    stats = forest.stats()
    metrics = {
        "chain_depth": float(depth),
        "scan_hops": float(restore.scan_hops),
        "scan_time": restore.scan_time,
        "clone_time": restore.clone_time,
        "open_time": restore.open_time,
        "restore_time": restore.restore_time,
        "boot_time": restore.boot_time,
        "dedup_exclusive": float(report.total_exclusive),
        "dedup_shared": float(report.total_shared),
        "dedup_live": float(report.live_bytes),
        "dedup_stored": float(report.stored_bytes),
        "sharing_ratio": report.sharing_ratio(),
        "conserved": 1.0 if report.conserves() else 0.0,
        "footprint_matches": 1.0 if report.matches_footprint() else 0.0,
        "gc_bytes_reclaimed": float(gc_report.bytes_reclaimed),
        "forest_snapshots": float(stats["snapshots"]),
        "forest_max_depth": float(stats["max_depth"]),
        "skips_written": float(compact.skips_written if compact else 0),
        "versions_merged": float(compact.versions_merged if compact else 0),
        "compact_duration": compact.duration if compact else 0.0,
    }
    series = {
        "snapshot_durations": tuple(durations),
        "chain": tuple(f"b{b}v{v}" for b, v in restore.chain),
    }
    return cloud, metrics, series


def _mc_config(profile: BenchProfile, calib, image):
    from ..vmsim import MonteCarloConfig

    return MonteCarloConfig(
        total_compute=profile.mc_total_compute,
        checkpoint_interval=profile.mc_total_compute / 10,
        state_bytes=calib.snapshot.montecarlo_state_bytes,
        state_offset=image.write_base,
    )


def _run_mc_workers(cloud, workers, until=None):
    procs = [cloud.env.process(w.run(until_progress=until)) for w in workers]
    cloud.run(cloud.env.all_of(procs))


@point_kind("montecarlo")
def _run_montecarlo(spec: PointSpec, profile: BenchProfile, calib):
    """The §5.5 Monte Carlo application; param ``mode`` picks the setting:

    * ``uninterrupted`` (default) — deploy and run to completion;
    * ``suspend-resume`` — run half-way, multisnapshot, terminate, redeploy
      on different nodes, resume from the saved intermediate result.
    """
    from ..vmsim import MonteCarloWorker

    mode = spec.param("mode", "uninterrupted")
    cloud, image = build_point_cloud(profile, spec.seed, calib=calib)
    n = min(profile.mc_workers, profile.pool_nodes)
    cfg = _mc_config(profile, calib, image)

    if mode == "uninterrupted":
        res = deploy(cloud, image, n, spec.approach)
        workers = [MonteCarloWorker(vm.name, vm.backend, cfg) for vm in res.vms]
        _run_mc_workers(cloud, workers)
        if not all(w.finished for w in workers):
            raise SimulationError("montecarlo: not every worker finished")
    elif mode == "suspend-resume":
        _montecarlo_suspend_resume(spec, profile, cloud, image, cfg, n)
    else:
        raise SimulationError(
            f"montecarlo mode must be 'uninterrupted' or 'suspend-resume', "
            f"got {mode!r}"
        )
    metrics = {"completion_time": cloud.env.now, "workers": n}
    return cloud, metrics, {}


def _montecarlo_suspend_resume(spec, profile, cloud, image, cfg, n):
    from ..baselines.qcow2 import Qcow2Image
    from ..cloud.middleware import CloudMiddleware
    from ..vmsim import MonteCarloWorker, boot_trace
    from ..vmsim.backends import Qcow2PvfsBackend
    from ..vmsim.hypervisor import VMInstance

    half = profile.mc_total_compute / 2
    mw = CloudMiddleware(cloud)
    res = mw.deploy_set(image, n, spec.approach)
    workers = [MonteCarloWorker(vm.name, vm.backend, cfg) for vm in res.vms]
    _run_mc_workers(cloud, workers, until=half)
    if not all(w.progress == half for w in workers):
        raise SimulationError("montecarlo: workers did not reach half progress")

    campaign = snapshot_all(cloud, res.vms, spec.approach)
    mw.terminate_set(res.vms)

    # resume on different nodes: shifted placement over the pool
    shift = max(1, profile.pool_nodes - n)
    fresh = [cloud.compute[(i + shift) % profile.pool_nodes] for i in range(n)]
    boot_model = cloud.calib.boot

    if spec.approach == "mirror":
        resumed = mw.resume_set(list(campaign.per_instance), fresh)
    else:
        resumed = []
        for i, (snap, node) in enumerate(zip(campaign.per_instance, fresh)):
            # download the qcow2 snapshot file from PVFS, reopen it locally
            src_backend = res.vms[i].backend
            backend = Qcow2PvfsBackend(
                node, cloud.pvfs, "/images/initial.raw", cloud.calib.fuse,
                cluster_size=src_backend.image.cluster_size,
            )

            def fetch(backend=backend, snap=snap, src=src_backend):
                payload = yield from backend.client.read(snap.ident, 0, snap.bytes_moved)
                _, index = src.image.serialize()
                backend.image = Qcow2Image.deserialize(
                    payload, index, image.size,
                    backing_read=backend.image.backing_read,
                    cluster_size=src.image.cluster_size,
                )

            cloud.run(cloud.env.process(fetch(), name=f"resume-fetch-{i}"))
            resumed.append(
                VMInstance(
                    f"resumed-{i:03d}", node, backend, boot_model,
                    cloud.fabric.rng.get("vm-resume", i),
                )
            )

    # reboot the resumed instances (fresh nodes: everything remote again)
    boots = []
    for i, vm in enumerate(resumed):
        trace = boot_trace(image, boot_model, cloud.fabric.rng.get("trace-resume", i))
        boots.append(cloud.env.process(vm.boot(trace), name=f"reboot-{vm.name}"))
    cloud.run(cloud.env.all_of(boots))

    new_workers = [MonteCarloWorker(vm.name, vm.backend, cfg) for vm in resumed]
    _run_mc_workers(cloud, new_workers)
    if not all(w.finished for w in new_workers):
        raise SimulationError("montecarlo resume: not every worker finished")
    # end-to-end: progress really came from the snapshot, not from scratch
    if not all(w.progress == profile.mc_total_compute for w in new_workers):
        raise SimulationError("montecarlo resume: progress lost across snapshot")


# --------------------------------------------------------------------------- #
# entry point
# --------------------------------------------------------------------------- #
def execute_point(spec: PointSpec) -> PointResult:
    """Run one spec in-process and return its structured result."""
    try:
        executor = _EXECUTORS[spec.kind]
    except KeyError:
        raise SimulationError(
            f"unknown point kind {spec.kind!r}; known kinds: "
            f"{', '.join(known_kinds())}"
        ) from None
    profile = resolve_profile(spec.profile)
    calib = profile_calibration(profile, spec.overrides)
    t0 = time.perf_counter()
    cloud, metrics, series = executor(spec, profile, calib)
    wall = time.perf_counter() - t0
    return PointResult(
        spec=spec,
        metrics=metrics,
        series=series,
        counters=dict(cloud.metrics.counters),
        event_count=cloud.env.event_count,
        wall_s=round(wall, 6),
    )
