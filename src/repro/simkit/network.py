"""Flow-level network fabric with per-NIC fair bandwidth sharing.

The paper's testbed is a commodity GigE cluster (117.5 MB/s measured TCP
throughput, ~0.1 ms latency) behind a non-blocking switch, so the only
bandwidth constraints that matter are the hosts' NICs. We therefore model the
network at *flow level*: a bulk transfer is a fluid flow whose instantaneous
rate is its fair share of its source's uplink and destination's downlink.

Two fairness disciplines are provided:

``"equal-share"`` (default)
    ``rate(f) = min(cap_up(src)/n_up(src), cap_down(dst)/n_down(dst))``.
    Incremental, O(flows on the two affected links) per flow arrival or
    departure — fast enough for hundred-node sweeps. It slightly
    *under*-estimates throughput versus true max-min fairness because the
    share a bottlenecked-elsewhere flow leaves on a link is not
    redistributed.

``"maxmin"``
    exact max-min fairness via progressive filling, recomputed globally on
    every flow arrival/departure. O(links x flows) per recompute — used in
    tests and small topologies to bound the error of the fast mode.

Small control messages (below :attr:`FlowNetwork.message_threshold`) bypass
the fluid model and pay ``latency + size/capacity + per_message_overhead``;
their bytes still land in the traffic accounting.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..common.units import MB, MILLISECONDS
from .core import Environment, Event
from .trace import Metrics


class Nic:
    """A full-duplex network interface: independent up and down capacities.

    Flow collections are insertion-ordered dicts (used as ordered sets):
    iteration order must be deterministic across runs, or float accumulation
    and event tie-breaking would depend on object memory addresses.
    """

    __slots__ = ("name", "up_capacity", "down_capacity", "up_flows", "down_flows")

    def __init__(self, name: str, up_capacity: float, down_capacity: float | None = None):
        self.name = name
        self.up_capacity = float(up_capacity)
        self.down_capacity = float(down_capacity if down_capacity is not None else up_capacity)
        self.up_flows: Dict[Flow, None] = {}
        self.down_flows: Dict[Flow, None] = {}

    def __repr__(self) -> str:
        return f"Nic({self.name}, up={self.up_capacity / MB:.1f}MB/s)"


class Flow:
    """A bulk transfer in flight. Internal to :class:`FlowNetwork`."""

    __slots__ = ("src", "dst", "size", "remaining", "rate", "t_last", "done", "wake_seq", "kind")

    def __init__(self, src: Nic, dst: Nic, size: float, done: Event, kind: str):
        self.src = src
        self.dst = dst
        self.size = float(size)
        self.remaining = float(size)
        self.rate = 0.0
        self.t_last = 0.0
        self.done = done
        self.wake_seq = 0
        self.kind = kind


class FlowNetwork:
    """The cluster fabric: NIC registry, flows, messages, traffic accounting."""

    def __init__(
        self,
        env: Environment,
        metrics: Optional[Metrics] = None,
        latency: float = 0.1 * MILLISECONDS,
        fairness: str = "equal-share",
        message_threshold: int = 4096,
        per_message_overhead: float = 0.02 * MILLISECONDS,
        message_header_bytes: int = 66,
    ):
        if fairness not in ("equal-share", "maxmin"):
            raise ValueError(f"unknown fairness discipline {fairness!r}")
        self.env = env
        self.metrics = metrics if metrics is not None else Metrics()
        self.latency = latency
        self.fairness = fairness
        self.message_threshold = message_threshold
        self.per_message_overhead = per_message_overhead
        self.message_header_bytes = message_header_bytes
        self._nics: Dict[str, Nic] = {}
        self._flows: Dict[Flow, None] = {}

    # ------------------------------------------------------------------ #
    # topology
    # ------------------------------------------------------------------ #
    def add_nic(self, name: str, up_capacity: float, down_capacity: float | None = None) -> Nic:
        if name in self._nics:
            raise ValueError(f"duplicate NIC name {name!r}")
        nic = Nic(name, up_capacity, down_capacity)
        self._nics[name] = nic
        return nic

    def nic(self, name: str) -> Nic:
        return self._nics[name]

    @property
    def active_flow_count(self) -> int:
        return len(self._flows)

    # ------------------------------------------------------------------ #
    # transfers
    # ------------------------------------------------------------------ #
    def transfer(self, src: Nic, dst: Nic, nbytes: int, kind: str = "bulk") -> Event:
        """Start a bulk transfer; the event fires when the last byte lands."""
        done = Event(self.env)
        if src is dst:
            # Loopback: no NIC constraint; charge memory-copy-ish zero time.
            self.metrics.add_traffic(0, kind)  # loopback does not hit the wire
            done.succeed()
            return done
        if nbytes <= self.message_threshold:
            return self.message(src, dst, nbytes, kind=kind, done=done)
        flow = Flow(src, dst, nbytes, done, kind)
        flow.t_last = self.env.now
        self._flows[flow] = None
        src.up_flows[flow] = None
        dst.down_flows[flow] = None
        self._rebalance([src, dst] if self.fairness == "equal-share" else None)
        return done

    def message(
        self,
        src: Nic,
        dst: Nic,
        nbytes: int,
        kind: str = "message",
        done: Event | None = None,
    ) -> Event:
        """A small control message: latency + serialization, no fair sharing."""
        if done is None:
            done = Event(self.env)
        wire_bytes = nbytes + self.message_header_bytes
        if src is dst:
            delay = self.per_message_overhead
        else:
            delay = (
                self.latency
                + self.per_message_overhead
                + wire_bytes / min(src.up_capacity, dst.down_capacity)
            )
            self.metrics.add_traffic(wire_bytes, kind)

        def fire(_ev: Event, done=done) -> None:
            done.succeed()

        timer = self.env.timeout(delay)
        assert timer.callbacks is not None
        timer.callbacks.append(fire)
        return done

    # ------------------------------------------------------------------ #
    # rate maintenance
    # ------------------------------------------------------------------ #
    def _affected_flows(self, nics) -> List[Flow]:
        if nics is None:
            return list(self._flows)
        out: Dict[Flow, None] = {}
        for nic in nics:
            out.update(nic.up_flows)
            out.update(nic.down_flows)
        return list(out)

    def _rebalance(self, touched) -> None:
        """Re-derive flow rates after an arrival/departure and reschedule wakeups."""
        now = self.env.now
        affected = self._affected_flows(touched)
        # Advance progress of affected flows to `now` under their old rates.
        for flow in affected:
            if flow.rate > 0.0:
                flow.remaining -= flow.rate * (now - flow.t_last)
                if flow.remaining < 0.0:
                    flow.remaining = 0.0
            flow.t_last = now
        # Compute new rates.
        if self.fairness == "equal-share":
            for flow in affected:
                up_share = flow.src.up_capacity / max(1, len(flow.src.up_flows))
                down_share = flow.dst.down_capacity / max(1, len(flow.dst.down_flows))
                flow.rate = min(up_share, down_share)
        else:
            self._progressive_filling()
        # Reschedule completion wakeups for flows whose rate changed.
        for flow in affected:
            flow.wake_seq += 1
            self._arm_wakeup(flow)

    def _progressive_filling(self) -> None:
        """Exact max-min fairness over all active flows."""
        unfixed: Dict[Flow, None] = dict(self._flows)
        residual_up: Dict[Nic, float] = {}
        residual_down: Dict[Nic, float] = {}
        count_up: Dict[Nic, int] = {}
        count_down: Dict[Nic, int] = {}
        for flow in unfixed:
            residual_up.setdefault(flow.src, flow.src.up_capacity)
            residual_down.setdefault(flow.dst, flow.dst.down_capacity)
            count_up[flow.src] = count_up.get(flow.src, 0) + 1
            count_down[flow.dst] = count_down.get(flow.dst, 0) + 1
        while unfixed:
            # The tightest link determines the next fixing level.
            level = None
            for nic, res in residual_up.items():
                if count_up.get(nic, 0) > 0:
                    share = res / count_up[nic]
                    level = share if level is None else min(level, share)
            for nic, res in residual_down.items():
                if count_down.get(nic, 0) > 0:
                    share = res / count_down[nic]
                    level = share if level is None else min(level, share)
            assert level is not None
            # Fix every flow constrained at `level` on a saturated link.
            fixed_now: List[Flow] = []
            for flow in unfixed:
                up_share = residual_up[flow.src] / count_up[flow.src]
                down_share = residual_down[flow.dst] / count_down[flow.dst]
                if min(up_share, down_share) <= level * (1 + 1e-9):
                    flow.rate = level
                    fixed_now.append(flow)
            if not fixed_now:  # numerical guard; fix everything at level
                for flow in unfixed:
                    flow.rate = level
                fixed_now = list(unfixed)
            for flow in fixed_now:
                unfixed.pop(flow, None)
                residual_up[flow.src] -= flow.rate
                residual_down[flow.dst] -= flow.rate
                count_up[flow.src] -= 1
                count_down[flow.dst] -= 1

    def _arm_wakeup(self, flow: Flow) -> None:
        if flow.rate <= 0.0:
            return
        eta = flow.remaining / flow.rate
        seq = flow.wake_seq

        def on_wake(_ev: Event, flow=flow, seq=seq) -> None:
            if flow.wake_seq != seq or flow not in self._flows:
                return  # stale wakeup: the flow's rate changed meanwhile
            self._complete(flow)

        timer = self.env.timeout(eta)
        assert timer.callbacks is not None
        timer.callbacks.append(on_wake)

    def _complete(self, flow: Flow) -> None:
        self._flows.pop(flow, None)
        flow.src.up_flows.pop(flow, None)
        flow.dst.down_flows.pop(flow, None)
        self.metrics.add_traffic(int(flow.size), flow.kind)
        self._rebalance([flow.src, flow.dst] if self.fairness == "equal-share" else None)

        # Last byte still pays propagation latency.
        def deliver(_ev: Event, flow=flow) -> None:
            flow.done.succeed()

        timer = self.env.timeout(self.latency)
        assert timer.callbacks is not None
        timer.callbacks.append(deliver)
