"""Unit and property tests for the payload algebra and sparse files."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import OutOfRangeError
from repro.common.payload import EMPTY, Payload, SparseFile


class TestConstruction:
    def test_from_bytes(self):
        p = Payload.from_bytes(b"hello")
        assert p.size == 5
        assert p.to_bytes() == b"hello"

    def test_zeros(self):
        p = Payload.zeros(4)
        assert p.size == 4
        assert p.to_bytes() == b"\x00" * 4

    def test_opaque(self):
        p = Payload.opaque("img", 100, offset=10)
        assert p.size == 100
        assert not p.is_materialized()

    def test_empty(self):
        assert EMPTY.size == 0
        assert EMPTY.to_bytes() == b""

    def test_opaque_to_bytes_raises(self):
        with pytest.raises(ValueError):
            Payload.opaque("img", 10).to_bytes()

    def test_zero_sized_atoms_dropped(self):
        p = Payload.concat([Payload.from_bytes(b""), Payload.zeros(0)])
        assert p == EMPTY


class TestSliceConcat:
    def test_slice_bytes(self):
        p = Payload.from_bytes(b"abcdef")
        assert p.slice(1, 4).to_bytes() == b"bcd"

    def test_getitem(self):
        p = Payload.from_bytes(b"abcdef")
        assert p[2:5].to_bytes() == b"cde"
        assert p[:].to_bytes() == b"abcdef"

    def test_slice_across_atoms(self):
        p = Payload.from_bytes(b"abc") + Payload.zeros(3) + Payload.from_bytes(b"xyz")
        assert p.slice(2, 8).to_bytes() == b"c\x00\x00\x00xy"

    def test_slice_out_of_range(self):
        with pytest.raises(OutOfRangeError):
            Payload.from_bytes(b"abc").slice(0, 4)

    def test_opaque_slice_window_arithmetic(self):
        p = Payload.opaque("img", 100, offset=50)
        sub = p.slice(10, 30)
        (atom,) = sub.atoms
        assert (atom.tag, atom.offset, atom.nbytes) == ("img", 60, 20)

    def test_adjacent_opaque_windows_merge(self):
        a = Payload.opaque("img", 10, offset=0)
        b = Payload.opaque("img", 10, offset=10)
        assert len((a + b).atoms) == 1
        assert (a + b).size == 20

    def test_nonadjacent_opaque_do_not_merge(self):
        a = Payload.opaque("img", 10, offset=0)
        b = Payload.opaque("img", 10, offset=11)
        assert len((a + b).atoms) == 2

    def test_different_tags_do_not_merge(self):
        a = Payload.opaque("img1", 10, offset=0)
        b = Payload.opaque("img2", 10, offset=10)
        assert len((a + b).atoms) == 2

    def test_equality_normalized(self):
        a = Payload.from_bytes(b"ab") + Payload.from_bytes(b"cd")
        b = Payload.from_bytes(b"abcd")
        assert a == b
        assert hash(a) == hash(b)

    def test_opaque_identity_survives_split_rejoin(self):
        p = Payload.opaque("img", 1000)
        rejoined = Payload.concat([p.slice(0, 400), p.slice(400, 1000)])
        assert rejoined == p


@settings(max_examples=150)
@given(st.binary(max_size=64), st.data())
def test_slice_concat_roundtrip(data, draw):
    p = Payload.from_bytes(data)
    cut = draw.draw(st.integers(0, len(data)))
    assert (p.slice(0, cut) + p.slice(cut, p.size)).to_bytes() == data


@settings(max_examples=150)
@given(
    st.lists(
        st.one_of(
            st.binary(min_size=1, max_size=16).map(Payload.from_bytes),
            st.integers(1, 16).map(Payload.zeros),
        ),
        max_size=8,
    ),
    st.data(),
)
def test_any_window_matches_bytes(parts, draw):
    p = Payload.concat(parts)
    ref = p.to_bytes()
    lo = draw.draw(st.integers(0, p.size))
    hi = draw.draw(st.integers(lo, p.size))
    assert p.slice(lo, hi).to_bytes() == ref[lo:hi]


class TestSparseFile:
    def test_reads_zero_when_fresh(self):
        f = SparseFile(10)
        assert f.read(0, 10).to_bytes() == b"\x00" * 10

    def test_write_read_back(self):
        f = SparseFile(10)
        f.write(3, Payload.from_bytes(b"abc"))
        assert f.read(0, 10).to_bytes() == b"\x00" * 3 + b"abc" + b"\x00" * 4

    def test_overwrite_middle(self):
        f = SparseFile(10, base=Payload.from_bytes(b"0123456789"))
        f.write(4, Payload.from_bytes(b"XY"))
        assert f.read(0, 10).to_bytes() == b"0123XY6789"

    def test_write_spanning_segments(self):
        f = SparseFile(12)
        f.write(0, Payload.from_bytes(b"aaa"))
        f.write(9, Payload.from_bytes(b"bbb"))
        f.write(2, Payload.from_bytes(b"XXXXXXXX"))
        assert f.read(0, 12).to_bytes() == b"aaXXXXXXXXbb"

    def test_out_of_range(self):
        f = SparseFile(4)
        with pytest.raises(OutOfRangeError):
            f.write(2, Payload.from_bytes(b"abc"))
        with pytest.raises(OutOfRangeError):
            f.read(0, 5)

    def test_written_bytes_tracks_footprint(self):
        f = SparseFile(100)
        f.write(0, Payload.from_bytes(b"ab"))
        f.write(50, Payload.from_bytes(b"cd"))
        assert f.written_bytes() == 4
        f.write(1, Payload.from_bytes(b"zz"))  # overlap extends by 1
        assert f.written_bytes() == 5

    def test_base_payload_must_match_size(self):
        with pytest.raises(OutOfRangeError):
            SparseFile(5, base=Payload.from_bytes(b"abc"))

    def test_opaque_base_with_byte_overlay(self):
        f = SparseFile(100, base=Payload.opaque("img", 100))
        f.write(10, Payload.from_bytes(b"mod"))
        got = f.read(5, 20)
        assert got.size == 20
        # window [5,10) opaque, [10,13) bytes, [13,25) opaque
        assert got.atoms[0].tag == "img" and got.atoms[0].offset == 5
        assert got.atoms[1].data == b"mod"
        assert got.atoms[2].offset == 13


@settings(max_examples=150)
@given(
    st.lists(
        st.tuples(st.integers(0, 48), st.binary(min_size=1, max_size=16)),
        max_size=12,
    )
)
def test_sparsefile_matches_bytearray_model(writes):
    SIZE = 64
    f = SparseFile(SIZE)
    model = bytearray(SIZE)
    for off, data in writes:
        data = data[: SIZE - off]
        if not data:
            continue
        f.write(off, Payload.from_bytes(data))
        model[off : off + len(data)] = data
    assert f.read(0, SIZE).to_bytes() == bytes(model)
