"""Tests for Resource / Store / Container."""

import pytest

from repro.common.errors import SimulationError
from repro.simkit.core import Environment
from repro.simkit.resources import Container, Resource, Store


class TestResource:
    def test_capacity_one_serializes(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def user(name):
            req = res.request()
            yield req
            log.append((env.now, name, "start"))
            yield env.timeout(1.0)
            res.release()
            log.append((env.now, name, "end"))

        env.process(user("a"))
        env.process(user("b"))
        env.run()
        assert log == [
            (0.0, "a", "start"),
            (1.0, "a", "end"),
            (1.0, "b", "start"),
            (2.0, "b", "end"),
        ]

    def test_capacity_two_overlaps(self):
        env = Environment()
        res = Resource(env, capacity=2)
        ends = []

        def user():
            yield res.request()
            yield env.timeout(1.0)
            res.release()
            ends.append(env.now)

        for _ in range(4):
            env.process(user())
        env.run()
        assert ends == [1.0, 1.0, 2.0, 2.0]

    def test_fifo_order(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def user(i):
            yield res.request()
            order.append(i)
            yield env.timeout(0.1)
            res.release()

        for i in range(5):
            env.process(user(i))
        env.run()
        assert order == [0, 1, 2, 3, 4]

    def test_release_without_request_raises(self):
        env = Environment()
        res = Resource(env)
        with pytest.raises(SimulationError):
            res.release()

    def test_queue_length(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def holder():
            yield res.request()
            yield env.timeout(10.0)
            res.release()

        def waiter():
            yield res.request()
            res.release()

        env.process(holder())
        env.process(waiter())
        env.run(until=1.0)
        assert res.queue_length == 1

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Resource(Environment(), capacity=0)


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        store.put("x")

        def getter():
            v = yield store.get()
            return v

        assert env.run(env.process(getter())) == "x"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        out = []

        def getter():
            v = yield store.get()
            out.append((env.now, v))

        def putter():
            yield env.timeout(2.0)
            store.put("late")

        env.process(getter())
        env.process(putter())
        env.run()
        assert out == [(2.0, "late")]

    def test_fifo_items_and_getters(self):
        env = Environment()
        store = Store(env)
        got = []

        def getter(i):
            v = yield store.get()
            got.append((i, v))

        env.process(getter(0))
        env.process(getter(1))

        def putter():
            yield env.timeout(1.0)
            store.put("first")
            store.put("second")

        env.process(putter())
        env.run()
        assert got == [(0, "first"), (1, "second")]

    def test_len(self):
        env = Environment()
        store = Store(env)
        store.put(1)
        store.put(2)
        assert len(store) == 2


class TestContainer:
    def test_get_blocks_until_level(self):
        env = Environment()
        c = Container(env, capacity=100.0, init=0.0)
        out = []

        def consumer():
            yield c.get(30.0)
            out.append(env.now)

        def producer():
            yield env.timeout(1.0)
            yield c.put(15.0)
            yield env.timeout(1.0)
            yield c.put(15.0)

        env.process(consumer())
        env.process(producer())
        env.run()
        assert out == [2.0]
        assert c.level == 0.0

    def test_put_blocks_at_capacity(self):
        env = Environment()
        c = Container(env, capacity=10.0, init=10.0)
        out = []

        def producer():
            yield c.put(5.0)
            out.append(env.now)

        def consumer():
            yield env.timeout(3.0)
            yield c.get(5.0)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert out == [3.0]

    def test_init_over_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Container(Environment(), capacity=1.0, init=2.0)
