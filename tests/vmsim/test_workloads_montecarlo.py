"""Tests for application workloads, the Monte Carlo worker and Bonnie."""

import numpy as np
import pytest

from repro.blobseer import BlobSeerDeployment
from repro.common.payload import Payload
from repro.common.units import KiB, MiB
from repro.simkit.host import Fabric
from repro.vmsim import (
    BonnieBenchmark,
    MonteCarloConfig,
    MonteCarloWorker,
    cpu_workload,
    log_append_workload,
    read_your_writes_workload,
)
from repro.vmsim.backends import MirrorBackend
from repro.vmsim.boottrace import trace_stats

CHUNK = 64 * KiB
IMG = 8 * MiB


def make_backend(seed=17):
    fab = Fabric(seed=seed)
    hosts = [fab.add_host(f"n{i}") for i in range(4)]
    manager = fab.add_host("m")
    dep = BlobSeerDeployment(fab, hosts, hosts, manager)
    rec = dep.seed_blob(Payload.opaque("img", IMG), CHUNK)
    backend = MirrorBackend(hosts[0], dep, rec.blob_id, rec.version)
    return fab, backend


def run(fab, gen):
    return fab.run(fab.env.process(gen))


class TestWorkloads:
    def test_cpu_workload_total(self):
        ops = cpu_workload(10.0, slices=4)
        assert trace_stats(ops)["cpu_seconds"] == pytest.approx(10.0)
        assert all(o.kind == "cpu" for o in ops)

    def test_read_your_writes_reads_only_written(self):
        rng = np.random.default_rng(3)
        ops = read_your_writes_workload(1000, 64 * 1024, rng)
        written = set()
        for op in ops:
            if op.kind == "write":
                written.add((op.offset, op.nbytes))
            elif op.kind == "read":
                assert (op.offset, op.nbytes) in written

    def test_read_your_writes_volume(self):
        rng = np.random.default_rng(4)
        ops = read_your_writes_workload(0, 100 * 1024, rng)
        assert trace_stats(ops)["write_bytes"] == 100 * 1024

    def test_log_append_sequential(self):
        ops = log_append_workload(500, 5, 100)
        offsets = [o.offset for o in ops if o.kind == "write"]
        assert offsets == [500, 600, 700, 800, 900]


class TestMonteCarlo:
    def _worker(self, fab, backend, total=10.0, interval=2.0):
        cfg = MonteCarloConfig(
            total_compute=total, checkpoint_interval=interval,
            state_bytes=256 * KiB, state_offset=IMG // 2,
        )
        return MonteCarloWorker("w0", backend, cfg)

    def test_runs_to_completion(self):
        fab, backend = make_backend()
        worker = self._worker(fab, backend)

        def scenario():
            yield from backend.open()
            progress = yield from worker.run()
            return progress

        assert run(fab, scenario()) == 10.0
        assert worker.finished

    def test_partial_then_resume_same_backend(self):
        fab, backend = make_backend()
        worker = self._worker(fab, backend)

        def scenario():
            yield from backend.open()
            yield from worker.run(until_progress=6.0)
            t_half = fab.env.now
            # a new worker object (fresh process) resumes from saved state
            w2 = self._worker(fab, backend)
            yield from w2.run()
            return t_half, w2

        t_half, w2 = run(fab, scenario())
        assert w2.finished
        # the resumed run only computed the remaining 4 seconds (+ I/O)
        assert fab.env.now - t_half < 6.0

    def test_fresh_image_starts_from_zero(self):
        fab, backend = make_backend()
        worker = self._worker(fab, backend)

        def scenario():
            yield from backend.open()
            progress = yield from worker._load_progress()
            return progress

        assert run(fab, scenario()) == 0.0

    def test_progress_survives_snapshot_chain(self):
        fab, backend = make_backend()
        worker = self._worker(fab, backend)

        def scenario():
            yield from backend.open()
            yield from worker.run(until_progress=4.0)
            snap = yield from backend.snapshot()
            # open the snapshot on another node
            blob, version = snap.ident[4:].split("@v")
            other = MirrorBackend(
                fab.hosts["n2"], backend.deployment, int(blob), int(version)
            )
            yield from other.open()
            w2 = self._worker(fab, other)
            progress = yield from w2._load_progress()
            return progress

        assert run(fab, scenario()) == 4.0


class TestBonnie:
    def test_results_positive_and_consistent(self):
        fab, backend = make_backend()
        bench = BonnieBenchmark(
            backend, 2e-6, 20e-6,
            working_set=2 * MiB, base_offset=IMG // 2, n_seeks=100, n_files=100,
        )

        def scenario():
            yield from backend.open()
            results = yield from bench.run()
            return results

        r = run(fab, scenario())
        assert r.block_write_kbps > 0
        assert r.block_read_kbps > 0
        assert r.block_overwrite_kbps > 0
        # overwrite does read+write: slower than either alone
        assert r.block_overwrite_kbps < r.block_write_kbps
        assert r.block_overwrite_kbps < r.block_read_kbps
        assert r.rnd_seek_ops > 0 and r.create_ops > 0 and r.delete_ops > 0
        # deletes cost more ops than creates in the model
        assert r.delete_ops < r.create_ops

    def test_no_remote_reads_for_written_data(self):
        """§5.4: write-then-read workload never goes to the repository."""
        fab, backend = make_backend()
        bench = BonnieBenchmark(
            backend, 2e-6, 20e-6,
            working_set=1 * MiB, base_offset=IMG // 2, n_seeks=10, n_files=10,
        )

        def scenario():
            yield from backend.open()
            yield from bench.run()

        run(fab, scenario())
        assert fab.metrics.counters.get("mirror-remote-read", 0) == 0
