"""Local-disk and page-cache models.

The paper's compute nodes have commodity SATA disks (~55 MB/s measured).
Two layers are modelled:

* :class:`Disk` — the raw device: a single-served FIFO queue where an
  operation costs ``seek (if random) + size / bandwidth``. This is what the
  repository providers, the broadcast receivers and the mirror's local file
  pay when they actually hit the platter.

* :class:`FileDevice` — a host file-access path *through the kernel page
  cache*, parameterized by a write policy. This is what the Bonnie++
  experiment (Figs. 6 and 7) exercises: the paper's headline observation is
  that the mirror's ``mmap``-based local file triggers the kernel's
  asynchronous write-back and roughly doubles effective write throughput over
  the default hypervisor file path, while FUSE's user/kernel context switches
  add a fixed per-operation CPU cost that shows up in the ops/s metrics.

  We model exactly those two effects: a policy-dependent cache-absorption
  bandwidth for writes (with a dirty budget drained at disk speed in the
  background) and a per-operation overhead added by the FUSE path.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..common.units import MB, MILLISECONDS
from .core import Environment, Event, Timeout
from .resources import Resource
from .trace import Metrics


class Disk:
    """Raw block device with FIFO queueing and a sequential/random cost model."""

    def __init__(
        self,
        env: Environment,
        name: str,
        read_bandwidth: float = 55 * MB,
        write_bandwidth: float = 55 * MB,
        seek_time: float = 8 * MILLISECONDS,
        metrics: Optional[Metrics] = None,
    ):
        self.env = env
        self.name = name
        self.read_bandwidth = read_bandwidth
        self.write_bandwidth = write_bandwidth
        self.seek_time = seek_time
        self.metrics = metrics
        self._base_read_bandwidth = read_bandwidth
        self._base_write_bandwidth = write_bandwidth
        self._stall_factor = 1.0
        self._queue = Resource(env, capacity=1)
        # counter keys hoisted out of the per-I/O hot path
        self._keys = {
            "read": ("disk-read", "disk-read-bytes"),
            "write": ("disk-write", "disk-write-bytes"),
        }

    def _io(self, nbytes: int, bandwidth: float, sequential: bool, kind: str):
        # Uncontended fast path: grab the free queue slot synchronously so
        # the acquisition costs no event (the common case outside the
        # contention regimes, where the FIFO below takes over).
        if not self._queue.try_acquire():
            yield self._queue.request()
        try:
            duration = nbytes / bandwidth
            if not sequential:
                duration += self.seek_time
            yield Timeout(self.env, duration)
            metrics = self.metrics
            if metrics is not None:
                count_key, bytes_key = self._keys[kind]
                counters = metrics.counters
                counters[count_key] += 1
                counters[bytes_key] += nbytes
        finally:
            self._queue.release()

    def read(self, nbytes: int, sequential: bool = True) -> Generator[Event, None, None]:
        """Process-style: ``yield from disk.read(n)`` blocks for the I/O time."""
        return self._io(nbytes, self.read_bandwidth, sequential, "read")

    def write(self, nbytes: int, sequential: bool = True) -> Generator[Event, None, None]:
        return self._io(nbytes, self.write_bandwidth, sequential, "write")

    @property
    def queue_length(self) -> int:
        return self._queue.queue_length

    # ------------------------------------------------------------------ #
    # fault injection
    # ------------------------------------------------------------------ #
    def stall(self, factor: float) -> None:
        """Degrade both bandwidths by ``factor`` (fault injection: disk stall).

        Affects operations *priced after* the call — an I/O already in the
        device queue completes at its original rate, like a request the
        controller has already accepted.
        """
        if factor < 1.0:
            raise ValueError(f"stall factor must be >= 1, got {factor}")
        self._stall_factor = factor
        self.read_bandwidth = self._base_read_bandwidth / factor
        self.write_bandwidth = self._base_write_bandwidth / factor

    def unstall(self) -> None:
        """Restore the calibrated bandwidths after a :meth:`stall`."""
        self._stall_factor = 1.0
        self.read_bandwidth = self._base_read_bandwidth
        self.write_bandwidth = self._base_write_bandwidth

    @property
    def stalled(self) -> bool:
        return self._stall_factor != 1.0


class WritePolicy:
    """Parameters of one file-access path through the page cache."""

    def __init__(
        self,
        name: str,
        write_absorb_bandwidth: float,
        cached_read_bandwidth: float,
        per_op_overhead: float,
        dirty_budget: int,
        data_op_overhead: float | None = None,
    ):
        #: label for reports ("hypervisor-default", "mirror-mmap")
        self.name = name
        #: rate at which writes enter the cache while the dirty budget holds
        self.write_absorb_bandwidth = write_absorb_bandwidth
        #: rate for reads served from cache (copy + syscall path)
        self.cached_read_bandwidth = cached_read_bandwidth
        #: fixed CPU cost per *metadata* operation (context switches)
        self.per_op_overhead = per_op_overhead
        #: fixed CPU cost per *data* operation (amortized by readahead /
        #: request merging; defaults to the metadata cost when not split)
        self.data_op_overhead = (
            data_op_overhead if data_op_overhead is not None else per_op_overhead
        )
        #: dirty bytes tolerated before writers are throttled to disk speed
        self.dirty_budget = dirty_budget


class FileDevice:
    """A file opened on a host through the page cache under a write policy.

    Tracks the cached byte set coarsely (fully-cached-up-to watermarks are
    enough for the sequential Bonnie++ phases) and a dirty counter drained by
    a background flusher at disk speed.
    """

    def __init__(self, env: Environment, disk: Disk, policy: WritePolicy, size: int):
        self.env = env
        self.disk = disk
        self.policy = policy
        self.size = size
        self.dirty = 0
        self._cached_bytes = 0
        self._flusher_active = False

    # ------------------------------------------------------------------ #
    def write(self, nbytes: int) -> Generator[Event, None, None]:
        """Write ``nbytes`` through the cache (throttled past the dirty budget)."""
        yield self.env.timeout(self.policy.data_op_overhead)
        if self.dirty + nbytes <= self.policy.dirty_budget:
            yield self.env.timeout(nbytes / self.policy.write_absorb_bandwidth)
        else:
            # Over budget: the writer effectively runs at drain (disk) speed.
            yield self.env.timeout(nbytes / self.disk.write_bandwidth)
        self.dirty += nbytes
        self._cached_bytes = min(self.size, self._cached_bytes + nbytes)
        self._ensure_flusher()

    def read(self, nbytes: int, cached: bool) -> Generator[Event, None, None]:
        """Read ``nbytes``; ``cached`` says whether the page cache holds them."""
        if cached:
            # Per-op cost + copy-out in one timeout: the two delays are
            # consecutive with no observable state in between, so merging
            # them is timeline-exact and halves the events per cached read.
            policy = self.policy
            yield Timeout(
                self.env,
                policy.data_op_overhead + nbytes / policy.cached_read_bandwidth,
            )
        else:
            yield Timeout(self.env, self.policy.data_op_overhead)
            yield from self.disk.read(nbytes, sequential=True)

    def metadata_op(self) -> Generator[Event, None, None]:
        """A create/delete/seek-class operation: pure per-op cost."""
        yield self.env.timeout(self.policy.per_op_overhead)

    def sync(self) -> Generator[Event, None, None]:
        """Block until all dirty bytes have been flushed to disk."""
        while self.dirty > 0:
            yield self.env.timeout(self.dirty / self.disk.write_bandwidth)
            # the flusher drains concurrently; loop until it caught up
            if self.dirty > 0 and not self._flusher_active:
                self._ensure_flusher()

    # ------------------------------------------------------------------ #
    def _ensure_flusher(self) -> None:
        if not self._flusher_active and self.dirty > 0:
            self._flusher_active = True
            self.env.process(self._flusher(), name="page-cache-flusher")

    def _flusher(self) -> Generator[Event, None, None]:
        flush_quantum = 4 * MB
        while self.dirty > 0:
            batch = min(self.dirty, flush_quantum)
            yield from self.disk.write(batch, sequential=True)
            self.dirty -= batch
        self._flusher_active = False
