"""Queued resources for the discrete-event engine.

Three classic primitives:

* :class:`Resource` — a capacity-limited server pool with a FIFO wait queue
  (models disk queues, RPC worker pools, hypervisor launch slots, ...);
* :class:`Store` — an unbounded FIFO of items with blocking ``get`` (models
  message queues between services);
* :class:`Container` — a continuous-level reservoir (models buffer space for
  the asynchronous write pipeline).

All follow the engine's event discipline: acquiring returns an
:class:`~repro.simkit.core.Event` to be yielded by the calling process.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from ..common.errors import SimulationError
from .core import Environment, Event, _PENDING


class Request(Event):
    """A pending acquisition of one :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request from the resource's queue."""
        if self._value is _PENDING:
            try:
                self.resource._waiters.remove(self)
            except ValueError:
                pass

    def on_waiter_cancelled(self) -> None:
        # An interrupted process detached from this request. If the slot was
        # never granted, leave the queue; if it was granted but the grant
        # will never be consumed, pass the slot straight on — otherwise the
        # resource would leak capacity on every interrupted waiter.
        if self._value is _PENDING:
            if not self.callbacks:
                self.cancel()
        else:
            self.resource.release()


class Resource:
    """``capacity`` identical servers with a FIFO queue of waiters."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Request] = deque()

    def request(self) -> Request:
        """Acquire one slot; the returned event fires when granted."""
        req = Request(self)
        if self.in_use < self.capacity:
            self.in_use += 1
            req.succeed()
        else:
            self._waiters.append(req)
        return req

    def try_acquire(self) -> bool:
        """Grab a free slot synchronously; ``False`` if the pool is busy.

        Fast path for hot callers (e.g. uncontended disk I/O): a successful
        grab costs no event. Pair with :meth:`release` exactly as ``request``.
        """
        if self.in_use < self.capacity and not self._waiters:
            self.in_use += 1
            return True
        return False

    def release(self) -> None:
        """Release one slot, waking the oldest waiter if any."""
        if self.in_use <= 0:
            raise SimulationError("release without matching request")
        if self._waiters:
            nxt = self._waiters.popleft()
            nxt.succeed()  # slot transfers directly; in_use unchanged
        else:
            self.in_use -= 1

    def acquire(self):
        """Process-style helper: ``yield from resource.acquire()``."""
        yield self.request()

    @property
    def queue_length(self) -> int:
        return len(self._waiters)


class Store:
    """Unbounded FIFO of arbitrary items with blocking ``get``."""

    def __init__(self, env: Environment):
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event firing with the next item (immediately if one is queued)."""
        ev = Event(self.env)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._items)


class _ContainerOp(Event):
    """A pending ``get``/``put`` on a :class:`Container` (cancel-aware)."""

    __slots__ = ("container", "amount", "is_get")

    def __init__(self, container: "Container", amount: float, is_get: bool):
        super().__init__(container.env)
        self.container = container
        self.amount = amount
        self.is_get = is_get

    def on_waiter_cancelled(self) -> None:
        # The waiting process was interrupted away. Pending op: withdraw from
        # the queue. Granted-but-unconsumed get: the level was already
        # deducted for a process that will never use it — put it back.
        con = self.container
        if self._value is _PENDING:
            if not self.callbacks:
                queue = con._getters if self.is_get else con._putters
                try:
                    queue.remove((self.amount, self))
                except ValueError:
                    pass
        elif self.is_get and self._ok:
            con.level += self.amount
            con._drain()


class Container:
    """A continuous reservoir with blocking ``get`` of arbitrary amounts."""

    def __init__(self, env: Environment, capacity: float, init: float = 0.0):
        if init > capacity:
            raise SimulationError("initial level exceeds capacity")
        self.env = env
        self.capacity = capacity
        self.level = init
        self._getters: Deque[tuple[float, Event]] = deque()
        self._putters: Deque[tuple[float, Event]] = deque()

    def put(self, amount: float) -> Event:
        """Deposit ``amount``; blocks while it would overflow capacity."""
        ev = _ContainerOp(self, amount, is_get=False)
        self._putters.append((amount, ev))
        self._drain()
        return ev

    def get(self, amount: float) -> Event:
        """Withdraw ``amount``; blocks until the level suffices."""
        ev = _ContainerOp(self, amount, is_get=True)
        self._getters.append((amount, ev))
        self._drain()
        return ev

    def fail_waiters(self, exc: BaseException) -> None:
        """Fail every blocked ``get``/``put`` (host crash: the reservoir died).

        Waiters whose process was already interrupted hold events with no
        callbacks left; failing those is a harmless no-op delivery.
        """
        for _amount, ev in self._getters:
            ev.fail(exc)
        self._getters.clear()
        for _amount, ev in self._putters:
            ev.fail(exc)
        self._putters.clear()

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                amount, ev = self._putters[0]
                if self.level + amount <= self.capacity + 1e-9:
                    self.level += amount
                    self._putters.popleft()
                    ev.succeed()
                    progressed = True
            if self._getters:
                amount, ev = self._getters[0]
                if self.level >= amount - 1e-9:
                    self.level -= amount
                    self._getters.popleft()
                    ev.succeed()
                    progressed = True
