"""Tests for the placement policy (provider manager)."""

import numpy as np
import pytest

from repro.blobseer.pmanager import PlacementPolicy
from repro.common.errors import StorageError

PROVIDERS = [f"p{i}" for i in range(6)]


class TestRoundRobin:
    def test_cycles_evenly(self):
        policy = PlacementPolicy(PROVIDERS, "round-robin")
        picks = [p[0] for p in policy.allocate(12, 100)]
        assert picks == PROVIDERS + PROVIDERS

    def test_replication_distinct_providers(self):
        policy = PlacementPolicy(PROVIDERS, "round-robin")
        for group in policy.allocate(10, 100, replication=3):
            assert len(set(group)) == 3

    def test_perfectly_balanced(self):
        policy = PlacementPolicy(PROVIDERS, "round-robin")
        policy.allocate(60, 100)
        assert policy.imbalance() == 1.0


class TestRandom:
    def test_uses_all_providers_eventually(self):
        policy = PlacementPolicy(PROVIDERS, "random", rng=np.random.default_rng(0))
        picks = {p[0] for p in policy.allocate(200, 100)}
        assert picks == set(PROVIDERS)

    def test_replication_distinct(self):
        policy = PlacementPolicy(PROVIDERS, "random", rng=np.random.default_rng(1))
        for group in policy.allocate(50, 100, replication=2):
            assert len(set(group)) == 2

    def test_roughly_balanced(self):
        policy = PlacementPolicy(PROVIDERS, "random", rng=np.random.default_rng(2))
        policy.allocate(600, 100)
        assert policy.imbalance() < 1.5


class TestLeastLoaded:
    def test_prefers_empty_providers(self):
        policy = PlacementPolicy(PROVIDERS, "least-loaded")
        first = [p[0] for p in policy.allocate(6, 100)]
        assert sorted(first) == sorted(PROVIDERS)  # each used once

    def test_balances_uneven_sizes(self):
        policy = PlacementPolicy(PROVIDERS, "least-loaded")
        # one huge chunk, then many small: smalls avoid the loaded provider
        policy.allocate(1, 10_000)
        rest = [p[0] for p in policy.allocate(5, 100)]
        loaded = max(policy.load_bytes, key=policy.load_bytes.get)
        assert policy.imbalance() < 20
        assert all(p != loaded for p in rest)


class TestValidation:
    def test_empty_providers(self):
        with pytest.raises(StorageError):
            PlacementPolicy([], "round-robin")

    def test_unknown_strategy(self):
        with pytest.raises(StorageError):
            PlacementPolicy(PROVIDERS, "rendezvous")

    def test_replication_exceeds_pool(self):
        policy = PlacementPolicy(PROVIDERS[:2], "round-robin")
        with pytest.raises(StorageError):
            policy.allocate(1, 100, replication=3)
        with pytest.raises(StorageError):
            policy.allocate(1, 100, replication=0)
