"""Tests for the local modification manager (mirroring strategies §3.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import MirrorStateError
from repro.core.modmanager import ModificationManager

CS = 100  # chunk size for readability
IMG = 10 * CS


def mgr(size=IMG, cs=CS):
    return ModificationManager(size, cs)


class TestGeometry:
    def test_chunk_bounds(self):
        m = mgr()
        assert m.chunk_bounds(0) == (0, 100)
        assert m.chunk_bounds(9) == (900, 1000)

    def test_tail_chunk_clamped(self):
        m = ModificationManager(250, 100)
        assert m.n_chunks == 3
        assert m.chunk_bounds(2) == (200, 250)

    def test_chunks_overlapping(self):
        m = mgr()
        assert list(m.chunks_overlapping(150, 350)) == [1, 2, 3]
        assert list(m.chunks_overlapping(100, 200)) == [1]
        assert list(m.chunks_overlapping(5, 5)) == []

    def test_invalid_sizes(self):
        with pytest.raises(MirrorStateError):
            ModificationManager(0, 10)
        with pytest.raises(MirrorStateError):
            ModificationManager(10, 0)

    def test_out_of_range_rejected(self):
        with pytest.raises(MirrorStateError):
            mgr().plan_write(900, 1100)


class TestPlanRead:
    def test_fresh_image_fetches_cover(self):
        m = mgr()
        plan = m.plan_read(150, 350)
        assert plan.fetch_chunks == [1, 2, 3]
        assert plan.fill_gaps == {1: [(100, 200)], 2: [(200, 300)], 3: [(300, 400)]}
        assert not plan.is_local

    def test_fully_mirrored_is_local(self):
        m = mgr()
        for idx in (1, 2):
            m.record_fetch(idx)
        assert m.plan_read(150, 280).is_local

    def test_partially_mirrored_chunk_still_fetched(self):
        m = mgr()
        m.record_write(120, 150)  # part of chunk 1 dirty+mirrored
        plan = m.plan_read(100, 200)
        assert plan.fetch_chunks == [1]
        # gap excludes the dirty region: local writes must not be clobbered
        assert plan.fill_gaps == {1: [(100, 120), (150, 200)]}

    def test_read_within_written_region_local(self):
        m = mgr()
        m.record_write(120, 180)
        assert m.plan_read(130, 170).is_local

    def test_minimal_cover_only(self):
        m = mgr()
        m.record_fetch(2)
        plan = m.plan_read(150, 450)
        assert plan.fetch_chunks == [1, 3, 4]


class TestPlanWrite:
    def test_write_on_fresh_chunk_no_fill(self):
        m = mgr()
        assert m.plan_write(120, 150).gap_fills == []

    def test_second_write_with_gap_triggers_fill(self):
        m = mgr()
        m.record_write(110, 120)
        plan = m.plan_write(150, 160)
        assert plan.gap_fills == [(1, (120, 150))]

    def test_gap_before_mirrored_region(self):
        m = mgr()
        m.record_write(150, 160)
        plan = m.plan_write(110, 120)
        assert plan.gap_fills == [(1, (120, 150))]

    def test_adjacent_write_no_fill(self):
        m = mgr()
        m.record_write(110, 120)
        assert m.plan_write(120, 130).gap_fills == []
        assert m.plan_write(100, 110).gap_fills == []

    def test_overlapping_write_no_fill(self):
        m = mgr()
        m.record_write(110, 150)
        assert m.plan_write(120, 170).gap_fills == []

    def test_write_spanning_chunks(self):
        m = mgr()
        m.record_write(110, 120)
        m.record_write(250, 260)
        plan = m.plan_write(180, 220)
        # chunk 1: gap (120,180); chunk 2: gap (220,250)
        assert plan.gap_fills == [(1, (120, 180)), (2, (220, 250))]


class TestTransitions:
    def test_record_write_marks_dirty_and_mirrored(self):
        m = mgr()
        m.record_write(150, 350)
        assert m.dirty_chunks() == [1, 2, 3]
        assert m.dirty_bytes() == 200
        assert m.is_mirrored(150, 350)
        assert not m.is_mirrored(100, 150)

    def test_record_fetch_not_dirty(self):
        m = mgr()
        m.record_fetch(4)
        assert m.dirty_chunks() == []
        assert m.is_mirrored(400, 500)

    def test_clear_dirty(self):
        m = mgr()
        m.record_write(0, 50)
        m.clear_dirty()
        assert m.dirty_chunks() == []
        assert m.is_mirrored(0, 50)  # still mirrored

    def test_strategy2_invariant_enforced(self):
        m = mgr()
        m.record_write(110, 120)
        # bypassing plan_write to create a fragmented chunk must be caught
        with pytest.raises(MirrorStateError):
            m.record_write(150, 160)

    def test_plan_complete_chunk(self):
        m = mgr()
        m.record_write(120, 150)
        assert m.plan_complete_chunk(1) == [(100, 120), (150, 200)]
        m.record_fetch(1)
        assert m.plan_complete_chunk(1) == []
        assert m.plan_complete_chunk(5) == [(500, 600)]

    def test_fill_outside_chunk_rejected(self):
        m = mgr()
        with pytest.raises(MirrorStateError):
            m.record_fill(1, 90, 120)

    def test_mirrored_bytes(self):
        m = mgr()
        m.record_fetch(0)
        m.record_write(150, 170)
        assert m.mirrored_bytes() == 120


class TestPersistence:
    def test_roundtrip(self):
        m = mgr()
        m.record_fetch(0)
        m.record_write(150, 170)
        m.record_write(920, 1000)
        m2 = ModificationManager.from_state(m.to_state())
        assert m2.image_size == m.image_size
        assert m2.dirty_chunks() == m.dirty_chunks()
        assert m2.mirrored_bytes() == m.mirrored_bytes()
        assert m2.plan_read(150, 170).is_local
        assert not m2.plan_read(100, 200).is_local

    def test_state_is_json_like(self):
        import json

        m = mgr()
        m.record_write(0, 42)
        encoded = json.dumps(m.to_state())
        decoded = json.loads(encoded)
        # json stringifies int keys; from_state handles that
        m2 = ModificationManager.from_state(decoded)
        assert m2.dirty_bytes() == 42


# --------------------------------------------------------------------------- #
# property test: a faithful client using the plans keeps all invariants
# --------------------------------------------------------------------------- #
op = st.tuples(
    st.sampled_from(["read", "write"]),
    st.integers(0, IMG - 1),
    st.integers(1, 2 * CS),
)


@settings(max_examples=200)
@given(st.lists(op, max_size=30))
def test_protocol_preserves_invariants(ops):
    m = mgr()
    for kind, off, ln in ops:
        lo, hi = off, min(off + ln, IMG)
        if kind == "read":
            plan = m.plan_read(lo, hi)
            for idx in plan.fetch_chunks:
                m.record_fetch(idx)
            # after the fetches the read must be servable locally
            assert m.is_mirrored(lo, hi)
        else:
            plan = m.plan_write(lo, hi)
            for idx, (g_lo, g_hi) in plan.gap_fills:
                m.record_fill(idx, g_lo, g_hi)
            m.record_write(lo, hi)  # raises if strategy-2 invariant broke
    # global invariants
    for idx in range(m.n_chunks):
        span_lo, span_hi = m.mirrored_interval(idx)
        c_lo, c_hi = m.chunk_bounds(idx)
        assert c_lo <= span_lo <= span_hi <= c_hi or (span_lo, span_hi) == (0, 0)
    # dirty is a subset of mirrored
    for idx in m.dirty_chunks():
        c_lo, c_hi = m.chunk_bounds(idx)
        for d_lo, d_hi in m._dirty[idx]:
            assert m.is_mirrored(d_lo, d_hi)


@settings(max_examples=100)
@given(st.lists(op, max_size=20))
def test_persistence_roundtrip_property(ops):
    m = mgr()
    for kind, off, ln in ops:
        lo, hi = off, min(off + ln, IMG)
        if kind == "read":
            for idx in m.plan_read(lo, hi).fetch_chunks:
                m.record_fetch(idx)
        else:
            for idx, (g_lo, g_hi) in m.plan_write(lo, hi).gap_fills:
                m.record_fill(idx, g_lo, g_hi)
            m.record_write(lo, hi)
    m2 = ModificationManager.from_state(m.to_state())
    assert m2.to_state() == m.to_state()
