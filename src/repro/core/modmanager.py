"""The local modification manager (paper §3.3, §4.2).

Pure state machine tracking, for one mirrored VM image, *what is available
locally* and *what has been modified locally*. It implements the planning
side of the paper's two mirroring strategies:

**Strategy 1 — chunk-granularity prefetch.** A read touching any chunk whose
requested part is not fully mirrored triggers a remote fetch of the **full
minimal set of chunks covering the request**. This trades a little extra
network traffic for far fewer small remote reads and better performance on
correlated reads.

**Strategy 2 — single contiguous region per chunk.** A local write that
would leave a *gap* between the already-mirrored region of a chunk and the
newly written region first triggers a remote read filling the gap. As a
result, the mirrored part of every chunk is always **one contiguous
interval**, so per-chunk bookkeeping is O(1) and total fragmentation overhead
is bounded by the chunk count (the paper's stated worst case).

The manager only *plans*; actually moving bytes is the translator's job.
Plans are expressed in absolute image offsets.

State is serializable (``to_state`` / ``from_state``) because the paper's
FUSE module persists it next to the local file on close and restores it on
re-open (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..common.errors import MirrorStateError
from ..common.intervals import IntervalSet

Interval = Tuple[int, int]


@dataclass
class ReadPlan:
    """What a read needs before it can be served locally.

    ``fetch_chunks`` — chunk indices to fetch in full from the repository
    (strategy 1); ``fill_gaps`` — for each such chunk, the sub-intervals that
    must actually be *applied* to the local mirror (parts already mirrored —
    including dirty local writes — must not be overwritten).
    """

    fetch_chunks: List[int]
    fill_gaps: Dict[int, List[Interval]]

    @property
    def is_local(self) -> bool:
        return not self.fetch_chunks


@dataclass
class WritePlan:
    """What a write needs: gaps to remote-read first (strategy 2).

    ``gap_fills`` lists ``(chunk_index, (lo, hi))`` intervals that must be
    fetched and applied before the write so the chunk's mirrored region
    stays contiguous.
    """

    gap_fills: List[Tuple[int, Interval]]


class ModificationManager:
    """Tracks mirrored and dirty state of one image at chunk granularity."""

    def __init__(self, image_size: int, chunk_size: int, enforce_contiguity: bool = True):
        if image_size <= 0 or chunk_size <= 0:
            raise MirrorStateError("image and chunk sizes must be positive")
        self.image_size = image_size
        self.chunk_size = chunk_size
        self.n_chunks = -(-image_size // chunk_size)
        #: strategy-2 invariant enforcement; disabled only by the
        #: no-prefetch ablation, where reads legitimately fragment chunks
        self.enforce_contiguity = enforce_contiguity
        #: per chunk: locally available byte range (absolute offsets).
        #: Invariant: each is empty or a single interval (strategy 2).
        self._mirrored: Dict[int, IntervalSet] = {}
        #: per chunk: locally written byte ranges (absolute offsets)
        self._dirty: Dict[int, IntervalSet] = {}

    # ------------------------------------------------------------------ #
    # geometry helpers
    # ------------------------------------------------------------------ #
    def chunk_bounds(self, index: int) -> Interval:
        lo = index * self.chunk_size
        return lo, min(lo + self.chunk_size, self.image_size)

    def chunks_overlapping(self, lo: int, hi: int) -> range:
        self._check_range(lo, hi)
        if lo >= hi:
            return range(0, 0)
        return range(lo // self.chunk_size, -(-hi // self.chunk_size))

    def _check_range(self, lo: int, hi: int) -> None:
        if lo < 0 or hi > self.image_size or lo > hi:
            raise MirrorStateError(
                f"range [{lo},{hi}) outside image of size {self.image_size}"
            )

    def _mirror_of(self, idx: int) -> IntervalSet:
        s = self._mirrored.get(idx)
        if s is None:
            s = IntervalSet()
            self._mirrored[idx] = s
        return s

    def _dirty_of(self, idx: int) -> IntervalSet:
        s = self._dirty.get(idx)
        if s is None:
            s = IntervalSet()
            self._dirty[idx] = s
        return s

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #
    def plan_read(self, lo: int, hi: int) -> ReadPlan:
        """Strategy 1: full-chunk fetches covering the non-mirrored parts."""
        fetch: List[int] = []
        gaps: Dict[int, List[Interval]] = {}
        for idx in self.chunks_overlapping(lo, hi):
            c_lo, c_hi = self.chunk_bounds(idx)
            w_lo, w_hi = max(lo, c_lo), min(hi, c_hi)
            mirror = self._mirrored.get(idx)
            if mirror is not None and mirror.contains(w_lo, w_hi):
                continue
            fetch.append(idx)
            gaps[idx] = (
                mirror.gaps(c_lo, c_hi) if mirror is not None else [(c_lo, c_hi)]
            )
        return ReadPlan(fetch, gaps)

    def plan_write(self, lo: int, hi: int) -> WritePlan:
        """Strategy 2: gap reads keeping each chunk's mirror contiguous."""
        self._check_range(lo, hi)
        fills: List[Tuple[int, Interval]] = []
        for idx in self.chunks_overlapping(lo, hi):
            c_lo, c_hi = self.chunk_bounds(idx)
            w_lo, w_hi = max(lo, c_lo), min(hi, c_hi)
            mirror = self._mirrored.get(idx)
            if mirror is None or not mirror:
                continue  # nothing mirrored yet: the write itself is contiguous
            m_lo, m_hi = mirror.span()
            if w_lo > m_hi:
                fills.append((idx, (m_hi, w_lo)))
            elif w_hi < m_lo:
                fills.append((idx, (w_hi, m_lo)))
            # overlap/adjacency: union already contiguous, nothing to fill
        return WritePlan(fills)

    def plan_read_exact(self, lo: int, hi: int) -> Dict[int, List[Interval]]:
        """Ablation of strategy 1: fetch only the missing parts of the request.

        Returns, per chunk, the sub-intervals of ``[lo, hi)`` that are not
        mirrored — no full-chunk prefetch. Used to quantify what the paper's
        chunk-granularity fetching buys.
        """
        out: Dict[int, List[Interval]] = {}
        for idx in self.chunks_overlapping(lo, hi):
            c_lo, c_hi = self.chunk_bounds(idx)
            w_lo, w_hi = max(lo, c_lo), min(hi, c_hi)
            mirror = self._mirrored.get(idx)
            gaps = mirror.gaps(w_lo, w_hi) if mirror is not None else [(w_lo, w_hi)]
            if gaps:
                out[idx] = gaps
        return out

    def plan_complete_chunk(self, idx: int) -> List[Interval]:
        """Gaps to fetch so chunk ``idx`` becomes fully mirrored (COMMIT prep)."""
        c_lo, c_hi = self.chunk_bounds(idx)
        mirror = self._mirrored.get(idx)
        if mirror is None:
            return [(c_lo, c_hi)]
        return mirror.gaps(c_lo, c_hi)

    # ------------------------------------------------------------------ #
    # state transitions
    # ------------------------------------------------------------------ #
    def record_fetch(self, idx: int) -> None:
        """A full-chunk fetch completed: the chunk is now fully mirrored."""
        c_lo, c_hi = self.chunk_bounds(idx)
        self._mirror_of(idx).add(c_lo, c_hi)
        self._assert_contiguous(idx)

    def record_fill(self, idx: int, lo: int, hi: int) -> None:
        """A gap fill ``[lo, hi)`` of chunk ``idx`` was applied locally."""
        c_lo, c_hi = self.chunk_bounds(idx)
        if lo < c_lo or hi > c_hi:
            raise MirrorStateError(f"fill [{lo},{hi}) outside chunk {idx}")
        self._mirror_of(idx).add(lo, hi)

    def record_write(self, lo: int, hi: int) -> None:
        """A local write ``[lo, hi)`` completed (gap fills already applied)."""
        self._check_range(lo, hi)
        for idx in self.chunks_overlapping(lo, hi):
            c_lo, c_hi = self.chunk_bounds(idx)
            w_lo, w_hi = max(lo, c_lo), min(hi, c_hi)
            self._mirror_of(idx).add(w_lo, w_hi)
            self._dirty_of(idx).add(w_lo, w_hi)
            self._assert_contiguous(idx)

    def clear_dirty(self) -> None:
        """COMMIT finished: local content is now the published snapshot."""
        self._dirty.clear()

    def _assert_contiguous(self, idx: int) -> None:
        if not self.enforce_contiguity:
            return
        mirror = self._mirrored.get(idx)
        if mirror is not None and not mirror.is_single_interval():
            raise MirrorStateError(
                f"strategy-2 invariant violated: chunk {idx} mirror {mirror!r}"
            )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def is_mirrored(self, lo: int, hi: int) -> bool:
        for idx in self.chunks_overlapping(lo, hi):
            c_lo, c_hi = self.chunk_bounds(idx)
            w_lo, w_hi = max(lo, c_lo), min(hi, c_hi)
            mirror = self._mirrored.get(idx)
            if mirror is None or not mirror.contains(w_lo, w_hi):
                return False
        return True

    def dirty_chunks(self) -> List[int]:
        return sorted(idx for idx, s in self._dirty.items() if s)

    def dirty_bytes(self) -> int:
        return sum(s.total() for s in self._dirty.values())

    def mirrored_bytes(self) -> int:
        return sum(s.total() for s in self._mirrored.values())

    def mirrored_interval(self, idx: int) -> Interval:
        mirror = self._mirrored.get(idx)
        return mirror.span() if mirror is not None else (0, 0)

    # ------------------------------------------------------------------ #
    # persistence (the "extra metadata" written next to the local file)
    # ------------------------------------------------------------------ #
    def to_state(self) -> dict:
        return {
            "image_size": self.image_size,
            "chunk_size": self.chunk_size,
            "mirrored": {idx: list(s) for idx, s in self._mirrored.items() if s},
            "dirty": {idx: list(s) for idx, s in self._dirty.items() if s},
        }

    @classmethod
    def from_state(cls, state: dict) -> "ModificationManager":
        mgr = cls(state["image_size"], state["chunk_size"])
        for idx, ivs in state["mirrored"].items():
            for lo, hi in ivs:
                mgr._mirror_of(int(idx)).add(lo, hi)
            mgr._assert_contiguous(int(idx))
        for idx, ivs in state["dirty"].items():
            for lo, hi in ivs:
                mgr._dirty_of(int(idx)).add(lo, hi)
        return mgr
