"""Edge cases for composite events and process plumbing."""

import pytest

from repro.simkit.core import Environment


class TestConditionFailures:
    def test_all_of_fails_fast(self):
        env = Environment()

        def failer():
            yield env.timeout(1.0)
            raise ValueError("first failure")

        def slow():
            yield env.timeout(100.0)

        p1 = env.process(failer())
        p2 = env.process(slow())

        def waiter():
            with pytest.raises(ValueError, match="first failure"):
                yield env.all_of([p1, p2])
            return env.now

        t = env.run(env.process(waiter()))
        assert t == 1.0  # did not wait for the slow one

    def test_any_of_propagates_failure(self):
        env = Environment()

        def failer():
            yield env.timeout(1.0)
            raise RuntimeError("boom")

        p = env.process(failer())

        def waiter():
            with pytest.raises(RuntimeError):
                yield env.any_of([p, env.timeout(100.0)])
            return True

        assert env.run(env.process(waiter()))

    def test_all_of_with_already_processed_events(self):
        env = Environment()
        t1 = env.timeout(1.0, "a")
        env.run(until=2.0)  # t1 already processed

        def waiter():
            values = yield env.all_of([t1, env.timeout(1.0, "b")])
            return values

        assert env.run(env.process(waiter())) == ["a", "b"]

    def test_nested_conditions(self):
        env = Environment()

        def proc():
            inner = env.all_of([env.timeout(1.0, 1), env.timeout(2.0, 2)])
            ev, value = yield env.any_of([inner, env.timeout(5.0, "slow")])
            return value

        assert env.run(env.process(proc())) == [1, 2]


class TestCollectHelper:
    def test_collect_builds_series_from_results(self):
        from dataclasses import dataclass

        from repro.analysis import collect

        @dataclass
        class R:
            n: int
            t: float

        results = [R(1, 0.5), R(10, 2.0), R(100, 9.0)]
        s = collect(results, "n", "t", "boot")
        assert s.name == "boot"
        assert s.x == [1.0, 10.0, 100.0]
        assert s.at(10) == 2.0
