"""The version manager: blob registry, snapshot ordering, publish protocol.

BlobSeer's version manager is the serialization point of the system: it
assigns monotonically increasing version numbers to published snapshots of
each blob and guarantees that a version becomes visible only once its data
and metadata are durable ("publish" is the linearization event).

:class:`BlobRegistry` is the pure state; :class:`VersionManagerService` (in
:mod:`repro.blobseer.provider`) wraps it for the simulated fabric.

The registry also implements CLONE at the registry level: a clone is a new
blob whose first snapshot shares the source snapshot's metadata root
(Fig. 3(b)); subsequent COMMITs to the clone are ordered within the clone
only, so clones evolve independently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..common.errors import UnknownBlobError, UnknownVersionError
from .metadata import MetadataStore, NodeId, clone_root


@dataclass(frozen=True)
class SnapshotRecord:
    """One published snapshot of a blob."""

    blob_id: int
    version: int
    root: Optional[NodeId]
    size: int
    chunk_size: int


class BlobRegistry:
    """Pure version-manager state: blobs and their totally ordered snapshots.

    Snapshot numbers are monotonically increasing per blob and never reused;
    individual versions (or whole blobs) can be *deleted*, which unpublishes
    them — the garbage collector (:mod:`repro.blobseer.gc`) then reclaims
    whatever chunks and metadata nodes no remaining snapshot references.
    """

    def __init__(self, metadata: MetadataStore):
        self.metadata = metadata
        self._blobs: Dict[int, Dict[int, SnapshotRecord]] = {}
        self._latest: Dict[int, int] = {}
        #: next version number per blob — deleted numbers are never reused
        self._next_version: Dict[int, int] = {}
        self._next_blob = 1

    # ------------------------------------------------------------------ #
    def create_blob(self, size: int, chunk_size: int) -> int:
        """Register a new empty blob; snapshot 0 is the all-holes version."""
        blob_id = self._next_blob
        self._next_blob += 1
        self._blobs[blob_id] = {0: SnapshotRecord(blob_id, 0, None, size, chunk_size)}
        self._latest[blob_id] = 0
        self._next_version[blob_id] = 1
        return blob_id

    def publish(self, blob_id: int, root: Optional[NodeId]) -> SnapshotRecord:
        """Publish a new snapshot of ``blob_id``; returns the ordered record."""
        history = self._history(blob_id)
        last = history[self._latest[blob_id]]
        version = self._next_version[blob_id]
        rec = SnapshotRecord(blob_id, version, root, last.size, last.chunk_size)
        history[version] = rec
        self._latest[blob_id] = version
        self._next_version[blob_id] = version + 1
        return rec

    def clone(self, blob_id: int, version: Optional[int] = None) -> SnapshotRecord:
        """CLONE: new blob whose snapshot 1 shares the source snapshot's tree."""
        src = self.lookup(blob_id, version)
        new_root = clone_root(self.metadata, src.root)
        new_id = self._next_blob
        self._next_blob += 1
        first = SnapshotRecord(new_id, 1, new_root, src.size, src.chunk_size)
        # version 0 of the clone is, as for any blob, the empty snapshot
        self._blobs[new_id] = {
            0: SnapshotRecord(new_id, 0, None, src.size, src.chunk_size),
            1: first,
        }
        self._latest[new_id] = 1
        self._next_version[new_id] = 2
        return first

    def delete_version(self, blob_id: int, version: int) -> None:
        """Unpublish one snapshot (it must not be the blob's only one)."""
        history = self._history(blob_id)
        if version not in history:
            raise UnknownVersionError(f"blob {blob_id} has no version {version}")
        if len(history) == 1:
            raise UnknownVersionError(
                f"blob {blob_id}: cannot delete its only snapshot; delete the blob"
            )
        del history[version]
        if self._latest[blob_id] == version:
            self._latest[blob_id] = max(history)

    def delete_blob(self, blob_id: int) -> None:
        """Unregister a blob and all its snapshots."""
        self._history(blob_id)  # existence check
        del self._blobs[blob_id]
        del self._latest[blob_id]
        del self._next_version[blob_id]

    # ------------------------------------------------------------------ #
    def lookup(self, blob_id: int, version: Optional[int] = None) -> SnapshotRecord:
        """Fetch a snapshot record; ``version=None`` means the latest."""
        history = self._history(blob_id)
        if version is None:
            version = self._latest[blob_id]
        rec = history.get(version)
        if rec is None:
            raise UnknownVersionError(f"blob {blob_id} has no version {version}")
        return rec

    def versions(self, blob_id: int) -> List[int]:
        return sorted(self._history(blob_id))

    def blob_ids(self) -> List[int]:
        return sorted(self._blobs)

    def live_records(self) -> List[SnapshotRecord]:
        """Every published snapshot across all blobs (the GC root set)."""
        return [rec for history in self._blobs.values() for rec in history.values()]

    def _history(self, blob_id: int) -> Dict[int, SnapshotRecord]:
        try:
            return self._blobs[blob_id]
        except KeyError:
            raise UnknownBlobError(f"no blob {blob_id}") from None
