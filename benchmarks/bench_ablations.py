"""Ablations of the design choices DESIGN.md calls out.

Not paper figures — sanity probes behind the paper's §3 design arguments:

* **chunk size** (§3.1.3): too small -> per-request overhead dominates;
  too large -> false sharing. 256 KiB should sit in the sweet spot.
* **strategy 1** (§3.3): disabling full-chunk prefetch turns correlated
  small reads into many small remote reads — boots get slower even though
  strictly fewer bytes move.
* **broadcast pipelining**: taktuk-style store-and-forward vs block
  pipelining (what a better broadcast would buy prepropagation — and that
  even then it cannot catch lazy mirroring on time-to-ready).
* **network fairness model**: the fast equal-share mode against exact
  max-min on a mid-size deployment (validates the default approximation).
"""

import pytest

from repro.analysis import Series, check_shape, render_figure, Figure
from repro.baselines.broadcast import broadcast
from repro.calibration import Calibration, ImageSpec
from repro.cloud import build_cloud, deploy
from repro.common.payload import Payload
from repro.common.units import GiB, KiB, MiB
from repro.simkit.host import Fabric
from repro.vmsim import make_image

from common import (
    BenchProfile,
    PointSpec,
    active_profile,
    emit,
    register_profile,
    run_sweep,
)

PROFILE = active_profile()
N = 24 if PROFILE.name == "paper" else 8
POOL = 32 if PROFILE.name == "paper" else 12
IMAGE = 1 * GiB if PROFILE.name == "paper" else 256 * MiB
TOUCHED = 64 * MiB if PROFILE.name == "paper" else 24 * MiB

#: the ablations deploy a mid-size cluster distinct from both paper profiles;
#: registering it lets the sweep runner's workers resolve it by name
ABLATION = register_profile(
    BenchProfile(
        name=f"ablation-{PROFILE.name}",
        pool_nodes=POOL,
        instance_counts=(N,),
        image_size=IMAGE,
        chunk_size=256 * KiB,
        touched_bytes=TOUCHED,
        n_regions=48,
        diff_bytes=PROFILE.diff_bytes,
        mc_workers=PROFILE.mc_workers,
        mc_total_compute=PROFILE.mc_total_compute,
        bonnie_working_set=PROFILE.bonnie_working_set,
    )
)


def _deploy_point(chunk_size=None, mirror_prefetch=True, fairness=None, seed=5):
    """One ablation deployment as a sweep point (cached, parallelizable)."""
    overrides = () if chunk_size is None else (("image.chunk_size", chunk_size),)
    params = []
    if not mirror_prefetch:
        params.append(("mirror_prefetch", False))
    if fairness is not None:
        params.append(("fairness", fairness))
    spec = PointSpec(
        kind="deploy", profile=ABLATION.name, approach="mirror", n=N, seed=seed,
        overrides=overrides, params=tuple(params),
    )
    return run_sweep([spec])[0]


def test_ablation_chunk_size(benchmark, sweep_cache):
    sizes = [64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB]

    def sweep():
        return {cs: _deploy_point(chunk_size=cs) for cs in sizes}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    boot = Series("avg boot (s)")
    traffic = Series("traffic (GB)")
    for cs in sizes:
        boot.add(cs / KiB, results[cs].avg_boot_time)
        traffic.add(cs / KiB, results[cs].total_traffic / 1e9)
    fig = Figure("ablation-chunk", "Chunk-size trade-off (mirror)", "chunk KiB", "mixed")
    fig.add_series(boot)
    fig.add_series(traffic)
    checks = [
        check_shape(
            "traffic grows with chunk size (prefetch amplification)",
            traffic.is_monotonic_nondecreasing(tolerance=0.02),
        ),
        check_shape(
            "256 KiB boots no slower than the extremes",
            boot.at(256) <= boot.at(64) * 1.05 and boot.at(256) <= boot.at(4096) * 1.05,
        ),
    ]
    emit("ablation_chunk_size", render_figure(fig) + "\n" + "\n".join(checks),
         {"series": {s.name: {"x": s.x, "y": s.y} for s in (boot, traffic)},
          "checks": checks})
    assert all(c.startswith("[PASS]") for c in checks), "\n".join(checks)


def test_ablation_strategy1_prefetch(benchmark, sweep_cache):
    """Strategy 1's trade-off: a little more traffic, fewer remote reads.

    At the boot-trace granularity both variants finish in similar time (the
    per-chunk re-access win is demonstrated at micro level in
    ``tests/core/test_prefetch_ablation.py``); what the deployment-scale
    ablation shows robustly is the traffic-for-round-trips trade the paper
    describes: prefetch moves chunk-rounded bytes but never issues *more*
    remote reads, and the fetched surplus is the Fig. 4(d) gap between our
    approach (~13 GB) and qcow2 (~12 GB).
    """

    def compare():
        with_prefetch = _deploy_point(mirror_prefetch=True)
        without = _deploy_point(mirror_prefetch=False)
        return (
            with_prefetch,
            without,
            with_prefetch.counters["mirror-remote-read"],
            without.counters["mirror-remote-read"],
        )

    with_prefetch, without, trips_pf, trips_exact = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    lines = [
        "# ablation: mirroring strategy 1 (full-chunk prefetch)",
        "",
        f"{'variant':<22}{'avg boot (s)':>14}{'traffic (GB)':>14}{'remote trips':>14}",
        f"{'prefetch (paper)':<22}{with_prefetch.avg_boot_time:>14.2f}"
        f"{with_prefetch.total_traffic / 1e9:>14.2f}{trips_pf:>14}",
        f"{'exact ranges':<22}{without.avg_boot_time:>14.2f}"
        f"{without.total_traffic / 1e9:>14.2f}{trips_exact:>14}",
    ]
    checks = [
        check_shape(
            "prefetch moves more bytes (chunk rounding)",
            with_prefetch.total_traffic > without.total_traffic,
        ),
        check_shape(
            "prefetch never issues more remote reads",
            trips_pf <= trips_exact,
        ),
        check_shape(
            "boot time not hurt by the surplus traffic (within 3%)",
            with_prefetch.avg_boot_time < without.avg_boot_time * 1.03,
        ),
    ]
    emit("ablation_strategy1", "\n".join(lines) + "\n" + "\n".join(checks),
         {"prefetch": {"avg_boot_time": with_prefetch.avg_boot_time,
                       "total_traffic": with_prefetch.total_traffic,
                       "remote_trips": trips_pf},
          "exact": {"avg_boot_time": without.avg_boot_time,
                    "total_traffic": without.total_traffic,
                    "remote_trips": trips_exact},
          "checks": checks})
    assert all(c.startswith("[PASS]") for c in checks), "\n".join(checks)


def test_ablation_broadcast_pipelining(benchmark, sweep_cache):
    def compare():
        out = {}
        for label, block in (("store-and-forward", None), ("pipelined-4MiB", 4 * MiB)):
            fab = Fabric(seed=11)
            source = fab.add_host("source")
            targets = [fab.add_host(f"n{i}") for i in range(N)]

            def run(block=block, fab=fab, source=source, targets=targets):
                report = yield from broadcast(
                    fab, source, targets, Payload.opaque("img", IMAGE), "/img",
                    block_size=block,
                )
                return report

            out[label] = fab.run(fab.env.process(run())).makespan
        return out

    makespans = benchmark.pedantic(compare, rounds=1, iterations=1)
    mirror_time = _deploy_point().completion_time
    lines = [
        "# ablation: broadcast pipelining (prepropagation transport)",
        "",
        *(f"{k:<22}{v:>12.1f} s" for k, v in makespans.items()),
        f"{'mirror (lazy, total)':<22}{mirror_time:>12.1f} s",
    ]
    checks = [
        check_shape(
            "block pipelining much faster than store-and-forward",
            makespans["pipelined-4MiB"] < makespans["store-and-forward"] / 2,
        ),
        check_shape(
            "even pipelined broadcast slower to readiness than lazy mirroring",
            mirror_time < makespans["pipelined-4MiB"],
        ),
    ]
    emit("ablation_broadcast", "\n".join(lines) + "\n" + "\n".join(checks),
         {"makespans": makespans, "mirror_completion_time": mirror_time,
          "checks": checks})
    assert all(c.startswith("[PASS]") for c in checks), "\n".join(checks)


def test_ablation_profile_prefetch(benchmark, sweep_cache):
    """§7 extension: profile-guided background prefetch during boot.

    A pilot instance records the image's chunk-access order; subsequent
    instances run a bounded-look-ahead prefetcher alongside the boot, so
    chunk fetch overlaps guest CPU bursts instead of serializing with them.
    """
    from repro.core.prefetch import AccessProfile, Prefetcher, ProfileRecorder
    from repro.vmsim import boot_trace
    from repro.vmsim.backends import MirrorBackend
    from repro.vmsim.hypervisor import VMInstance

    def run_variant(use_prefetch):
        calib = Calibration(
            image=ImageSpec(size=IMAGE, chunk_size=256 * KiB, boot_touched_bytes=TOUCHED)
        )
        cloud = build_cloud(POOL, seed=5, calib=calib)
        image = make_image(IMAGE, TOUCHED, n_regions=48)
        from repro.cloud.deployment import seed_image

        idents = seed_image(cloud, image)
        rec = idents["blobseer"]

        # pilot run records the profile
        profile = AccessProfile(256 * KiB)
        pilot_backend = MirrorBackend(
            cloud.compute[POOL - 1], cloud.blobseer, rec.blob_id, rec.version,
            cloud.calib.fuse, path="/mirror/pilot",
        )
        pilot = VMInstance(
            "pilot", cloud.compute[POOL - 1], pilot_backend, calib.boot,
            cloud.fabric.rng.get("pilot"),
        )
        trace = boot_trace(image, calib.boot, cloud.fabric.rng.get("pilot-trace"))

        def pilot_boot():
            yield from pilot_backend.open()
            recorder = ProfileRecorder(pilot_backend.handle)
            yield cloud.env.timeout(0.5)
            for op in trace:
                if op.kind == "cpu":
                    yield cloud.env.timeout(op.duration)
                elif op.kind == "read":
                    yield from recorder.read(op.offset, op.nbytes)
                else:
                    yield from recorder.write(op.offset, Payload.opaque("w", op.nbytes))
            recorder.finish_into(profile)

        cloud.run(cloud.env.process(pilot_boot()))

        # fleet boots, optionally with prefetchers
        boots = []
        vms = []
        for i in range(N):
            node = cloud.compute[i]
            backend = MirrorBackend(
                node, cloud.blobseer, rec.blob_id, rec.version,
                cloud.calib.fuse, path=f"/mirror/vm{i}",
            )
            vm = VMInstance(f"vm{i}", node, backend, calib.boot, cloud.fabric.rng.get("vm", i))
            vms.append(vm)
            vm_trace = boot_trace(image, calib.boot, cloud.fabric.rng.get("trace", i))

            def boot_one(vm=vm, backend=backend, vm_trace=vm_trace):
                env = cloud.env
                t0 = env.now
                init = vm.rng.uniform(calib.boot.hypervisor_init_min, calib.boot.hypervisor_init_max)
                yield env.timeout(float(init))
                yield from backend.open()
                prefetcher = None
                if use_prefetch:
                    prefetcher = Prefetcher(backend.handle, profile, window=24)
                    prefetcher.start()
                yield from vm.run_ops(vm_trace)
                if prefetcher is not None:
                    prefetcher.stop()
                vm.boot_time = env.now - t0

            boots.append(cloud.env.process(boot_one()))
        cloud.run(cloud.env.all_of(boots))
        return sum(vm.boot_time for vm in vms) / len(vms)

    def compare():
        return run_variant(False), run_variant(True)

    without, with_pf = benchmark.pedantic(compare, rounds=1, iterations=1)
    lines = [
        "# ablation: profile-guided prefetching (paper §7 future work)",
        "",
        f"{'no prefetch':<22}{without:>12.2f} s avg boot",
        f"{'profile prefetch':<22}{with_pf:>12.2f} s avg boot",
        f"improvement: {1 - with_pf / without:.1%}",
    ]
    checks = [
        check_shape(
            f"profile-guided prefetch speeds up boots (got {1 - with_pf / without:.1%})",
            with_pf < without,
        ),
    ]
    emit("ablation_prefetch", "\n".join(lines) + "\n" + "\n".join(checks),
         {"avg_boot_time": {"no_prefetch": without, "profile_prefetch": with_pf},
          "checks": checks})
    assert all(c.startswith("[PASS]") for c in checks), "\n".join(checks)


def test_ablation_dedup_multisnapshot(benchmark, sweep_cache):
    """§7 extension: deduplication for multisnapshotting.

    All instances of one deployment write largely *identical* local
    modifications (the common case: contextualization writes the same config
    templates everywhere). With content-addressed dedup the repository
    stores the shared diff once.
    """
    from repro.cloud import snapshot_all
    from repro.cloud.deployment import seed_image as _seed
    from repro.vmsim.boottrace import BootOp

    def run_variant(dedup):
        calib = Calibration(
            image=ImageSpec(size=IMAGE, chunk_size=256 * KiB, boot_touched_bytes=TOUCHED)
        )
        cloud = build_cloud(POOL, seed=5, calib=calib, dedup=dedup)
        image = make_image(IMAGE, TOUCHED, n_regions=48)
        res = deploy(cloud, image, N, "mirror")
        # identical 4 MiB of contextualization writes on every instance:
        # real shared bytes so the content index can recognize them. Placed
        # away from the boot's per-instance log writes so chunk contents are
        # bit-identical across VMs.
        shared = bytes((i * 31 + 7) % 256 for i in range(4 * MiB))
        base_off = IMAGE - 8 * MiB

        def write_shared(vm):
            from repro.common.payload import Payload as P

            yield from vm.backend.write(base_off, P.from_bytes(shared))

        procs = [cloud.env.process(write_shared(vm)) for vm in res.vms]
        cloud.run(cloud.env.all_of(procs))
        before = cloud.blobseer.stored_bytes()
        campaign = snapshot_all(cloud, res.vms, "mirror")
        added = cloud.blobseer.stored_bytes() - before
        return added, campaign.avg_time

    def compare():
        return run_variant(False), run_variant(True)

    (plain_added, plain_avg), (dedup_added, dedup_avg) = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    lines = [
        "# ablation: deduplicated multisnapshotting (paper §7 future work)",
        "",
        f"{'variant':<14}{'stored (MiB)':>14}{'avg snap (s)':>14}",
        f"{'plain':<14}{plain_added / 2**20:>14.1f}{plain_avg:>14.3f}",
        f"{'dedup':<14}{dedup_added / 2**20:>14.1f}{dedup_avg:>14.3f}",
        f"storage saved: {1 - dedup_added / plain_added:.0%}",
        "note: concurrent identical commits can race the content index",
        "      (query happens before the winner registers); a fully",
        "      synchronized campaign dedups all but a handful of copies.",
    ]
    checks = [
        check_shape(
            f"most of the {N} identical 4 MiB diffs deduplicated "
            f"(saved {(plain_added - dedup_added) / 2**20:.0f} MiB of the "
            f"(N-1) x 4 MiB = {(N - 1) * 4} MiB ideal)",
            plain_added - dedup_added >= (N - 1) * 4 * MiB * 0.6,
        ),
        check_shape(
            "snapshot latency not inflated by fingerprinting (within 2x)",
            dedup_avg < plain_avg * 2.0,
        ),
    ]
    emit("ablation_dedup", "\n".join(lines) + "\n" + "\n".join(checks),
         {"stored_bytes": {"plain": plain_added, "dedup": dedup_added},
          "avg_snapshot_time": {"plain": plain_avg, "dedup": dedup_avg},
          "checks": checks})
    assert all(c.startswith("[PASS]") for c in checks), "\n".join(checks)


def test_ablation_fairness_model(benchmark, sweep_cache):
    def compare():
        return {
            mode: _deploy_point(fairness=mode).completion_time
            for mode in ("equal-share", "maxmin")
        }

    times = benchmark.pedantic(compare, rounds=1, iterations=1)
    rel_err = abs(times["equal-share"] - times["maxmin"]) / times["maxmin"]
    lines = [
        "# ablation: network fairness model",
        "",
        *(f"{k:<22}{v:>12.2f} s" for k, v in times.items()),
        f"relative difference: {rel_err:.1%}",
    ]
    checks = [
        check_shape(
            f"equal-share approximation within 15% of exact max-min (got {rel_err:.1%})",
            rel_err < 0.15,
        ),
        check_shape(
            "equal-share is conservative (never faster than max-min)",
            times["equal-share"] >= times["maxmin"] * 0.999,
        ),
    ]
    emit("ablation_fairness", "\n".join(lines) + "\n" + "\n".join(checks),
         {"completion_times": times, "relative_error": rel_err, "checks": checks})
    assert all(c.startswith("[PASS]") for c in checks), "\n".join(checks)
