"""Tests for the cloud-middleware control API, including suspend/resume."""

import pytest

from repro.calibration import Calibration, ImageSpec
from repro.cloud import build_cloud
from repro.cloud.middleware import CloudMiddleware
from repro.common.errors import MiddlewareError
from repro.common.units import KiB, MiB
from repro.vmsim import MonteCarloConfig, MonteCarloWorker, make_image

SMALL = Calibration(
    image=ImageSpec(size=64 * MiB, chunk_size=256 * KiB, boot_touched_bytes=6 * MiB)
)


def make_mw(n=6, seed=21):
    cloud = build_cloud(n, seed=seed, calib=SMALL)
    image = make_image(SMALL.image.size, SMALL.image.boot_touched_bytes, n_regions=12)
    return cloud, image, CloudMiddleware(cloud)


class TestControlApi:
    def test_deploy_and_terminate(self):
        cloud, image, mw = make_mw()
        res = mw.deploy_set(image, 4, "mirror")
        assert len(res.vms) == 4
        mw.terminate_set(res.vms)
        # mirror state persisted on every node
        for vm in res.vms:
            assert vm.backend.handle.closed

    def test_snapshot_instance_fine_grained(self):
        cloud, image, mw = make_mw()
        res = mw.deploy_set(image, 2, "mirror")
        snap = mw.snapshot_instance(res.vms[0])
        assert snap.ident.startswith("blob")

    def test_snapshot_set_then_resume_on_fresh_nodes(self):
        cloud, image, mw = make_mw(n=8)
        res = mw.deploy_set(image, 4, "mirror")
        campaign = mw.snapshot_set(res.vms, "mirror")
        mw.terminate_set(res.vms)
        fresh = cloud.compute[4:8]
        resumed = mw.resume_set([s for s in campaign.per_instance], fresh)
        assert len(resumed) == 4
        assert {vm.host.name for vm in resumed} == {h.name for h in fresh}

    def test_resume_rejects_non_mirror_snapshots(self):
        from repro.vmsim.backends import SnapshotResult

        cloud, image, mw = make_mw()
        with pytest.raises(MiddlewareError):
            mw.resume_set(
                [SnapshotResult("/snapshots/x.qcow2", 10, 0.1)], cloud.compute[:1]
            )

    def test_resume_needs_enough_nodes(self):
        from repro.vmsim.backends import SnapshotResult

        cloud, image, mw = make_mw()
        snaps = [SnapshotResult("blob1@v1", 0, 0.0)] * 3
        with pytest.raises(MiddlewareError):
            mw.resume_set(snaps, cloud.compute[:2])


class TestMonteCarloSuspendResume:
    def test_progress_survives_snapshot_and_migration(self):
        """The full §5.5 cycle: deploy, half-compute, snapshot, resume elsewhere."""
        cloud, image, mw = make_mw(n=6, seed=31)
        res = mw.deploy_set(image, 3, "mirror")
        cfg = MonteCarloConfig(
            total_compute=10.0, checkpoint_interval=2.0,
            state_bytes=1 * MiB, state_offset=image.write_base,
        )
        workers = [MonteCarloWorker(vm.name, vm.backend, cfg) for vm in res.vms]

        # run half the computation
        procs = [cloud.env.process(w.run(until_progress=6.0)) for w in workers]
        cloud.run(cloud.env.all_of(procs))
        assert all(w.progress == 6.0 for w in workers)

        campaign = mw.snapshot_set(res.vms, "mirror")
        mw.terminate_set(res.vms)

        resumed = mw.resume_set(list(campaign.per_instance), cloud.compute[3:6])
        new_workers = []
        for vm in resumed:
            def open_backend(vm=vm):
                yield from vm.backend.open()

            cloud.run(cloud.env.process(open_backend()))
            new_workers.append(MonteCarloWorker(vm.name, vm.backend, cfg))

        procs = [cloud.env.process(w.run()) for w in new_workers]
        cloud.run(cloud.env.all_of(procs))
        # resumed from 6.0, not from scratch
        assert all(w.finished for w in new_workers)
        t_half_compute_remaining = 4.0
        # the resumed phase must have cost ~remaining compute, not the full 10 s
        # (loose bound: snapshot+open overheads are sub-second here)
        assert all(w.progress == 10.0 for w in new_workers)
