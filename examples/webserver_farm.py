#!/usr/bin/env python3
"""A virtualized web-server farm: the §2.3 read-your-writes workload.

The paper's second application class: "web server deployment where each web
server writes and reads back log files and object caches" inside its image.
This example deploys a farm with the mirroring VFS, runs an access-log +
object-cache workload on every server, then takes periodic global snapshots
(the operator's backup policy) — showing that

* all log/cache I/O is served locally (no repository reads after boot),
* each snapshot persists only the *new* dirt since the previous one,
* any historical snapshot remains a standalone, bootable image.

Run: ``python examples/webserver_farm.py [n_servers]``
"""

import sys

from repro.calibration import Calibration, ImageSpec
from repro.cloud import build_cloud
from repro.cloud.middleware import CloudMiddleware
from repro.common.units import KiB, MiB, fmt_size, fmt_time
from repro.vmsim import make_image
from repro.vmsim.workloads import log_append_workload, read_your_writes_workload


def main() -> None:
    n_servers = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    calib = Calibration(
        image=ImageSpec(size=256 * MiB, chunk_size=256 * KiB, boot_touched_bytes=16 * MiB)
    )
    cloud = build_cloud(max(12, n_servers), seed=7, calib=calib)
    image = make_image(calib.image.size, calib.image.boot_touched_bytes, n_regions=24)
    mw = CloudMiddleware(cloud)

    res = mw.deploy_set(image, n_servers, "mirror")
    print(f"{n_servers} web servers up in {fmt_time(res.completion_time)} "
          f"(image fetch: {fmt_size(res.total_traffic)})")

    snapshots = []
    for epoch in range(3):
        # one 'hour' of traffic: object-cache churn + access-log appends
        data_base = image.size - 64 * MiB  # /var partition of the image

        def serve_traffic(vm, i, epoch=epoch, data_base=data_base):
            cache_ops = read_your_writes_workload(
                data_base, 3 * MiB,
                cloud.fabric.rng.get("cache", i, epoch), reread_fraction=0.6,
            )
            log_ops = log_append_workload(
                data_base + 20 * MiB + epoch * 2 * MiB,
                n_appends=32, append_bytes=64 * KiB,
            )
            yield from vm.run_ops(cache_ops)
            yield from vm.run_ops(log_ops)

        remote_before = cloud.metrics.counters.get("mirror-remote-read", 0)
        procs = [cloud.env.process(serve_traffic(vm, i)) for i, vm in enumerate(res.vms)]
        cloud.run(cloud.env.all_of(procs))
        remote_reads = cloud.metrics.counters.get("mirror-remote-read", 0) - remote_before

        campaign = mw.snapshot_set(res.vms, "mirror")
        snapshots.append(campaign)
        print(f"epoch {epoch}: served traffic "
              f"({remote_reads} repository reads — read-your-writes stays local), "
              f"backup snapshot in {fmt_time(campaign.completion_time)} "
              f"persisting {fmt_size(campaign.total_bytes_moved)}")

    # the second/third backups only move fresh dirt (shadowing)
    assert snapshots[1].total_bytes_moved <= snapshots[0].total_bytes_moved
    repo = cloud.blobseer.stored_bytes()
    print(f"\nrepository after 3 backup rounds of {n_servers} servers: "
          f"{fmt_size(repo)} "
          f"(one {fmt_size(image.size)} base + incremental diffs only)")

    # disaster drill: boot yesterday's backup of server 0 on a spare node
    first_backup = snapshots[0].per_instance[0]
    spare = cloud.compute[-1]
    restored = mw.resume_set([first_backup], [spare], name_prefix="restored")

    def probe():
        yield from restored[0].backend.open()
        head = yield from restored[0].backend.read(0, 4096)
        return head.size

    assert cloud.run(cloud.env.process(probe())) == 4096
    print(f"disaster drill: {first_backup.ident} restored on {spare.name} and readable")


if __name__ == "__main__":
    main()
