"""Figure 8 — Monte Carlo application in the real world (paper §5.5).

100 workers estimate π, each periodically saving a ~10 MB intermediate
result inside its VM image. Two settings:

* **Uninterrupted** — deploy and run to completion (multideployment only):
  prepropagation vs qcow2-over-PVFS vs our approach.
* **Suspend/Resume** — run half-way, multisnapshot, terminate, redeploy
  every instance *on a different node*, resume from the saved intermediate
  result: our approach vs qcow2-over-PVFS (prepropagation cannot
  multisnapshot).

Correctness is asserted end-to-end: resumed workers continue from the saved
progress carried through the snapshot, never from scratch.
"""

import pytest

from repro.analysis import check_shape, render_bars
from repro.baselines.qcow2 import Qcow2Image
from repro.cloud import deploy
from repro.cloud.middleware import CloudMiddleware
from repro.cloud.snapshotting import snapshot_all
from repro.vmsim import MonteCarloConfig, MonteCarloWorker, boot_trace
from repro.vmsim.backends import Qcow2PvfsBackend
from repro.vmsim.hypervisor import VMInstance

from common import active_profile, build_point_cloud, emit

PROFILE = active_profile()
HALF = PROFILE.mc_total_compute / 2


def _mc_config(image):
    from repro.calibration import DEFAULT

    return MonteCarloConfig(
        total_compute=PROFILE.mc_total_compute,
        checkpoint_interval=PROFILE.mc_total_compute / 10,
        state_bytes=DEFAULT.snapshot.montecarlo_state_bytes,
        state_offset=image.write_base,
    )


def _run_workers(cloud, workers, until=None):
    procs = [cloud.env.process(w.run(until_progress=until)) for w in workers]
    cloud.run(cloud.env.all_of(procs))


def run_uninterrupted(approach):
    cloud, image = build_point_cloud(PROFILE, seed=8)
    n = min(PROFILE.mc_workers, PROFILE.pool_nodes)
    res = deploy(cloud, image, n, approach)
    cfg = _mc_config(image)
    workers = [MonteCarloWorker(vm.name, vm.backend, cfg) for vm in res.vms]
    _run_workers(cloud, workers)
    assert all(w.finished for w in workers)
    return cloud.env.now


def run_suspend_resume(approach):
    cloud, image = build_point_cloud(PROFILE, seed=8)
    mw = CloudMiddleware(cloud)
    n = min(PROFILE.mc_workers, PROFILE.pool_nodes)
    res = mw.deploy_set(image, n, approach)
    cfg = _mc_config(image)
    workers = [MonteCarloWorker(vm.name, vm.backend, cfg) for vm in res.vms]
    _run_workers(cloud, workers, until=HALF)
    assert all(w.progress == HALF for w in workers)

    campaign = snapshot_all(cloud, res.vms, approach)
    mw.terminate_set(res.vms)

    # resume on different nodes: shifted placement over the pool
    shift = max(1, PROFILE.pool_nodes - n)
    fresh = [cloud.compute[(i + shift) % PROFILE.pool_nodes] for i in range(n)]
    boot_model = cloud.calib.boot

    if approach == "mirror":
        resumed = mw.resume_set(list(campaign.per_instance), fresh)
    else:
        resumed = []
        for i, (snap, node) in enumerate(zip(campaign.per_instance, fresh)):
            # download the qcow2 snapshot file from PVFS, reopen it locally
            src_backend = res.vms[i].backend
            backend = Qcow2PvfsBackend(
                node, cloud.pvfs, "/images/initial.raw", cloud.calib.fuse,
                cluster_size=src_backend.image.cluster_size,
            )

            def fetch(backend=backend, snap=snap, src=src_backend):
                payload = yield from backend.client.read(snap.ident, 0, snap.bytes_moved)
                _, index = src.image.serialize()
                backend.image = Qcow2Image.deserialize(
                    payload, index, image.size,
                    backing_read=backend.image.backing_read,
                    cluster_size=src.image.cluster_size,
                )

            cloud.run(cloud.env.process(fetch(), name=f"resume-fetch-{i}"))
            resumed.append(
                VMInstance(
                    f"resumed-{i:03d}", node, backend, boot_model,
                    cloud.fabric.rng.get("vm-resume", i),
                )
            )

    # reboot the resumed instances (fresh nodes: everything remote again)
    boots = []
    for i, vm in enumerate(resumed):
        trace = boot_trace(image, boot_model, cloud.fabric.rng.get("trace-resume", i))
        boots.append(cloud.env.process(vm.boot(trace), name=f"reboot-{vm.name}"))
    cloud.run(cloud.env.all_of(boots))

    new_workers = [MonteCarloWorker(vm.name, vm.backend, cfg) for vm in resumed]
    _run_workers(cloud, new_workers)
    assert all(w.finished for w in new_workers)
    # end-to-end: progress really came from the snapshot, not from scratch
    assert all(w.progress == PROFILE.mc_total_compute for w in new_workers)
    return cloud.env.now


@pytest.mark.parametrize("approach", ["prepropagation", "qcow2-pvfs", "mirror"])
def test_fig8_uninterrupted(benchmark, sweep_cache, approach):
    t = benchmark.pedantic(lambda: run_uninterrupted(approach), rounds=1, iterations=1)
    sweep_cache[("fig8-uninterrupted", approach)] = t
    assert t > PROFILE.mc_total_compute  # computation dominates


@pytest.mark.parametrize("approach", ["qcow2-pvfs", "mirror"])
def test_fig8_suspend_resume(benchmark, sweep_cache, approach):
    t = benchmark.pedantic(lambda: run_suspend_resume(approach), rounds=1, iterations=1)
    sweep_cache[("fig8-suspend", approach)] = t
    assert t > PROFILE.mc_total_compute


def test_fig8_report(benchmark, sweep_cache):
    uninterrupted = {
        a: sweep_cache[("fig8-uninterrupted", a)]
        for a in ("prepropagation", "qcow2-pvfs", "mirror")
    }
    suspend = {a: sweep_cache[("fig8-suspend", a)] for a in ("qcow2-pvfs", "mirror")}
    table = benchmark.pedantic(
        lambda: render_bars(
            "fig8: Monte Carlo completion time (s), 100 VM instances",
            ["Uninterrupted", "Suspend/Resume"],
            {
                "pre-propagation": [uninterrupted["prepropagation"], float("nan")],
                "qcow2-over-PVFS": [uninterrupted["qcow2-pvfs"], suspend["qcow2-pvfs"]],
                "our-approach": [uninterrupted["mirror"], suspend["mirror"]],
            },
        ),
        rounds=1,
        iterations=1,
    )
    gain = 1 - suspend["mirror"] / suspend["qcow2-pvfs"]
    checks = [
        check_shape(
            "uninterrupted: prepropagation worst (costly init phase)",
            uninterrupted["prepropagation"] > uninterrupted["qcow2-pvfs"] > uninterrupted["mirror"],
        ),
        check_shape(
            f"suspend/resume: ours faster by a few percent (paper ~5%; got {gain:.1%})",
            0.0 < gain < 0.25,
        ),
        check_shape(
            "suspend/resume costs more than uninterrupted (double boot)",
            suspend["mirror"] > uninterrupted["mirror"],
        ),
    ]
    emit("fig8", table + "\n" + "\n".join(checks))
    assert all(c.startswith("[PASS]") for c in checks), "\n".join(checks)
