"""The sweep engine: parallel == sequential, ordering, crash surfacing."""

import pytest

from repro.runner import PointSpec, ResultCache, SweepError, SweepRunner


def _specs(counts=(1, 2), kind="deploy", approach="mirror"):
    return [
        PointSpec(kind=kind, profile="micro-test", approach=approach, n=n, seed=1)
        for n in counts
    ]


class TestEquivalence:
    def test_parallel_bit_identical_to_sequential(self, micro_profile):
        specs = _specs(counts=(1, 2, 1, 2))
        seq = SweepRunner(jobs=1, cache=None).run(specs)
        par = SweepRunner(jobs=4, cache=None).run(specs)
        assert len(seq) == len(par) == len(specs)
        for a, b in zip(seq, par):
            assert a.spec == b.spec
            assert a.metrics == b.metrics
            assert a.series == b.series
            assert a.counters == b.counters
            assert a.event_count == b.event_count

    def test_results_follow_input_order(self, micro_profile):
        specs = _specs(counts=(2, 1))
        out = SweepRunner(jobs=4, cache=None).run(specs)
        assert [r.spec.n for r in out] == [2, 1]

    def test_snapshot_kind_through_pool(self, micro_profile):
        specs = _specs(counts=(2,), kind="snapshot")
        seq = SweepRunner(jobs=1, cache=None).run(specs)
        par = SweepRunner(jobs=2, cache=None).run(specs)
        assert seq[0].metrics == par[0].metrics
        assert len(seq[0].per_instance) == 2


class TestFailureSurfacing:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_point_error_names_the_spec(self, micro_profile, jobs):
        bad = _specs(counts=(1,), approach="bogus")
        with pytest.raises(SweepError) as err:
            SweepRunner(jobs=jobs, cache=None).run(bad)
        message = str(err.value)
        assert "bogus" in message and "micro-test" in message
        assert err.value.spec == bad[0]

    def test_unknown_kind_raises(self, micro_profile):
        with pytest.raises(SweepError, match="unknown point kind"):
            SweepRunner(jobs=1, cache=None).run(
                [PointSpec(kind="nope", profile="micro-test")]
            )

    def test_failed_point_not_cached(self, micro_profile, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(SweepError):
            SweepRunner(jobs=1, cache=cache).run(_specs(counts=(1,), approach="bogus"))
        assert len(cache) == 0


class TestConfiguration:
    def test_default_jobs_is_cpu_count(self):
        import os

        assert SweepRunner().jobs == (os.cpu_count() or 1)

    def test_zero_jobs_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=-1)

    def test_stats_track_execution(self, micro_profile):
        runner = SweepRunner(jobs=1, cache=None)
        runner.run(_specs())
        assert runner.stats.points == 2
        assert runner.stats.executed == 2
        assert runner.stats.cached == 0
        assert runner.stats.wall_s > 0
        assert runner.stats.points_per_s > 0

    def test_empty_sweep(self, micro_profile):
        assert SweepRunner(jobs=4, cache=None).run([]) == []

    def test_run_iter_streams_in_order(self, micro_profile):
        runner = SweepRunner(jobs=4, cache=None)
        seen = [r.spec.n for r in runner.run_iter(_specs(counts=(1, 2, 1)))]
        assert seen == [1, 2, 1]
