"""Unit and property tests for the interval-set algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.intervals import IntervalSet, clamp


class TestClamp:
    def test_inside(self):
        assert clamp(2, 5, 0, 10) == (2, 5)

    def test_partial(self):
        assert clamp(2, 15, 5, 10) == (5, 10)

    def test_disjoint_yields_empty(self):
        lo, hi = clamp(0, 3, 5, 10)
        assert lo >= hi


class TestAdd:
    def test_empty(self):
        s = IntervalSet()
        assert not s
        assert list(s) == []

    def test_single(self):
        s = IntervalSet([(3, 7)])
        assert list(s) == [(3, 7)]
        assert s.total() == 4

    def test_zero_length_ignored(self):
        s = IntervalSet([(5, 5)])
        assert not s

    def test_merge_overlapping(self):
        s = IntervalSet([(0, 5), (3, 8)])
        assert list(s) == [(0, 8)]

    def test_merge_adjacent(self):
        s = IntervalSet([(0, 5), (5, 8)])
        assert list(s) == [(0, 8)]

    def test_disjoint_kept_sorted(self):
        s = IntervalSet([(10, 12), (0, 2), (5, 6)])
        assert list(s) == [(0, 2), (5, 6), (10, 12)]

    def test_bridge_merges_three(self):
        s = IntervalSet([(0, 2), (4, 6), (8, 10)])
        s.add(1, 9)
        assert list(s) == [(0, 10)]

    def test_add_inside_existing_noop(self):
        s = IntervalSet([(0, 10)])
        s.add(3, 4)
        assert list(s) == [(0, 10)]


class TestRemove:
    def test_split(self):
        s = IntervalSet([(0, 10)])
        s.remove(3, 6)
        assert list(s) == [(0, 3), (6, 10)]

    def test_remove_everything(self):
        s = IntervalSet([(0, 10), (20, 30)])
        s.remove(0, 30)
        assert not s

    def test_remove_nothing(self):
        s = IntervalSet([(5, 10)])
        s.remove(0, 5)
        assert list(s) == [(5, 10)]

    def test_trim_edges(self):
        s = IntervalSet([(0, 10)])
        s.remove(0, 2)
        s.remove(8, 10)
        assert list(s) == [(2, 8)]


class TestQueries:
    def test_contains_full(self):
        s = IntervalSet([(0, 10)])
        assert s.contains(0, 10)
        assert s.contains(3, 7)
        assert s.contains(4, 4)  # empty range vacuously contained

    def test_contains_across_gap_false(self):
        s = IntervalSet([(0, 5), (6, 10)])
        assert not s.contains(3, 8)

    def test_overlaps(self):
        s = IntervalSet([(5, 10)])
        assert s.overlaps(0, 6)
        assert s.overlaps(9, 20)
        assert not s.overlaps(0, 5)
        assert not s.overlaps(10, 20)
        assert not s.overlaps(7, 7)

    def test_gaps_full_range_when_empty(self):
        s = IntervalSet()
        assert s.gaps(3, 9) == [(3, 9)]

    def test_gaps_none_when_covered(self):
        s = IntervalSet([(0, 100)])
        assert s.gaps(10, 90) == []

    def test_gaps_mixed(self):
        s = IntervalSet([(2, 4), (6, 8)])
        assert s.gaps(0, 10) == [(0, 2), (4, 6), (8, 10)]

    def test_intersect(self):
        s = IntervalSet([(2, 4), (6, 8)])
        assert s.intersect(3, 7) == [(3, 4), (6, 7)]

    def test_span(self):
        assert IntervalSet().span() == (0, 0)
        assert IntervalSet([(3, 5), (9, 11)]).span() == (3, 11)

    def test_is_single_interval(self):
        assert IntervalSet().is_single_interval()
        assert IntervalSet([(0, 4)]).is_single_interval()
        assert not IntervalSet([(0, 4), (6, 8)]).is_single_interval()

    def test_copy_independent(self):
        s = IntervalSet([(0, 4)])
        c = s.copy()
        c.add(10, 12)
        assert list(s) == [(0, 4)]
        assert list(c) == [(0, 4), (10, 12)]

    def test_eq(self):
        assert IntervalSet([(0, 2), (2, 4)]) == IntervalSet([(0, 4)])
        assert IntervalSet([(0, 4)]) != IntervalSet([(0, 5)])


# --------------------------------------------------------------------------- #
# property tests against a brute-force bitmap model
# --------------------------------------------------------------------------- #
N = 64

op = st.tuples(
    st.sampled_from(["add", "remove"]),
    st.integers(0, N),
    st.integers(0, N),
)


def apply_ops(ops):
    s = IntervalSet()
    bitmap = np.zeros(N, dtype=bool)
    for kind, a, b in ops:
        lo, hi = min(a, b), max(a, b)
        if kind == "add":
            s.add(lo, hi)
            bitmap[lo:hi] = True
        else:
            s.remove(lo, hi)
            bitmap[lo:hi] = False
    return s, bitmap


@settings(max_examples=200)
@given(st.lists(op, max_size=20))
def test_matches_bitmap_model(ops):
    s, bitmap = apply_ops(ops)
    model = np.zeros(N, dtype=bool)
    for lo, hi in s:
        assert 0 <= lo < hi <= N
        model[lo:hi] = True
    assert np.array_equal(model, bitmap)
    assert s.total() == int(bitmap.sum())


@settings(max_examples=200)
@given(st.lists(op, max_size=14), st.integers(0, N), st.integers(0, N))
def test_gaps_and_intersect_partition_query(ops, a, b):
    s, _ = apply_ops(ops)
    lo, hi = min(a, b), max(a, b)
    pieces = sorted(s.gaps(lo, hi) + s.intersect(lo, hi))
    # gaps + intersect exactly tile [lo, hi)
    cursor = lo
    for p_lo, p_hi in pieces:
        assert p_lo == cursor
        assert p_hi > p_lo
        cursor = p_hi
    assert cursor == hi or (lo == hi and not pieces)


@settings(max_examples=200)
@given(st.lists(op, max_size=14))
def test_canonical_form(ops):
    """Intervals are always sorted, disjoint and non-adjacent."""
    s, _ = apply_ops(ops)
    ivs = list(s)
    for (a1, b1), (a2, b2) in zip(ivs, ivs[1:]):
        assert b1 < a2, f"not coalesced: [{a1},{b1}) [{a2},{b2})"
    for a1, b1 in ivs:
        assert a1 < b1
