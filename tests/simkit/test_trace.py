"""Tests for the metrics sink."""

import math

import pytest

from repro.simkit.trace import Histogram, Metrics, SampleStats


class TestSampleStats:
    def test_empty(self):
        s = SampleStats()
        assert s.mean == 0.0
        assert s.stdev == 0.0
        assert s.count == 0

    def test_moments(self):
        s = SampleStats()
        for v in (1.0, 2.0, 3.0, 4.0):
            s.add(v)
        assert s.mean == 2.5
        assert s.min_value == 1.0
        assert s.max_value == 4.0
        assert s.stdev == math.sqrt(1.25)

    def test_single_sample_stdev_zero(self):
        s = SampleStats()
        s.add(7.0)
        assert s.stdev == 0.0

    def test_stdev_survives_large_offsets(self):
        """Welford regression: the naive E[x^2]-E[x]^2 form catastrophically
        cancels when the spread is tiny relative to the magnitude — exactly
        the shape of millisecond jitter hours into a simulated timeline."""
        base = 1e9
        offsets = (0.0, 1.0, 2.0, 3.0, 4.0)
        s = SampleStats()
        for o in offsets:
            s.add(base + o)
        # population stdev of the offsets; the base must cancel exactly
        assert s.stdev == pytest.approx(math.sqrt(2.0), rel=1e-9)
        assert s.mean == pytest.approx(base + 2.0)

    def test_stdev_never_negative_under_cancellation(self):
        s = SampleStats()
        for _ in range(100):
            s.add(1e12 + 0.001)
        assert s.stdev >= 0.0
        assert s.stdev == pytest.approx(0.0, abs=1e-6)


class TestMetrics:
    def test_traffic_accumulates_by_kind(self):
        m = Metrics()
        m.add_traffic(100, "bulk")
        m.add_traffic(50, "bulk")
        m.add_traffic(7, "rpc")
        assert m.traffic["bulk"] == 150
        assert m.total_traffic() == 157

    def test_samples_and_raw(self):
        m = Metrics()
        m.sample("boot", 1.0)
        m.sample("boot", 3.0)
        assert m.samples["boot"].mean == 2.0
        assert m.raw["boot"] == [1.0, 3.0]

    def test_counters(self):
        m = Metrics()
        m.count("rpc")
        m.count("rpc", 4)
        assert m.counters["rpc"] == 5

    def test_timelines(self):
        m = Metrics()
        m.record("queue", 0.0, 1)
        m.record("queue", 1.0, 2)
        assert m.timelines["queue"] == [(0.0, 1), (1.0, 2)]

    def test_summary_renders(self):
        m = Metrics()
        m.add_traffic(2**20, "bulk")
        m.sample("boot", 1.5)
        m.count("rpc", 3)
        text = m.summary()
        for token in ("bulk", "boot", "rpc", "1.0 MiB"):
            assert token in text

    def test_observe_builds_histograms(self):
        m = Metrics()
        m.observe("op", 0.5)
        m.observe("op", 2.0)
        assert m.histograms["op"].count == 2

    def test_summary_pins_sample_line_format(self):
        """The samples line carries n/mean/stdev/min/max in that order."""
        m = Metrics()
        for v in (1.0, 2.0, 3.0, 4.0):
            m.sample("boot", v)
        text = m.summary()
        expected = (
            f"  {'boot':<24} n={4:<6} mean=2.5000"
            f" stdev={math.sqrt(1.25):.4f} min=1.0000 max=4.0000"
        )
        assert expected in text

    def test_summary_pins_histogram_line_format(self):
        m = Metrics()
        for v in (0.5, 0.5, 0.5, 8.0):
            m.observe("op", v)
        h = m.histograms["op"]
        text = m.summary()
        expected = (
            f"  {'op':<24} n={4:<6} p50={h.p50:.4f}"
            f" p95={h.p95:.4f} p99={h.p99:.4f}"
        )
        assert expected in text

    def test_summary_renders_timelines(self):
        m = Metrics()
        m.record("queue", 0.0, 1.0)
        m.record("queue", 1.5, 3.0)
        m.record("queue", 2.0, 2.0)
        text = m.summary()
        assert "timelines:" in text
        assert "points=3" in text
        assert "peak=3.0000" in text
        assert "last=2.0000@2.0000" in text


class TestHistogram:
    def test_empty(self):
        h = Histogram()
        assert h.count == 0
        assert h.p50 == 0.0

    def test_log2_bucketing(self):
        h = Histogram(base=1.0, n_buckets=8)
        h.observe(1.5)   # bucket 0: [1, 2)
        h.observe(3.0)   # bucket 1: [2, 4)
        h.observe(3.9)   # bucket 1
        assert h.buckets[0] == 1
        assert h.buckets[1] == 2

    def test_underflow_and_overflow_clamped(self):
        h = Histogram(base=1.0, n_buckets=4)
        h.observe(0.0)
        h.observe(-1.0)
        h.observe(1e30)  # beyond the last bucket: clamped, not lost
        assert h.underflow == 2
        assert h.buckets[-1] == 1
        assert h.count == 3

    def test_percentiles_are_bucket_upper_edges(self):
        h = Histogram(base=1.0, n_buckets=16)
        for _ in range(99):
            h.observe(1.5)   # bucket [1, 2)
        h.observe(1000.0)    # bucket [512, 1024)
        assert h.p50 == 2.0
        assert h.p95 == 2.0
        assert h.p99 == 2.0
        assert h.percentile(1.0) == 1024.0

    def test_percentile_all_underflow(self):
        h = Histogram(base=1.0)
        h.observe(0.5)
        assert h.p50 == 1.0
