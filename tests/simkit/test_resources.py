"""Tests for Resource / Store / Container."""

import pytest

from repro.common.errors import InterruptedError_, SimulationError
from repro.simkit.core import Environment
from repro.simkit.resources import Container, Resource, Store


class TestResource:
    def test_capacity_one_serializes(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def user(name):
            req = res.request()
            yield req
            log.append((env.now, name, "start"))
            yield env.timeout(1.0)
            res.release()
            log.append((env.now, name, "end"))

        env.process(user("a"))
        env.process(user("b"))
        env.run()
        assert log == [
            (0.0, "a", "start"),
            (1.0, "a", "end"),
            (1.0, "b", "start"),
            (2.0, "b", "end"),
        ]

    def test_capacity_two_overlaps(self):
        env = Environment()
        res = Resource(env, capacity=2)
        ends = []

        def user():
            yield res.request()
            yield env.timeout(1.0)
            res.release()
            ends.append(env.now)

        for _ in range(4):
            env.process(user())
        env.run()
        assert ends == [1.0, 1.0, 2.0, 2.0]

    def test_fifo_order(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def user(i):
            yield res.request()
            order.append(i)
            yield env.timeout(0.1)
            res.release()

        for i in range(5):
            env.process(user(i))
        env.run()
        assert order == [0, 1, 2, 3, 4]

    def test_release_without_request_raises(self):
        env = Environment()
        res = Resource(env)
        with pytest.raises(SimulationError):
            res.release()

    def test_queue_length(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def holder():
            yield res.request()
            yield env.timeout(10.0)
            res.release()

        def waiter():
            yield res.request()
            res.release()

        env.process(holder())
        env.process(waiter())
        env.run(until=1.0)
        assert res.queue_length == 1

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Resource(Environment(), capacity=0)


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        store.put("x")

        def getter():
            v = yield store.get()
            return v

        assert env.run(env.process(getter())) == "x"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        out = []

        def getter():
            v = yield store.get()
            out.append((env.now, v))

        def putter():
            yield env.timeout(2.0)
            store.put("late")

        env.process(getter())
        env.process(putter())
        env.run()
        assert out == [(2.0, "late")]

    def test_fifo_items_and_getters(self):
        env = Environment()
        store = Store(env)
        got = []

        def getter(i):
            v = yield store.get()
            got.append((i, v))

        env.process(getter(0))
        env.process(getter(1))

        def putter():
            yield env.timeout(1.0)
            store.put("first")
            store.put("second")

        env.process(putter())
        env.run()
        assert got == [(0, "first"), (1, "second")]

    def test_len(self):
        env = Environment()
        store = Store(env)
        store.put(1)
        store.put(2)
        assert len(store) == 2


class TestContainer:
    def test_get_blocks_until_level(self):
        env = Environment()
        c = Container(env, capacity=100.0, init=0.0)
        out = []

        def consumer():
            yield c.get(30.0)
            out.append(env.now)

        def producer():
            yield env.timeout(1.0)
            yield c.put(15.0)
            yield env.timeout(1.0)
            yield c.put(15.0)

        env.process(consumer())
        env.process(producer())
        env.run()
        assert out == [2.0]
        assert c.level == 0.0

    def test_put_blocks_at_capacity(self):
        env = Environment()
        c = Container(env, capacity=10.0, init=10.0)
        out = []

        def producer():
            yield c.put(5.0)
            out.append(env.now)

        def consumer():
            yield env.timeout(3.0)
            yield c.get(5.0)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert out == [3.0]

    def test_init_over_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Container(Environment(), capacity=1.0, init=2.0)


class TestWaiterCancellation:
    """Interrupting a process blocked on a resource must not leak state
    (fault injection kills processes at arbitrary yield points)."""

    def test_interrupted_container_getter_leaves_queue(self):
        env = Environment()
        c = Container(env, capacity=100.0, init=0.0)
        outcome = []

        def doomed():
            try:
                yield c.get(30.0)
            except InterruptedError_:
                outcome.append("interrupted")

        def lucky():
            yield c.get(10.0)
            outcome.append(("lucky", env.now))

        victim = env.process(doomed())
        env.process(lucky())

        def killer():
            yield env.timeout(1.0)
            victim.interrupt("crash")
            yield c.put(10.0)

        env.process(killer())
        env.run()
        # the dead getter's 30-unit claim must not shadow the live one
        assert outcome == ["interrupted", ("lucky", 1.0)]
        assert c.level == 0.0

    def test_granted_unconsumed_get_refunds_level(self):
        """Interrupt lands in the same timestep the get was granted: the
        deducted amount must flow back (the victim never saw it)."""
        env = Environment()
        c = Container(env, capacity=100.0, init=0.0)
        outcome = []

        def doomed():
            try:
                yield c.get(10.0)
                outcome.append("got")
            except InterruptedError_:
                outcome.append("interrupted")

        victim = env.process(doomed())

        def killer():
            yield env.timeout(1.0)
            yield c.put(10.0)  # grants the get; victim resumes *later*
            victim.interrupt("crash")  # ...but dies first

        env.process(killer())
        env.run()
        assert outcome == ["interrupted"]
        assert c.level == 10.0  # refunded, not lost

    def test_interrupted_putter_leaves_queue(self):
        env = Environment()
        c = Container(env, capacity=10.0, init=10.0)
        outcome = []

        def doomed():
            try:
                yield c.put(5.0)
            except InterruptedError_:
                outcome.append("interrupted")

        victim = env.process(doomed())

        def killer():
            yield env.timeout(1.0)
            victim.interrupt("crash")
            yield c.get(4.0)

        env.process(killer())
        env.run()
        assert outcome == ["interrupted"]
        # the dead putter must not have topped the container back up
        assert c.level == 6.0

    def test_interrupted_resource_waiter_frees_no_slot(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def holder():
            yield res.request()
            yield env.timeout(2.0)
            res.release()

        def doomed():
            try:
                yield res.request()
            except InterruptedError_:
                order.append("interrupted")

        def patient():
            yield env.timeout(1.5)
            yield res.request()
            order.append(("patient", env.now))
            res.release()

        env.process(holder())
        victim = env.process(doomed())
        env.process(patient())

        def killer():
            yield env.timeout(1.0)
            victim.interrupt("crash")

        env.process(killer())
        env.run()
        # the cancelled waiter is skipped; the slot goes to the live one
        assert order == ["interrupted", ("patient", 2.0)]
        assert res.in_use == 0

    def test_fail_waiters_propagates_error(self):
        env = Environment()
        c = Container(env, capacity=100.0, init=0.0)
        seen = []

        def waiter():
            try:
                yield c.get(1.0)
            except SimulationError as exc:
                seen.append(str(exc))

        env.process(waiter())

        def crash():
            yield env.timeout(1.0)
            c.fail_waiters(SimulationError("provider crashed"))

        env.process(crash())
        env.run()
        assert seen == ["provider crashed"]
