"""FaultInjector: plans become timed incidents against a live cloud."""

import pytest

from repro.calibration import Calibration, ImageSpec
from repro.cloud import build_cloud
from repro.common.errors import ProviderUnavailableError, SimulationError
from repro.common.payload import Payload
from repro.common.units import KiB, MiB
from repro.faults import FaultEvent, FaultPlan
from repro.simkit import rpc

SMALL = Calibration(
    image=ImageSpec(size=8 * MiB, chunk_size=64 * KiB, boot_touched_bytes=1 * MiB)
)


def small_cloud(seed=7):
    return build_cloud(4, seed=seed, calib=SMALL)


class TestArming:
    def test_arm_twice_rejected(self):
        cloud = small_cloud()
        inj = cloud.inject_faults(FaultPlan())
        with pytest.raises(SimulationError, match="armed twice"):
            inj.arm()

    def test_unknown_target_rejected(self):
        cloud = small_cloud()
        plan = FaultPlan((FaultEvent(at=1.0, kind="provider-crash", target="ghost"),))
        with pytest.raises(SimulationError, match="unknown host"):
            cloud.inject_faults(plan)

    def test_overlapping_crash_windows_rejected(self):
        cloud = small_cloud()
        name = cloud.compute[0].name
        plan = FaultPlan(
            (
                FaultEvent(at=1.0, kind="provider-crash", target=name, duration=5.0),
                FaultEvent(at=3.0, kind="provider-crash", target=name, duration=1.0),
            )
        )
        with pytest.raises(SimulationError, match="overlapping crash windows"):
            cloud.inject_faults(plan)

    def test_empty_plan_schedules_nothing(self):
        cloud = small_cloud()
        inj = cloud.inject_faults(FaultPlan())
        assert inj.armed
        assert cloud.env.run() is None  # queue drains immediately
        assert inj.applied == []


class TestCrashEvents:
    def test_transient_crash_downs_then_revives(self):
        cloud = small_cloud()
        victim = cloud.compute[1]
        plan = FaultPlan(
            (
                FaultEvent(
                    at=1.0, kind="provider-crash", target=victim.name, duration=2.0
                ),
            )
        )
        inj = cloud.inject_faults(plan)
        cloud.env.run(until=1.5)
        assert victim.down
        assert rpc.is_host_down(victim)
        cloud.env.run(until=3.5)
        assert not victim.down
        assert not rpc.is_host_down(victim)
        assert [t for t, _ in inj.applied] == [1.0]
        assert cloud.metrics.counters["fault-provider-crash"] == 1
        assert cloud.metrics.counters["host-crash"] == 1
        assert cloud.metrics.counters["host-restart"] == 1

    def test_permanent_crash_never_revives(self):
        cloud = small_cloud()
        victim = cloud.compute[2]
        plan = FaultPlan(
            (FaultEvent(at=0.5, kind="provider-crash", target=victim.name),)
        )
        cloud.inject_faults(plan)
        cloud.env.run()
        assert victim.down

    def test_crash_aborts_in_flight_transfer(self):
        """A crash mid-RPC surfaces as ProviderUnavailableError at the caller."""
        cloud = small_cloud()
        dep = cloud.blobseer
        rec = dep.seed_blob(Payload.zeros(2 * MiB), 64 * KiB)
        # 32 chunks round-robin over 4 providers: every data host holds some
        plan = FaultPlan(
            (
                FaultEvent(
                    at=0.001, kind="provider-crash", target=cloud.compute[1].name
                ),
            )
        )
        cloud.inject_faults(plan)
        client = dep.client(cloud.manager)

        def read():
            yield from client.read(rec.blob_id, rec.version, 0, 2 * MiB)

        with pytest.raises(ProviderUnavailableError):
            cloud.run(cloud.env.process(read()))


class TestDegradationEvents:
    def test_disk_stall_window(self):
        cloud = small_cloud()
        victim = cloud.compute[0]
        plan = FaultPlan(
            (
                FaultEvent(
                    at=1.0, kind="disk-stall", target=victim.name,
                    duration=2.0, factor=4.0,
                ),
            )
        )
        cloud.inject_faults(plan)
        cloud.env.run(until=1.5)
        assert victim.disk.stalled
        cloud.env.run(until=3.5)
        assert not victim.disk.stalled

    def test_nic_degrade_divides_and_restores_capacity(self):
        cloud = small_cloud()
        victim = cloud.compute[0]
        up0, down0 = victim.nic.up_capacity, victim.nic.down_capacity
        plan = FaultPlan.degradations(
            [victim.name], "nic-degrade", at=1.0, duration=2.0, factor=10.0
        )
        cloud.inject_faults(plan)
        cloud.env.run(until=1.5)
        assert victim.nic.up_capacity == pytest.approx(up0 / 10.0)
        assert victim.nic.down_capacity == pytest.approx(down0 / 10.0)
        cloud.env.run(until=3.5)
        assert victim.nic.up_capacity == pytest.approx(up0)
        assert victim.nic.down_capacity == pytest.approx(down0)
