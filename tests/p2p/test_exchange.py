"""End-to-end cooperative chunk exchange over the simulated network."""

from p2p_setup import CHUNK, IMG, build, read_all, run


class TestAnnounceExchange:
    def test_second_reader_is_served_by_peers(self):
        fab, dep, hosts, rec, data, net = build()
        assert run(fab, read_all(dep, hosts[0], rec)) == data
        provider_gets = fab.metrics.counters["chunk-get"]
        assert run(fab, read_all(dep, hosts[1], rec)) == data
        assert fab.metrics.counters["p2p-chunk-hit"] > 0
        assert fab.metrics.counters["p2p-bytes-peer"] > 0
        # the second reader barely touched the providers
        assert fab.metrics.counters["chunk-get"] < provider_gets * 2

    def test_every_node_reads_identical_bytes(self):
        fab, dep, hosts, rec, data, net = build()
        for host in hosts:
            assert run(fab, read_all(dep, host, rec)) == data

    def test_first_fetch_populates_cache(self):
        fab, dep, hosts, rec, data, net = build()
        run(fab, read_all(dep, hosts[0], rec))
        assert len(net.caches["node0"]) == IMG // CHUNK
        assert net.caches["node0"].used_bytes == IMG

    def test_fresh_mirror_hits_own_cache_for_free(self):
        fab, dep, hosts, rec, data, net = build()
        run(fab, read_all(dep, hosts[0], rec))
        provider_gets = fab.metrics.counters["chunk-get"]
        # a brand-new mirror on the same host re-fetches through the client,
        # but everything is already in this node's own peer cache
        assert run(fab, read_all(dep, hosts[0], rec)) == data
        assert fab.metrics.counters["p2p-local-hit"] == IMG // CHUNK
        assert fab.metrics.counters["chunk-get"] == provider_gets

    def test_stats_reflect_the_exchange(self):
        fab, dep, hosts, rec, data, net = build()
        run(fab, read_all(dep, hosts[0], rec))
        run(fab, read_all(dep, hosts[1], rec))
        stats = net.stats()
        assert stats["peer_hit_ratio"] > 0.0
        assert stats["bytes_from_peers"] > 0
        assert stats["chunks_from_providers"] >= IMG // CHUNK  # the first boot
        assert stats["peer_failovers"] == 0

    def test_bounded_cache_evicts_but_stays_correct(self):
        fab, dep, hosts, rec, data, net = build(cache_bytes=4 * CHUNK)
        assert run(fab, read_all(dep, hosts[0], rec)) == data
        assert run(fab, read_all(dep, hosts[1], rec)) == data
        assert len(net.caches["node0"]) <= 4
        assert net.stats()["cache_evictions"] > 0


class TestRendezvousExchange:
    def test_peers_serve_without_any_directory_traffic(self):
        fab, dep, hosts, rec, data, net = build(directory="rendezvous")
        assert run(fab, read_all(dep, hosts[0], rec)) == data
        assert run(fab, read_all(dep, hosts[1], rec)) == data
        assert run(fab, read_all(dep, hosts[2], rec)) == data
        assert fab.metrics.counters["p2p-chunk-hit"] > 0
        assert fab.metrics.counters["p2p-announce"] == 0
        assert fab.metrics.counters["p2p-locate"] == 0

    def test_candidates_are_computed_not_registered(self):
        fab, dep, hosts, rec, data, net = build(directory="rendezvous")
        assert net.directory_service is None
        assert net.directory.name == "rendezvous"
