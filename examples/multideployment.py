#!/usr/bin/env python3
"""Multideployment showdown: one image -> many VMs, three ways (paper §5.2).

Deploys the same VM image to a set of compute nodes with the three schemes
the paper compares — taktuk-style prepropagation, qcow2 over PVFS, and the
lazy mirroring VFS — and prints the three metrics of Figure 4: average boot
time, time until the whole deployment is up, and total network traffic.

Run: ``python examples/multideployment.py [n_instances]``
(default 16 instances on a 24-node cluster; scales to hundreds)
"""

import sys

from repro.calibration import Calibration, ImageSpec
from repro.cloud import build_cloud, deploy
from repro.common.units import GiB, KiB, MiB, fmt_size, fmt_time
from repro.vmsim import make_image


def main() -> None:
    n_instances = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    pool = max(24, n_instances)
    calib = Calibration(
        image=ImageSpec(size=1 * GiB, chunk_size=256 * KiB, boot_touched_bytes=64 * MiB)
    )
    print(f"deploying {n_instances} instances of a {fmt_size(calib.image.size)} image "
          f"on a {pool}-node cluster "
          f"(boot touches {fmt_size(calib.image.boot_touched_bytes)})\n")

    header = f"{'approach':<18}{'init':>10}{'avg boot':>12}{'completion':>12}{'traffic':>14}"
    print(header)
    print("-" * len(header))
    rows = {}
    for approach in ("prepropagation", "qcow2-pvfs", "mirror"):
        # a fresh, identically-seeded cluster per approach: fair comparison
        cloud = build_cloud(pool, seed=7, calib=calib)
        image = make_image(calib.image.size, calib.image.boot_touched_bytes, n_regions=48)
        res = deploy(cloud, image, n_instances, approach)
        rows[approach] = res
        print(f"{approach:<18}{fmt_time(res.init_time):>10}"
              f"{fmt_time(res.avg_boot_time):>12}{fmt_time(res.completion_time):>12}"
              f"{fmt_size(res.total_traffic):>14}")

    mirror, prep = rows["mirror"], rows["prepropagation"]
    qcow2 = rows["qcow2-pvfs"]
    print(f"\nmirror speedup vs prepropagation: "
          f"{prep.completion_time / mirror.completion_time:.1f}x")
    print(f"mirror speedup vs qcow2-over-PVFS: "
          f"{qcow2.completion_time / mirror.completion_time:.1f}x")
    print(f"traffic saved vs prepropagation:  "
          f"{1 - mirror.total_traffic / prep.total_traffic:.0%}")


if __name__ == "__main__":
    main()
