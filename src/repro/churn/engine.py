"""The churn engine: a long-horizon control plane over a live cloud.

:class:`ChurnEngine` binds the pieces together: it materializes the request
trace (:mod:`~repro.churn.arrivals`), seeds one base-image blob per tenant,
then runs a dispatcher process that delivers each request at its arrival
time — deploys through the admission/placement layer
(:mod:`~repro.churn.scheduler`), snapshots and teardowns to the target
instance's lifecycle process (:mod:`~repro.churn.lifecycle`). A periodic
:func:`~repro.blobseer.gc.collect_garbage` sweep (cadence
:attr:`~repro.churn.arrivals.ChurnSpec.gc_interval`) keeps the repository
footprint bounded; with the cadence off the same run shows monotone growth,
which is exactly the ablation ``bench_churn`` plots. All steady-state
metrics land in a :class:`~repro.churn.slo.SloTracker`.

The engine is strictly additive: it only *uses* the existing deployment,
snapshotting, GC and p2p machinery, so runs that never construct a
``ChurnEngine`` are bit-identical to a tree without this package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from ..blobseer.gc import collect_garbage
from ..blobseer.metadata import reachable_nodes
from ..common.errors import LineageError, SimulationError
from ..simkit import rpc
from .arrivals import (
    ChurnSpec, DeployRequest, RestoreRequest, SnapshotRequest, TeardownRequest,
    generate_trace, trace_crc,
)
from .lifecycle import VmRuntime, run_instance
from .scheduler import LocalityMap, Scheduler
from .slo import SloTracker


@dataclass
class ChurnResult:
    """Outcome of one churn run."""

    spec: ChurnSpec
    #: SloTracker.summary() — percentiles, rates, GC accounting
    summary: dict
    #: per-deploy placement, in deploy order: node index, -1 rejected,
    #: -2 canceled while still queued
    placements: Tuple[int, ...]
    #: (time, provider bytes) samples of the repository footprint
    footprint: Tuple[Tuple[float, int], ...]
    #: fingerprint of the generated request trace (determinism checks)
    trace_crc: int
    n_requests: int


class ChurnEngine:
    """Drives one churn run over an already-built :class:`~repro.cloud.Cloud`."""

    def __init__(self, cloud, image, spec: ChurnSpec):
        if cloud.blobseer is None:
            raise SimulationError("churn needs a cloud built with BlobSeer")
        spec.validate()
        self.cloud = cloud
        self.image = image
        self.spec = spec
        self.slo = SloTracker(len(cloud.compute) * spec.slots_per_node)
        self.trace = generate_trace(spec, cloud.fabric.rng.get("churn-arrivals"))
        self.runtimes: Dict[int, VmRuntime] = {}
        self.placements: Dict[int, int] = {}
        self._restore_procs: list = []

        # one base-image blob per tenant (distinct chunk keys even for the
        # same bytes, so per-tenant locality is a real signal)
        dep = cloud.blobseer
        self.tenant_images = {
            t: dep.seed_blob(image.payload, cloud.calib.image.chunk_size)
            for t in range(spec.n_tenants)
        }

        self.locality: Optional[LocalityMap] = None
        if spec.policy in ("locality", "rack-affinity"):
            caches = None
            if cloud.p2p is not None:
                caches = cloud.p2p.caches
            rack_of = None
            topo = getattr(cloud, "topology", None)
            if topo is not None and topo.multi_rack:
                rack_of = topo.rack_of
            self.locality = LocalityMap(
                [h.name for h in cloud.compute],
                caches=caches,
                tenant_keys=self._tenant_chunk_keys(),
                rack_of=rack_of,
            )
        self.scheduler = Scheduler(
            len(cloud.compute),
            policy=spec.policy,
            slots_per_node=spec.slots_per_node,
            max_queue=spec.max_queue,
            locality=self.locality,
        )

    # ------------------------------------------------------------------ #
    def _tenant_chunk_keys(self) -> Dict[int, FrozenSet[int]]:
        """Chunk keys of each tenant's base image (locality scoring)."""
        dep = self.cloud.blobseer
        out: Dict[int, FrozenSet[int]] = {}
        for tenant, rec in self.tenant_images.items():
            keys = set()
            for nid in reachable_nodes(dep.metadata, rec.root):
                node = dep.metadata.get(nid)
                if node.ref is not None:
                    keys.add(node.ref.key)
            out[tenant] = frozenset(keys)
        return out

    # ------------------------------------------------------------------ #
    def run(self) -> ChurnResult:
        env = self.cloud.env
        master = env.process(self._master(), name="churn-master")
        self.cloud.run(master)
        n_deploys = sum(1 for r in self.trace if isinstance(r, DeployRequest))
        order = sorted(
            r.req_id for r in self.trace if isinstance(r, DeployRequest)
        )
        placements = tuple(self.placements.get(rid, -1) for rid in order)
        if len(placements) != n_deploys:
            raise SimulationError("churn: placement accounting out of sync")
        return ChurnResult(
            spec=self.spec,
            summary=self.slo.summary(env.now),
            placements=placements,
            footprint=tuple(self.slo.footprint),
            trace_crc=trace_crc(self.trace),
            n_requests=len(self.trace),
        )

    # ------------------------------------------------------------------ #
    def _master(self):
        env = self.cloud.env
        spec = self.spec
        tracer = self.cloud.fabric.tracer
        root = None
        if tracer.enabled:
            root = tracer.start(
                "churn:run", "churn",
                requests=len(self.trace), policy=spec.policy,
            )
        try:
            self.slo.on_slots(env.now, 0)
            self._sample_footprint()
            if spec.gc_interval > 0:
                env.process(self._gc_loop(), name="churn-gc")
            elif spec.sample_interval > 0:
                env.process(self._sample_loop(), name="churn-sample")

            for req in self.trace:
                if req.at > env.now:
                    yield env.timeout(req.at - env.now)
                self._deliver(req)

            # drain: wait for every live instance (releases spawn queued
            # deploys, so re-collect until nothing is alive) and every
            # in-flight restore
            while True:
                alive = [
                    rt.proc for rt in self.runtimes.values()
                    if rt.proc is not None and rt.proc.is_alive
                ]
                alive += [p for p in self._restore_procs if p.is_alive]
                if not alive:
                    break
                yield env.all_of(alive)
            if self.scheduler.queue:
                raise SimulationError(
                    f"churn drain left {len(self.scheduler.queue)} queued "
                    "deploys without capacity ever freeing"
                )
            if spec.gc_interval > 0:
                self.slo.on_gc(collect_garbage(self.cloud.blobseer))
            self._sample_footprint()
        finally:
            if root is not None:
                root.finish()

    # ------------------------------------------------------------------ #
    def _deliver(self, req) -> None:
        if isinstance(req, DeployRequest):
            self.slo.on_deploy()
            status, node = self.scheduler.submit(req)
            if status == "placed":
                self._spawn(req, node)
            elif status == "rejected":
                self.slo.on_reject()
                self.placements[req.req_id] = -1
            # "queued": placement recorded when a release pops it
        elif isinstance(req, SnapshotRequest):
            rt = self.runtimes.get(req.target)
            if rt is not None and rt.state in ("placed", "booting", "running"):
                rt.deliver_snapshot()
            else:
                self.slo.on_snapshot_missed()
        elif isinstance(req, TeardownRequest):
            rt = self.runtimes.get(req.target)
            if rt is not None:
                if rt.state != "done":
                    rt.deliver_teardown()
            elif self.scheduler.cancel(req.target):
                self.slo.on_cancel()
                self.placements[req.target] = -2
            # else: the deploy was rejected at admission; nothing to do
        elif isinstance(req, RestoreRequest):
            rt = self.runtimes.get(req.target)
            target = None
            if rt is not None:
                if rt.published:
                    target = rt.published[-1]
                elif rt.retired:
                    # restorable until the next GC sweep reclaims the chunks
                    target = rt.retired[-1]
            if target is None:
                self.slo.on_restore_missed()
            else:
                self._restore_procs.append(self.cloud.env.process(
                    self._restore(req, target[0], target[1]),
                    name=f"churn-restore-{req.req_id}",
                ))
        else:  # pragma: no cover
            raise SimulationError(f"unknown churn request {req!r}")

    def _spawn(self, req: DeployRequest, node: int) -> None:
        env = self.cloud.env
        rt = VmRuntime(req, node)
        self.runtimes[req.req_id] = rt
        self.placements[req.req_id] = node
        rt.proc = env.process(
            run_instance(self, rt), name=f"churn-vm-{req.req_id}"
        )
        self.slo.on_slots(env.now, self.scheduler.busy_slots)

    def release(self, rt: VmRuntime) -> None:
        """Called by a finishing lifecycle process: free the slot, drain."""
        for req, node in self.scheduler.release(rt.node):
            self._spawn(req, node)
        self.slo.on_slots(self.cloud.env.now, self.scheduler.busy_slots)

    # ------------------------------------------------------------------ #
    def _restore(self, req: RestoreRequest, blob_id: int, version: int):
        """Restore-to-version lifecycle: restore, boot, verify, tear down.

        Runs on the node the original deploy was placed on (its peer cache
        is the likeliest to still hold the chunks). A target whose chunks a
        GC sweep already reclaimed raises
        :class:`~repro.common.errors.LineageError` — counted as a missed
        restore, exactly the staleness SLO the retention policy trades
        against.
        """
        from ..lineage.restore import restore_to_version
        from ..vmsim.boottrace import boot_trace

        cloud = self.cloud
        node_idx = self.placements.get(req.target, -1)
        if node_idx < 0:
            node_idx = req.req_id % len(cloud.compute)
        host = cloud.compute[node_idx]
        try:
            res = yield from restore_to_version(
                cloud.blobseer, host, blob_id, version,
                image=self.image, boot_model=cloud.calib.boot,
                vm_rng=cloud.fabric.rng.get("churn-restore-vm", req.req_id),
                trace=boot_trace(
                    self.image, cloud.calib.boot,
                    cloud.fabric.rng.get("churn-restore-trace", req.req_id),
                ),
                fuse=cloud.calib.fuse,
                path=f"/mirror/churn-restore-{req.req_id}",
            )
        except LineageError:
            self.slo.on_restore_missed()
            return
        self.slo.on_restore(
            res.restore_time, res.scan_hops, res.retired_source
        )
        # the restored instance is ephemeral: shut down, drop the local
        # mirror file, unpublish the restored branch
        yield from res.vm.shutdown()
        res.backend.handle.local.unlink()
        yield from rpc.call(
            host, cloud.blobseer.vmanager_host, "blob-vmgr", "delete_blob",
            res.blob_id,
        )

    # ------------------------------------------------------------------ #
    def _sample_footprint(self) -> None:
        self.slo.on_footprint(
            self.cloud.env.now, self.cloud.blobseer.stored_bytes()
        )

    def _gc_loop(self):
        env = self.cloud.env
        while True:
            yield env.timeout(self.spec.gc_interval)
            self.slo.on_gc(collect_garbage(self.cloud.blobseer))
            self._sample_footprint()

    def _sample_loop(self):
        env = self.cloud.env
        while True:
            yield env.timeout(self.spec.sample_interval)
            self._sample_footprint()
