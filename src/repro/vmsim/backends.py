"""Image backends: what the hypervisor's virtual disk sits on.

The three deployment approaches of §5.2 expose the same interface to the VM:

* :class:`LocalRawBackend` — prepropagation: the raw image is fully on the
  local disk (cold on first read, page-cached after), hypervisor default
  write path. Snapshotting would mean copying 2 GB per VM, which the paper
  deems infeasible — ``snapshot`` raises.
* :class:`Qcow2PvfsBackend` — a local qcow2 CoW file whose backing image is
  striped on PVFS. Reads of unallocated clusters go to PVFS *every time*;
  writes CoW-allocate locally. Snapshot = copy the qcow2 file into PVFS.
* :class:`MirrorBackend` — the paper's approach: the mirroring VFS over
  BlobSeer. Snapshot = ``CLONE`` (first time) + ``COMMIT``.

All methods are process-style generators running on the simulated fabric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..baselines.pvfs import PvfsDeployment
from ..baselines.qcow2 import Qcow2Image
from ..blobseer.service import BlobSeerDeployment
from ..calibration import FuseModel
from ..common.errors import MirrorStateError, StorageError
from ..common.intervals import IntervalSet
from ..common.payload import Payload
from ..core.localmirror import hypervisor_policy
from ..core.vfs import MirrorVFS
from ..simkit.disk import FileDevice
from ..simkit.host import Host


@dataclass
class SnapshotResult:
    """Outcome of snapshotting one VM instance."""

    #: identifier of the persisted snapshot (blob/version or PVFS path)
    ident: str
    #: bytes physically moved to persistent storage
    bytes_moved: int
    #: simulated seconds the snapshot took
    duration: float


class LocalRawBackend:
    """Raw image fully available on the local disk (prepropagation)."""

    def __init__(self, host: Host, path: str, fuse: Optional[FuseModel] = None):
        self.host = host
        self.path = path
        self.fuse = fuse if fuse is not None else FuseModel()
        self.file = host.open_file(path)
        self.size = self.file.size
        self.device = FileDevice(host.env, host.disk, hypervisor_policy(self.fuse), self.size)
        self._cached = IntervalSet()

    def open(self) -> Generator:
        yield self.host.env.timeout(0)
        return self

    def read(self, offset: int, nbytes: int) -> Generator:
        cached = self._cached.contains(offset, offset + nbytes)
        yield from self.device.read(nbytes, cached=cached)
        self._cached.add(offset, offset + nbytes)
        return self.file.read(offset, nbytes)

    def write(self, offset: int, payload: Payload) -> Generator:
        yield from self.device.write(payload.size)
        self._cached.add(offset, offset + payload.size)
        self.file.write(offset, payload)

    def close(self) -> Generator:
        yield from self.device.sync()

    def snapshot(self) -> Generator:
        raise StorageError(
            "prepropagation cannot multisnapshot: copying the full image "
            "back per VM is infeasible (paper §5.3)"
        )
        yield  # pragma: no cover


class Qcow2PvfsBackend:
    """qcow2 CoW file on the local disk, backing image striped on PVFS."""

    _counter = 0

    def __init__(
        self,
        host: Host,
        pvfs: PvfsDeployment,
        backing_path: str,
        fuse: Optional[FuseModel] = None,
        cluster_size: int = 64 * 1024,
    ):
        self.host = host
        self.pvfs = pvfs
        self.backing_path = backing_path
        self.fuse = fuse if fuse is not None else FuseModel()
        self.client = pvfs.client(host)
        meta = pvfs.meta_servers[pvfs.meta_host_for(backing_path).name].files[backing_path]
        self.size = meta.size
        self.image = Qcow2Image(
            self.size,
            backing_read=lambda off, n: pvfs.peek(backing_path, off, n),
            cluster_size=cluster_size,
        )
        self.device = FileDevice(host.env, host.disk, hypervisor_policy(self.fuse), self.size)
        self._snap_seq = 0

    def open(self) -> Generator:
        """Create the local qcow2 file pointing at the PVFS backing image."""
        yield self.host.env.timeout(self.host.fabric.network.per_message_overhead)
        return self

    def _charge(self, report) -> Generator:
        """Turn a pure-format IoReport into simulated time.

        Backing fetches are issued cluster by cluster (QEMU's qcow2 driver
        performs backing I/O at cluster granularity), serially within one
        guest request — the per-request overhead the mirror's full-chunk
        prefetch avoids (§3.3, and the paper's explanation of Fig. 4(a)).
        """
        cs = self.image.cluster_size
        for off, nbytes in report.backing_reads:
            cursor = off
            end = off + nbytes
            while cursor < end:
                c_hi = min((cursor // cs + 1) * cs, end)
                # Remote read of the backing extent from PVFS (timed; content
                # was already supplied synchronously by the peek callback).
                yield from self.client.read(self.backing_path, cursor, c_hi - cursor)
                cursor = c_hi
        if report.local_read_bytes:
            yield from self.device.read(report.local_read_bytes, cached=True)
        if report.local_write_bytes:
            yield from self.device.write(report.local_write_bytes)

    def read(self, offset: int, nbytes: int) -> Generator:
        payload, report = self.image.read(offset, nbytes)
        yield from self._charge(report)
        return payload

    def write(self, offset: int, payload: Payload) -> Generator:
        report = self.image.write(offset, payload)
        yield from self._charge(report)

    def close(self) -> Generator:
        yield from self.device.sync()

    def snapshot(self) -> Generator:
        """Copy the local qcow2 file back into PVFS (a new file each time)."""
        t0 = self.host.env.now
        file_payload, index = self.image.serialize()
        Qcow2PvfsBackend._counter += 1
        self._snap_seq += 1
        path = f"/snapshots/{self.host.name}-{Qcow2PvfsBackend._counter}.qcow2"
        # read the qcow2 file from the local disk, then stream it into PVFS
        yield from self.device.read(file_payload.size, cached=True)
        yield from self.client.create(path, file_payload.size)
        yield from self.client.write(path, 0, file_payload)
        self.host.fabric.metrics.count("qcow2-snapshot")
        return SnapshotResult(path, file_payload.size, self.host.env.now - t0)


class MirrorBackend:
    """The paper's approach: mirroring VFS over BlobSeer."""

    def __init__(
        self,
        host: Host,
        deployment: BlobSeerDeployment,
        blob_id: int,
        version: Optional[int] = None,
        fuse: Optional[FuseModel] = None,
        path: Optional[str] = None,
        full_chunk_prefetch: bool = True,
    ):
        self.host = host
        self.deployment = deployment
        self.blob_id = blob_id
        self.version = version
        self.fuse = fuse if fuse is not None else FuseModel()
        self.path = path
        self.vfs = MirrorVFS(
            host, deployment.client(host), self.fuse,
            full_chunk_prefetch=full_chunk_prefetch,
        )
        self.handle = None
        self.size = None

    def open(self) -> Generator:
        self.handle = yield from self.vfs.open(self.blob_id, self.version, self.path)
        self.size = self.handle.size
        return self

    def _h(self):
        if self.handle is None:
            raise MirrorStateError("backend not opened")
        return self.handle

    def read(self, offset: int, nbytes: int) -> Generator:
        data = yield from self._h().read(offset, nbytes)
        return data

    def write(self, offset: int, payload: Payload) -> Generator:
        yield from self._h().write(offset, payload)

    def close(self) -> Generator:
        yield from self._h().close()

    def snapshot(self) -> Generator:
        """CLONE (first time) + COMMIT: publish local diffs as a snapshot."""
        t0 = self.host.env.now
        handle = self._h()
        moved = handle.modmgr.dirty_bytes()
        if handle.target_blob == handle.source_blob:
            yield from handle.ioctl_clone()
        rec = yield from handle.ioctl_commit()
        return SnapshotResult(
            f"blob{rec.blob_id}@v{rec.version}", moved, self.host.env.now - t0
        )
