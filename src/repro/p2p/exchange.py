"""Cooperative chunk exchange between compute nodes.

The multideployment hot path (paper §5, Fig. 4) has all N booting nodes
pulling the *same* hot image chunks from the same few data providers. With
peer exchange enabled, every compute node runs a :class:`PeerExchangeService`
that serves chunks out of its :class:`~repro.p2p.cache.PeerChunkCache` over
the flow network, and every mirror fetch goes through a :class:`PeerAgent`:

1. **local** — chunks already in this node's own cache are free;
2. **peers** — a directory lookup (:mod:`repro.p2p.directory`) yields
   candidate holders; misses are requested from them in ranked waves, each
   wave fanned out per peer in parallel. A peer that is down, crashes
   mid-transfer, or simply no longer caches the chunk costs one failed
   attempt and the next candidate (or the provider) takes over — peer
   failures are *never* surfaced to the reader;
3. **providers** — whatever is still missing goes down the unmodified
   provider path (including replica failover and the deployment's
   :class:`~repro.faults.policy.RetryPolicy` when one is configured).

Everything fetched — from peers or providers — lands in the local cache and
is announced, so the first booter (or the access-profile prefetcher warming
it) becomes the root of an emergent distribution tree.

With ``p2p=False`` (the default) none of this code is reachable:
``BlobClient.peer_agent`` stays ``None`` and the fetch path is byte-identical
to a build without this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..blobseer.metadata import ChunkRef
from ..calibration import ServiceModel
from ..common.errors import ChunkNotFoundError, ProviderUnavailableError, StorageError
from ..common.payload import Payload
from ..common.units import MiB
from ..simkit import rpc
from ..simkit.core import Timeout
from ..simkit.host import Fabric, Host
from .cache import PeerChunkCache
from .directory import (
    DIRECTORY_SERVICE,
    AnnounceDirectory,
    PeerDirectoryService,
    RendezvousDirectory,
)

#: service name every participating compute node binds the exchange under
PEER_SERVICE = "p2p-exch"

#: wire overhead per key in a peer response (hit mask + framing)
PEER_ENTRY_BYTES = 16


@dataclass(frozen=True)
class P2PConfig:
    """Knobs for the cooperative exchange layer."""

    #: per-node peer cache budget
    cache_bytes: int = 64 * MiB
    #: candidate-holder strategy: "announce" or "rendezvous"
    directory: str = "announce"
    #: how many candidate peers to try per chunk before the provider path
    locate_fanout: int = 2
    #: announce directory: holders remembered per chunk key
    announce_max_holders: int = 16

    def __post_init__(self):
        if self.cache_bytes <= 0:
            raise StorageError(f"p2p cache_bytes must be positive, got {self.cache_bytes}")
        if self.directory not in ("announce", "rendezvous"):
            raise StorageError(
                f"unknown p2p directory {self.directory!r} "
                "(expected 'announce' or 'rendezvous')"
            )
        if self.locate_fanout < 1:
            raise StorageError(f"locate_fanout must be >= 1, got {self.locate_fanout}")


class PeerExchangeService:
    """Serves this node's cached chunks to its peers (best effort)."""

    def __init__(self, host: Host, cache: PeerChunkCache, model: ServiceModel):
        self.host = host
        self.cache = cache
        self.model = model

    def rpc_get_cached(self, caller: Host, keys: Sequence[int]):
        """Return ``(hit_keys, combined_payload)`` for the cached subset.

        Misses are not an error: the response simply omits them and the
        caller moves on to its next candidate. Hits are RAM-served (the
        cache *is* RAM), so the only costs are the per-request overhead and
        the response flow.
        """
        env = self.host.env
        cache = self.cache
        hit_keys: List[int] = []
        parts: List[Payload] = []
        for key in keys:
            yield Timeout(env, self.model.chunk_request_overhead)
            payload = cache.get(key)
            if payload is not None:
                hit_keys.append(key)
                parts.append(payload)
        combined = Payload.concat(parts) if parts else Payload()
        metrics = self.host.fabric.metrics
        metrics.count("p2p-serve-hit", len(hit_keys))
        metrics.count("p2p-serve-miss", len(keys) - len(hit_keys))
        metrics.count("p2p-bytes-served", combined.size)
        tracer = self.host.fabric.tracer
        if tracer.enabled:
            span = tracer.start(
                "p2p.serve", "p2p",
                peer=self.host.name, requested=len(keys),
                hits=len(hit_keys), misses=len(keys) - len(hit_keys),
                nbytes=combined.size,
            )
            span.finish()
        return rpc.Sized(
            (tuple(hit_keys), combined),
            combined.size + PEER_ENTRY_BYTES * len(keys),
        )

    def on_host_crash(self):
        """The peer cache is RAM: a crash loses it (and stops serving)."""
        self.cache.clear()


class PeerAgent:
    """Per-node fetch-side logic: local cache, then peers, then providers."""

    def __init__(self, network: "PeerNetwork", host: Host, cache: PeerChunkCache):
        self.network = network
        self.host = host
        self.cache = cache
        self.directory = network.directory
        self.config = network.config

    # ------------------------------------------------------------------ #
    def fetch_refs(self, client, refs: Dict[int, ChunkRef]):
        """Peer-first replacement for the client's provider fetch.

        ``client`` is the :class:`~repro.blobseer.client.BlobClient` that
        delegated to us; its untouched provider path
        (``_fetch_refs_providers``) remains the fallback of last resort.
        """
        metrics = self.host.fabric.metrics
        out: Dict[int, Payload] = {}
        if not refs:
            return out

        # 1. own cache: free, no simulated time
        pending: Dict[int, ChunkRef] = {}
        local_bytes = 0
        for idx in sorted(refs):
            ref = refs[idx]
            payload = self.cache.get(ref.key)
            if payload is not None:
                out[idx] = payload
                local_bytes += payload.size
            else:
                pending[idx] = ref
        if out:
            metrics.count("p2p-local-hit", len(out))
        if not pending:
            return out

        tracer = self.host.fabric.tracer
        span = None
        if tracer.enabled:
            span = tracer.start(
                "p2p.fetch", "p2p", node=self.host.name, nchunks=len(pending)
            )
        try:
            peer_served = yield from self._fetch_from_peers(client, pending)
            out.update(peer_served)
            for idx in peer_served:
                del pending[idx]
            if span is not None:
                span.set(peer_hits=len(peer_served), provider_misses=len(pending))
        except BaseException as exc:
            if span is not None:
                span.set_error(exc)
            raise
        finally:
            if span is not None:
                span.finish()

        # 3. provider path for whatever peers could not supply
        if pending:
            fetched = yield from client._fetch_refs_providers(pending)
            metrics.count("p2p-chunk-miss", len(fetched))
            metrics.count(
                "p2p-bytes-provider", sum(p.size for p in fetched.values())
            )
            out.update(fetched)

        # 4. populate our cache + announce (everything newly obtained)
        new_keys: List[int] = []
        for idx in sorted(out):
            ref = refs[idx]
            if ref.key not in self.cache and self.cache.put(ref.key, out[idx]):
                new_keys.append(ref.key)
        if new_keys:
            self.directory.on_cached(self, new_keys)
        return out

    # ------------------------------------------------------------------ #
    def _fetch_from_peers(self, client, pending: Dict[int, ChunkRef]):
        """Ask candidate holders in ranked waves; returns what they served."""
        metrics = self.host.fabric.metrics
        fabric = self.host.fabric
        key_to_idx = {ref.key: idx for idx, ref in pending.items()}
        candidates = yield from self.directory.locate(self, sorted(key_to_idx))
        served: Dict[int, Payload] = {}
        missing = set(key_to_idx)
        for rank in range(self.config.locate_fanout):
            by_peer: Dict[str, List[int]] = {}
            for key in sorted(missing):
                cands = candidates.get(key, ())
                if rank < len(cands):
                    by_peer.setdefault(cands[rank], []).append(key)
            if not by_peer:
                break

            def ask(peer_name: str, keys: List[int], rank: int = rank):
                peer = fabric.hosts[peer_name]
                if rpc.is_host_down(peer):
                    # known-dead peer: skip without paying the RPC timeout
                    return None
                tracer = fabric.tracer
                aspan = None
                if tracer.enabled:
                    aspan = tracer.start(
                        f"p2p.attempt:{rank}", "p2p",
                        peer=peer_name, rank=rank, nchunks=len(keys),
                    )
                try:
                    if client.deployment.retry is not None:
                        hit_keys, combined = yield from client._call_with_timeout(
                            peer, PEER_SERVICE, "get_cached", keys
                        )
                    else:
                        hit_keys, combined = yield from rpc.call(
                            self.host, peer, PEER_SERVICE, "get_cached", keys
                        )
                except (ProviderUnavailableError, ChunkNotFoundError) as exc:
                    # peer died (possibly mid-transfer) — next candidate or
                    # the provider path picks these chunks up
                    metrics.count("p2p-peer-failover")
                    if aspan is not None:
                        aspan.set_error(exc)
                        aspan.finish()
                    return None
                except BaseException as exc:
                    if aspan is not None:
                        aspan.set_error(exc)
                        aspan.finish()
                    raise
                if aspan is not None:
                    aspan.set(hits=len(hit_keys))
                    aspan.finish()
                group: Dict[int, Payload] = {}
                cursor = 0
                for key in hit_keys:
                    size = pending[key_to_idx[key]].size
                    group[key] = combined.slice(cursor, cursor + size)
                    cursor += size
                return group

            work = sorted(by_peer.items())
            groups = yield from client._parallel(
                [ask(name, keys) for name, keys in work]
            )
            got: Dict[int, Payload] = {}
            for group in groups:
                if group is not None:
                    got.update(group)
            for key in sorted(got):
                served[key_to_idx[key]] = got[key]
            if got:
                metrics.count("p2p-chunk-hit", len(got))
                metrics.count("p2p-bytes-peer", sum(p.size for p in got.values()))
                missing -= set(got)
            if not missing:
                break
        return served


class PeerNetwork:
    """All p2p state for one cloud: caches, services, the directory."""

    def __init__(
        self,
        fabric: Fabric,
        compute_hosts: Sequence[Host],
        model: ServiceModel,
        config: Optional[P2PConfig] = None,
        directory_host: Optional[Host] = None,
        topology=None,
    ):
        self.fabric = fabric
        self.config = config if config is not None else P2PConfig()
        self.model = model
        #: multi-rack topology for rack-ranked peer selection, or None
        self.topology = topology
        self.caches: Dict[str, PeerChunkCache] = {}
        self.services: Dict[str, PeerExchangeService] = {}
        self.agents: Dict[str, PeerAgent] = {}
        for host in compute_hosts:
            cache = PeerChunkCache(self.config.cache_bytes)
            svc = PeerExchangeService(host, cache, model)
            rpc.bind(host, PEER_SERVICE, svc)
            self.caches[host.name] = cache
            self.services[host.name] = svc

        if self.config.directory == "rendezvous":
            self.directory_service = None
            self.directory = RendezvousDirectory(
                [h.name for h in compute_hosts], self.config.locate_fanout,
                topology=topology,
            )
        else:
            if directory_host is None:
                raise StorageError("announce directory needs a directory_host")
            self.directory_service = PeerDirectoryService(
                directory_host, model, self.config.announce_max_holders,
                topology=topology,
            )
            rpc.bind(directory_host, DIRECTORY_SERVICE, self.directory_service)
            self.directory = AnnounceDirectory(
                directory_host, self.config.locate_fanout, topology=topology
            )

    def agent_for(self, host: Host) -> Optional[PeerAgent]:
        """The fetch-side agent of ``host`` (None if not in the peer set)."""
        agent = self.agents.get(host.name)
        if agent is None:
            cache = self.caches.get(host.name)
            if cache is None:
                return None
            agent = PeerAgent(self, host, cache)
            self.agents[host.name] = agent
        return agent

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, float]:
        """Peer-exchange effectiveness, read from the fabric's metrics."""
        c = self.fabric.metrics.counters
        local = c.get("p2p-local-hit", 0)
        peer = c.get("p2p-chunk-hit", 0)
        miss = c.get("p2p-chunk-miss", 0)
        total = local + peer + miss
        bytes_peer = c.get("p2p-bytes-peer", 0)
        bytes_provider = c.get("p2p-bytes-provider", 0)
        return {
            "chunks_local": local,
            "chunks_from_peers": peer,
            "chunks_from_providers": miss,
            "peer_hit_ratio": (local + peer) / total if total else 0.0,
            "bytes_from_peers": bytes_peer,
            "bytes_from_providers": bytes_provider,
            "peer_failovers": c.get("p2p-peer-failover", 0),
            "cache_evictions": sum(
                cache.evictions for cache in self.caches.values()
            ),
        }
