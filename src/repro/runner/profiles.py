"""Benchmark profiles: named parameter sets for the paper's sweeps.

A :class:`BenchProfile` pins everything a measurement point needs beyond the
calibration constants: pool size, the instance counts the figure sweeps,
image geometry, and the workload knobs of the §5.4/§5.5 experiments. Two
profiles ship by default:

* ``paper`` — the full §5.1 setup: 120-node pool, 2 GiB image, 256 KiB
  chunks, up to 110 concurrent instances;
* ``quick`` — a scaled-down profile for smoke-testing the harness
  (``REPRO_BENCH_PROFILE=quick``).

Profiles are resolved *by name* so a :class:`~repro.runner.spec.PointSpec`
stays a small picklable value that worker processes can reconstruct.
Ad-hoc profiles (ablations, tests) register themselves with
:func:`register_profile` before the sweep fans out.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..calibration import DEFAULT, Calibration, ImageSpec
from ..common.units import KiB, MiB

#: environment variable selecting the benchmark profile
PROFILE_ENV = "REPRO_BENCH_PROFILE"


@dataclass(frozen=True)
class BenchProfile:
    name: str
    pool_nodes: int
    instance_counts: tuple
    image_size: int
    chunk_size: int
    touched_bytes: int
    n_regions: int
    diff_bytes: int
    mc_workers: int
    mc_total_compute: float
    bonnie_working_set: int


PAPER = BenchProfile(
    name="paper",
    pool_nodes=120,
    instance_counts=(1, 20, 40, 60, 80, 110),
    image_size=DEFAULT.image.size,          # 2 GiB
    chunk_size=DEFAULT.image.chunk_size,    # 256 KiB
    touched_bytes=DEFAULT.image.boot_touched_bytes,  # ~109 MiB
    n_regions=64,
    diff_bytes=DEFAULT.snapshot.diff_bytes,  # 15 MiB
    mc_workers=100,
    mc_total_compute=1000.0,
    bonnie_working_set=800 * MiB,
)

QUICK = BenchProfile(
    name="quick",
    pool_nodes=24,
    instance_counts=(1, 8, 16, 24),
    image_size=512 * MiB,
    chunk_size=256 * KiB,
    touched_bytes=32 * MiB,
    n_regions=32,
    diff_bytes=6 * MiB,
    mc_workers=16,
    mc_total_compute=120.0,
    bonnie_working_set=128 * MiB,
)

P2P = BenchProfile(
    name="p2p",
    pool_nodes=80,
    instance_counts=(16, 32, 64),
    image_size=256 * MiB,
    chunk_size=256 * KiB,
    touched_bytes=24 * MiB,
    n_regions=32,
    diff_bytes=6 * MiB,
    mc_workers=16,
    mc_total_compute=120.0,
    bonnie_working_set=128 * MiB,
)

_REGISTRY: Dict[str, BenchProfile] = {
    PAPER.name: PAPER, QUICK.name: QUICK, P2P.name: P2P,
}


def register_profile(profile: BenchProfile) -> BenchProfile:
    """Register (or replace) a profile so specs can resolve it by name."""
    _REGISTRY[profile.name] = profile
    return profile


def known_profiles() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def resolve_profile(name: str) -> BenchProfile:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark profile {name!r}; known profiles: "
            f"{', '.join(known_profiles())}"
        ) from None


def active_profile() -> BenchProfile:
    """The profile selected by ``REPRO_BENCH_PROFILE`` (default ``paper``).

    An unrecognized value raises instead of silently falling back to the
    full paper profile (a typo like ``qiuck`` used to cost minutes of
    unintended wall time).
    """
    value = os.environ.get(PROFILE_ENV)
    if value is None or value == "":
        return PAPER
    if value not in _REGISTRY:
        raise ValueError(
            f"unrecognized {PROFILE_ENV}={value!r}; known profiles: "
            f"{', '.join(known_profiles())}"
        )
    return _REGISTRY[value]


def apply_overrides(calib: Calibration, overrides: Iterable[tuple]) -> Calibration:
    """Return ``calib`` with ``("section.field", value)`` overrides applied."""
    for path, value in overrides:
        try:
            section_name, field_name = path.split(".", 1)
            section = getattr(calib, section_name)
            section = dataclasses.replace(section, **{field_name: value})
        except (ValueError, AttributeError, TypeError):
            raise ValueError(f"bad calibration override {path!r}") from None
        calib = dataclasses.replace(calib, **{section_name: section})
    return calib


def profile_calibration(
    profile: BenchProfile, overrides: Iterable[tuple] = ()
) -> Calibration:
    """The calibration a profile's points run under (plus spec overrides)."""
    calib = Calibration(
        image=ImageSpec(
            size=profile.image_size,
            chunk_size=profile.chunk_size,
            boot_touched_bytes=profile.touched_bytes,
        )
    )
    return apply_overrides(calib, overrides)
