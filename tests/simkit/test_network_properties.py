"""Property tests for the flow network: physical bounds hold for any workload."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.units import MB
from repro.simkit.core import Environment
from repro.simkit.network import FlowNetwork

N_HOSTS = 5
CAP = 100 * MB

flow_spec = st.tuples(
    st.integers(0, N_HOSTS - 1),  # src
    st.integers(0, N_HOSTS - 1),  # dst
    st.integers(1, 50),           # size in MB
    st.integers(0, 200),          # start time in ms
)


def run_workload(flows, fairness):
    env = Environment()
    net = FlowNetwork(env, fairness=fairness, latency=0.0)
    nics = [net.add_nic(f"h{i}", CAP) for i in range(N_HOSTS)]
    finish = {}

    def starter(i, src, dst, size_mb, start_ms):
        yield env.timeout(start_ms / 1000.0)
        done = net.transfer(nics[src], nics[dst], size_mb * MB)
        yield done
        finish[i] = env.now

    for i, (src, dst, size_mb, start_ms) in enumerate(flows):
        env.process(starter(i, src, dst, size_mb, start_ms))
    env.run()
    return finish


@settings(max_examples=60, deadline=None)
@given(st.lists(flow_spec, min_size=1, max_size=12))
@pytest.mark.parametrize("fairness", ["equal-share", "maxmin"])
def test_link_capacity_lower_bounds(fairness, flows):
    """No schedule can beat the per-link aggregate capacity bound."""
    finish = run_workload(flows, fairness)
    # every flow individually: finish >= start + size/capacity
    for i, (src, dst, size_mb, start_ms) in enumerate(flows):
        if src == dst:
            continue  # loopback is free
        lower = start_ms / 1000.0 + size_mb * MB / CAP
        assert finish[i] >= lower - 1e-6, f"flow {i} beat the line rate"
    # per uplink: total egress bytes cannot drain faster than capacity
    for host in range(N_HOSTS):
        egress = [
            (i, size_mb, start_ms)
            for i, (src, dst, size_mb, start_ms) in enumerate(flows)
            if src == host and dst != src
        ]
        if not egress:
            continue
        total = sum(size_mb for _, size_mb, _ in egress) * MB
        earliest = min(start_ms for *_, start_ms in egress) / 1000.0
        last_finish = max(finish[i] for i, _, _ in egress)
        assert last_finish >= earliest + total / CAP - 1e-6


@settings(max_examples=40, deadline=None)
@given(st.lists(flow_spec, min_size=1, max_size=10))
def test_equal_share_never_faster_than_maxmin(flows):
    """The approximation is conservative: completions can only be later."""
    eq = run_workload(flows, "equal-share")
    mm = run_workload(flows, "maxmin")
    for i in eq:
        assert eq[i] >= mm[i] - 1e-6


@settings(max_examples=40, deadline=None)
@given(st.lists(flow_spec, min_size=1, max_size=10), st.integers(0, 2**16))
def test_determinism_any_workload(flows, _salt):
    assert run_workload(flows, "equal-share") == run_workload(flows, "equal-share")


@pytest.mark.parametrize("seed", [1, 2])
def test_equal_share_conservative_at_scale(seed):
    """The PR-1 oracle at paper scale (n >= 128): the equal-share
    approximation — now served by the cohort engine — must stay conservative
    against exact max-min on a deployment-shaped fan-in workload."""
    import random

    rng = random.Random(seed)
    n_hosts = 128
    env_flows = []
    for i in range(192):
        src = rng.randrange(1, n_hosts)
        # deployment shape: most traffic funnels into a few repository nodes
        dst = rng.randrange(0, 4) if rng.random() < 0.7 else rng.randrange(n_hosts)
        if dst == src:
            dst = (src + 1) % n_hosts
        env_flows.append((src, dst, rng.randrange(1, 16), rng.randrange(0, 400)))

    def run_big(fairness):
        env = Environment()
        net = FlowNetwork(env, fairness=fairness, latency=0.0)
        nics = [net.add_nic(f"h{i}", CAP) for i in range(n_hosts)]
        finish = {}

        def starter(i, src, dst, size_mb, start_ms):
            yield env.timeout(start_ms / 1000.0)
            yield net.transfer(nics[src], nics[dst], size_mb * MB)
            finish[i] = env.now

        for i, spec in enumerate(env_flows):
            env.process(starter(i, *spec))
        env.run()
        return finish

    eq = run_big("equal-share")
    mm = run_big("maxmin")
    assert eq.keys() == mm.keys()
    for i in eq:
        assert eq[i] >= mm[i] - 1e-6
