"""Steady-state service-level metrics for churn runs.

One :class:`SloTracker` per run, fed by the lifecycle processes. Everything
rides on the simulator's existing measurement primitives — the log2-bucket
:class:`~repro.simkit.trace.Histogram` for latency percentiles (p50/p95/p99
of boot latency, queue wait and snapshot commit latency) — plus a
time-integrated slot-utilization accumulator, admission accounting, and the
storage-footprint timeline that the GC-cadence ablation plots. The summary
is a plain nested dict of floats/ints (JSON-able, deterministically
ordered) so runner results and benchmark artifacts can embed it verbatim.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..simkit.trace import Histogram


def _percentiles(hist: Histogram) -> Dict[str, float]:
    return {
        "p50": hist.p50,
        "p95": hist.p95,
        "p99": hist.p99,
        "count": hist.count,
    }


def _exact(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile over raw samples.

    The log2 histogram answers in power-of-two bucket edges — fine for a
    report, too coarse to compare two policies whose p99s differ by 30%.
    The benchmark gates use these exact values; the histograms stay in the
    summary as the O(1)-memory production-style view.
    """
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(q * len(sorted_values) + 0.5) - 1))
    return sorted_values[rank]


class SloTracker:
    """Accumulates one churn run's steady-state metrics."""

    def __init__(self, total_slots: int):
        self.total_slots = total_slots
        self.boot = Histogram()
        self.queue_wait = Histogram()
        self.snapshot = Histogram()
        # admission / lifecycle accounting
        self.deploys = 0
        self.rejected = 0
        self.canceled = 0       # torn down while still queued
        self.completed = 0
        self.snapshots_taken = 0
        self.snapshots_missed = 0  # target already gone (or never admitted)
        self.lineages_retired = 0  # clone blobs unpublished at teardown
        # restore-to-version accounting (repro.lineage wired into churn)
        self.restore = Histogram()
        self.restores_completed = 0
        self.restores_missed = 0   # no surviving snapshot, or already GC'd
        self.restores_from_retired = 0
        self.restore_hops_total = 0
        # GC / storage hygiene
        self.gc_sweeps = 0
        self.bytes_reclaimed = 0
        self.footprint: List[Tuple[float, int]] = []
        # time-integrated slot utilization
        self._busy = 0
        self._last_t = 0.0
        self._busy_integral = 0.0
        # raw samples for exact means/percentiles (Histogram buckets
        # quantize to powers of two; see _exact)
        self._boot_raw: List[float] = []
        self._wait_raw: List[float] = []
        self._snap_raw: List[float] = []
        self._restore_raw: List[float] = []

    # ------------------------------------------------------------------ #
    def on_deploy(self) -> None:
        self.deploys += 1

    def on_reject(self) -> None:
        self.rejected += 1

    def on_cancel(self) -> None:
        self.canceled += 1

    def on_boot(self, queue_wait: float, boot_time: float) -> None:
        self.queue_wait.observe(queue_wait)
        self.boot.observe(boot_time)
        self._wait_raw.append(queue_wait)
        self._boot_raw.append(boot_time)

    def on_complete(self) -> None:
        self.completed += 1

    def on_snapshot(self, commit_latency: float) -> None:
        self.snapshot.observe(commit_latency)
        self._snap_raw.append(commit_latency)
        self.snapshots_taken += 1

    def on_snapshot_missed(self) -> None:
        self.snapshots_missed += 1

    def on_retire(self) -> None:
        self.lineages_retired += 1

    def on_restore(self, latency: float, hops: int, from_retired: bool) -> None:
        self.restore.observe(latency)
        self._restore_raw.append(latency)
        self.restores_completed += 1
        self.restore_hops_total += hops
        if from_retired:
            self.restores_from_retired += 1

    def on_restore_missed(self) -> None:
        self.restores_missed += 1

    def on_gc(self, report) -> None:
        self.gc_sweeps += 1
        self.bytes_reclaimed += report.bytes_reclaimed

    def on_footprint(self, t: float, stored_bytes: int) -> None:
        self.footprint.append((float(t), int(stored_bytes)))

    def on_slots(self, t: float, busy: int) -> None:
        """Slot occupancy changed at time ``t`` (integrate the old level)."""
        self._busy_integral += self._busy * (t - self._last_t)
        self._busy = busy
        self._last_t = t

    # ------------------------------------------------------------------ #
    def utilization(self, now: float) -> float:
        """Mean fraction of instance slots occupied over [0, now]."""
        if now <= 0 or self.total_slots == 0:
            return 0.0
        integral = self._busy_integral + self._busy * (now - self._last_t)
        return integral / (now * self.total_slots)

    def summary(self, now: float) -> dict:
        booted = self.boot.count
        peak = max((v for _, v in self.footprint), default=0)
        final = self.footprint[-1][1] if self.footprint else 0
        boots = sorted(self._boot_raw)
        waits = sorted(self._wait_raw)
        snaps = sorted(self._snap_raw)
        restores = sorted(self._restore_raw)
        return {
            "requests": {
                "deploys": self.deploys,
                "rejected": self.rejected,
                "canceled": self.canceled,
                "booted": booted,
                "completed": self.completed,
                "snapshots_taken": self.snapshots_taken,
                "snapshots_missed": self.snapshots_missed,
                "lineages_retired": self.lineages_retired,
                "restores_completed": self.restores_completed,
                "restores_missed": self.restores_missed,
                "restores_from_retired": self.restores_from_retired,
            },
            "boot_latency": {
                **_percentiles(self.boot),
                "mean": sum(boots) / booted if booted else 0.0,
                "p50_exact": _exact(boots, 0.50),
                "p99_exact": _exact(boots, 0.99),
            },
            "queue_wait": {
                **_percentiles(self.queue_wait),
                "mean": sum(waits) / booted if booted else 0.0,
                "p50_exact": _exact(waits, 0.50),
                "p99_exact": _exact(waits, 0.99),
            },
            "snapshot_latency": {
                **_percentiles(self.snapshot),
                "p50_exact": _exact(snaps, 0.50),
                "p99_exact": _exact(snaps, 0.99),
            },
            "restore_latency": {
                **_percentiles(self.restore),
                "p50_exact": _exact(restores, 0.50),
                "p99_exact": _exact(restores, 0.99),
                "mean_hops": (
                    self.restore_hops_total / self.restores_completed
                    if self.restores_completed else 0.0
                ),
            },
            "rejection_rate": self.rejected / self.deploys if self.deploys else 0.0,
            "utilization": self.utilization(now),
            "gc": {
                "sweeps": self.gc_sweeps,
                "bytes_reclaimed": self.bytes_reclaimed,
                "footprint_samples": len(self.footprint),
                "footprint_peak": peak,
                "footprint_final": final,
            },
            "makespan": now,
        }
