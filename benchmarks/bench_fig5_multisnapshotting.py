"""Figure 5 — multisnapshotting (paper §5.3).

N running instances, each with ~15 MB of local modifications, snapshotted
concurrently. Panels: 5(a) average time to snapshot one instance, 5(b)
completion time to snapshot all. Compared approaches: ours (CLONE+COMMIT)
and qcow2-file copy-back to PVFS (prepropagation cannot multisnapshot).
"""

import pytest

from repro.analysis import Figure, Series, ascii_chart, check_shape, render_figure

from common import active_profile, emit, figure_data, run_sweep, snapshot_specs

PROFILE = active_profile()


@pytest.mark.parametrize("approach", ["mirror", "qcow2-pvfs"])
def test_fig5_sweep(benchmark, sweep_cache, approach):
    def sweep():
        points = run_sweep(snapshot_specs(PROFILE, approach, seed=1))
        return {p.spec.n: p for p in points}

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    sweep_cache[("fig5", approach)] = result
    assert all(len(r.per_instance) == n for n, r in result.items())


def _series(sweep_cache, metric):
    out = {}
    for approach in ("qcow2-pvfs", "mirror"):
        s = Series(approach)
        for n, res in sorted(sweep_cache[("fig5", approach)].items()):
            s.add(n, metric(res))
        out[approach] = s
    return out


def test_fig5a_avg_snapshot_time(benchmark, sweep_cache):
    series = benchmark.pedantic(
        lambda: _series(sweep_cache, lambda r: r.avg_time), rounds=1, iterations=1
    )
    fig = Figure("fig5a", "Average time to snapshot one instance", "instances", "seconds")
    for s in series.values():
        fig.add_series(s)
    last_n = PROFILE.instance_counts[-1]
    checks = [
        check_shape(
            "mirror starts much lower (async write pipeline)",
            series["mirror"].y[0] < 0.5 * series["qcow2-pvfs"].y[0],
        ),
        check_shape(
            "mirror degrades with write pressure (grows with N)",
            series["mirror"].at(last_n) > 1.2 * series["mirror"].y[0],
        ),
        check_shape(
            "both grow slowly (no blow-up: max < 3x first point)",
            all(s.last() < 3 * s.y[0] for s in series.values()),
        ),
        check_shape(
            "mirror stays at or below qcow2 level",
            all(
                series["mirror"].at(n) <= series["qcow2-pvfs"].at(n) * 1.05
                for n in PROFILE.instance_counts
            ),
        ),
    ]
    emit("fig5a", render_figure(fig, fmt="{:10.3f}") + "\n\n" + ascii_chart(fig) + "\n" + "\n".join(checks), figure_data(fig, checks))
    assert all(c.startswith("[PASS]") for c in checks), "\n".join(checks)


def test_fig5b_completion_time(benchmark, sweep_cache):
    series = benchmark.pedantic(
        lambda: _series(sweep_cache, lambda r: r.completion_time), rounds=1, iterations=1
    )
    fig = Figure("fig5b", "Completion time to snapshot all instances", "instances", "seconds")
    for s in series.values():
        fig.add_series(s)
    last_n = PROFILE.instance_counts[-1]
    checks = [
        check_shape(
            "completion grows faster than the per-instance average (stragglers)",
            series["mirror"].at(last_n)
            > sweep_cacheaverage(sweep_cache, "mirror", last_n),
        ),
        check_shape(
            "same order of magnitude, sub-second scale (paper: 'perform similarly')",
            all(
                0.1
                < series["mirror"].at(n) / series["qcow2-pvfs"].at(n)
                < 4.0
                and series["mirror"].at(n) < 3.0
                for n in PROFILE.instance_counts[1:]
            ),
        ),
    ]
    emit("fig5b", render_figure(fig, fmt="{:10.3f}") + "\n\n" + ascii_chart(fig) + "\n" + "\n".join(checks), figure_data(fig, checks))
    assert all(c.startswith("[PASS]") for c in checks), "\n".join(checks)


def sweep_cacheaverage(sweep_cache, approach, n):
    return sweep_cache[("fig5", approach)][n].avg_time
