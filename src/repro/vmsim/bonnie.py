"""A Bonnie++-like file-system micro-benchmark (§5.4, Figs. 6 and 7).

Reproduces the phases the paper reports:

* **BlockW** — sequential writes of a working set in 8 KiB blocks;
* **BlockR** — sequential read-back of the written data;
* **BlockO** — block overwrite (read each block, write it back);
* **RndSeek** — random seeks each followed by a small cached read;
* **CreatF / DelF** — metadata operations (file create / delete).

Since data is written first and read back, a lazy-mirroring backend never
goes remote (§5.4: "no remote reads are involved ... experimentation with a
single VM instance is enough").

Adjacent blocks are issued in batches for simulation speed; the per-block
operation overhead is charged explicitly so batching is timing-neutral
(both the per-op cost and the bandwidth cost are linear in block count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..common.payload import Payload
from ..common.units import KiB, MiB


@dataclass
class BonnieResults:
    """Figures 6 and 7 in one record (KB/s and ops/s)."""

    block_write_kbps: float
    block_read_kbps: float
    block_overwrite_kbps: float
    rnd_seek_ops: float
    create_ops: float
    delete_ops: float


class BonnieBenchmark:
    """Drive a backend through the Bonnie++ phases."""

    def __init__(
        self,
        backend,
        data_op_overhead: float,
        meta_op_overhead: float,
        working_set: int = 800 * MiB,
        block_size: int = 8 * KiB,
        base_offset: int = 0,
        n_seeks: int = 4000,
        n_files: int = 16384,
        batch_bytes: int = 4 * MiB,
    ):
        self.backend = backend
        self.per_op = data_op_overhead
        self.meta_op = meta_op_overhead
        self.working_set = working_set
        self.block = block_size
        self.base = base_offset
        self.n_seeks = n_seeks
        self.n_files = n_files
        self.batch = batch_bytes
        self.env = backend.host.env

    # ------------------------------------------------------------------ #
    def _sequential(self, do_read: bool, do_write: bool) -> Generator:
        """One sequential pass over the working set, batched."""
        cursor = self.base
        end = self.base + self.working_set
        while cursor < end:
            size = min(self.batch, end - cursor)
            blocks = -(-size // self.block)
            # per-block syscall cost beyond the single batched call below
            extra_ops = blocks - 1 + (blocks if do_read and do_write else 0)
            if extra_ops > 0:
                yield self.env.timeout(extra_ops * self.per_op)
            if do_read:
                yield from self.backend.read(cursor, size)
            if do_write:
                yield from self.backend.write(cursor, Payload.opaque("bonnie", size))
            cursor += size

    def _timed(self, gen, phase: str) -> Generator:
        t0 = self.env.now
        yield from gen
        elapsed = self.env.now - t0
        # per-phase latency histogram (p50/p95/p99 across repeated runs)
        self.backend.host.fabric.metrics.observe(f"bonnie-{phase}", elapsed)
        return elapsed

    # ------------------------------------------------------------------ #
    def run(self) -> Generator:
        """Execute all phases; returns :class:`BonnieResults`."""
        ws_kb = self.working_set / 1024

        t_write = yield from self._timed(self._sequential(False, True), "block-write")
        t_read = yield from self._timed(self._sequential(True, False), "block-read")
        t_over = yield from self._timed(self._sequential(True, True), "block-overwrite")

        # Random seeks: seek syscall (metadata class) + small cached read.
        t0 = self.env.now
        reads = min(self.n_seeks, 64)  # sampled reads; rest charged as ops
        yield self.env.timeout((2 * self.n_seeks - reads) * self.meta_op)
        for i in range(reads):
            off = self.base + (i * 7919 * self.block) % self.working_set
            yield from self.backend.read(off, self.block)
        t_seek = self.env.now - t0

        # File create/delete: metadata-only operations.
        t0 = self.env.now
        yield self.env.timeout(self.n_files * 2 * self.meta_op)
        t_create = self.env.now - t0
        t0 = self.env.now
        yield self.env.timeout(self.n_files * 3 * self.meta_op)
        t_delete = self.env.now - t0

        return BonnieResults(
            block_write_kbps=ws_kb / t_write,
            block_read_kbps=ws_kb / t_read,
            block_overwrite_kbps=ws_kb / t_over,
            rnd_seek_ops=self.n_seeks / t_seek,
            create_ops=self.n_files / t_create,
            delete_ops=self.n_files / t_delete,
        )
