"""Depth-bounded chain compaction: keeping deep snapshot chains cheap to open.

Every COMMIT deepens a blob's snapshot chain, and a restore scan pays one
version-manager round-trip per ancestry hop (the qcow2 backing-chain
analogue — see :mod:`~repro.lineage.restore`). Left alone, restore latency
grows linearly with chain depth. :func:`compact_chain` bounds it with two
policies:

``flatten``
    Metadata-only. Walks the chain and writes a **skip pointer** at every
    ``depth_bound``-th position (counted from the genesis) aiming straight
    at the genesis. Any subsequent compacted walk reaches an anchor within
    ``depth_bound - 1`` raw hops and then jumps home: the scan is bounded
    by ``depth_bound + 1`` entries regardless of chain length. Nothing is
    deleted; every snapshot stays individually restorable.

``merge``
    Flatten **plus** delta-merge: interior snapshots of the target blob —
    published, not the head, not the genesis, not an anchor — are
    unpublished, surrendering their exclusive chunks to the next GC sweep.
    Anchors at ``depth_bound`` spacing (and the head and genesis) stay
    published, so restore granularity degrades gracefully instead of
    vanishing. Interior versions pinned by an in-flight restore are *not*
    lost: the registry defers their deletion until the last pin drops
    (:meth:`~repro.blobseer.vmanager.BlobRegistry.pin_version`).

The one-time compaction cost scales with chain length (one ``lineage_entry``
lookup per examined record, one serialized ``set_skip`` publish per anchor);
what it buys is an O(``depth_bound``) restore scan forever after.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from ..blobseer.gc import collect_garbage
from ..common.errors import LineageError
from ..simkit import rpc
from .tree import LineageForest

if TYPE_CHECKING:  # pragma: no cover
    from ..blobseer.service import BlobSeerDeployment
    from ..simkit.host import Host

#: compaction policies compact_chain accepts
COMPACTION_POLICIES: Tuple[str, ...] = ("flatten", "merge")


@dataclass
class CompactReport:
    """Outcome of one chain compaction."""

    blob_id: int
    head_version: int
    policy: str
    depth_bound: int
    #: raw-parent-edge depth of the head before/after (never changes);
    #: the compacted walk is what shrinks
    depth_before: int
    #: compacted (skip-following) depth of the head after the pass
    depth_after: int
    #: lineage records examined (one lookup RPC each)
    entries_examined: int
    skips_written: int
    #: interior versions unpublished by the ``merge`` policy
    versions_merged: int
    #: bytes a post-merge GC sweep reclaimed (0 unless ``gc=True``)
    bytes_reclaimed: int
    #: simulated seconds the compaction occupied
    duration: float = 0.0


def compact_chain(
    dep: "BlobSeerDeployment",
    host: "Host",
    blob_id: int,
    version: Optional[int] = None,
    *,
    policy: str = "flatten",
    depth_bound: int = 4,
    gc: bool = False,
):
    """Process: compact the ancestry chain of ``(blob, version)``.

    ``version=None`` targets the blob's latest published snapshot. The head
    is pinned for the duration so churn retention cannot retire it mid-pass.
    With ``gc=True`` a :func:`~repro.blobseer.gc.collect_garbage` sweep runs
    after a ``merge`` and its reclaimed bytes are reported.
    """
    if policy not in COMPACTION_POLICIES:
        raise LineageError(
            f"unknown compaction policy {policy!r}; expected one of "
            f"{COMPACTION_POLICIES}"
        )
    if depth_bound < 1:
        raise LineageError(f"depth_bound must be >= 1, got {depth_bound}")
    if version is None:
        version = dep.registry.lookup(blob_id).version
    env = host.env
    tracer = host.fabric.tracer
    span = None
    if tracer.enabled:
        span = tracer.start(
            "lineage.compact", "lineage",
            blob=blob_id, version=version, policy=policy,
            depth_bound=depth_bound, host=host.name,
        )
    t0 = env.now
    pinned = False
    try:
        yield from rpc.call(
            host, dep.vmanager_host, "blob-vmgr", "pin_version", blob_id, version
        )
        pinned = True

        # walk the raw chain, head -> genesis, one lookup per record
        entries = []
        key = (blob_id, version)
        seen = set()
        while key is not None:
            if key in seen:
                raise LineageError(
                    f"lineage cycle through blob {key[0]} v{key[1]}"
                )
            seen.add(key)
            entry = yield from rpc.call(
                host, dep.vmanager_host, "blob-vmgr", "lineage_entry",
                key[0], key[1],
            )
            entries.append(entry)
            key = entry.parent
        depth_before = len(entries) - 1
        genesis = entries[-1].key

        # anchor positions counted from the genesis so the spacing is
        # stable as the chain keeps growing at the head
        anchors = set()
        skips_written = 0
        for i, entry in enumerate(entries):
            pos = depth_before - i  # 0 at genesis
            if pos > 0 and pos % depth_bound == 0:
                anchors.add(entry.key)
                if entry.skip != genesis:
                    yield from rpc.call(
                        host, dep.vmanager_host, "blob-vmgr", "set_skip",
                        entry.blob_id, entry.version, genesis,
                    )
                    skips_written += 1

        versions_merged = 0
        if policy == "merge":
            for entry in entries[1:-1]:  # never the head, never the genesis
                if entry.blob_id != blob_id:
                    continue  # a clone source's history is not ours to merge
                if entry.key in anchors or entry.retired:
                    continue
                yield from rpc.call(
                    host, dep.vmanager_host, "blob-vmgr", "delete_version",
                    entry.blob_id, entry.version,
                )
                versions_merged += 1

        bytes_reclaimed = 0
        if gc and versions_merged:
            bytes_reclaimed = collect_garbage(dep).bytes_reclaimed

        forest = LineageForest.from_registry(dep.registry)
        depth_after = forest.depth(blob_id, version, follow_skips=True)
        report = CompactReport(
            blob_id=blob_id,
            head_version=version,
            policy=policy,
            depth_bound=depth_bound,
            depth_before=depth_before,
            depth_after=depth_after,
            entries_examined=len(entries),
            skips_written=skips_written,
            versions_merged=versions_merged,
            bytes_reclaimed=bytes_reclaimed,
            duration=env.now - t0,
        )
        host.fabric.metrics.count("lineage-compact")
        if span is not None:
            span.set(
                depth_before=depth_before, depth_after=depth_after,
                skips=skips_written, merged=versions_merged,
            )
        return report
    except BaseException as exc:
        if span is not None:
            span.set_error(exc)
        raise
    finally:
        if pinned:
            dep.registry.unpin_version(blob_id, version)
        if span is not None:
            span.finish()
