"""Cluster construction and multideployment/multisnapshotting orchestration."""

from .cluster import Cloud, build_cloud
from .deployment import (
    APPROACHES,
    DeploymentResult,
    LOCAL_IMAGE_PATH,
    NFS_IMAGE_PATH,
    PVFS_IMAGE_PATH,
    deploy,
    seed_image,
)
from .middleware import CloudMiddleware
from .snapshotting import SnapshotCampaignResult, snapshot_all

__all__ = [
    "APPROACHES",
    "Cloud",
    "CloudMiddleware",
    "DeploymentResult",
    "LOCAL_IMAGE_PATH",
    "NFS_IMAGE_PATH",
    "PVFS_IMAGE_PATH",
    "SnapshotCampaignResult",
    "build_cloud",
    "deploy",
    "seed_image",
    "snapshot_all",
]
