"""The prepropagation deployment scheme (baseline #1, §5.2).

Phase 1: broadcast the full raw image from the NFS server to the local disk
of every compute node that will run a VM (taktuk tree). Phase 2 (hypervisor
launch on the now-local image) is orchestrated by
:mod:`repro.cloud.deployment`; this module owns phase 1 only.
"""

from __future__ import annotations

from typing import Generator, Sequence

from ..simkit.host import Fabric, Host
from .broadcast import BroadcastReport, broadcast
from .nfs import NfsServer


def prepropagate(
    fabric: Fabric,
    nfs: NfsServer,
    image_path: str,
    targets: Sequence[Host],
    dest_path: str = "/local/image.raw",
    fanout: int = 2,
    block_size: int | None = None,
) -> Generator:
    """Broadcast the image stored on the NFS server to all targets.

    Returns the :class:`~repro.baselines.broadcast.BroadcastReport`; after it
    completes every target holds the raw image at ``dest_path``.
    """
    size = nfs.stat(image_path)
    payload = nfs._files[image_path].read(0, size)
    report = yield from broadcast(
        fabric,
        nfs.host,
        targets,
        payload,
        dest_path,
        fanout=fanout,
        block_size=block_size,
    )
    return report
