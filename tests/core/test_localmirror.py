"""Tests for the local mirror file and its persistence registry."""

import pytest

from repro.calibration import FuseModel
from repro.common.errors import MirrorStateError
from repro.common.payload import Payload
from repro.core.localmirror import LocalMirrorFile, hypervisor_policy, mmap_policy
from repro.simkit.host import Fabric


def make(path="/m", size=4096):
    fab = Fabric(seed=1)
    host = fab.add_host("h")
    mirror = LocalMirrorFile(host, path, size, FuseModel())
    return fab, host, mirror


def run(fab, gen):
    return fab.run(fab.env.process(gen))


class TestBasicIo:
    def test_write_read_roundtrip(self):
        fab, host, m = make()

        def scenario():
            yield from m.pwrite(10, Payload.from_bytes(b"abc"))
            p = yield from m.pread(9, 14)  # half-open [9, 14)
            return p

        assert run(fab, scenario()).to_bytes() == b"\x00abc\x00"

    def test_fresh_mirror_reads_zero(self):
        fab, host, m = make()

        def scenario():
            p = yield from m.pread(0, 8)  # [0, 8)
            return p

        assert run(fab, scenario()).to_bytes() == b"\x00" * 8

    def test_apply_remote_same_as_write(self):
        fab, host, m = make()

        def scenario():
            yield from m.apply_remote(0, Payload.from_bytes(b"remote"))
            p = yield from m.pread(0, 6)
            return p

        assert run(fab, scenario()).to_bytes() == b"remote"


class TestPersistence:
    def test_state_roundtrip(self):
        fab, host, m = make()

        def scenario():
            yield from m.pwrite(0, Payload.from_bytes(b"x"))
            yield from m.persist_state({"hello": 1})

        run(fab, scenario())
        m2 = LocalMirrorFile(host, "/m", 4096, FuseModel())
        assert m2.load_state() == {"hello": 1}
        # content survived too

        def reread():
            p = yield from m2.pread(0, 1)
            return p

        assert run(fab, reread()).to_bytes() == b"x"

    def test_io_after_close_rejected(self):
        fab, host, m = make()

        def scenario():
            yield from m.persist_state({})
            with pytest.raises(MirrorStateError):
                yield from m.pread(0, 1)
            return True

        assert run(fab, scenario())

    def test_reopen_size_mismatch_rejected(self):
        fab, host, m = make()
        with pytest.raises(MirrorStateError):
            LocalMirrorFile(host, "/m", 8192, FuseModel())

    def test_unlink_discards_everything(self):
        fab, host, m = make()

        def scenario():
            yield from m.persist_state({"x": 1})

        run(fab, scenario())
        m2 = LocalMirrorFile(host, "/m", 4096, FuseModel())
        m2.unlink()
        assert not host.exists("/m")
        m3 = LocalMirrorFile(host, "/m", 4096, FuseModel())
        assert m3.load_state() is None

    def test_states_are_per_path(self):
        fab, host, _ = make()
        a = LocalMirrorFile(host, "/a", 1024, FuseModel())
        b = LocalMirrorFile(host, "/b", 1024, FuseModel())

        def scenario():
            yield from a.persist_state({"who": "a"})
            yield from b.persist_state({"who": "b"})

        run(fab, scenario())
        assert LocalMirrorFile(host, "/a", 1024, FuseModel()).load_state() == {"who": "a"}
        assert LocalMirrorFile(host, "/b", 1024, FuseModel()).load_state() == {"who": "b"}


class TestPolicies:
    def test_mmap_policy_faster_writes_than_hypervisor(self):
        fuse = FuseModel()
        mm = mmap_policy(fuse)
        hv = hypervisor_policy(fuse)
        assert mm.write_absorb_bandwidth > hv.write_absorb_bandwidth
        assert mm.per_op_overhead > hv.per_op_overhead  # FUSE costs more per op
        assert mm.cached_read_bandwidth == hv.cached_read_bandwidth
        assert mm.data_op_overhead < mm.per_op_overhead  # readahead amortizes
