"""Tests for the deduplication and garbage-collection extensions (§7)."""

import pytest

from repro.blobseer import BlobSeerDeployment, collect_garbage
from repro.common.errors import UnknownBlobError, UnknownVersionError
from repro.common.payload import Payload
from repro.common.units import KiB
from repro.simkit.host import Fabric

CHUNK = 4 * KiB
IMG = 8 * CHUNK


def pattern(n, seed=1):
    return bytes((i * 131 + seed * 17) % 256 for i in range(n))


def make(dedup=False, seed=7):
    fab = Fabric(seed=seed)
    hosts = [fab.add_host(f"node{i}") for i in range(4)]
    manager = fab.add_host("manager")
    dep = BlobSeerDeployment(fab, hosts, hosts, manager, dedup=dedup)
    rec = dep.seed_blob(Payload.from_bytes(pattern(IMG)), CHUNK)
    return fab, dep, hosts, rec


def run(fab, gen):
    return fab.run(fab.env.process(gen))


class TestDeduplication:
    def test_identical_chunk_stored_once(self):
        fab, dep, hosts, rec = make(dedup=True)
        client = dep.client(hosts[0])
        same = Payload.from_bytes(pattern(CHUNK, seed=9))

        def scenario():
            r1 = yield from client.write_chunks(rec.blob_id, {1: same})
            r2 = yield from client.write_chunks(rec.blob_id, {3: same})
            return r1, r2

        before = dep.stored_bytes()
        run(fab, scenario())
        # two writes of identical content: one new chunk on disk
        assert dep.stored_bytes() == before + CHUNK
        assert fab.metrics.counters["dedup-reused"] == 1

    def test_dedup_across_blobs(self):
        fab, dep, hosts, rec = make(dedup=True)
        c0 = dep.client(hosts[0])
        c1 = dep.client(hosts[1])
        same = Payload.from_bytes(pattern(CHUNK, seed=5))

        def scenario():
            clone_a = yield from c0.clone(rec.blob_id, rec.version)
            clone_b = yield from c1.clone(rec.blob_id, rec.version)
            yield from c0.write_chunks(clone_a.blob_id, {0: same})
            yield from c1.write_chunks(clone_b.blob_id, {0: same})
            a = yield from c1.read(clone_a.blob_id, None, 0, CHUNK)
            b = yield from c0.read(clone_b.blob_id, None, 0, CHUNK)
            return a, b

        before = dep.stored_bytes()
        a, b = run(fab, scenario())
        assert dep.stored_bytes() == before + CHUNK  # shared across blobs
        assert a.to_bytes() == b.to_bytes() == pattern(CHUNK, seed=5)

    def test_seeded_content_deduplicates_rewrites(self):
        """Rewriting a chunk with the base image's own content stores nothing."""
        fab, dep, hosts, rec = make(dedup=True)
        client = dep.client(hosts[0])
        original = Payload.from_bytes(pattern(IMG)).slice(2 * CHUNK, 3 * CHUNK)

        def scenario():
            r = yield from client.write_chunks(rec.blob_id, {2: original})
            return r

        before = dep.stored_bytes()
        run(fab, scenario())
        assert dep.stored_bytes() == before

    def test_dedup_disabled_duplicates(self):
        fab, dep, hosts, rec = make(dedup=False)
        client = dep.client(hosts[0])
        same = Payload.from_bytes(pattern(CHUNK, seed=9))

        def scenario():
            yield from client.write_chunks(rec.blob_id, {1: same})
            yield from client.write_chunks(rec.blob_id, {3: same})

        before = dep.stored_bytes()
        run(fab, scenario())
        assert dep.stored_bytes() == before + 2 * CHUNK

    def test_dedup_has_cpu_cost(self):
        """Fingerprinting is not free: dedup writes take a bit longer."""

        def commit_time(dedup):
            fab, dep, hosts, rec = make(dedup=dedup)
            client = dep.client(hosts[0])

            def scenario():
                t0 = fab.env.now
                yield from client.write_chunks(
                    rec.blob_id, {0: Payload.from_bytes(pattern(CHUNK, 3))}
                )
                return fab.env.now - t0

            return run(fab, scenario())

        assert commit_time(True) > commit_time(False)


class TestVersionDeletion:
    def test_delete_version_unpublishes(self):
        fab, dep, hosts, rec = make()
        client = dep.client(hosts[0])

        def scenario():
            r2 = yield from client.write_chunks(
                rec.blob_id, {0: Payload.from_bytes(pattern(CHUNK, 2))}
            )
            return r2

        r2 = run(fab, scenario())
        dep.registry.delete_version(rec.blob_id, r2.version)
        with pytest.raises(UnknownVersionError):
            dep.registry.lookup(rec.blob_id, r2.version)
        # latest falls back to the previous version
        assert dep.registry.lookup(rec.blob_id).version == rec.version

    def test_cannot_delete_only_snapshot(self):
        fab, dep, hosts, rec = make()
        dep.registry.delete_version(rec.blob_id, 0)
        with pytest.raises(UnknownVersionError):
            dep.registry.delete_version(rec.blob_id, rec.version)

    def test_delete_blob(self):
        fab, dep, hosts, rec = make()
        dep.registry.delete_blob(rec.blob_id)
        with pytest.raises(UnknownBlobError):
            dep.registry.lookup(rec.blob_id)

    def test_version_numbers_never_reused(self):
        fab, dep, hosts, rec = make()
        client = dep.client(hosts[0])

        def write_one(seed):
            def scenario():
                r = yield from client.write_chunks(
                    rec.blob_id, {0: Payload.from_bytes(pattern(CHUNK, seed))}
                )
                return r

            return run(fab, scenario())

        r2 = write_one(2)
        dep.registry.delete_version(rec.blob_id, r2.version)
        r3 = write_one(3)
        assert r3.version > r2.version


class TestGarbageCollection:
    def test_gc_noop_when_everything_live(self):
        fab, dep, hosts, rec = make()
        report = collect_garbage(dep)
        assert report.chunks_dropped == 0
        assert report.nodes_dropped == 0
        assert report.bytes_reclaimed == 0

    def test_gc_reclaims_deleted_clone_diffs_only(self):
        fab, dep, hosts, rec = make()
        client = dep.client(hosts[0])

        def scenario():
            clone = yield from client.clone(rec.blob_id, rec.version)
            yield from client.write_chunks(
                clone.blob_id, {0: Payload.from_bytes(pattern(CHUNK, 7))}
            )
            return clone

        clone = run(fab, scenario())
        assert dep.stored_bytes() == IMG + CHUNK
        dep.registry.delete_blob(clone.blob_id)
        report = collect_garbage(dep)
        assert report.bytes_reclaimed == CHUNK  # the diff, not the shared base
        assert dep.stored_bytes() == IMG
        # base image fully intact
        reader = dep.client(hosts[2])

        def verify():
            p = yield from reader.read(rec.blob_id, rec.version, 0, IMG)
            return p

        assert run(fab, verify()).to_bytes() == pattern(IMG)

    def test_gc_keeps_chunks_shared_by_surviving_snapshots(self):
        fab, dep, hosts, rec = make()
        client = dep.client(hosts[0])

        def scenario():
            r2 = yield from client.write_chunks(
                rec.blob_id, {0: Payload.from_bytes(pattern(CHUNK, 4))}
            )
            r3 = yield from client.write_chunks(
                rec.blob_id, {1: Payload.from_bytes(pattern(CHUNK, 5))}
            )
            return r2, r3

        r2, r3 = run(fab, scenario())
        # delete the middle version; v3 still shares v2's chunk 0
        dep.registry.delete_version(rec.blob_id, r2.version)
        report = collect_garbage(dep)
        assert report.bytes_reclaimed == 0  # everything still reachable via v3
        reader = dep.client(hosts[3])

        def verify():
            p = yield from reader.read(rec.blob_id, r3.version, 0, 2 * CHUNK)
            return p

        got = run(fab, verify()).to_bytes()
        assert got[:CHUNK] == pattern(CHUNK, 4)
        assert got[CHUNK:] == pattern(CHUNK, 5)

    def test_gc_sweeps_metadata_nodes(self):
        fab, dep, hosts, rec = make()
        client = dep.client(hosts[0])

        def scenario():
            clone = yield from client.clone(rec.blob_id, rec.version)
            yield from client.write_chunks(
                clone.blob_id, {0: Payload.from_bytes(pattern(CHUNK, 8))}
            )
            return clone

        clone = run(fab, scenario())
        nodes_before = sum(len(s.nodes) for s in dep.meta_services.values())
        dep.registry.delete_blob(clone.blob_id)
        report = collect_garbage(dep)
        assert report.nodes_dropped > 0
        nodes_after = sum(len(s.nodes) for s in dep.meta_services.values())
        assert nodes_after == nodes_before - report.nodes_dropped

    def test_gc_is_idempotent(self):
        fab, dep, hosts, rec = make()
        client = dep.client(hosts[0])

        def scenario():
            clone = yield from client.clone(rec.blob_id, rec.version)
            yield from client.write_chunks(
                clone.blob_id, {0: Payload.from_bytes(pattern(CHUNK, 6))}
            )
            return clone

        clone = run(fab, scenario())
        dep.registry.delete_blob(clone.blob_id)
        collect_garbage(dep)
        second = collect_garbage(dep)
        assert second.bytes_reclaimed == 0
        assert second.nodes_dropped == 0

    def test_gc_prunes_stale_dedup_entries(self):
        fab, dep, hosts, rec = make(dedup=True)
        client = dep.client(hosts[0])
        unique = Payload.from_bytes(pattern(CHUNK, 11))

        def scenario():
            clone = yield from client.clone(rec.blob_id, rec.version)
            yield from client.write_chunks(clone.blob_id, {0: unique})
            return clone

        clone = run(fab, scenario())
        assert unique in dep.dedup_index
        dep.registry.delete_blob(clone.blob_id)
        collect_garbage(dep)
        assert unique not in dep.dedup_index
