"""The R/W translator (paper §4.2, Fig. 2).

Translates every original hypervisor read/write into local reads/writes plus
the remote reads mandated by the two mirroring strategies of §3.3, operating
on three collaborators:

* the :class:`~repro.core.modmanager.ModificationManager` (what is local),
* the :class:`~repro.core.localmirror.LocalMirrorFile` (the local bytes),
* a :class:`~repro.blobseer.client.BlobClient` (the remote repository),

plus a fixed *source snapshot* ``(blob_id, version)`` that missing content is
fetched from. Writes never go remote; COMMIT support completes dirty chunks
(gap-fills them to full chunks) and hands back whole-chunk payloads.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Sequence, Tuple

from ..blobseer.client import BlobClient
from ..common.errors import MirrorStateError
from ..common.payload import Payload
from .localmirror import LocalMirrorFile
from .modmanager import ModificationManager


class RWTranslator:
    """Routes reads/writes between the local mirror and the repository."""

    def __init__(
        self,
        modmgr: ModificationManager,
        local: LocalMirrorFile,
        client: BlobClient,
        source_blob: int,
        source_version: int,
        full_chunk_prefetch: bool = True,
    ):
        self.modmgr = modmgr
        self.local = local
        self.client = client
        self.source_blob = source_blob
        self.source_version = source_version
        #: strategy 1 switch: False = fetch only the exact missing byte
        #: ranges of each read (the ablation the paper argues against)
        self.full_chunk_prefetch = full_chunk_prefetch
        self._metrics = client.host.fabric.metrics

    # ------------------------------------------------------------------ #
    def _fetch_chunk_set(self, indices: Sequence[int]) -> Generator:
        """Fetch full chunks by index from the source snapshot.

        Sparse index sets (random-access gap fills) are split into contiguous
        runs so the metadata traversal never walks — or transfers — tree
        nodes covering chunks the caller does not touch.
        """
        if not indices:
            return {}
        snap = yield from self.client._lookup_snapshot(self.source_blob, self.source_version)
        ordered = sorted(set(indices))
        refs: Dict[int, "ChunkRef"] = {}
        run_lo = prev = ordered[0]
        for idx in ordered[1:] + [None]:
            if idx is not None and idx == prev + 1:
                prev = idx
                continue
            got = yield from self.client._refs_for_range(snap.root, run_lo, prev + 1)
            refs.update(got)
            if idx is not None:
                run_lo = prev = idx
        wanted = {idx: refs[idx] for idx in indices if idx in refs}
        chunks = yield from self.client.fetch_refs(wanted)
        # Holes in the source snapshot read as zeros.
        for idx in indices:
            if idx not in chunks:
                lo, hi = self.modmgr.chunk_bounds(idx)
                chunks[idx] = Payload.zeros(hi - lo)
        return chunks

    def _apply_gaps(
        self, chunks: Dict[int, Payload], gaps: Dict[int, List[Tuple[int, int]]]
    ) -> Generator:
        """Write fetched content into the local mirror, skipping mirrored parts."""
        for idx, intervals in gaps.items():
            c_lo, _ = self.modmgr.chunk_bounds(idx)
            for g_lo, g_hi in intervals:
                piece = chunks[idx].slice(g_lo - c_lo, g_hi - c_lo)
                yield from self.local.apply_remote(g_lo, piece)
                self.modmgr.record_fill(idx, g_lo, g_hi)

    # ------------------------------------------------------------------ #
    def _fetch_ranges(self, gaps: Dict[int, List[Tuple[int, int]]]) -> Generator:
        """Fetch exact byte ranges (no-prefetch ablation) and mirror them."""
        snap = yield from self.client._lookup_snapshot(self.source_blob, self.source_version)
        indices = sorted(gaps)
        refs = yield from self.client._refs_for_range(snap.root, indices[0], indices[-1] + 1)
        by_provider: Dict[str, List[Tuple[int, Tuple[int, int]]]] = {}
        for idx in indices:
            for gap in gaps[idx]:
                if idx in refs:
                    by_provider.setdefault(refs[idx].providers[0], []).append((idx, gap))

        from ..simkit import rpc

        retry = self.client.deployment.retry

        def fetch_group(provider_name, items):
            provider = self.client.deployment.fabric.hosts[provider_name]
            requests = []
            for idx, (g_lo, g_hi) in items:
                c_lo, _ = self.modmgr.chunk_bounds(idx)
                requests.append((refs[idx].key, g_lo - c_lo, g_hi - c_lo))
            if retry is not None:
                combined = yield from self.client._call_with_timeout(
                    provider, "blob-data", "get_chunks", requests
                )
            else:
                combined = yield from rpc.call(
                    self.client.host, provider, "blob-data", "get_chunks", requests
                )
            cursor = 0
            out = []
            for idx, (g_lo, g_hi) in items:
                out.append((g_lo, combined.slice(cursor, cursor + g_hi - g_lo), idx))
                cursor += g_hi - g_lo
            return out

        if retry is None:
            groups = yield from self.client._parallel(
                [fetch_group(p, items) for p, items in sorted(by_provider.items())]
            )
        else:
            # Replica failover for exact-range fetches: attempt ``a`` asks
            # each still-missing range's replica of rank ``a mod k``.
            from ..common.errors import ChunkNotFoundError, ProviderUnavailableError

            env = self.client.host.env
            pending = [(idx, gap) for p, items in sorted(by_provider.items()) for idx, gap in items]
            groups = []
            for attempt in range(retry.attempts):
                by_replica: Dict[str, List[Tuple[int, Tuple[int, int]]]] = {}
                for idx, gap in pending:
                    provs = refs[idx].providers
                    by_replica.setdefault(provs[attempt % len(provs)], []).append((idx, gap))

                def guarded(provider_name, items):
                    try:
                        out = yield from fetch_group(provider_name, items)
                    except (ProviderUnavailableError, ChunkNotFoundError):
                        return None
                    return out

                work = sorted(by_replica.items())
                fetched = yield from self.client._parallel(
                    [guarded(p, items) for p, items in work]
                )
                pending = []
                for group, (_p, items) in zip(fetched, work):
                    if group is None:
                        pending.extend(items)
                    else:
                        groups.append(group)
                if not pending:
                    break
                self._metrics.count("fetch-retry")
                yield env.timeout(retry.delay_for(attempt))
            else:
                raise ProviderUnavailableError(
                    f"ranges of chunks {sorted({i for i, _ in pending})[:5]} "
                    f"unreachable after {retry.attempts} attempts"
                )
        for group in groups:
            for g_lo, piece, idx in group:
                yield from self.local.apply_remote(g_lo, piece)
                self.modmgr.record_fill(idx, g_lo, g_lo + piece.size)
        # ranges inside source holes mirror as zeros
        for idx in indices:
            if idx not in refs:
                for g_lo, g_hi in gaps[idx]:
                    yield from self.local.apply_remote(g_lo, Payload.zeros(g_hi - g_lo))
                    self.modmgr.record_fill(idx, g_lo, g_hi)

    def read(self, offset: int, nbytes: int) -> Generator:
        """Serve a hypervisor read; fetches missing content first (strategy 1)."""
        lo, hi = offset, offset + nbytes
        if self.full_chunk_prefetch:
            plan = self.modmgr.plan_read(lo, hi)
            counters = self._metrics.counters
            if not plan.is_local:
                counters["mirror-remote-read"] += 1
                counters["mirror-chunks-fetched"] += len(plan.fetch_chunks)
                tracer = self.client.host.fabric.tracer
                if tracer.enabled:
                    span = tracer.start(
                        "mirror-fetch", "vfs", chunks=len(plan.fetch_chunks)
                    )
                    try:
                        chunks = yield from self._fetch_chunk_set(plan.fetch_chunks)
                        yield from self._apply_gaps(chunks, plan.fill_gaps)
                    except BaseException as exc:
                        span.set_error(exc)
                        raise
                    finally:
                        span.finish()
                else:
                    chunks = yield from self._fetch_chunk_set(plan.fetch_chunks)
                    yield from self._apply_gaps(chunks, plan.fill_gaps)
                for idx in plan.fetch_chunks:
                    self.modmgr.record_fetch(idx)
            else:
                counters["mirror-local-read"] += 1
        else:
            gaps = self.modmgr.plan_read_exact(lo, hi)
            if gaps:
                self._metrics.count("mirror-remote-read")
                self._metrics.count(
                    "mirror-ranges-fetched", sum(len(g) for g in gaps.values())
                )
                tracer = self.client.host.fabric.tracer
                if tracer.enabled:
                    span = tracer.start(
                        "mirror-fetch-exact", "vfs", ranges=sum(len(g) for g in gaps.values())
                    )
                    try:
                        yield from self._fetch_ranges(gaps)
                    except BaseException as exc:
                        span.set_error(exc)
                        raise
                    finally:
                        span.finish()
                else:
                    yield from self._fetch_ranges(gaps)
            else:
                self._metrics.count("mirror-local-read")
        data = yield from self.local.pread(lo, hi)
        return data

    def write(self, offset: int, payload: Payload) -> Generator:
        """Serve a hypervisor write; gap-fills first (strategy 2), then local."""
        lo, hi = offset, offset + payload.size
        plan = self.modmgr.plan_write(lo, hi)
        if plan.gap_fills:
            self._metrics.count("mirror-gap-fill", len(plan.gap_fills))
            indices = [idx for idx, _ in plan.gap_fills]
            gaps = {idx: [gap] for idx, gap in plan.gap_fills}
            tracer = self.client.host.fabric.tracer
            if tracer.enabled:
                span = tracer.start("gap-fill", "vfs", chunks=len(indices))
                try:
                    chunks = yield from self._fetch_chunk_set(indices)
                    yield from self._apply_gaps(chunks, gaps)
                except BaseException as exc:
                    span.set_error(exc)
                    raise
                finally:
                    span.finish()
            else:
                chunks = yield from self._fetch_chunk_set(indices)
                yield from self._apply_gaps(chunks, gaps)
        yield from self.local.pwrite(lo, payload)
        self.modmgr.record_write(lo, hi)
        return None

    # ------------------------------------------------------------------ #
    def collect_dirty_chunks(self) -> Generator:
        """COMMIT prep: complete every dirty chunk and return whole payloads.

        A dirty chunk whose mirror is partial is gap-filled from the source
        snapshot first (the published chunk must be complete); the returned
        payloads are read back from the local mirror.
        """
        dirty = self.modmgr.dirty_chunks()
        incomplete: Dict[int, List[Tuple[int, int]]] = {}
        for idx in dirty:
            gaps = self.modmgr.plan_complete_chunk(idx)
            if gaps:
                incomplete[idx] = gaps
        if incomplete:
            self._metrics.count("commit-gap-fill", len(incomplete))
            tracer = self.client.host.fabric.tracer
            if tracer.enabled:
                span = tracer.start("commit-gap-fill", "vfs", chunks=len(incomplete))
                try:
                    chunks = yield from self._fetch_chunk_set(sorted(incomplete))
                    yield from self._apply_gaps(chunks, incomplete)
                except BaseException as exc:
                    span.set_error(exc)
                    raise
                finally:
                    span.finish()
            else:
                chunks = yield from self._fetch_chunk_set(sorted(incomplete))
                yield from self._apply_gaps(chunks, incomplete)
            for idx in incomplete:
                self.modmgr.record_fetch(idx)
        updates: Dict[int, Payload] = {}
        for idx in dirty:
            c_lo, c_hi = self.modmgr.chunk_bounds(idx)
            if not self.modmgr.is_mirrored(c_lo, c_hi):
                raise MirrorStateError(f"chunk {idx} still incomplete after fill")
            updates[idx] = yield from self.local.pread(c_lo, c_hi)
        return updates
