"""Discrete-event simulation engine.

A compact, deterministic, generator-based engine in the style of SimPy:
simulated activities are Python generators that ``yield`` events; the
:class:`Environment` owns a priority queue of scheduled events and advances
virtual time event by event.

Design points that matter for this reproduction:

* **Determinism.** Ties in the event queue are broken by a monotonically
  increasing sequence number, so two runs with the same seed produce the
  *identical* timeline (asserted by tests). No wall-clock anywhere.
* **Failure propagation.** An event may *fail* with an exception; waiting
  processes get the exception thrown into their generator at the yield point,
  so simulated RPC errors surface exactly like real ones.
* **Interrupts.** ``process.interrupt(cause)`` models external cancellation
  (e.g. premature VM termination during the boot phase, §2.3 of the paper).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

from ..common.errors import InterruptedError_, SimulationError

#: Type of the generators driving simulated processes.
ProcessGen = Generator["Event", Any, Any]

_PENDING = object()


class Event:
    """A one-shot occurrence in simulated time.

    Life cycle: *pending* -> *triggered* (scheduled with a value or an error)
    -> *processed* (callbacks ran). Processes subscribe by yielding the event.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_processed")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[[Event], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._processed = False

    # ---- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value read before trigger")
        return self._value

    # ---- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully at the current simulated time."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self.env._schedule(self, 0.0)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception (propagates to waiters)."""
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() expects an exception instance")
        self._value = exc
        self._ok = False
        self.env._schedule(self, 0.0)
        return self


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        env._schedule(self, delay)


class Process(Event):
    """A running activity; also an event firing when the generator returns."""

    __slots__ = ("gen", "name", "_waiting_on")

    def __init__(self, env: "Environment", gen: ProcessGen, name: str = ""):
        super().__init__(env)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume the generator at time `now` without payload.
        boot = Event(env)
        boot.callbacks.append(self._resume)
        boot._value = None
        env._schedule(boot, 0.0)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`InterruptedError_` into the process at its yield point."""
        if self.triggered:
            return
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        kick = Event(self.env)
        kick._value = InterruptedError_(cause)
        kick._ok = False
        kick.callbacks.append(self._resume_interrupt)
        self.env._schedule(kick, 0.0)

    # ---- internals ----------------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        self._waiting_on = None
        if trigger.ok:
            self._step(lambda: self.gen.send(trigger._value))
        else:
            exc = trigger._value
            self._step(lambda: self.gen.throw(exc))

    def _resume_interrupt(self, trigger: Event) -> None:
        if self.triggered:
            return  # finished before the interrupt was delivered
        self._step(lambda: self.gen.throw(trigger._value))

    def _step(self, advance: Callable[[], Any]) -> None:
        self.env._active_process = self
        try:
            target = advance()
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except InterruptedError_ as exc:
            self.env._active_process = None
            self.fail(exc)
            return
        except Exception as exc:
            self.env._active_process = None
            self.fail(exc)
            return
        finally:
            self.env._active_process = None
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        if target.processed:
            # Already-fired event: resume immediately (still via the queue so
            # ordering stays deterministic).
            kick = Event(self.env)
            kick._value = target._value
            kick._ok = target._ok
            kick.callbacks.append(self._resume)
            self.env._schedule(kick, 0.0)
        else:
            assert target.callbacks is not None
            target.callbacks.append(self._resume)
            self._waiting_on = target


class Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events: List[Event] = list(events)
        self._n_fired = 0
        if not self.events:
            self.succeed([])
            return
        for ev in self.events:
            if ev.processed:
                self._on_fire(ev)
            else:
                assert ev.callbacks is not None
                ev.callbacks.append(self._on_fire)

    def _on_fire(self, ev: Event) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Fires when every constituent event has fired; value = list of values.

    Fails fast if any constituent fails.
    """

    __slots__ = ()

    def _on_fire(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev._value)
            return
        self._n_fired += 1
        if self._n_fired == len(self.events):
            self.succeed([e._value for e in self.events])


class AnyOf(Condition):
    """Fires when the first constituent event fires; value = (event, value)."""

    __slots__ = ()

    def _on_fire(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev._value)
            return
        self.succeed((ev, ev._value))


class Environment:
    """Owner of simulated time and the event queue."""

    def __init__(self):
        self.now: float = 0.0
        self._queue: List[tuple[float, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self.event_count = 0  # processed events, for perf introspection

    # ---- factory helpers ------------------------------------------------- #
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # ---- scheduling ------------------------------------------------------- #
    def _schedule(self, event: Event, delay: float) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, event))

    def step(self) -> None:
        """Process the next scheduled event (advances ``now``)."""
        when, _, event = heapq.heappop(self._queue)
        if when < self.now - 1e-12:
            raise SimulationError("time went backwards")
        self.now = when
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        self.event_count += 1
        if callbacks:
            for cb in callbacks:
                cb(event)

    def run(self, until: "Event | float | None" = None) -> Any:
        """Run until an event fires, a time is reached, or the queue drains.

        * ``until`` is an :class:`Event`: run until it is processed and
          return its value (re-raising its failure).
        * ``until`` is a number: run until simulated time reaches it.
        * ``until`` is None: run until no events remain.
        """
        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not self._queue:
                    raise SimulationError(
                        f"deadlock: event queue empty before {stop!r} fired"
                    )
                self.step()
            if not stop.ok:
                raise stop._value
            return stop._value
        if until is None:
            while self._queue:
                self.step()
            return None
        horizon = float(until)
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self.now = max(self.now, horizon)
        return None
