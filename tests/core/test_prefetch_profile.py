"""Tests for access-profile-guided prefetching (paper §7 future work)."""

import pytest

from repro.blobseer import BlobSeerDeployment
from repro.common.errors import MirrorStateError
from repro.common.payload import Payload
from repro.common.units import KiB
from repro.core import MirrorVFS
from repro.core.prefetch import AccessProfile, Prefetcher, ProfileRecorder
from repro.simkit.host import Fabric

CHUNK = 4 * KiB
IMG = 16 * CHUNK


def pattern(n, seed=1):
    return bytes((i * 131 + seed * 17) % 256 for i in range(n))


def setup(seed=33):
    fab = Fabric(seed=seed)
    hosts = [fab.add_host(f"node{i}") for i in range(4)]
    manager = fab.add_host("manager")
    dep = BlobSeerDeployment(fab, hosts, hosts, manager)
    data = pattern(IMG)
    rec = dep.seed_blob(Payload.from_bytes(data), CHUNK)
    return fab, dep, hosts, rec, data


def run(fab, gen):
    return fab.run(fab.env.process(gen))


BOOT_READS = [(0, 100), (5 * CHUNK, 200), (2 * CHUNK + 7, 100), (9 * CHUNK, 50)]
EXPECTED_ORDER = [0, 5, 2, 9]


class TestAccessProfile:
    def test_single_recording_order(self):
        profile = AccessProfile(CHUNK)
        profile.record_run(EXPECTED_ORDER)
        assert profile.predicted_order() == EXPECTED_ORDER

    def test_merged_recordings_use_median(self):
        profile = AccessProfile(CHUNK)
        profile.record_run([0, 5, 2, 9])
        profile.record_run([0, 5, 2, 9])
        profile.record_run([5, 0, 9, 2])  # one outlier ordering
        assert profile.predicted_order() == [0, 5, 2, 9]
        assert profile.recordings == 3

    def test_state_roundtrip(self):
        profile = AccessProfile(CHUNK)
        profile.record_run(EXPECTED_ORDER)
        restored = AccessProfile.from_state(profile.to_state())
        assert restored.predicted_order() == EXPECTED_ORDER
        assert restored.chunk_size == CHUNK

    def test_state_is_json_safe(self):
        import json

        profile = AccessProfile(CHUNK)
        profile.record_run(EXPECTED_ORDER)
        restored = AccessProfile.from_state(json.loads(json.dumps(profile.to_state())))
        assert restored.predicted_order() == EXPECTED_ORDER


class TestProfileRecorder:
    def test_records_first_access_order(self):
        fab, dep, hosts, rec, data = setup()
        vfs = MirrorVFS(hosts[0], dep.client(hosts[0]))

        def scenario():
            handle = yield from vfs.open(rec.blob_id, rec.version)
            recorder = ProfileRecorder(handle)
            for off, ln in BOOT_READS:
                p = yield from recorder.read(off, ln)
                assert p.to_bytes() == data[off : off + ln]
            # re-reads do not re-record
            yield from recorder.read(0, 10)
            return recorder

        recorder = run(fab, scenario())
        assert recorder.order == EXPECTED_ORDER

    def test_finish_into_profile(self):
        fab, dep, hosts, rec, data = setup()
        vfs = MirrorVFS(hosts[0], dep.client(hosts[0]))

        def scenario():
            handle = yield from vfs.open(rec.blob_id, rec.version)
            recorder = ProfileRecorder(handle)
            for off, ln in BOOT_READS:
                yield from recorder.read(off, ln)
            return recorder

        recorder = run(fab, scenario())
        profile = AccessProfile(CHUNK)
        recorder.finish_into(profile)
        assert profile.predicted_order() == EXPECTED_ORDER


class TestPrefetcher:
    def _profile(self):
        profile = AccessProfile(CHUNK)
        profile.record_run(EXPECTED_ORDER)
        return profile

    def test_background_prefetch_makes_reads_local(self):
        fab, dep, hosts, rec, data = setup()
        vfs = MirrorVFS(hosts[1], dep.client(hosts[1]))
        profile = self._profile()

        def scenario():
            handle = yield from vfs.open(rec.blob_id, rec.version)
            prefetcher = Prefetcher(handle, profile, window=8)
            proc = prefetcher.start()
            yield proc  # let it run to completion (no foreground competition)
            remote_before = fab.metrics.counters["mirror-remote-read"]
            for off, ln in BOOT_READS:
                p = yield from handle.read(off, ln)
                assert p.to_bytes() == data[off : off + ln]
            return remote_before

        remote_before = run(fab, scenario())
        # the boot reads were all served locally
        assert fab.metrics.counters["mirror-remote-read"] == remote_before
        assert fab.metrics.counters["prefetch-chunk"] == len(EXPECTED_ORDER)

    def test_window_bounds_lookahead(self):
        fab, dep, hosts, rec, data = setup()
        vfs = MirrorVFS(hosts[1], dep.client(hosts[1]))
        profile = AccessProfile(CHUNK)
        profile.record_run(list(range(16)))  # whole image in order

        def scenario():
            handle = yield from vfs.open(rec.blob_id, rec.version)
            prefetcher = Prefetcher(handle, profile, window=2)
            prefetcher.start()
            yield fab.env.timeout(0.5)  # plenty of time, but nothing consumed
            fetched_while_stalled = prefetcher.fetched
            prefetcher.stop()
            return fetched_while_stalled

        fetched = run(fab, scenario())
        assert fetched <= 2  # respected the look-ahead window

    def test_stop_halts_prefetch(self):
        fab, dep, hosts, rec, data = setup()
        vfs = MirrorVFS(hosts[1], dep.client(hosts[1]))
        profile = self._profile()

        def scenario():
            handle = yield from vfs.open(rec.blob_id, rec.version)
            prefetcher = Prefetcher(handle, profile, window=1)
            prefetcher.stop()  # stopped before starting
            proc = prefetcher.start()
            fetched = yield proc
            return fetched

        assert run(fab, scenario()) == 0

    def test_chunk_size_mismatch_rejected(self):
        fab, dep, hosts, rec, data = setup()
        vfs = MirrorVFS(hosts[1], dep.client(hosts[1]))

        def scenario():
            handle = yield from vfs.open(rec.blob_id, rec.version)
            with pytest.raises(MirrorStateError):
                Prefetcher(handle, AccessProfile(CHUNK * 2))
            with pytest.raises(MirrorStateError):
                Prefetcher(handle, AccessProfile(CHUNK), window=0)
            return True

        assert run(fab, scenario())

    def test_prefetch_skips_already_mirrored(self):
        fab, dep, hosts, rec, data = setup()
        vfs = MirrorVFS(hosts[1], dep.client(hosts[1]))
        profile = self._profile()

        def scenario():
            handle = yield from vfs.open(rec.blob_id, rec.version)
            yield from handle.read(0, CHUNK)  # chunk 0 already local
            prefetcher = Prefetcher(handle, profile, window=8)
            fetched = yield prefetcher.start()
            return fetched

        assert run(fab, scenario()) == len(EXPECTED_ORDER) - 1
