"""Shared infrastructure for the figure-reproduction benchmarks.

Every benchmark describes each measurement point as a pure
:class:`~repro.runner.PointSpec` (fresh seeds, no state leakage between
points) and routes it through the :class:`~repro.runner.SweepRunner`: points
fan out over a multiprocessing pool (``REPRO_BENCH_JOBS``, default all
cores) and already-simulated points replay from the persistent result cache
under ``benchmarks/results/cache/`` (disable with ``REPRO_BENCH_NO_CACHE=1``).

Two profiles are provided (see :mod:`repro.runner.profiles`):

* ``paper`` (default) — the full §5.1 setup: 120-node pool, 2 GiB image,
  256 KiB chunks, up to 110 concurrent instances.
* ``quick`` — a scaled-down profile for smoke-testing the harness
  (``REPRO_BENCH_PROFILE=quick``).

Rendered figure tables are written to ``benchmarks/results/`` and printed;
a machine-readable JSON twin lands next to each ``.txt``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List, Optional, Sequence

from repro.runner import (  # noqa: F401 — re-exported for the bench modules
    P2P,
    PAPER,
    QUICK,
    BenchProfile,
    PointResult,
    PointSpec,
    ResultCache,
    SweepRunner,
    active_profile,
    apply_diffs,
    build_point_cloud,
    profile_calibration,
    register_profile,
)

RESULTS_DIR = Path(__file__).parent / "results"


def bench_runner(jobs: Optional[int] = None) -> SweepRunner:
    """A sweep runner configured from the benchmark environment."""
    if jobs is None:
        env = os.environ.get("REPRO_BENCH_JOBS")
        jobs = int(env) if env else None
    cache = None
    if os.environ.get("REPRO_BENCH_NO_CACHE") != "1":
        cache = ResultCache(RESULTS_DIR / "cache")
    return SweepRunner(jobs=jobs, cache=cache)


def run_sweep(specs: Sequence[PointSpec], jobs: Optional[int] = None) -> List[PointResult]:
    """Execute a list of specs through the shared benchmark runner."""
    return bench_runner(jobs=jobs).run(specs)


def deploy_specs(
    profile: BenchProfile, approach: str, seed: int = 1, counts=None
) -> List[PointSpec]:
    """The Fig. 4 instance-count sweep for one approach."""
    return [
        PointSpec(kind="deploy", profile=profile.name, approach=approach, n=n, seed=seed)
        for n in (counts or profile.instance_counts)
    ]


def snapshot_specs(
    profile: BenchProfile, approach: str, seed: int = 1, counts=None
) -> List[PointSpec]:
    """The Fig. 5 instance-count sweep for one approach."""
    return [
        PointSpec(kind="snapshot", profile=profile.name, approach=approach, n=n, seed=seed)
        for n in (counts or profile.instance_counts)
    ]


def run_deploy_point(
    profile: BenchProfile, approach: str, n: int, seed: int = 1
) -> PointResult:
    """One Fig. 4 measurement: deploy ``n`` instances with ``approach``."""
    return run_sweep(deploy_specs(profile, approach, seed=seed, counts=(n,)))[0]


def run_snapshot_point(
    profile: BenchProfile, approach: str, n: int, seed: int = 1
) -> PointResult:
    """One Fig. 5 measurement: deploy, write diffs, snapshot all."""
    return run_sweep(snapshot_specs(profile, approach, seed=seed, counts=(n,)))[0]


def figure_data(fig, checks: Sequence[str] = ()) -> dict:
    """JSON-able payload of a rendered figure (series + shape checks)."""
    return {
        "title": fig.title,
        "x_label": fig.x_label,
        "y_label": fig.y_label,
        "series": {name: {"x": s.x, "y": s.y} for name, s in fig.series.items()},
        "checks": list(checks),
    }


def emit(figure_id: str, text: str, data: Optional[dict] = None) -> None:
    """Write a rendered figure to benchmarks/results/ and stdout.

    ``data`` additionally lands as machine-readable JSON next to the text
    table (``benchmarks/results/<figure_id>.json``) so the result cache and
    downstream tooling share one format.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{figure_id}.txt"
    path.write_text(text + "\n")
    if data is not None:
        json_path = RESULTS_DIR / f"{figure_id}.json"
        json_path.write_text(
            json.dumps({"figure_id": figure_id, **data}, indent=2, sort_keys=True)
            + "\n"
        )
    print("\n" + text)
