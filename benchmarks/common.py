"""Shared infrastructure for the figure-reproduction benchmarks.

Every benchmark builds a fresh simulated cluster per measurement point
(fresh seeds, no state leakage between points) and reports the series the
corresponding paper figure plots. Two profiles are provided:

* ``paper`` (default) — the full §5.1 setup: 120-node pool, 2 GiB image,
  256 KiB chunks, up to 110 concurrent instances. A complete run takes a
  few minutes of wall time.
* ``quick`` — a scaled-down profile for smoke-testing the harness
  (``REPRO_BENCH_PROFILE=quick``).

Rendered figure tables are written to ``benchmarks/results/`` and printed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import List

from repro.calibration import DEFAULT, Calibration
from repro.cloud import Cloud, build_cloud, deploy, snapshot_all
from repro.cloud.deployment import DeploymentResult
from repro.cloud.snapshotting import SnapshotCampaignResult
from repro.common.units import GiB, KiB, MiB
from repro.vmsim import VmImage, make_image
from repro.vmsim.workloads import read_your_writes_workload

RESULTS_DIR = Path(__file__).parent / "results"


@dataclass(frozen=True)
class BenchProfile:
    name: str
    pool_nodes: int
    instance_counts: tuple
    image_size: int
    chunk_size: int
    touched_bytes: int
    n_regions: int
    diff_bytes: int
    mc_workers: int
    mc_total_compute: float
    bonnie_working_set: int


PAPER = BenchProfile(
    name="paper",
    pool_nodes=120,
    instance_counts=(1, 20, 40, 60, 80, 110),
    image_size=DEFAULT.image.size,          # 2 GiB
    chunk_size=DEFAULT.image.chunk_size,    # 256 KiB
    touched_bytes=DEFAULT.image.boot_touched_bytes,  # ~109 MiB
    n_regions=64,
    diff_bytes=DEFAULT.snapshot.diff_bytes,  # 15 MiB
    mc_workers=100,
    mc_total_compute=1000.0,
    bonnie_working_set=800 * MiB,
)

QUICK = BenchProfile(
    name="quick",
    pool_nodes=24,
    instance_counts=(1, 8, 16, 24),
    image_size=512 * MiB,
    chunk_size=256 * KiB,
    touched_bytes=32 * MiB,
    n_regions=32,
    diff_bytes=6 * MiB,
    mc_workers=16,
    mc_total_compute=120.0,
    bonnie_working_set=128 * MiB,
)


def active_profile() -> BenchProfile:
    return QUICK if os.environ.get("REPRO_BENCH_PROFILE") == "quick" else PAPER


def profile_calibration(profile: BenchProfile) -> Calibration:
    from repro.calibration import ImageSpec

    return Calibration(
        image=ImageSpec(
            size=profile.image_size,
            chunk_size=profile.chunk_size,
            boot_touched_bytes=profile.touched_bytes,
        )
    )


def build_point_cloud(profile: BenchProfile, seed: int) -> tuple:
    """Fresh cluster + image for one measurement point."""
    calib = profile_calibration(profile)
    cloud = build_cloud(profile.pool_nodes, seed=seed, calib=calib)
    image = make_image(
        profile.image_size, profile.touched_bytes, n_regions=profile.n_regions
    )
    return cloud, image


def run_deploy_point(
    profile: BenchProfile, approach: str, n: int, seed: int = 1
) -> DeploymentResult:
    """One Fig. 4 measurement: deploy ``n`` instances with ``approach``."""
    cloud, image = build_point_cloud(profile, seed)
    return deploy(cloud, image, n, approach)


def apply_diffs(cloud: Cloud, image: VmImage, vms, diff_bytes: int) -> None:
    """Each running VM writes ~``diff_bytes`` of local modifications (§5.3)."""

    def one(vm, i):
        ops = read_your_writes_workload(
            image.write_base, diff_bytes, cloud.fabric.rng.get("app-diff", i),
            reread_fraction=0.05,
        )
        yield from vm.run_ops(ops)

    procs = [cloud.env.process(one(vm, i)) for i, vm in enumerate(vms)]
    cloud.run(cloud.env.all_of(procs))


def run_snapshot_point(
    profile: BenchProfile, approach: str, n: int, seed: int = 1
) -> SnapshotCampaignResult:
    """One Fig. 5 measurement: deploy, write diffs, snapshot all."""
    cloud, image = build_point_cloud(profile, seed)
    res = deploy(cloud, image, n, approach)
    apply_diffs(cloud, image, res.vms, profile.diff_bytes)
    return snapshot_all(cloud, res.vms, approach)


def emit(figure_id: str, text: str) -> None:
    """Write a rendered figure to benchmarks/results/ and stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{figure_id}.txt"
    path.write_text(text + "\n")
    print("\n" + text)
