"""Resilience sweep — multideployment under injected provider crashes.

Not a paper figure: the paper's evaluation runs failure-free (design
principle 3 of §3.1 only *notes* that the striped repository supports chunk
replication). This sweep exercises the fault-injection subsystem end to end:
``N`` instances multideploy with the mirror approach while a deterministic
fault plan permanently crashes spare pool nodes — taking their data
providers (and co-located metadata shards) down with every unreplicated
chunk they held. Panels:

* survival — fraction of instances that still booted, per
  (crash count x replication factor);
* degradation — completion time of the boot phase as crashes increase.

Expected shapes: replication 1 loses instances as soon as providers die;
replication >= 2 rides out every crash level of the sweep (the staggered
plan never kills a whole replica set) at the cost of slower, retry-laden
boots. The point loop goes through the parallel sweep runner, so results
land in (and replay from) the persistent result cache like every figure.
"""

from repro.analysis import Figure, Series, ascii_chart, check_shape, render_figure

from common import PointSpec, active_profile, emit, figure_data, run_sweep

PROFILE = active_profile()

#: deployment size: second entry of the profile's sweep (8 quick / 20 paper)
#: leaves plenty of spare pool nodes to crash
N_INSTANCES = PROFILE.instance_counts[1]
CRASH_COUNTS = (0, 2, 4)
REPLICATIONS = (1, 2, 3)


def resilience_specs():
    return [
        PointSpec(
            kind="resilience", profile=PROFILE.name, approach="mirror",
            n=N_INSTANCES, seed=1,
            params=(
                ("replication", r),
                ("crashes", c),
                ("window", 5.0),
                ("rpc_timeout", 2.0),
            ),
        )
        for r in REPLICATIONS
        for c in CRASH_COUNTS
    ]


def _sweep():
    points = run_sweep(resilience_specs())
    return {
        (p.spec.param("replication"), p.spec.param("crashes")): p for p in points
    }


def test_resilience_sweep(benchmark, sweep_cache):
    """Run the crash-count x replication sweep (feeds both panels)."""
    result = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    sweep_cache["resilience"] = result
    assert len(result) == len(REPLICATIONS) * len(CRASH_COUNTS)
    for (r, c), p in result.items():
        assert p.metrics["boots_completed"] + p.metrics["boots_failed"] == N_INSTANCES


def test_resilience_survival(benchmark, sweep_cache):
    sweep = sweep_cache["resilience"]

    def compute():
        out = {}
        for r in REPLICATIONS:
            s = Series(f"replication={r}")
            for c in CRASH_COUNTS:
                s.add(c, sweep[(r, c)].metrics["survival_rate"])
            out[r] = s
        return out

    series = benchmark.pedantic(compute, rounds=1, iterations=1)
    fig = Figure(
        "resilience_survival",
        f"Instances booted under provider crashes (n={N_INSTANCES})",
        "crashed providers", "survival rate",
    )
    for s in series.values():
        fig.add_series(s)
    max_c = CRASH_COUNTS[-1]
    checks = [
        check_shape(
            "fault-free deployments always complete (every replication)",
            all(series[r].at(0) == 1.0 for r in REPLICATIONS),
        ),
        check_shape(
            f"replication 1 loses instances under {max_c} permanent crashes",
            series[1].at(max_c) < 1.0,
        ),
        check_shape(
            "replication >= 2 survives every crash level",
            all(
                series[r].at(c) == 1.0
                for r in REPLICATIONS if r >= 2
                for c in CRASH_COUNTS
            ),
        ),
    ]
    emit(
        "resilience_survival",
        render_figure(fig, fmt="{:10.3f}") + "\n\n" + ascii_chart(fig) + "\n" + "\n".join(checks),
        figure_data(fig, checks),
    )
    assert all(c.startswith("[PASS]") for c in checks), "\n".join(checks)


def test_resilience_degradation(benchmark, sweep_cache):
    sweep = sweep_cache["resilience"]

    def compute():
        out = {}
        for r in REPLICATIONS:
            s = Series(f"replication={r}")
            for c in CRASH_COUNTS:
                s.add(c, sweep[(r, c)].metrics["completion_time"])
            out[r] = s
        return out

    series = benchmark.pedantic(compute, rounds=1, iterations=1)
    fig = Figure(
        "resilience_degradation",
        f"Boot-phase completion time under provider crashes (n={N_INSTANCES})",
        "crashed providers", "seconds",
    )
    for s in series.values():
        fig.add_series(s)
    max_c = CRASH_COUNTS[-1]
    checks = [
        check_shape(
            "crash-free completion is unaffected by the replication factor "
            "(reads always hit the primary replica)",
            max(series[r].at(0) for r in REPLICATIONS)
            / min(series[r].at(0) for r in REPLICATIONS) < 1.25,
        ),
        check_shape(
            "surviving replicated deployments degrade (slower, not dead) "
            "under crashes",
            all(series[r].at(max_c) > series[r].at(0) for r in (2, 3)),
        ),
    ]
    emit(
        "resilience_degradation",
        render_figure(fig, fmt="{:10.3f}") + "\n\n" + ascii_chart(fig) + "\n" + "\n".join(checks),
        figure_data(fig, checks),
    )
    assert all(c.startswith("[PASS]") for c in checks), "\n".join(checks)
