"""Tracked performance harness for the simulator fast path.

Measures the wall time and event throughput of the two paper workloads the
engine optimizations target, on the ``quick`` profile:

* **fig4** — the multideployment sweep (deploy 1/8/16/24 instances with the
  mirror approach, fresh cloud per point);
* **fig5** — the multisnapshotting point (deploy the full pool, apply diffs,
  snapshot everything);
* **sweep_runner** — the same fig4 sweep driven through the
  :class:`repro.runner.SweepRunner` harness, sequential (``jobs=1``) versus
  parallel (``jobs=4``), caching disabled so every point simulates. Records
  points/sec for both modes plus the parallel speedup (meaningful on
  multi-core machines; ``cpus`` is recorded alongside).

Results are tracked in ``BENCH_simkit.json`` at the repository root:

* ``seed_baseline`` — the same measurement taken at the pre-fast-path commit
  (per-flow timer wakeups, full fair-share recomputation). Kept as a static
  record of what the optimization bought.
* ``current`` — the committed measurement for the present tree.

Running this module as a script re-measures and **gates**: it exits non-zero
if the fresh events/sec falls more than ``REGRESSION_TOLERANCE`` below the
committed ``current`` numbers (wall time is too noisy on shared machines to
gate on directly; events/sec over best-of-N runs is steadier, and the event
count itself is deterministic). ``--update`` rewrites the committed file.

Usage::

    make perf                                   # measure + regression gate
    PYTHONPATH=src python benchmarks/bench_simperf.py --update

Each measurement is best-of-N (default 3): scheduler noise only ever adds
time, so the minimum is the most stable estimator of the code's cost.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_simkit.json"

if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from common import QUICK, apply_diffs, build_point_cloud  # noqa: E402

from repro.cloud import deploy, snapshot_all  # noqa: E402
from repro.runner import PointSpec, SweepRunner  # noqa: E402

#: allowed fractional drop in events/sec before the gate fails (satellite
#: requirement: >20% regression vs the committed baseline fails `make perf`)
REGRESSION_TOLERANCE = 0.20

#: default best-of-N repetitions per workload
DEFAULT_REPEATS = 3

#: deployment seed — fixed so the simulated workload (and its event count)
#: is identical across runs and machines
SEED = 1


# --------------------------------------------------------------------------- #
# workloads
# --------------------------------------------------------------------------- #
def run_fig4_sweep(counts=None) -> int:
    """The fig4 quick sweep; returns total processed events."""
    events = 0
    for n in counts or QUICK.instance_counts:
        cloud, image = build_point_cloud(QUICK, SEED)
        deploy(cloud, image, n, "mirror")
        events += cloud.env.event_count
    return events


def run_fig5_point(n=None) -> int:
    """The fig5 deploy+diff+snapshot point; returns total processed events."""
    cloud, image = build_point_cloud(QUICK, SEED)
    result = deploy(cloud, image, n or QUICK.instance_counts[-1], "mirror")
    apply_diffs(cloud, image, result.vms, QUICK.diff_bytes)
    snapshot_all(cloud, result.vms, "mirror")
    return cloud.env.event_count


#: parallel worker count for the tracked sweep_runner measurement
SWEEP_JOBS = 4


def sweep_specs(counts=None):
    """The fig4 quick mirror sweep as runner specs."""
    return [
        PointSpec(kind="deploy", profile="quick", approach="mirror", n=n, seed=SEED)
        for n in (counts or QUICK.instance_counts)
    ]


def measure_sweep_runner(repeats: int = DEFAULT_REPEATS, counts=None, jobs=SWEEP_JOBS) -> dict:
    """Points/sec of the sweep harness, sequential vs parallel (no cache)."""
    specs = sweep_specs(counts)

    def best_wall(n_jobs):
        walls = []
        for _ in range(repeats):
            runner = SweepRunner(jobs=n_jobs, cache=None)
            t0 = time.perf_counter()
            runner.run(specs)
            walls.append(time.perf_counter() - t0)
        return min(walls)

    cpus = os.cpu_count()
    if cpus is not None and cpus < 2:
        # A 1-CPU box cannot show a parallel speedup — the pool only adds
        # scheduler noise (a recorded 0.99x once read like a regression).
        # Measure sequential throughput only and say why.
        seq = best_wall(1)
        seq_pps = len(specs) / seq
        return {
            "points": len(specs),
            "jobs": jobs,
            "cpus": cpus,
            "seq_points_per_s": round(seq_pps, 2),
            "par_points_per_s": None,
            "parallel_speedup": None,
            "note": "parallel comparison skipped: fewer than 2 cpus",
        }

    seq = best_wall(1)
    par = best_wall(jobs)
    seq_pps = len(specs) / seq
    par_pps = len(specs) / par
    return {
        "points": len(specs),
        "jobs": jobs,
        "cpus": os.cpu_count(),
        "seq_points_per_s": round(seq_pps, 2),
        "par_points_per_s": round(par_pps, 2),
        "parallel_speedup": round(par_pps / seq_pps, 2),
    }


def _peak_rss_mib() -> float | None:
    """Peak RSS of this process in MiB (Linux ru_maxrss is KiB)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _best_of(workload, repeats: int) -> dict:
    walls = []
    events = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        events = workload()
        walls.append(time.perf_counter() - t0)
    wall = min(walls)
    out = {
        "wall_s": round(wall, 3),
        "events": events,
        "events_per_s": round(events / wall),
    }
    rss = _peak_rss_mib()
    if rss is not None:
        # informational (high-water across the whole process, so earlier
        # workloads inflate later ones); never gated on
        out["peak_rss_mib"] = round(rss, 1)
    return out


def measure(repeats: int = DEFAULT_REPEATS, counts=None) -> dict:
    """Measure both workloads; ``counts`` restricts the fig4 sweep (smoke)."""
    out = {"fig4": _best_of(lambda: run_fig4_sweep(counts), repeats)}
    if counts is None:
        out["fig5"] = _best_of(run_fig5_point, repeats)
    return out


# --------------------------------------------------------------------------- #
# tracked file + gate
# --------------------------------------------------------------------------- #
def load_committed() -> dict:
    with open(BENCH_PATH) as fh:
        return json.load(fh)


def check_regression(fresh: dict, committed: dict) -> list:
    """Return a list of human-readable failures (empty = gate passes)."""
    failures = []
    for fig, now in fresh.items():
        base = committed.get("current", {}).get(fig)
        if base is None or "events_per_s" not in now:
            continue
        floor = base["events_per_s"] * (1.0 - REGRESSION_TOLERANCE)
        if now["events_per_s"] < floor:
            failures.append(
                f"{fig}: {now['events_per_s']} events/s is more than "
                f"{REGRESSION_TOLERANCE:.0%} below the committed "
                f"{base['events_per_s']} events/s"
            )
        if now["events"] != base["events"]:
            failures.append(
                f"{fig}: event count {now['events']} != committed "
                f"{base['events']} (the simulated workload changed; rerun "
                "with --update if intentional)"
            )
    return failures


def _speedups(committed: dict) -> dict:
    out = {}
    seed = committed.get("seed_baseline", {})
    cur = committed.get("current", {})
    for fig in cur:
        if fig in seed:
            out[f"{fig}_wall_speedup"] = round(
                seed[fig]["wall_s"] / cur[fig]["wall_s"], 2
            )
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite BENCH_simkit.json's 'current' section with this run",
    )
    parser.add_argument(
        "--repeats", type=int, default=DEFAULT_REPEATS, help="best-of-N runs"
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error(f"--repeats must be >= 1, got {args.repeats}")

    fresh = measure(repeats=args.repeats)
    committed = load_committed() if BENCH_PATH.exists() else {}

    for fig, row in fresh.items():
        print(
            f"{fig}: {row['wall_s']:.3f}s wall, {row['events']} events, "
            f"{row['events_per_s']} events/s"
        )

    sweep = measure_sweep_runner(repeats=max(1, args.repeats - 1))
    if sweep["parallel_speedup"] is None:
        print(
            f"sweep_runner: {sweep['seq_points_per_s']} points/s sequential "
            f"({sweep['note']})"
        )
    else:
        print(
            f"sweep_runner: {sweep['seq_points_per_s']} points/s sequential, "
            f"{sweep['par_points_per_s']} points/s with {sweep['jobs']} jobs "
            f"({sweep['parallel_speedup']}x on {sweep['cpus']} cpus)"
        )

    if args.update:
        committed.setdefault("profile", "quick")
        committed.setdefault("seed_baseline", {})
        committed["current"] = fresh
        committed["sweep_runner"] = sweep
        committed["improvement"] = _speedups(committed)
        with open(BENCH_PATH, "w") as fh:
            json.dump(committed, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"updated {BENCH_PATH}")
        return 0

    if not committed:
        print(f"no committed baseline at {BENCH_PATH}; run with --update first")
        return 1
    failures = check_regression(fresh, committed)
    if failures:
        for f in failures:
            print(f"PERF REGRESSION: {f}", file=sys.stderr)
        return 1
    imp = _speedups(committed)
    if imp:
        print("committed speedups vs seed baseline:", json.dumps(imp))
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
