"""Multideployment runners: one initial image -> N concurrent VM instances.

Implements the three deployment schemes compared in §5.2 behind one
interface, collecting the paper's three metrics: average boot time per
instance, time-to-complete for all instances, and total network traffic.

* ``prepropagation`` — broadcast the raw image to every node (taktuk tree),
  then launch all hypervisors on the local copies;
* ``qcow2-pvfs`` — create a local qcow2 file per node backed by the raw
  image striped on PVFS, then launch;
* ``mirror`` — the paper's approach: launch immediately, the mirroring VFS
  fetches on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..baselines.prepropagation import prepropagate
from ..calibration import BootModel
from ..common.errors import MiddlewareError
from ..vmsim.backends import LocalRawBackend, MirrorBackend, Qcow2PvfsBackend
from ..vmsim.boottrace import boot_trace
from ..vmsim.hypervisor import VMInstance
from ..vmsim.image import VmImage
from .cluster import Cloud

APPROACHES = ("prepropagation", "qcow2-pvfs", "mirror")

#: Repository paths/identifiers for the seeded initial image.
NFS_IMAGE_PATH = "/images/initial.raw"
PVFS_IMAGE_PATH = "/images/initial.raw"
LOCAL_IMAGE_PATH = "/local/image.raw"


@dataclass
class DeploymentResult:
    """Outcome of one multideployment run (one data point of Fig. 4)."""

    approach: str
    n_instances: int
    #: initialization phase duration (broadcast / qcow2 creation); 0 for mirror
    init_time: float
    #: per-instance boot times, measured after the init phase (Fig. 4a)
    boot_times: List[float] = field(default_factory=list)
    #: wall time until every instance finished booting, incl. init (Fig. 4b)
    completion_time: float = 0.0
    #: total bytes that crossed the network during the whole run (Fig. 4d)
    total_traffic: int = 0
    #: the running instances (for follow-up workloads/snapshots)
    vms: List[VMInstance] = field(default_factory=list)
    #: peer-exchange effectiveness (None unless the cloud was built with p2p)
    p2p_stats: Optional[dict] = None

    @property
    def avg_boot_time(self) -> float:
        return sum(self.boot_times) / len(self.boot_times) if self.boot_times else 0.0


def seed_image(cloud: Cloud, image: VmImage) -> dict:
    """Install the initial image in every repository flavour (time zero).

    Returns identifiers per approach: the BlobSeer snapshot record, the PVFS
    path and the NFS path.
    """
    idents = {}
    cloud.nfs.put_file(NFS_IMAGE_PATH, image.payload)
    idents["nfs"] = NFS_IMAGE_PATH
    if cloud.pvfs is not None:
        cloud.pvfs.seed_file(PVFS_IMAGE_PATH, image.payload)
        idents["pvfs"] = PVFS_IMAGE_PATH
    if cloud.blobseer is not None:
        rec = cloud.blobseer.seed_blob(image.payload, cloud.calib.image.chunk_size)
        idents["blobseer"] = rec
    return idents


def _make_backend(
    cloud: Cloud, approach: str, host, idents, instance_name: str,
    mirror_prefetch: bool = True,
):
    if approach == "prepropagation":
        return LocalRawBackend(host, LOCAL_IMAGE_PATH, cloud.calib.fuse)
    if approach == "qcow2-pvfs":
        if cloud.pvfs is None:
            raise MiddlewareError("cloud built without PVFS")
        return Qcow2PvfsBackend(host, cloud.pvfs, idents["pvfs"], cloud.calib.fuse)
    if approach == "mirror":
        if cloud.blobseer is None:
            raise MiddlewareError("cloud built without BlobSeer")
        rec = idents["blobseer"]
        return MirrorBackend(
            host, cloud.blobseer, rec.blob_id, rec.version, cloud.calib.fuse,
            path=f"/mirror/{instance_name}", full_chunk_prefetch=mirror_prefetch,
        )
    raise MiddlewareError(f"unknown approach {approach!r}; pick one of {APPROACHES}")


def deploy(
    cloud: Cloud,
    image: VmImage,
    n_instances: int,
    approach: str,
    idents: Optional[dict] = None,
    boot_model: Optional[BootModel] = None,
    run_boot: bool = True,
    mirror_prefetch: bool = True,
) -> DeploymentResult:
    """Run one multideployment and return its metrics.

    One VM per compute node (as in the paper). ``idents`` may carry the
    result of a previous :func:`seed_image`; otherwise the image is seeded
    now. The call drives the simulation to completion of all boots.
    """
    if n_instances > len(cloud.compute):
        raise MiddlewareError(
            f"{n_instances} instances > {len(cloud.compute)} compute nodes"
        )
    if idents is None:
        idents = seed_image(cloud, image)
    boot_model = boot_model if boot_model is not None else cloud.calib.boot
    fabric = cloud.fabric
    nodes = cloud.compute[:n_instances]
    traffic_before = cloud.metrics.total_traffic()
    t_start = cloud.env.now
    result = DeploymentResult(approach=approach, n_instances=n_instances, init_time=0.0)

    tracer = fabric.tracer

    def master():
        root = None
        if tracer.enabled:
            root = tracer.start(
                f"deploy:{approach}", "deploy", n_instances=n_instances
            )
        # ---- initialization phase -------------------------------------- #
        if approach == "prepropagation":
            if tracer.enabled:
                with tracer.start("init-phase", "init", approach=approach):
                    yield from prepropagate(
                        fabric, cloud.nfs, idents["nfs"], nodes, LOCAL_IMAGE_PATH,
                        fanout=cloud.calib.service.broadcast_fanout,
                    )
            else:
                yield from prepropagate(
                    fabric, cloud.nfs, idents["nfs"], nodes, LOCAL_IMAGE_PATH,
                    fanout=cloud.calib.service.broadcast_fanout,
                )
        elif approach == "qcow2-pvfs":
            def create_one(node):
                yield cloud.env.timeout(cloud.calib.service.qcow2_create_overhead)

            ispan = None
            if tracer.enabled:
                ispan = tracer.start("init-phase", "init", approach=approach)
            procs = cloud.env.process_batch(create_one(n) for n in nodes)
            yield cloud.env.all_of(procs)
            if ispan is not None:
                ispan.finish()
        result.init_time = cloud.env.now - t_start

        # ---- boot phase ------------------------------------------------- #
        boots = []
        for i, node in enumerate(nodes):
            name = f"vm{i:03d}"
            backend = _make_backend(
                cloud, approach, node, idents, name, mirror_prefetch=mirror_prefetch
            )
            rng = fabric.rng.get("vm", approach, i)
            vm = VMInstance(name, node, backend, boot_model, rng)
            result.vms.append(vm)
            trace = boot_trace(image, boot_model, fabric.rng.get("trace", approach, i))
            if run_boot:
                boots.append(cloud.env.process(vm.boot(trace), name=f"boot-{name}"))
        if boots:
            yield cloud.env.all_of(boots)
        if root is not None:
            root.finish()

    cloud.run(cloud.env.process(master(), name=f"deploy-{approach}"))
    result.completion_time = cloud.env.now - t_start
    result.boot_times = [vm.boot_time for vm in result.vms if vm.boot_time is not None]
    result.total_traffic = cloud.metrics.total_traffic() - traffic_before
    if cloud.p2p is not None:
        result.p2p_stats = cloud.p2p.stats()
    return result
