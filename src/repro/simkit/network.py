"""Flow-level network fabric with per-NIC fair bandwidth sharing.

The paper's testbed is a commodity GigE cluster (117.5 MB/s measured TCP
throughput, ~0.1 ms latency) behind a non-blocking switch, so the only
bandwidth constraints that matter are the hosts' NICs. We therefore model the
network at *flow level*: a bulk transfer is a fluid flow whose instantaneous
rate is its fair share of its source's uplink and destination's downlink.

Two fairness disciplines are provided:

``"equal-share"`` (default)
    ``rate(f) = min(cap_up(src)/n_up(src), cap_down(dst)/n_down(dst))``.
    Incremental, O(flows on the two affected links) per flow arrival or
    departure — fast enough for hundred-node sweeps. It slightly
    *under*-estimates throughput versus true max-min fairness because the
    share a bottlenecked-elsewhere flow leaves on a link is not
    redistributed.

``"maxmin"``
    exact max-min fairness via progressive filling, recomputed globally on
    every flow arrival/departure. Heap-driven water filling, O(F log L) per
    recompute — used in tests and small topologies to bound the error of the
    fast mode.

**Completion wakeups** use a single earliest-ETA sentinel event per network
rather than one timer per flow per rebalance: every rate change pushes the
flow's new absolute completion time onto a lazily-invalidated heap (a
per-flow generation counter marks stale entries), and at most one pending
sentinel timer tracks the heap head. A rebalance therefore schedules O(1)
timers instead of O(affected flows), and flows whose fair share did not
change are not touched at all (their linear progress makes deferring the
bookkeeping exact). See DESIGN.md §"Performance model & profiling".

**Cohort rebalancing** (equal-share, default): under equal-share fairness
every flow bottlenecked on the same link direction has the *same* rate, so
each link direction keeps one lazy cohort record (share level, an epoch
counter, and a closed-segment history of past share levels) instead of
touching every crossing flow on each arrival/departure. A flow's
``(remaining, t_last)`` is materialized only when its rate actually changes
side (bottleneck switch), when it becomes the cohort head (its ETA is
needed), or when it aborts — by replaying the exact per-segment products the
eager per-flow update would have computed, so results are bit-identical to
the legacy path (``rebalance="legacy"``, kept as an in-test oracle). The
completion heap holds one entry per link direction (the cohort head's ETA,
invalidated by epoch bumps) rather than one per flow per rate change,
making flow maintenance near-O(1) per event instead of O(flows on the
link) — the difference between O(F²) and O(F log F) aggregate work for the
paper's fan-in deployment patterns. See DESIGN.md §8.

**Hierarchical topology** (optional): attaching a multi-rack
:class:`~repro.topo.Topology` switches the network into *path mode*: each
flow resolves the trunk links on its path (rack uplink/downlink, optional
pod trunks and core) once at start, and its rate is the minimum share over
its NIC endpoints *and* every trunk it crosses. Rebalancing walks exactly
the flows sharing a touched link (NIC direction or trunk), reusing the
skip-unchanged-rate sentinel machinery of the per-flow engine. With no
topology attached — or a single-rack one — every trunk path is empty and
the flat engines (cohort included) run completely untouched, so flat-model
results stay bit-identical. A single-rack topology still enables per-tier
traffic *accounting* (scope classification lives only in Metrics and never
affects the timeline).

Small control messages (below :attr:`FlowNetwork.message_threshold`) bypass
the fluid model and pay ``latency + size/capacity + per_message_overhead``;
their bytes still land in the traffic accounting (per-tier scoped when a
topology is attached — the trunk is latency-dominated for them, not
bandwidth-limited, so they do not consume trunk share).
"""

from __future__ import annotations

from bisect import insort_right
from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a package cycle
    from ..topo.fabric import Topology

from ..common.errors import ProviderUnavailableError
from ..common.units import MB, MILLISECONDS
from ..obs.span import NULL_TRACER
from .core import Environment, Event, Timeout
from .trace import Metrics

#: default rebalancing engine for equal-share fairness; tests monkeypatch
#: this to "legacy" to run the pre-cohort per-flow path as an oracle
DEFAULT_REBALANCE = "cohort"

_INF = float("inf")


class Nic:
    """A full-duplex network interface: independent up and down capacities.

    Flow collections are insertion-ordered dicts (used as ordered sets):
    iteration order must be deterministic across runs, or float accumulation
    and event tie-breaking would depend on object memory addresses.

    ``up_share`` / ``down_share`` cache the current equal-share level
    (``capacity / max(1, n_flows)``); :class:`FlowNetwork` maintains them on
    every flow arrival and departure so a rebalance reads shares in O(1)
    instead of recounting flows.
    """

    __slots__ = (
        "name",
        "up_capacity",
        "down_capacity",
        "up_flows",
        "down_flows",
        "up_share",
        "down_share",
        "up_dir",
        "down_dir",
    )

    def __init__(self, name: str, up_capacity: float, down_capacity: float | None = None):
        self.name = name
        self.up_capacity = float(up_capacity)
        self.down_capacity = float(down_capacity if down_capacity is not None else up_capacity)
        self.up_flows: Dict[Flow, None] = {}
        self.down_flows: Dict[Flow, None] = {}
        self.up_share = self.up_capacity
        self.down_share = self.down_capacity
        #: lazy cohort records, created by FlowNetwork.add_nic in cohort mode
        self.up_dir: Optional[_Dir] = None
        self.down_dir: Optional[_Dir] = None

    def __repr__(self) -> str:
        return f"Nic({self.name}, up={self.up_capacity / MB:.1f}MB/s)"


class Flow:
    """A bulk transfer in flight. Internal to :class:`FlowNetwork`.

    ``wake_seq`` is the flow's generation counter: it is bumped on every rate
    change (and on completion), which lazily invalidates any completion-heap
    entries pushed under earlier generations. ``ctime`` is the absolute
    simulated time at which the flow completes under its current rate.
    """

    __slots__ = (
        "src",
        "dst",
        "size",
        "remaining",
        "rate",
        "t_last",
        "ctime",
        "done",
        "wake_seq",
        "kind",
        "span",
        "home",
        "seg_idx",
        "links",
        "scope",
    )

    def __init__(self, src: Nic, dst: Nic, size: float, done: Event, kind: str):
        self.src = src
        self.dst = dst
        self.size = float(size)
        self.remaining = float(size)
        self.rate = 0.0
        self.t_last = 0.0
        self.ctime = 0.0
        self.done = done
        self.wake_seq = 0
        self.kind = kind
        self.span = None  # observability: set by transfer() when tracing
        #: cohort mode: the link direction whose share is this flow's rate
        #: (its bottleneck side) and the absolute index of the first segment
        #: of that direction's history not yet applied to ``remaining``
        self.home: Optional[_Dir] = None
        self.seg_idx = 0
        #: path mode: trunk links on the flow's path (empty when intra-rack
        #: or no topology); tier label for traffic accounting (None = flat)
        self.links: Tuple[_PLink, ...] = ()
        self.scope: Optional[str] = None


class _Dir:
    """Equal-share cohort state for one link direction (cohort mode).

    ``share`` is the current equal-share level (``capacity / max(1, n)``,
    same floats as the legacy per-flow path). ``segs`` is the closed history
    of past share levels as ``(t_end, share)`` pairs: a lazy flow replays the
    pending suffix (from its ``seg_idx``) to materialize exactly the
    subtract-and-clamp products the eager path would have applied at each
    boundary. ``natives`` holds the flows bottlenecked here, sorted by
    remaining bytes (ties in join order — insort_right is stable), so
    ``natives[0]`` is always the direction's next completion. ``foreign``
    holds crossing flows bottlenecked on their other side. ``epoch``
    invalidates completion-heap entries; ``partner_floor`` is a sound lower
    bound on the natives' partner-side shares, letting a share increase skip
    the switch-out scan when no native can possibly leave.
    """

    __slots__ = (
        "nic", "up", "share", "epoch", "natives", "foreign",
        "segs", "seg_base", "partner_floor",
    )

    def __init__(self, nic: Nic, up: bool, capacity: float):
        self.nic = nic
        self.up = up
        self.share = capacity
        self.epoch = 0
        self.natives: List[Flow] = []
        self.foreign: Dict[Flow, None] = {}
        self.segs: List[Tuple[float, float]] = []
        self.seg_base = 0
        self.partner_floor = _INF

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        d = "up" if self.up else "down"
        return (
            f"_Dir({self.nic.name}.{d}, share={self.share:.1f}, "
            f"natives={len(self.natives)}, foreign={len(self.foreign)})"
        )


class _PLink:
    """One direction of a shared trunk (rack uplink, pod trunk, core).

    Path-mode analogue of a NIC direction: an insertion-ordered flow set
    plus a cached equal-share level, maintained on every flow arrival and
    departure so rebalances read the share in O(1).
    """

    __slots__ = ("name", "capacity", "flows", "share")

    def __init__(self, name: str, capacity: float):
        self.name = name
        self.capacity = float(capacity)
        self.flows: Dict[Flow, None] = {}
        self.share = self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_PLink({self.name}, cap={self.capacity / MB:.1f}MB/s, n={len(self.flows)})"


class FlowNetwork:
    """The cluster fabric: NIC registry, flows, messages, traffic accounting."""

    def __init__(
        self,
        env: Environment,
        metrics: Optional[Metrics] = None,
        latency: float = 0.1 * MILLISECONDS,
        fairness: str = "equal-share",
        message_threshold: int = 4096,
        per_message_overhead: float = 0.02 * MILLISECONDS,
        message_header_bytes: int = 66,
        rebalance: Optional[str] = None,
        topology: Optional["Topology"] = None,
    ):
        if fairness not in ("equal-share", "maxmin"):
            raise ValueError(f"unknown fairness discipline {fairness!r}")
        if rebalance is None:
            rebalance = DEFAULT_REBALANCE
        if rebalance not in ("cohort", "legacy"):
            raise ValueError(f"unknown rebalance engine {rebalance!r}")
        #: hierarchical fabric (None = flat switch). Multi-rack topologies
        #: activate path mode; a single-rack one only adds tier accounting.
        self.topology = topology
        self._path = topology is not None and topology.multi_rack
        if self._path and fairness != "equal-share":
            raise ValueError(
                "hierarchical (multi-rack) topology requires equal-share fairness"
            )
        self.env = env
        self.metrics = metrics if metrics is not None else Metrics()
        self.latency = latency
        self.fairness = fairness
        self.message_threshold = message_threshold
        self.per_message_overhead = per_message_overhead
        self.message_header_bytes = message_header_bytes
        #: observability: flow begin/end spans; inert unless a tracer is
        #: installed via :func:`repro.obs.install_tracer`
        self.tracer = NULL_TRACER
        self.rebalance = rebalance
        #: cohort engine active? (maxmin always runs the per-flow path — its
        #: progressive filling is inherently global, see DESIGN.md §8; path
        #: mode runs its own per-flow engine because a flow can cross an
        #: arbitrary number of links, not the two _partner_dir assumes)
        self._cohort = (
            fairness == "equal-share" and rebalance == "cohort" and not self._path
        )
        #: path mode: trunk link registry and memoized (src, dst) -> trunks
        self._trunks: Dict[str, _PLink] = {}
        self._trunk_cache: Dict[Tuple[str, str], Tuple[_PLink, ...]] = {}
        if self._path:
            self._build_trunks()
        #: link directions touched by the current event, in encounter order;
        #: flushed (epoch bump + head ETA repush) at the end of the event
        self._dirty: Dict[_Dir, None] = {}
        #: share changes of the current event awaiting bottleneck settling:
        #: ``(dir, old_share)`` in change order. Settling is deferred until
        #: every share of the event is final so switch decisions compare
        #: final values — mid-event comparisons against stale partner shares
        #: could move a flow twice and subdivide its float products.
        self._pending: List[Tuple[_Dir, float]] = []
        self._nics: Dict[str, Nic] = {}
        self._flows: Dict[Flow, None] = {}
        #: min-heap of (completion time, push tie-breaker, flow generation,
        #: flow); entries whose generation no longer matches the flow's
        #: ``wake_seq`` are stale and dropped lazily.
        self._completions: List[Tuple[float, int, int, Flow]] = []
        self._push_seq = 0
        #: generation of the currently armed sentinel timer (stale timers
        #: no-op on fire) and the absolute time it targets (None = no timer).
        self._sentinel_gen = 0
        self._sentinel_time: float | None = None

    # ------------------------------------------------------------------ #
    # topology
    # ------------------------------------------------------------------ #
    def add_nic(self, name: str, up_capacity: float, down_capacity: float | None = None) -> Nic:
        if name in self._nics:
            raise ValueError(f"duplicate NIC name {name!r}")
        nic = Nic(name, up_capacity, down_capacity)
        if self._cohort:
            nic.up_dir = _Dir(nic, True, nic.up_capacity)
            nic.down_dir = _Dir(nic, False, nic.down_capacity)
        self._nics[name] = nic
        return nic

    def nic(self, name: str) -> Nic:
        return self._nics[name]

    @property
    def active_flow_count(self) -> int:
        return len(self._flows)

    # ------------------------------------------------------------------ #
    # hierarchical trunks (path mode)
    # ------------------------------------------------------------------ #
    def _build_trunks(self) -> None:
        topo = self.topology
        trunks = self._trunks
        for r in range(topo.n_racks):
            trunks[f"rack{r}:up"] = _PLink(f"rack{r}:up", topo.rack_uplink)
            trunks[f"rack{r}:down"] = _PLink(f"rack{r}:down", topo.rack_uplink)
        if topo.racks_per_pod:
            for p in range(topo.n_pods):
                trunks[f"pod{p}:up"] = _PLink(f"pod{p}:up", topo.pod_uplink)
                trunks[f"pod{p}:down"] = _PLink(f"pod{p}:down", topo.pod_uplink)
        if topo.core_capacity is not None:
            trunks["core"] = _PLink("core", topo.core_capacity)

    def trunk(self, name: str) -> _PLink:
        """Look up a trunk link by name (``rack3:up``, ``pod0:down``, ``core``)."""
        return self._trunks[name]

    def _trunk_path(self, src: Nic, dst: Nic) -> Tuple[_PLink, ...]:
        """Trunk links a src->dst flow crosses, memoized per host pair.

        Intra-rack flows cross none (the top-of-rack switch is non-blocking);
        cross-rack flows pay both rack trunks, plus pod trunks and the core
        when pods / a finite core are configured.
        """
        key = (src.name, dst.name)
        cached = self._trunk_cache.get(key)
        if cached is not None:
            return cached
        topo = self.topology
        r1 = topo.rack(src.name)
        r2 = topo.rack(dst.name)
        if r1 == r2:
            path: Tuple[_PLink, ...] = ()
        else:
            trunks = self._trunks
            links = [trunks[f"rack{r1}:up"]]
            core = trunks.get("core")
            if topo.pod(r1) != topo.pod(r2):
                links.append(trunks[f"pod{topo.pod(r1)}:up"])
                if core is not None:
                    links.append(core)
                links.append(trunks[f"pod{topo.pod(r2)}:down"])
            elif core is not None and not topo.racks_per_pod:
                # no pod tier: every cross-rack flow transits the core
                links.append(core)
            links.append(trunks[f"rack{r2}:down"])
            path = tuple(links)
        self._trunk_cache[key] = path
        return path

    def set_trunk_capacity(self, name: str, capacity: float) -> None:
        """Change a trunk's capacity mid-run (fault injection: uplink squeeze)."""
        if capacity <= 0:
            raise ValueError(f"trunk capacity must be positive, got {capacity}")
        tl = self._trunks[name]
        tl.capacity = float(capacity)
        tl.share = tl.capacity / max(1, len(tl.flows))
        self._rebalance_path((tl.flows,))

    def _path_rate(self, flow: Flow) -> float:
        """min share over the flow's endpoints and every trunk on its path."""
        rate = flow.src.up_share
        ds = flow.dst.down_share
        if ds < rate:
            rate = ds
        for tl in flow.links:
            s = tl.share
            if s < rate:
                rate = s
        return rate

    def _rebalance_path(self, flow_sets: Iterable[Dict[Flow, None]]) -> None:
        """Path-mode rebalance: recompute every flow crossing a touched link.

        ``flow_sets`` are the flow dicts of the link directions whose share
        changed (NIC up/down and/or trunks). The union is collected in
        encounter order (insertion-ordered dicts keep this deterministic)
        and flows whose min-share rate is unchanged are skipped, exactly
        like :meth:`_rebalance_pair`.
        """
        now = self.env.now
        seen: Dict[Flow, None] = {}
        for fs in flow_sets:
            for f in fs:
                seen[f] = None
        for f in seen:
            rate = self._path_rate(f)
            if rate != f.rate:
                self._set_rate(f, rate, now)
        self._arm_sentinel()

    # ------------------------------------------------------------------ #
    # transfers
    # ------------------------------------------------------------------ #
    def transfer(self, src: Nic, dst: Nic, nbytes: int, kind: str = "bulk") -> Event:
        """Start a bulk transfer; the event fires when the last byte lands."""
        if src is dst:
            # Loopback: no NIC constraint; charge memory-copy-ish zero time.
            self.metrics.add_traffic(0, kind)  # loopback does not hit the wire
            done = Event(self.env)
            done.succeed()
            return done
        if nbytes <= self.message_threshold:
            # message() returns a pre-scheduled Timeout — identical to an
            # Event fired via schedule_at, minus the extra allocation.
            return self.message(src, dst, nbytes, kind=kind)
        done = Event(self.env)
        flow = Flow(src, dst, nbytes, done, kind)
        flow.t_last = self.env.now
        topo = self.topology
        if topo is not None:
            flow.scope = topo.scope(src.name, dst.name)
        tracer = self.tracer
        if tracer.enabled:
            # async span: the flow ends inside the sentinel callback where no
            # process is active, so it never sits on a context stack
            flow.span = tracer.start_async(
                f"flow:{src.name}->{dst.name}", "net", nbytes=int(nbytes), kind=kind
            )
        self._flows[flow] = None
        src.up_flows[flow] = None
        up_share = src.up_capacity / len(src.up_flows)
        src.up_share = up_share
        dst.down_flows[flow] = None
        down_share = dst.down_capacity / len(dst.down_flows)
        dst.down_share = down_share
        if self._path:
            links = self._trunk_path(src, dst)
            if links:
                flow.links = links
                for tl in links:
                    tl.flows[flow] = None
                    tl.share = tl.capacity / len(tl.flows)
            self._rebalance_path(
                (src.up_flows, dst.down_flows) + tuple(tl.flows for tl in links)
            )
        elif self._cohort:
            now = self.env.now
            self._reshare(src.up_dir, up_share, now)
            self._reshare(dst.down_dir, down_share, now)
            # The new flow's bottleneck is the strictly tighter side (ties
            # stay on the uplink — same value either way, matching the
            # legacy `min(up, down)` with its `ds < rate` strict compare).
            if down_share < up_share:
                home, other = dst.down_dir, src.up_dir
            else:
                home, other = src.up_dir, dst.down_dir
            other.foreign[flow] = None
            self._insert_native(home, flow, now, other)
            self._flush_dirty(now)
        elif self.fairness == "equal-share":
            self._rebalance_pair(src, dst)
        else:
            self._rebalance_global()
        return done

    def message(
        self,
        src: Nic,
        dst: Nic,
        nbytes: int,
        kind: str = "message",
        done: Event | None = None,
    ) -> Event:
        """A small control message: latency + serialization, no fair sharing."""
        env = self.env
        wire_bytes = nbytes + self.message_header_bytes
        if src is dst:
            delay = self.per_message_overhead
        else:
            up = src.up_capacity
            down = dst.down_capacity
            delay = (
                self.latency
                + self.per_message_overhead
                + wire_bytes / (up if up < down else down)
            )
            # Same API as transfer()/_complete(): accounting hooks (test
            # doubles, future per-kind observers) see every wire byte.
            self.metrics.add_traffic(wire_bytes, kind)
            topo = self.topology
            if topo is not None:
                self.metrics.add_topo_traffic(
                    topo.scope(src.name, dst.name), kind, wire_bytes
                )
        if done is None:
            # A Timeout *is* an event pre-scheduled at now+delay: one
            # flattened constructor instead of Event + schedule_at.
            return Timeout(env, delay)
        # Caller-supplied completion event: fire it directly at delivery time.
        env.schedule_at(done, env.now + delay)
        return done

    # ------------------------------------------------------------------ #
    # fault injection
    # ------------------------------------------------------------------ #
    def set_nic_capacity(
        self, nic: Nic, up_capacity: float, down_capacity: float | None = None
    ) -> None:
        """Change a NIC's capacities mid-run (fault injection: NIC degradation).

        In-flight flows crossing the NIC are rebalanced immediately; flows on
        other links are untouched (equal-share) or globally refilled (maxmin).
        """
        if up_capacity <= 0:
            raise ValueError(f"NIC capacity must be positive, got {up_capacity}")
        if down_capacity is not None and down_capacity <= 0:
            # An explicit non-positive downlink used to slip through and
            # corrupt every share computed from it (zero or negative rates).
            raise ValueError(
                f"NIC capacity must be positive, got down_capacity={down_capacity}"
            )
        nic.up_capacity = float(up_capacity)
        nic.down_capacity = float(
            down_capacity if down_capacity is not None else up_capacity
        )
        up_share = nic.up_capacity / max(1, len(nic.up_flows))
        down_share = nic.down_capacity / max(1, len(nic.down_flows))
        nic.up_share = up_share
        nic.down_share = down_share
        if self._path:
            self._rebalance_path((nic.up_flows, nic.down_flows))
        elif self._cohort:
            now = self.env.now
            self._reshare(nic.up_dir, up_share, now)
            self._reshare(nic.down_dir, down_share, now)
            self._flush_dirty(now)
        elif self.fairness == "equal-share":
            self._rebalance_pair(nic, nic)
        else:
            self._rebalance_global()

    def fail_nic(self, nic: Nic, cause: str = "nic failure") -> None:
        """Abort every flow crossing ``nic`` (host crash / link loss).

        Each victim's ``done`` event fails with
        :class:`~repro.common.errors.ProviderUnavailableError`, so waiting
        transfer callers see the loss exactly like an RPC failure. Bytes
        already on the wire are charged to the traffic accounting.
        """
        victims = list(nic.up_flows) + list(nic.down_flows)
        if not victims:
            return
        now = self.env.now
        cohort = self._cohort
        touched: Dict[Nic, None] = {}  # insertion-ordered: determinism
        touched_trunks: Dict[_PLink, None] = {}
        for flow in victims:
            self._flows.pop(flow, None)
            src, dst = flow.src, flow.dst
            src.up_flows.pop(flow, None)
            dst.down_flows.pop(flow, None)
            touched[src] = None
            touched[dst] = None
            for tl in flow.links:
                tl.flows.pop(flow, None)
                touched_trunks[tl] = None
            if cohort:
                home = flow.home
                if home is not None:
                    # materialize at the pre-failure rate: replay the pending
                    # closed segments, then the open partial to now — the
                    # exact products the eager path would have applied
                    self._replay(flow)
                    t = flow.t_last
                    if t < now:
                        rem = flow.remaining - home.share * (now - t)
                        flow.remaining = rem if rem > 0.0 else 0.0
                        flow.t_last = now
                    partner = self._partner_dir(flow)
                    self._remove_native(home, flow)
                    del partner.foreign[flow]
                    flow.home = None
            elif flow.rate > 0.0:
                rem = flow.remaining - flow.rate * (now - flow.t_last)
                flow.remaining = rem if rem > 0.0 else 0.0
                flow.t_last = now
            flow.wake_seq += 1  # invalidate completion-heap entries
            self.metrics.add_traffic(flow.size - flow.remaining, flow.kind)
            if flow.scope is not None:
                self.metrics.add_topo_traffic(
                    flow.scope, flow.kind, flow.size - flow.remaining
                )
            span = flow.span
            if span is not None:
                span.set_error(f"aborted: {cause}")
                span.finish()
                flow.span = None
            flow.done.fail(ProviderUnavailableError(cause))
        for t in touched:
            t.up_share = t.up_capacity / max(1, len(t.up_flows))
            t.down_share = t.down_capacity / max(1, len(t.down_flows))
        for tl in touched_trunks:
            tl.share = tl.capacity / max(1, len(tl.flows))
        if self._path:
            self._rebalance_path(
                tuple(t.up_flows for t in touched)
                + tuple(t.down_flows for t in touched)
                + tuple(tl.flows for tl in touched_trunks)
            )
        elif cohort:
            for t in touched:
                self._reshare(t.up_dir, t.up_share, now)
                self._reshare(t.down_dir, t.down_share, now)
            self._flush_dirty(now)
        elif self.fairness == "equal-share":
            for t in touched:
                self._rebalance_pair(t, t)
        else:
            self._rebalance_global()

    # ------------------------------------------------------------------ #
    # rate maintenance
    # ------------------------------------------------------------------ #
    def _set_rate(self, flow: Flow, new_rate: float, now: float) -> None:
        """Apply a rate change: advance progress, bump generation, push ETA.

        Callers skip flows whose rate is unchanged — a flow drains linearly,
        so leaving ``(t_last, remaining)`` untouched until the rate actually
        changes is exact (and keeps its completion-heap entry valid).
        """
        old = flow.rate
        if old > 0.0:
            rem = flow.remaining - old * (now - flow.t_last)
            flow.remaining = rem if rem > 0.0 else 0.0
        flow.t_last = now
        flow.rate = new_rate
        flow.wake_seq += 1
        if new_rate > 0.0:
            ctime = now + flow.remaining / new_rate
            flow.ctime = ctime
            self._push_seq += 1
            heappush(self._completions, (ctime, self._push_seq, flow.wake_seq, flow))

    # ------------------------------------------------------------------ #
    # cohort engine (equal-share): lazy per-link-direction rate epochs
    # ------------------------------------------------------------------ #
    def _partner_dir(self, flow: Flow) -> _Dir:
        """The link direction a flow crosses besides its bottleneck side."""
        src_up = flow.src.up_dir
        return flow.dst.down_dir if flow.home is src_up else src_up

    def _replay(self, flow: Flow, stop: Optional[int] = None) -> None:
        """Drain the flow's pending closed segments (exact materialization).

        Each pending segment ``(t_end, share)`` corresponds to one
        subtract-and-clamp the eager per-flow path performed at that
        boundary; replaying them in order reproduces the same float results
        bit-for-bit. ``stop`` (an absolute segment index) excludes a suffix —
        used when a bottleneck switch does not change the rate *value*, where
        the eager path skipped the materialization entirely.
        """
        home = flow.home
        segs = home.segs
        i = flow.seg_idx - home.seg_base
        end = len(segs) if stop is None else stop - home.seg_base
        if i >= end:
            return
        rem = flow.remaining
        t = flow.t_last
        while i < end:
            t_end, share = segs[i]
            rem -= share * (t_end - t)
            if rem <= 0.0:
                rem = 0.0
            t = t_end
            i += 1
        flow.remaining = rem
        flow.t_last = t
        flow.seg_idx = home.seg_base + end

    def _virtual_rem(self, flow: Flow, now: float) -> float:
        """The flow's remaining bytes at ``now``, computed without mutating.

        Used as the insort key: probing a native mid-segment must not
        materialize it (the eager path would not have touched it), so the
        pending segments plus the open partial are applied to a local copy.
        """
        home = flow.home
        segs = home.segs
        i = flow.seg_idx - home.seg_base
        n = len(segs)
        rem = flow.remaining
        t = flow.t_last
        while i < n:
            t_end, share = segs[i]
            rem -= share * (t_end - t)
            if rem <= 0.0:
                rem = 0.0
            t = t_end
            i += 1
        if t < now:
            rem -= home.share * (now - t)
            if rem <= 0.0:
                rem = 0.0
        return rem

    def _insert_native(self, d: _Dir, flow: Flow, now: float, partner: _Dir) -> None:
        """Make ``flow`` a native of ``d`` (its rate = d.share from now on)."""
        flow.home = d
        flow.seg_idx = d.seg_base + len(d.segs)
        flow.rate = d.share  # informational; authoritative rate is d.share
        if partner.share < d.partner_floor:
            d.partner_floor = partner.share
        insort_right(d.natives, flow, key=lambda g: self._virtual_rem(g, now))
        if d not in self._dirty:
            self._dirty[d] = None

    def _remove_native(self, d: _Dir, flow: Flow) -> None:
        d.natives.remove(flow)
        if d not in self._dirty:
            self._dirty[d] = None

    def _reshare(self, d: _Dir, new_share: float, now: float) -> None:
        """Apply a share *value* change to one link direction.

        Closes the current segment (recording the old level for lazy
        replays) and queues the direction for bottleneck settling at event
        end (:meth:`_settle`). Equal-value calls are no-ops, exactly like
        the legacy path's skip-unchanged-rate.
        """
        old = d.share
        if new_share == old:
            return
        if d not in self._dirty:
            self._dirty[d] = None
        natives = d.natives
        if natives:
            segs = d.segs
            segs.append((now, old))
            if len(segs) > 256 and len(segs) > 8 * len(natives):
                # compact: drain everyone to the second-to-last boundary
                # (the final segment stays — a tie switch may need to skip
                # it) and drop the replayed prefix
                stop = d.seg_base + len(segs) - 1
                for g in natives:
                    self._replay(g, stop)
                last = segs[-1]
                d.seg_base += len(segs) - 1
                segs[:] = [last]
        d.share = new_share
        self._pending.append((d, old))

    def _settle(self, now: float) -> None:
        """Process the event's bottleneck switches, all shares final.

        A decrease can capture foreign flows whose other side is now looser;
        an increase can lose natives to their other side. Each direction is
        reshared at most once per event, so ``old`` is the rate its natives
        actually had before now.
        """
        pending = self._pending
        if not pending:
            return
        for d, old in pending:
            if d.share < old:
                if d.foreign:
                    self._absorb(d, now)
            elif d.natives and d.partner_floor < d.share:
                self._expel(d, now, old)
        pending.clear()

    def _absorb(self, d: _Dir, now: float) -> None:
        """After a share decrease: capture foreign flows now tighter here."""
        share = d.share
        moved: List[Flow] = []
        for f in d.foreign:
            home = f.home
            if share < home.share:
                moved.append(f)
            elif home.partner_floor > share:
                # this side got looser than the cached bound of the flow's
                # bottleneck cohort; lower it so future increases there scan
                home.partner_floor = share
        for f in moved:
            home = f.home
            hsegs = home.segs
            if hsegs and hsegs[-1][0] == now and hsegs[-1][1] == share:
                # the home was reshared away from exactly our level: the
                # flow's rate *value* is preserved across the switch, so the
                # eager path skipped the materialization — replay everything
                # except the just-closed segment, keeping (t_last, remaining)
                # spanning it
                self._replay(f, home.seg_base + len(hsegs) - 1)
            else:
                # rate value changes — the eager path materializes at now:
                # pending segments, then the open partial at the old rate
                # (home.share if the home was not reshared this event; if it
                # was, the replay drains to now and the partial is empty)
                self._replay(f)
                t = f.t_last
                if t < now:
                    rem = f.remaining - home.share * (now - t)
                    f.remaining = rem if rem > 0.0 else 0.0
                    f.t_last = now
            self._remove_native(home, f)
            home.foreign[f] = None
            del d.foreign[f]
            self._insert_native(d, f, now, home)

    def _expel(self, d: _Dir, now: float, old_share: float) -> None:
        """After a share increase: hand off natives now tighter elsewhere."""
        share = d.share
        keep: List[Flow] = []
        moved: List[Tuple[Flow, _Dir]] = []
        floor = _INF
        for f in d.natives:
            p = self._partner_dir(f)
            ps = p.share
            if ps < share:
                moved.append((f, p))
            else:
                keep.append(f)
                if ps < floor:
                    floor = ps
        d.partner_floor = floor
        if not moved:
            return
        d.natives = keep  # removal preserves the survivors' sorted order
        stop = d.seg_base + len(d.segs) - 1
        for f, p in moved:
            if p.share == old_share:
                # the rate *value* is unchanged, so the eager path skipped
                # this materialization: replay everything except the segment
                # just closed, keeping (t_last, remaining) spanning it — the
                # next product covers the whole constant-rate interval
                self._replay(f, stop)
            else:
                self._replay(f)
            d.foreign[f] = None
            del p.foreign[f]
            self._insert_native(p, f, now, d)
        if d not in self._dirty:
            self._dirty[d] = None

    def _flush_dirty(self, now: float) -> None:
        """End-of-event: settle switches, invalidate dirs, repush head ETAs."""
        self._settle(now)
        dirty = self._dirty
        if dirty:
            completions = self._completions
            for d in dirty:
                d.epoch += 1
                natives = d.natives
                if natives:
                    head = natives[0]
                    self._replay(head)
                    # t_last may lag now after a value-preserving switch; the
                    # ETA is the one the eager path pushed at that older
                    # materialization: t_last + remaining / share
                    ctime = head.t_last + head.remaining / d.share
                    head.ctime = ctime
                    self._push_seq += 1
                    heappush(completions, (ctime, self._push_seq, d.epoch, d))
            dirty.clear()
        self._arm_sentinel()

    def _rebalance_pair(self, src: Nic, dst: Nic) -> None:
        """Equal-share rebalance after an arrival/departure on (src, dst).

        Only the up-share of ``src`` and the down-share of ``dst`` changed,
        so only flows crossing those two link directions can see a new rate.
        """
        now = self.env.now
        for flow in src.up_flows:
            rate = flow.src.up_share
            ds = flow.dst.down_share
            if ds < rate:
                rate = ds
            if rate != flow.rate:
                self._set_rate(flow, rate, now)
        for flow in dst.down_flows:
            if flow.src is src:
                continue  # already handled in the uplink pass
            rate = flow.src.up_share
            ds = flow.dst.down_share
            if ds < rate:
                rate = ds
            if rate != flow.rate:
                self._set_rate(flow, rate, now)
        self._arm_sentinel()

    def _rebalance_global(self) -> None:
        """Max-min rebalance: recompute every active flow's rate."""
        now = self.env.now
        for flow, rate in self._progressive_filling():
            if rate != flow.rate:
                self._set_rate(flow, rate, now)
        self._arm_sentinel()

    def _progressive_filling(self) -> List[Tuple[Flow, float]]:
        """Exact max-min fairness over all active flows (water filling).

        Heap-driven: each link direction carries (residual capacity, unfixed
        flow count); the globally tightest link fixes all its unfixed flows
        at its share level, then the other endpoints' shares are re-pushed.
        Lazy invalidation via per-link version counters. O(F log L) instead
        of repeated O(links x flows) scans.
        """
        flows = self._flows
        if not flows:
            return []
        # Link record: [residual, count, unfixed-flows dict, version, index].
        links: Dict[Tuple[str, Nic], list] = {}
        link_list: List[list] = []
        flow_links: Dict[Flow, Tuple[list, list]] = {}
        # many flows share a (src, dst) pair (fan-in to a repository node);
        # memoize the resolved link tuple per pair to skip repeat lookups
        pair_links: Dict[Tuple[Nic, Nic], Tuple[list, list]] = {}
        for flow in flows:
            pair = (flow.src, flow.dst)
            pl = pair_links.get(pair)
            if pl is None:
                key_u = ("u", flow.src)
                lu = links.get(key_u)
                if lu is None:
                    lu = [flow.src.up_capacity, 0, {}, 0, len(link_list)]
                    links[key_u] = lu
                    link_list.append(lu)
                key_d = ("d", flow.dst)
                ld = links.get(key_d)
                if ld is None:
                    ld = [flow.dst.down_capacity, 0, {}, 0, len(link_list)]
                    links[key_d] = ld
                    link_list.append(ld)
                pl = (lu, ld)
                pair_links[pair] = pl
            else:
                lu, ld = pl
            lu[1] += 1
            lu[2][flow] = None
            ld[1] += 1
            ld[2][flow] = None
            flow_links[flow] = pl
        heap: List[Tuple[float, int, int]] = [
            (link[0] / link[1], link[4], link[3]) for link in link_list
        ]
        heapify(heap)
        rates: List[Tuple[Flow, float]] = []
        n_unfixed = len(flows)
        while n_unfixed and heap:
            share, idx, ver = heappop(heap)
            link = link_list[idx]
            if ver != link[3] or link[1] == 0:
                continue  # stale entry
            level = share
            touched: Dict[int, list] = {}
            for flow in list(link[2]):
                rates.append((flow, level))
                n_unfixed -= 1
                lu, ld = flow_links[flow]
                for other in (lu, ld):
                    del other[2][flow]
                    other[1] -= 1
                    other[0] -= level
                    if other is not link:
                        touched[other[4]] = other
            link[3] += 1  # saturated; invalidate pending entries
            for other in touched.values():
                other[3] += 1
                if other[1] > 0:
                    heappush(heap, (other[0] / other[1], other[4], other[3]))
        return rates

    # ------------------------------------------------------------------ #
    # completion sentinel
    # ------------------------------------------------------------------ #
    def _arm_sentinel(self) -> None:
        """Ensure one timer is pending at the earliest valid completion time.

        Lazy cancellation: if the armed timer targets a time at or before the
        heap head it is left alone (a too-early fire simply re-arms); if the
        head moved earlier, a fresh timer is armed and the generation bump
        makes the old one a no-op.
        """
        heap = self._completions
        if self._cohort:
            # entries are (ctime, push_seq, epoch, _Dir): stale when the
            # direction's epoch moved on or it has no natives left
            while heap:
                head = heap[0]
                d = head[3]
                if head[2] != d.epoch or not d.natives:
                    heappop(heap)
                    continue
                break
        else:
            flows = self._flows
            while heap:
                head = heap[0]
                if head[2] != head[3].wake_seq or head[3] not in flows:
                    heappop(heap)
                    continue
                break
        if not heap:
            return
        t = heap[0][0]
        if self._sentinel_time is not None and self._sentinel_time <= t:
            return
        self._sentinel_gen += 1
        self._sentinel_time = t
        env = self.env
        ev = Event(env)
        ev.callbacks.append(self._on_sentinel)
        env.schedule_at(ev, t, value=self._sentinel_gen)

    def _on_sentinel(self, ev: Event) -> None:
        if ev._value != self._sentinel_gen:
            return  # superseded by an earlier-armed sentinel
        self._sentinel_time = None
        heap = self._completions
        cohort = self._cohort
        if cohort:
            while heap:
                head = heap[0]
                d = head[3]
                if head[2] != d.epoch or not d.natives:
                    heappop(heap)
                    continue
                break
        else:
            flows = self._flows
            while heap:
                head = heap[0]
                if head[2] != head[3].wake_seq or head[3] not in flows:
                    heappop(heap)
                    continue
                break
        if not heap:
            return
        if heap[0][0] <= self.env.now:
            # Complete exactly one flow; the rebalance it triggers re-arms
            # the sentinel (a tied completion fires again at the same time),
            # which keeps completion ordering identical to per-flow timers.
            entry = heappop(heap)
            self._complete(entry[3].natives[0] if cohort else entry[3])
        else:
            self._arm_sentinel()

    def _complete(self, flow: Flow) -> None:
        self._flows.pop(flow, None)
        src, dst = flow.src, flow.dst
        src.up_flows.pop(flow, None)
        up_share = src.up_capacity / max(1, len(src.up_flows))
        src.up_share = up_share
        dst.down_flows.pop(flow, None)
        down_share = dst.down_capacity / max(1, len(dst.down_flows))
        dst.down_share = down_share
        flow.wake_seq += 1  # invalidate any remaining heap entries
        self.metrics.add_traffic(flow.size, flow.kind)
        if flow.scope is not None:
            self.metrics.add_topo_traffic(flow.scope, flow.kind, flow.size)
        span = flow.span
        if span is not None:
            elapsed = self.env.now - span.t0
            if elapsed > 0.0:
                span.set(achieved_bw=flow.size / elapsed)
            span.finish()
            flow.span = None
        if self._path:
            links = flow.links
            for tl in links:
                del tl.flows[flow]
                tl.share = tl.capacity / max(1, len(tl.flows))
            self._rebalance_path(
                (src.up_flows, dst.down_flows) + tuple(tl.flows for tl in links)
            )
        elif self._cohort:
            now = self.env.now
            home = flow.home
            partner = self._partner_dir(flow)
            self._remove_native(home, flow)
            del partner.foreign[flow]
            flow.home = None
            self._reshare(src.up_dir, up_share, now)
            self._reshare(dst.down_dir, down_share, now)
            self._flush_dirty(now)
        elif self.fairness == "equal-share":
            self._rebalance_pair(src, dst)
        else:
            self._rebalance_global()
        # Last byte still pays propagation latency; deliver `done` directly.
        env = self.env
        env.schedule_at(flow.done, env.now + self.latency)
