"""A taktuk-like broadcast tree (the prepropagation transport, §5.2).

taktuk [10] distributes data along an adaptive multicast tree built on the
postal model. For multi-gigabyte VM images its ``put`` pipeline behaves as a
**disk-staged store-and-forward tree**: a node receives the whole file to
its local disk before serving its children. That behaviour — not raw link
speed — is what makes prepropagation cost hundreds of seconds at
hundred-node scale in the paper, so it is modelled explicitly:

* reception = network flow (fair-shared) followed by the local disk write;
* the source pays a disk read (the image is cold on the NFS server); inner
  nodes forward from the page cache (the file was just received);
* children of one node are served concurrently but share its uplink;
  deeper levels start strictly later (no cross-level pipelining).

A block-pipelined variant (``block_size`` set) is provided as an ablation:
it forwards blocks as they arrive and is dramatically faster, but still
loses to lazy mirroring on network traffic and time-to-first-boot because it
must move the *entire* image everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence

from ..common.errors import SimulationError
from ..common.payload import Payload
from ..simkit.core import Event
from ..simkit.host import Fabric, Host


def build_tree(root: str, targets: Sequence[str], fanout: int) -> Dict[str, List[str]]:
    """BFS fanout-``k`` tree over ``targets`` rooted at ``root``."""
    if fanout < 1:
        raise SimulationError("fanout must be >= 1")
    children: Dict[str, List[str]] = {root: []}
    frontier = [root]
    queue = list(targets)
    while queue:
        next_frontier: List[str] = []
        for parent in frontier:
            for _ in range(fanout):
                if not queue:
                    break
                child = queue.pop(0)
                children[parent].append(child)
                children[child] = []
                next_frontier.append(child)
        if not next_frontier and queue:
            raise SimulationError("tree construction stalled")
        frontier = next_frontier
    return children


def tree_depth(children: Dict[str, List[str]], root: str) -> int:
    depth = 0
    frontier = [root]
    while frontier:
        nxt = [c for p in frontier for c in children[p]]
        if nxt:
            depth += 1
        frontier = nxt
    return depth


@dataclass
class BroadcastReport:
    """Outcome of one broadcast."""

    #: per-target completion time (file fully on local disk)
    finish_times: Dict[str, float] = field(default_factory=dict)
    #: time the slowest target finished
    makespan: float = 0.0
    depth: int = 0


def broadcast(
    fabric: Fabric,
    source: Host,
    targets: Sequence[Host],
    payload: Payload,
    dest_path: str,
    fanout: int = 2,
    block_size: Optional[int] = None,
    read_from_disk_at_source: bool = True,
    forward_from_disk: bool = False,
) -> Generator[Event, None, BroadcastReport]:
    """Broadcast ``payload`` from ``source`` to every target's local disk.

    ``block_size=None`` -> taktuk-style store-and-forward (whole file per
    hop); otherwise pipelined forwarding at ``block_size`` granularity.
    Returns a :class:`BroadcastReport`; each target ends up with the content
    at ``dest_path`` in its local file namespace.
    """
    env = fabric.env
    nbytes = payload.size
    children = build_tree(source.name, [t.name for t in targets], fanout)
    hosts = {source.name: source, **{t.name: t for t in targets}}
    blocks = (
        [nbytes]
        if block_size is None
        else [min(block_size, nbytes - i) for i in range(0, nbytes, block_size)]
    )
    n_blocks = len(blocks)
    # block_ready[node][b] fires when node holds blocks 0..b locally
    block_ready: Dict[str, List[Event]] = {
        name: [env.event() for _ in range(n_blocks)] for name in hosts
    }
    report = BroadcastReport(depth=tree_depth(children, source.name))
    done_events: List[Event] = []

    def node_done(name: str) -> Generator:
        yield block_ready[name][-1]
        report.finish_times[name] = env.now

    def feeder(parent_name: str, child_name: str) -> Generator:
        parent = hosts[parent_name]
        child = hosts[child_name]
        for b, blen in enumerate(blocks):
            yield block_ready[parent_name][b]
            if parent_name == source.name:
                # the source file is cold on the NFS server's disk
                if read_from_disk_at_source:
                    yield from parent.disk.read(blen, sequential=True)
            elif forward_from_disk:
                # ablation: staging without page cache (re-read per child)
                yield from parent.disk.read(blen, sequential=True)
            yield fabric.network.transfer(parent.nic, child.nic, blen, kind="broadcast")
            yield from child.disk.write(blen, sequential=True)
            block_ready[child_name][b].succeed()

    # the source holds everything from the start
    for ev in block_ready[source.name]:
        ev.succeed()
    for parent_name, kids in children.items():
        for child_name in kids:
            env.process(feeder(parent_name, child_name), name=f"bcast-{parent_name}->{child_name}")
    for target in targets:
        done_events.append(env.process(node_done(target.name), name=f"bcast-done-{target.name}"))

    yield env.all_of(done_events)
    report.makespan = max(report.finish_times.values(), default=env.now)
    # content plane: every target now holds the file locally
    for target in targets:
        if target.exists(dest_path):
            target.unlink(dest_path)
        f = target.create_file(dest_path, nbytes)
        f.write(0, payload)
    return report
