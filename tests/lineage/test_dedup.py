"""Sharing accounting: conservation, replication, reclaimable-if-deleted."""

from repro.blobseer import collect_garbage
from repro.lineage import dedup_accounting

from helpers import CHUNK, IMG, build_chain, make


def row_for(report, blob_id, version):
    return next(
        r for r in report.per_version
        if r.blob_id == blob_id and r.version == version
    )


class TestConservation:
    def test_exclusive_plus_shared_equals_live(self, chain):
        fab, dep, hosts, rec, records = chain
        report = dedup_accounting(dep)
        assert report.conserves()
        assert report.total_exclusive + report.total_shared == report.live_bytes

    def test_matches_footprint_after_gc(self, chain):
        fab, dep, hosts, rec, records = chain
        mid = records[2]
        dep.registry.delete_version(mid.blob_id, mid.version)
        # retiring leaves garbage: live < stored until a sweep runs
        before = dedup_accounting(dep)
        assert before.conserves()
        collect_garbage(dep)
        after = dedup_accounting(dep)
        assert after.conserves()
        assert after.matches_footprint()
        assert after.live_bytes <= before.stored_bytes

    def test_base_image_is_shared_down_the_chain(self, chain):
        fab, dep, hosts, rec, records = chain
        report = dedup_accounting(dep)
        # the whole base image is shared: the seed's snapshot and every
        # chain version reference its chunks
        assert report.total_shared >= IMG
        assert 0.0 < report.sharing_ratio() < 1.0


class TestReplication:
    def test_accounting_counts_every_replica(self):
        """Satellite: physical accounting under replication_factor > 1."""
        single = make(replication=1)
        double = make(replication=2)
        for fab, dep, hosts, rec in (single, double):
            build_chain(fab, dep, hosts[0], rec, depth=4)
        r1 = dedup_accounting(single[1])
        r2 = dedup_accounting(double[1])
        assert r1.conserves() and r2.conserves()
        assert r2.matches_footprint()
        # replicas double the physical footprint, shared and exclusive alike
        assert r2.live_bytes == 2 * r1.live_bytes
        assert r2.total_shared == 2 * r1.total_shared
        assert r2.total_exclusive == 2 * r1.total_exclusive


class TestReclaimable:
    def test_reclaimable_predicts_gc(self, chain):
        """Deleting exactly one version frees exactly its exclusive bytes."""
        fab, dep, hosts, rec, records = chain
        mid = records[2]
        predicted = row_for(
            dedup_accounting(dep), mid.blob_id, mid.version
        ).reclaimable_bytes
        stored_before = dep.stored_bytes()
        dep.registry.delete_version(mid.blob_id, mid.version)
        report = collect_garbage(dep)
        assert report.bytes_reclaimed == predicted
        assert dep.stored_bytes() == stored_before - predicted

    def test_head_rewrites_are_exclusive(self, chain):
        fab, dep, hosts, rec, records = chain
        head = records[-1]
        row = row_for(dedup_accounting(dep), head.blob_id, head.version)
        # the head's last diff chunk is referenced by it alone
        assert row.exclusive_bytes >= CHUNK
        assert row.chunks == IMG // CHUNK
