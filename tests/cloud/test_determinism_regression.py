"""Timeline determinism of the full stack (regression guard for the fast path).

The engine promises bit-identical timelines for identical seeds; every
optimization in the simulator fast path (sentinel wakeups, incremental fair
share, shared process bootstraps, merged timeouts) argues it preserves the
exact event timeline. This test pins that promise at the system level: a
full deploy + snapshot cycle run twice from the same seed must agree on the
final clock, the processed-event count, and every traffic counter.
"""

import pytest

from repro.calibration import Calibration, ImageSpec
from repro.cloud import build_cloud, deploy, snapshot_all
from repro.common.units import KiB, MiB
from repro.vmsim import make_image

CALIB = Calibration(
    image=ImageSpec(size=64 * MiB, chunk_size=256 * KiB, boot_touched_bytes=8 * MiB)
)
N_NODES = 8
SEED = 7


def _run_cycle(approach="mirror", with_snapshot=False):
    cloud = build_cloud(N_NODES, seed=SEED, calib=CALIB)
    image = make_image(CALIB.image.size, CALIB.image.boot_touched_bytes, n_regions=16)
    result = deploy(cloud, image, N_NODES, approach)
    if with_snapshot:
        snapshot_all(cloud, result.vms, approach)
    return {
        "now": cloud.env.now,
        "events": cloud.env.event_count,
        "traffic": dict(cloud.metrics.traffic),
        "boot_times": tuple(result.boot_times),
        "completion": result.completion_time,
    }


@pytest.mark.parametrize("approach", ["mirror", "qcow2-pvfs", "prepropagation"])
def test_deploy_timeline_is_reproducible(approach):
    a = _run_cycle(approach)
    b = _run_cycle(approach)
    # exact equality on purpose: same seed must give the same timeline
    # bit for bit, not merely approximately
    assert a["now"] == b["now"]
    assert a["events"] == b["events"]
    assert a["traffic"] == b["traffic"]
    assert a["boot_times"] == b["boot_times"]
    assert a["completion"] == b["completion"]


def test_deploy_snapshot_timeline_is_reproducible():
    a = _run_cycle(with_snapshot=True)
    b = _run_cycle(with_snapshot=True)
    assert a == b


def test_distinct_seeds_diverge():
    """Sanity check that the equality above is not vacuous."""
    a = _run_cycle()
    cloud = build_cloud(N_NODES, seed=SEED + 1, calib=CALIB)
    image = make_image(CALIB.image.size, CALIB.image.boot_touched_bytes, n_regions=16)
    deploy(cloud, image, N_NODES, "mirror")
    assert cloud.env.now != a["now"] or cloud.env.event_count != a["events"]


class _engine:
    """Force a rebalance engine (cohort or legacy) for the enclosed build."""

    def __init__(self, rebalance):
        self.rebalance = rebalance

    def __enter__(self):
        import repro.simkit.network as netmod

        self._netmod = netmod
        self._prev = netmod.DEFAULT_REBALANCE
        netmod.DEFAULT_REBALANCE = self.rebalance

    def __exit__(self, *exc):
        self._netmod.DEFAULT_REBALANCE = self._prev


def _run_engine_cycle(rebalance, approach="mirror", with_snapshot=False, traced=False):
    """One full cycle under an explicit rebalance engine."""
    with _engine(rebalance):
        cloud = build_cloud(N_NODES, seed=SEED, calib=CALIB)
        tracer = None
        if traced:
            from repro import obs

            tracer = obs.install_tracer(cloud.fabric)
        image = make_image(
            CALIB.image.size, CALIB.image.boot_touched_bytes, n_regions=16
        )
        result = deploy(cloud, image, N_NODES, approach)
        if with_snapshot:
            snapshot_all(cloud, result.vms, approach)
        return {
            "now": cloud.env.now,
            "events": cloud.env.event_count,
            "traffic": dict(cloud.metrics.traffic),
            "boot_times": tuple(result.boot_times),
            "completion": result.completion_time,
            "spans": len(tracer.spans) if tracer is not None else 0,
        }


def _run_engine_fault_cycle(rebalance):
    """A fault-injected deployment (NIC degradation + a provider crash that
    replication survives) under an explicit rebalance engine."""
    from repro.faults import FaultPlan, RetryPolicy, resilient_deploy
    from repro.faults.plan import FaultEvent
    from repro.simkit import rpc

    with _engine(rebalance):
        cloud = build_cloud(
            N_NODES, seed=SEED, calib=CALIB,
            replication_factor=2,
            retry=RetryPolicy(attempts=4, base_delay=0.25, rpc_timeout=1.0),
        )
        plan = FaultPlan(
            (
                FaultEvent(
                    at=0.3, kind="nic-degrade",
                    target=cloud.compute[1].name, factor=4.0,
                ),
                FaultEvent(
                    at=0.6, kind="provider-crash",
                    target=cloud.compute[N_NODES - 1].name, duration=2.0,
                ),
            )
        )
        image = make_image(
            CALIB.image.size, CALIB.image.boot_touched_bytes, n_regions=16
        )
        try:
            res = resilient_deploy(cloud, image, N_NODES - 2, "mirror", plan=plan)
        finally:
            rpc.reset_failures()  # the down-host registry is process-global
        return {
            "now": cloud.env.now,
            "traffic": dict(cloud.metrics.traffic),
            "boot_times": tuple(res.boot_times),
            "completion": res.completion_time,
            "survival": res.survival_rate,
            "boots_failed": res.boots_failed,
        }


class TestCohortEngineMatchesLegacy:
    """The cohort rebalance engine against its per-flow oracle, full stack.

    The cohort engine must not move a single event on the fig. 4 / fig. 5
    cycles: same clock, same event count, same traffic, same boot times —
    exact equality, including traced runs. Fault-injected runs compare
    everything except the event count (`fail_nic` arms a different number
    of no-op sentinel timers per engine; application ordering and results
    are unaffected — see DESIGN.md §8).
    """

    @pytest.mark.parametrize("approach", ["mirror", "qcow2-pvfs", "prepropagation"])
    def test_deploy_bit_identical(self, approach):
        legacy = _run_engine_cycle("legacy", approach)
        cohort = _run_engine_cycle("cohort", approach)
        assert cohort == legacy

    def test_snapshot_cycle_bit_identical(self):
        legacy = _run_engine_cycle("legacy", with_snapshot=True)
        cohort = _run_engine_cycle("cohort", with_snapshot=True)
        assert cohort == legacy

    def test_traced_cycle_bit_identical(self):
        legacy = _run_engine_cycle("legacy", traced=True)
        cohort = _run_engine_cycle("cohort", traced=True)
        assert cohort == legacy
        assert cohort["spans"] > 0

    def test_fault_injected_results_identical(self):
        legacy = _run_engine_fault_cycle("legacy")
        cohort = _run_engine_fault_cycle("cohort")
        assert cohort == legacy
        # the crash must actually have bitten (otherwise this is vacuous)
        assert cohort["survival"] > 0
