"""Paper-style text rendering of reproduced figures.

The benchmark harness prints, for every reproduced figure, the series the
paper plots — instance counts on the x axis, one column per approach — so a
run's output can be compared line by line against the original plots.
"""

from __future__ import annotations

from typing import Iterable, List

from .series import Figure, Series


def render_figure(figure: Figure, fmt: str = "{:10.2f}") -> str:
    """ASCII table: one row per x value, one column per series."""
    names = list(figure.series)
    xs: List[float] = sorted({x for s in figure.series.values() for x in s.x})
    header = f"# {figure.figure_id}: {figure.title}"
    lines = [header, ""]
    col = max(12, max((len(n) for n in names), default=12) + 2)
    lines.append(figure.x_label.ljust(16) + "".join(n.rjust(col) for n in names))
    for x in xs:
        row = f"{x:<16g}"
        for name in names:
            try:
                row += fmt.format(figure.series[name].at(x)).rjust(col)
            except KeyError:
                row += "-".rjust(col)
        lines.append(row)
    lines.append(f"(y: {figure.y_label})")
    return "\n".join(lines)


def render_bars(title: str, labels: Iterable[str], groups: dict, fmt: str = "{:12.1f}") -> str:
    """Grouped-bar style table (Figs. 6, 7, 8): one row per label."""
    labels = list(labels)
    names = list(groups)
    col = max(14, max(len(n) for n in names) + 2)
    lines = [f"# {title}", "", " " * 16 + "".join(n.rjust(col) for n in names)]
    for i, label in enumerate(labels):
        row = label.ljust(16)
        for name in names:
            row += fmt.format(groups[name][i]).rjust(col)
        lines.append(row)
    return "\n".join(lines)


def check_shape(description: str, condition: bool) -> str:
    """Render a shape-acceptance check (used in bench output and EXPERIMENTS.md)."""
    mark = "PASS" if condition else "FAIL"
    return f"[{mark}] {description}"
