"""Persistent, content-keyed cache of sweep point results.

Every cached point lives in one JSON file under the cache root (by default
``benchmarks/results/cache/``), named by a SHA-256 over everything that
determines the simulated outcome:

* the spec fields (kind, profile name, approach, n, seed, overrides, params),
* the resolved profile fields (pool size, image geometry, workload knobs),
* the resolved calibration constants the point runs under,
* a code-version token (:data:`CODE_VERSION`) bumped when the simulation's
  semantics change.

Editing the calibration, the profile, or the spec therefore *misses* and
recomputes; re-running after an unrelated edit *hits* and replays instantly.
Wall time is stored for information but is not part of the identity.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Optional

from .profiles import profile_calibration, resolve_profile
from .spec import PointResult, PointSpec

#: bump when a change to the simulator alters simulated outcomes; stale
#: cache entries keyed under the old token are then never replayed
CODE_VERSION = "sweep-cache-v4"  # v4: lineage point kind + version-pin registry

#: environment variable overriding the default cache directory
CACHE_ENV = "REPRO_SWEEP_CACHE"


def default_cache_dir() -> Path:
    env = os.environ.get(CACHE_ENV)
    if env:
        return Path(env)
    # src/repro/runner/cache.py -> repo root is three levels above the package
    return Path(__file__).resolve().parents[3] / "benchmarks" / "results" / "cache"


def point_key(spec: PointSpec) -> str:
    """Content hash identifying a spec's simulated outcome."""
    profile = resolve_profile(spec.profile)
    calib = profile_calibration(profile, spec.overrides)
    material = {
        "code_version": CODE_VERSION,
        "spec": spec.to_json(),
        "profile": dataclasses.asdict(profile),
        "calibration": dataclasses.asdict(calib),
    }
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """A directory of ``<content-key>.json`` point results."""

    def __init__(self, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def lookup(self, spec: PointSpec, key: Optional[str] = None) -> Optional[PointResult]:
        """Replay a cached result, or ``None`` on a miss / unreadable entry."""
        key = key or point_key(spec)
        path = self._path(key)
        try:
            data = json.loads(path.read_text())
            result = PointResult.from_json(data["result"], cached=True)
        except (OSError, ValueError, KeyError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, result: PointResult, key: Optional[str] = None) -> Path:
        key = key or point_key(result.spec)
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        payload = {
            "key": key,
            "code_version": CODE_VERSION,
            "result": result.to_json(),
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)  # atomic vs concurrent writers of the same key
        self.stores += 1
        return path

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink()
                removed += 1
        return removed

    def __len__(self) -> int:
        return len(list(self.root.glob("*.json"))) if self.root.is_dir() else 0
