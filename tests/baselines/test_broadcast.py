"""Tests for the taktuk-like broadcast tree."""

import pytest

from repro.baselines.broadcast import broadcast, build_tree, tree_depth
from repro.baselines.nfs import NfsServer
from repro.baselines.prepropagation import prepropagate
from repro.common.errors import SimulationError
from repro.common.payload import Payload
from repro.common.units import MB
from repro.simkit.host import Fabric


def pattern(n, seed=1):
    return bytes((i * 131 + seed * 17) % 256 for i in range(n))


class TestTreeConstruction:
    def test_fanout_two_shape(self):
        tree = build_tree("root", [f"n{i}" for i in range(6)], fanout=2)
        assert tree["root"] == ["n0", "n1"]
        assert tree["n0"] == ["n2", "n3"]
        assert tree["n1"] == ["n4", "n5"]
        assert tree["n2"] == []

    def test_depth(self):
        tree = build_tree("r", [f"n{i}" for i in range(6)], fanout=2)
        assert tree_depth(tree, "r") == 2
        assert tree_depth(build_tree("r", [], 2), "r") == 0
        assert tree_depth(build_tree("r", ["a"], 2), "r") == 1

    def test_depth_grows_logarithmically(self):
        d30 = tree_depth(build_tree("r", [f"n{i}" for i in range(30)], 2), "r")
        d110 = tree_depth(build_tree("r", [f"n{i}" for i in range(110)], 2), "r")
        assert d30 == 4  # 2+4+8+16 = 30
        assert d110 == 6

    def test_fanout_one_is_chain(self):
        tree = build_tree("r", ["a", "b", "c"], fanout=1)
        assert tree_depth(tree, "r") == 3

    def test_invalid_fanout(self):
        with pytest.raises(SimulationError):
            build_tree("r", ["a"], 0)


def make_cluster(n, seed=3):
    fab = Fabric(seed=seed)
    source = fab.add_host("source")
    targets = [fab.add_host(f"n{i}") for i in range(n)]
    return fab, source, targets


def run(fab, gen):
    return fab.run(fab.env.process(gen))


class TestBroadcast:
    def test_content_delivered_everywhere(self):
        fab, source, targets = make_cluster(5)
        data = pattern(2 * MB)

        def scenario():
            report = yield from broadcast(
                fab, source, targets, Payload.from_bytes(data), "/img"
            )
            return report

        report = run(fab, scenario())
        assert set(report.finish_times) == {t.name for t in targets}
        for t in targets:
            assert t.open_file("/img").read(0, len(data)).to_bytes() == data

    def test_makespan_grows_with_depth(self):
        def makespan(n):
            fab, source, targets = make_cluster(n)

            def scenario():
                r = yield from broadcast(
                    fab, source, targets, Payload.opaque("img", 50 * MB), "/img"
                )
                return r

            return run(fab, scenario()).makespan

        m2, m14, m62 = makespan(2), makespan(14), makespan(62)
        assert m2 < m14 < m62

    def test_pipelined_blocks_much_faster_than_store_and_forward(self):
        def makespan(block_size):
            fab, source, targets = make_cluster(14)

            def scenario():
                r = yield from broadcast(
                    fab, source, targets, Payload.opaque("img", 100 * MB), "/img",
                    block_size=block_size,
                )
                return r

            return run(fab, scenario()).makespan

        saf = makespan(None)
        pipelined = makespan(4 * MB)
        assert pipelined < saf / 2

    def test_traffic_is_one_copy_per_target(self):
        fab, source, targets = make_cluster(7)
        size = 10 * MB

        def scenario():
            yield from broadcast(fab, source, targets, Payload.opaque("i", size), "/img")

        run(fab, scenario())
        assert fab.metrics.traffic["broadcast"] == 7 * size

    def test_single_target_direct_copy(self):
        fab, source, targets = make_cluster(1)

        def scenario():
            r = yield from broadcast(
                fab, source, targets, Payload.opaque("i", 55 * MB), "/img"
            )
            return r

        report = run(fab, scenario())
        # disk read (1s) + transfer (~0.47s) + disk write (1s)
        assert report.makespan == pytest.approx(2.5, rel=0.1)


class TestPrepropagation:
    def test_from_nfs_server(self):
        fab = Fabric(seed=4)
        nfs_host = fab.add_host("nfs")
        nfs = NfsServer(nfs_host)
        data = pattern(MB)
        nfs.put_file("/image.raw", Payload.from_bytes(data))
        targets = [fab.add_host(f"n{i}") for i in range(3)]

        def scenario():
            r = yield from prepropagate(fab, nfs, "/image.raw", targets)
            return r

        report = run(fab, scenario())
        assert len(report.finish_times) == 3
        for t in targets:
            assert t.open_file("/local/image.raw").read(0, MB).to_bytes() == data
