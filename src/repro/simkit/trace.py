"""Measurement side of the simulator: traffic counters, timelines, samples.

Everything the benchmark harness reports — total network traffic (Fig. 4d),
boot/snapshot latencies (Figs. 4a/b, 5a/b), Bonnie++ throughput (Figs. 6/7) —
is recorded here. Metrics are deliberately dumb containers: they never affect
simulated behaviour, so enabling/disabling them cannot change a timeline.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class SampleStats:
    """Streaming summary of a sample series (count/mean/min/max/stdev).

    Variance uses Welford's online algorithm: the naive
    ``E[x^2] - E[x]^2`` form cancels catastrophically when the spread is
    tiny relative to the magnitude (e.g. millisecond jitter on timelines
    hours into a simulation) and can even go negative.
    """

    count: int = 0
    total: float = 0.0
    #: Welford state: running mean and sum of squared deviations from it
    welford_mean: float = 0.0
    welford_m2: float = 0.0
    min_value: float = math.inf
    max_value: float = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        delta = value - self.welford_mean
        self.welford_mean += delta / self.count
        self.welford_m2 += delta * (value - self.welford_mean)
        self.min_value = min(self.min_value, value)
        self.max_value = max(self.max_value, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def stdev(self) -> float:
        """Population standard deviation."""
        if self.count < 2:
            return 0.0
        return math.sqrt(max(0.0, self.welford_m2 / self.count))


class Histogram:
    """Fixed-bucket log2 histogram of positive values (durations, sizes).

    Bucket ``i`` holds values in ``[base * 2**i, base * 2**(i + 1))``; with
    the default ``base`` of 1 µs and 64 buckets the range covers every
    duration the simulator can produce. Fixed buckets keep ``observe`` O(1)
    and allocation-free, at the cost of ~2x resolution on the percentile
    estimates — good enough for the p50/p95/p99 the reports print.
    """

    __slots__ = ("base", "buckets", "count", "underflow")

    def __init__(self, base: float = 1e-6, n_buckets: int = 64):
        self.base = base
        self.buckets = [0] * n_buckets
        self.count = 0
        self.underflow = 0  # values below `base` (incl. zero / negative)

    def observe(self, value: float) -> None:
        self.count += 1
        if value < self.base:
            self.underflow += 1
            return
        idx = int(math.log2(value / self.base))
        buckets = self.buckets
        if idx >= len(buckets):
            idx = len(buckets) - 1
        buckets[idx] += 1

    def percentile(self, q: float) -> float:
        """Upper edge of the bucket holding the ``q``-quantile observation."""
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = self.underflow
        if seen >= rank:
            return self.base
        for idx, n in enumerate(self.buckets):
            seen += n
            if seen >= rank:
                return self.base * 2.0 ** (idx + 1)
        return self.base * 2.0 ** len(self.buckets)

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)


@dataclass
class Metrics:
    """Per-simulation measurement sink."""

    #: bytes moved over the wire, by category ("bulk", "message", "chunk", ...)
    traffic: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    #: named duration/value samples, e.g. "boot-time", "snapshot-time"
    samples: Dict[str, SampleStats] = field(default_factory=lambda: defaultdict(SampleStats))
    #: raw sample values for series that need percentiles or per-VM detail
    raw: Dict[str, List[float]] = field(default_factory=lambda: defaultdict(list))
    #: event counters, e.g. "remote-read", "chunk-fetch", "rpc"
    counters: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    #: (time, value) timelines, e.g. queue depths
    timelines: Dict[str, List[Tuple[float, float]]] = field(
        default_factory=lambda: defaultdict(list)
    )
    #: per-op log2 histograms (p50/p95/p99), e.g. "boot-time", "bonnie-op"
    histograms: Dict[str, Histogram] = field(default_factory=lambda: defaultdict(Histogram))
    #: per-tier wire bytes when a topology is attached, keyed "scope/kind"
    #: ("intra-rack/payload", "cross-rack/rpc-response", ...); empty on the
    #: flat fabric so flat-model metric dumps are unchanged
    topo_traffic: Dict[str, int] = field(default_factory=lambda: defaultdict(int))

    # ------------------------------------------------------------------ #
    def add_traffic(self, nbytes: int, kind: str = "bulk") -> None:
        self.traffic[kind] += int(nbytes)

    def total_traffic(self) -> int:
        return sum(self.traffic.values())

    def add_topo_traffic(self, scope: str, kind: str, nbytes: int) -> None:
        self.topo_traffic[f"{scope}/{kind}"] += int(nbytes)

    def topo_scope_totals(self) -> Dict[str, int]:
        """Per-tier byte totals summed over flow kinds, e.g. {"cross-rack": n}."""
        totals: Dict[str, int] = {}
        for key, nbytes in self.topo_traffic.items():
            scope = key.split("/", 1)[0]
            totals[scope] = totals.get(scope, 0) + nbytes
        return totals

    def topo_kind_bytes(self, scope: str, kind: str) -> int:
        return self.topo_traffic.get(f"{scope}/{kind}", 0)

    def sample(self, name: str, value: float) -> None:
        self.samples[name].add(value)
        self.raw[name].append(value)

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] += n

    def record(self, name: str, t: float, value: float) -> None:
        self.timelines[name].append((t, value))

    def observe(self, name: str, value: float) -> None:
        self.histograms[name].observe(value)

    # ------------------------------------------------------------------ #
    def summary(self) -> str:
        """Human-readable dump, used by examples and failure diagnostics."""
        lines: List[str] = ["traffic:"]
        for kind in sorted(self.traffic):
            lines.append(f"  {kind:<16} {self.traffic[kind] / 2**20:10.1f} MiB")
        if self.topo_traffic:
            lines.append("topology traffic:")
            totals = self.topo_scope_totals()
            for scope in sorted(totals):
                lines.append(f"  {scope:<16} {totals[scope] / 2**20:10.1f} MiB")
        if self.samples:
            lines.append("samples:")
            for name in sorted(self.samples):
                s = self.samples[name]
                lines.append(
                    f"  {name:<24} n={s.count:<6} mean={s.mean:.4f}"
                    f" stdev={s.stdev:.4f}"
                    f" min={s.min_value:.4f} max={s.max_value:.4f}"
                )
        if self.histograms:
            lines.append("histograms:")
            for name in sorted(self.histograms):
                h = self.histograms[name]
                lines.append(
                    f"  {name:<24} n={h.count:<6} p50={h.p50:.4f}"
                    f" p95={h.p95:.4f} p99={h.p99:.4f}"
                )
        if self.counters:
            lines.append("counters:")
            for name in sorted(self.counters):
                lines.append(f"  {name:<24} {self.counters[name]}")
        if self.timelines:
            lines.append("timelines:")
            for name in sorted(self.timelines):
                points = self.timelines[name]
                peak = max(v for _, v in points)
                last_t, last_v = points[-1]
                lines.append(
                    f"  {name:<24} points={len(points):<6} peak={peak:.4f}"
                    f" last={last_v:.4f}@{last_t:.4f}"
                )
        return "\n".join(lines)
