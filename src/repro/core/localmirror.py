"""The local mirror file: mmap-backed sparse file on the compute node.

The paper's FUSE module creates, on first open of a VM image, an initially
empty local file of the image's size, ``mmap``s it for the lifetime of the
handle (local reads/writes become memory operations with the kernel's
asynchronous write-back), and on close persists extra metadata describing
the local modification state so a later re-open can restore it (§4.2).

Content lives in the host's :class:`~repro.common.payload.SparseFile`
namespace; timing goes through a :class:`~repro.simkit.disk.FileDevice`
configured with the mmap write policy.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from ..calibration import FuseModel
from ..common.errors import MirrorStateError
from ..common.payload import Payload, SparseFile
from ..simkit.disk import FileDevice, WritePolicy
from ..simkit.host import Host


def mmap_policy(fuse: FuseModel) -> WritePolicy:
    """The mirror's local-access path: mmap write-back + FUSE per-op cost."""
    return WritePolicy(
        name="mirror-mmap",
        write_absorb_bandwidth=fuse.mmap_write_bandwidth,
        cached_read_bandwidth=fuse.cached_read_bandwidth,
        per_op_overhead=fuse.per_op_overhead,
        dirty_budget=fuse.dirty_budget,
        data_op_overhead=fuse.data_op_overhead,
    )


def hypervisor_policy(fuse: FuseModel) -> WritePolicy:
    """The baseline path: hypervisor writing a plain local file, no FUSE."""
    return WritePolicy(
        name="hypervisor-default",
        write_absorb_bandwidth=fuse.hypervisor_write_bandwidth,
        cached_read_bandwidth=fuse.cached_read_bandwidth,
        per_op_overhead=fuse.local_per_op_overhead,
        dirty_budget=fuse.dirty_budget,
        data_op_overhead=fuse.local_data_op_overhead,
    )


def _state_registry(host: Host) -> Dict[str, dict]:
    """Per-host registry simulating the persisted mirror-metadata files."""
    reg = getattr(host, "_mirror_states", None)
    if reg is None:
        reg = {}
        host._mirror_states = reg  # type: ignore[attr-defined]
    return reg


class LocalMirrorFile:
    """Sparse local file + timing device + persisted modification state."""

    def __init__(self, host: Host, path: str, size: int, fuse: FuseModel):
        self.host = host
        self.path = path
        self.size = size
        self.fuse = fuse
        if host.exists(path):
            self.file: SparseFile = host.open_file(path)
            if self.file.size != size:
                raise MirrorStateError(
                    f"{path}: existing mirror size {self.file.size} != {size}"
                )
        else:
            self.file = host.create_file(path, size)
        self.device = FileDevice(host.env, host.disk, mmap_policy(fuse), size)
        self._open = True

    # ------------------------------------------------------------------ #
    def pread(self, lo: int, hi: int) -> Generator:
        """Read mirrored bytes (memory-mapped: served from the page cache)."""
        self._check_open()
        yield from self.device.read(hi - lo, cached=True)
        return self.file.read(lo, hi - lo)

    def pwrite(self, lo: int, payload: Payload) -> Generator:
        """Write bytes through the mmap (absorbed by async write-back)."""
        self._check_open()
        yield from self.device.write(payload.size)
        self.file.write(lo, payload)

    def apply_remote(self, lo: int, payload: Payload) -> Generator:
        """Mirror remotely-fetched content locally (same write path)."""
        yield from self.pwrite(lo, payload)

    # ------------------------------------------------------------------ #
    # persistence of the modification-manager state across close/open
    # ------------------------------------------------------------------ #
    def persist_state(self, state: dict) -> Generator:
        """Close-time: munmap + write the extra metadata next to the file."""
        self._check_open()
        yield from self.device.sync()
        yield from self.host.disk.write(4096, sequential=False)  # metadata blob
        _state_registry(self.host)[self.path] = state
        self._open = False

    def load_state(self) -> Optional[dict]:
        """Open-time: restore persisted modification state, if any."""
        return _state_registry(self.host).get(self.path)

    def unlink(self) -> None:
        """Discard the mirror and its persisted state (VM destroyed)."""
        self.host.unlink(self.path)
        _state_registry(self.host).pop(self.path, None)
        self._open = False

    def _check_open(self) -> None:
        if not self._open:
            raise MirrorStateError(f"{self.path}: I/O on closed mirror")
