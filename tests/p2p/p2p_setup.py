"""Shared scaffolding for the cooperative peer-exchange tests."""

from repro.blobseer import BlobSeerDeployment
from repro.common.payload import Payload
from repro.common.units import KiB
from repro.core import MirrorVFS
from repro.p2p import P2PConfig, PeerNetwork
from repro.simkit.host import Fabric

CHUNK = 4 * KiB
IMG = 16 * CHUNK


def pattern(n, seed=1):
    return bytes((i * 131 + seed * 17) % 256 for i in range(n))


def build(seed=33, n_nodes=4, retry=None, **config_kw):
    """A small BlobSeer cloud with the exchange wired onto every node.

    Providers live on dedicated hosts so a crashed *peer* never takes a
    chunk's only replica with it — peer failures must always be repairable
    through the provider path.
    """
    fab = Fabric(seed=seed)
    hosts = [fab.add_host(f"node{i}") for i in range(n_nodes)]
    providers = [fab.add_host(f"prov{i}") for i in range(2)]
    manager = fab.add_host("manager")
    # the announce directory gets its own host so tests can crash it
    # without also taking down BlobSeer's version manager
    dir_host = fab.add_host("dirhost")
    dep = BlobSeerDeployment(fab, providers, providers, manager, retry=retry)
    data = pattern(IMG)
    rec = dep.seed_blob(Payload.from_bytes(data), CHUNK)
    net = PeerNetwork(
        fab, hosts, dep.model, config=P2PConfig(**config_kw), directory_host=dir_host
    )
    dep.peer_network = net
    return fab, dep, hosts, rec, data, net


def read_all(dep, host, rec, settle=0.05):
    """A scenario generator: mirror-read the whole blob on ``host``."""
    fab = dep.fabric

    def scenario():
        vfs = MirrorVFS(host, dep.client(host))
        handle = yield from vfs.open(rec.blob_id, rec.version)
        p = yield from handle.read(0, IMG)
        if settle:
            # drain the off-critical-path announce processes
            yield fab.env.timeout(settle)
        return p.to_bytes()

    return scenario()


def run(fab, gen):
    return fab.run(fab.env.process(gen))
