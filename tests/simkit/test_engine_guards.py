"""Guard rails and fast-path primitives of the event engine.

Covers the defensive behaviors the fast-path refactor must not lose:
descriptive empty-queue errors, exception-safe horizon runs, exact
``schedule_at`` semantics, and the shared-bootstrap ``process_batch``
being timeline-identical to individual spawns.
"""

import pytest

from repro.common.errors import SimulationError
from repro.simkit.core import Environment, Event, Timeout


class TestEmptyQueue:
    def test_step_on_empty_queue_raises_descriptively(self):
        env = Environment()
        with pytest.raises(SimulationError, match="empty event queue"):
            env.step()

    def test_step_after_drain_raises(self):
        env = Environment()

        def noop():
            return
            yield  # pragma: no cover — makes this a generator

        env.process(noop())  # no-yield process: one boot event
        env.run()
        with pytest.raises(SimulationError, match="drained|deadlock"):
            env.step()

    def test_run_until_none_on_empty_queue_is_noop(self):
        env = Environment()
        assert env.run() is None
        assert env.now == 0.0

    def test_run_until_event_deadlocks_when_queue_drains(self):
        env = Environment()
        never = Event(env)
        Timeout(env, 1.0)
        with pytest.raises(SimulationError, match="deadlock"):
            env.run(never)
        # the drained events were still counted and the clock advanced
        assert env.now == 1.0


class TestHorizonExceptionSafety:
    def _arm_raiser(self, env, at):
        ev = Event(env)

        def boom(_ev):
            raise RuntimeError("callback exploded")

        ev.callbacks.append(boom)
        env.schedule_at(ev, at)
        return ev

    def test_callback_exception_leaves_clock_at_event_time(self):
        env = Environment()
        self._arm_raiser(env, 1.0)
        with pytest.raises(RuntimeError, match="callback exploded"):
            env.run(until=5.0)
        # the clock reflects the event actually processed, not the horizon
        assert env.now == 1.0

    def test_run_resumes_to_horizon_after_exception(self):
        env = Environment()
        self._arm_raiser(env, 1.0)
        fired = []
        later = Event(env)
        later.callbacks.append(lambda ev: fired.append(env.now))
        env.schedule_at(later, 2.0)
        with pytest.raises(RuntimeError):
            env.run(until=5.0)
        # later events survived the exception; a second run processes them
        env.run(until=5.0)
        assert fired == [2.0]
        assert env.now == 5.0

    def test_horizon_does_not_rewind_clock(self):
        env = Environment()
        Timeout(env, 3.0)
        env.run(until=4.0)
        assert env.now == 4.0
        env.run(until=2.0)  # horizon already passed: nothing to do
        assert env.now == 4.0


class TestScheduleAt:
    def test_fires_at_exact_time_with_value(self):
        env = Environment()
        ev = Event(env)
        env.schedule_at(ev, 2.5, value="hello")

        def waiter():
            got = yield ev
            return got, env.now

        assert env.run(env.process(waiter())) == ("hello", 2.5)

    def test_past_time_rejected(self):
        env = Environment()
        Timeout(env, 1.0)
        env.run()
        with pytest.raises(SimulationError, match="past"):
            env.schedule_at(Event(env), 0.5)

    def test_already_triggered_event_rejected(self):
        env = Environment()
        ev = Event(env)
        ev.succeed("done")
        with pytest.raises(SimulationError, match="already triggered"):
            env.schedule_at(ev, 1.0)


class TestProcessBatch:
    def _staggered(self, env, delay, log, tag):
        yield Timeout(env, delay)
        log.append((env.now, tag))
        return tag

    def test_empty_batch(self):
        env = Environment()
        assert env.process_batch([]) == []
        env.run()

    def test_results_match_individual_spawns(self):
        delays = [0.3, 0.1, 0.2, 0.1]

        def run(batched):
            env = Environment()
            log = []
            gens = [self._staggered(env, d, log, i) for i, d in enumerate(delays)]
            if batched:
                procs = env.process_batch(gens)
            else:
                procs = [env.process(g) for g in gens]

            def master():
                results = yield env.all_of(procs)
                return results

            results = env.run(env.process(master()))
            return results, log, env.now

        res_a, log_a, now_a = run(batched=True)
        res_b, log_b, now_b = run(batched=False)
        assert res_a == res_b
        assert log_a == log_b  # identical completion times AND tie order
        assert now_a == now_b

    def test_batch_saves_bootstrap_events(self):
        def run(batched):
            env = Environment()
            gens = [self._staggered(env, 0.1, [], i) for i in range(5)]
            procs = env.process_batch(gens) if batched else [env.process(g) for g in gens]

            def master():
                yield env.all_of(procs)

            env.run(env.process(master()))
            return env.event_count

        assert run(batched=False) - run(batched=True) == 4  # K-1 boots saved
