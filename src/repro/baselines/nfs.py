"""A central NFS-like file server (the prepropagation source, §5.2).

The paper stores the initial 2 GB image on an NFS server with a single
GigE interface, "similar in configuration to the compute nodes". Only two
behaviours matter for the reproduction: whole-file/range reads constrained
by the server's NIC and disk, and the fact that a single box serves
everyone (the contention motivates broadcast trees in the first place).
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from ..calibration import ServiceModel
from ..common.errors import StorageError
from ..common.payload import Payload, SparseFile
from ..simkit import rpc
from ..simkit.host import Host


class NfsServer:
    """Single-host file service with server-side page cache."""

    def __init__(self, host: Host, model: Optional[ServiceModel] = None):
        self.host = host
        self.model = model if model is not None else ServiceModel()
        self._files: Dict[str, SparseFile] = {}
        self._ram: set[str] = set()
        rpc.bind(host, "nfs", self)

    # ------------------------------------------------------------------ #
    def put_file(self, path: str, payload: Payload) -> None:
        """Setup injection: place a file on the server at time zero."""
        f = SparseFile(payload.size)
        f.write(0, payload)
        self._files[path] = f

    def stat(self, path: str) -> int:
        f = self._files.get(path)
        if f is None:
            raise StorageError(f"nfs: no such file {path!r}")
        return f.size

    # ------------------------------------------------------------------ #
    def rpc_read(self, caller: Host, path: str, offset: int, nbytes: int):
        f = self._files.get(path)
        if f is None:
            raise StorageError(f"nfs: no such file {path!r}")
        yield self.host.env.timeout(self.model.chunk_request_overhead)
        if path not in self._ram:
            # Cold file: the first reader pays the server's disk.
            yield from self.host.disk.read(nbytes, sequential=True)
            if offset + nbytes >= f.size:
                self._ram.add(path)
        return f.read(offset, nbytes)

    def rpc_write(self, caller: Host, path: str, offset: int, payload: Payload):
        f = self._files.get(path)
        if f is None:
            f = SparseFile(max(offset + payload.size, 1))
            self._files[path] = f
        if offset + payload.size > f.size:
            raise StorageError(f"nfs: write beyond eof of {path!r}")
        yield from self.host.disk.write(payload.size, sequential=True)
        f.write(offset, payload)
        return None


class NfsClient:
    """Minimal client: ranged read/write against one server."""

    def __init__(self, host: Host, server: NfsServer):
        self.host = host
        self.server = server

    def read(self, path: str, offset: int, nbytes: int) -> Generator:
        data = yield from rpc.call(
            self.host, self.server.host, "nfs", "read", path, offset, nbytes
        )
        return data

    def write(self, path: str, offset: int, payload: Payload) -> Generator:
        yield from rpc.call(
            self.host, self.server.host, "nfs", "write", path, offset, payload,
            request_bytes=payload.size + 128,
        )
        return None
