"""Edge-case tests: Sized RPC responses, thresholds, connection setup."""

import pytest

from repro.common.payload import Payload
from repro.common.units import MB
from repro.simkit import rpc
from repro.simkit.host import Fabric


class NodeService:
    def __init__(self, host):
        self.host = host

    def rpc_batch(self, caller, n):
        yield self.host.env.timeout(0)
        return rpc.Sized({"nodes": list(range(n))}, 72 * n)

    def rpc_tiny_payload(self, caller):
        yield self.host.env.timeout(0)
        return Payload.zeros(16)  # below message threshold


def setup():
    fab = Fabric(seed=9)
    a = fab.add_host("a")
    b = fab.add_host("b")
    rpc.bind(b, "svc", NodeService(b))
    return fab, a, b


def run(fab, gen):
    return fab.run(fab.env.process(gen))


class TestSized:
    def test_value_unwrapped(self):
        fab, a, b = setup()

        def client():
            out = yield from rpc.call(a, b, "svc", "batch", 3)
            return out

        assert run(fab, client()) == {"nodes": [0, 1, 2]}

    def test_wire_size_charged(self):
        fab, a, b = setup()

        def client(n):
            yield from rpc.call(a, b, "svc", "batch", n)

        run(fab, client(100_000))  # 7.2 MB of metadata
        assert fab.metrics.traffic["rpc-response"] >= 72 * 100_000

    def test_big_sized_takes_transfer_time(self):
        fab, a, b = setup()

        def client():
            t0 = fab.env.now
            yield from rpc.call(a, b, "svc", "batch", 1_000_000)  # 72 MB
            return fab.env.now - t0

        t = run(fab, client())
        assert t == pytest.approx(72e6 / (117.5 * MB), rel=0.05)


class TestSmallPayloadResponse:
    def test_rides_message_path(self):
        fab, a, b = setup()

        def client():
            p = yield from rpc.call(a, b, "svc", "tiny_payload")
            return p

        p = run(fab, client())
        assert p.size == 16
        assert fab.network.active_flow_count == 0


class TestConnectionSetup:
    def test_first_contact_pays_setup_once(self):
        fab, a, b = setup()
        fab.connection_setup = 0.5

        def client():
            t0 = fab.env.now
            yield from rpc.call(a, b, "svc", "tiny_payload")
            first = fab.env.now - t0
            t0 = fab.env.now
            yield from rpc.call(a, b, "svc", "tiny_payload")
            second = fab.env.now - t0
            return first, second

        first, second = run(fab, client())
        assert first >= 0.5
        assert second < 0.1
        assert fab.metrics.counters["rpc-connect"] == 1

    def test_distinct_pairs_pay_separately(self):
        fab, a, b = setup()
        c = fab.add_host("c")
        fab.connection_setup = 0.5

        def client(src):
            yield from rpc.call(src, b, "svc", "tiny_payload")

        run(fab, client(a))
        run(fab, client(c))
        assert fab.metrics.counters["rpc-connect"] == 2
