"""Trace export: Chrome/Perfetto ``trace_event`` JSON and a JSONL span log.

Two formats, both derived from the same :class:`~repro.obs.span.Tracer`:

* :func:`to_trace_events` / :func:`write_trace_json` — the Chrome trace-event
  format (``{"traceEvents": [...]}`` with ``ph:"X"`` complete events in
  microseconds), loadable directly into ``about:tracing`` or
  https://ui.perfetto.dev. One pid represents the simulated cluster; each
  simkit process gets its own named thread track, so nested spans render as
  flame stacks and parallel fetch scatters as parallel tracks.
* :func:`to_span_dicts` / :func:`write_spans_jsonl` — one JSON object per
  span per line, for ad-hoc analysis (``jq``, pandas) and for re-loading
  with :func:`read_spans_jsonl`.

Sim time is in seconds; the trace-event format wants integer-ish
microseconds, so timestamps are exported as ``t * 1e6``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

from .span import Span, Tracer

__all__ = [
    "to_trace_events",
    "write_trace_json",
    "to_span_dicts",
    "write_spans_jsonl",
    "read_spans_jsonl",
]

#: single synthetic pid: the simulated cluster
_PID = 1


def _span_args(span: Span) -> Dict[str, Any]:
    args: Dict[str, Any] = {"span_id": span.span_id}
    if span.parent_id is not None:
        args["parent_id"] = span.parent_id
    args.update(span.attrs)
    if span.error is not None:
        args["error"] = span.error
    return args


def to_trace_events(tracer: Tracer, end_time: Optional[float] = None) -> Dict[str, Any]:
    """Render the tracer's spans as a Chrome trace-event document."""
    if end_time is None:
        end_time = tracer.env.now
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": _PID,
            "tid": 0,
            "args": {"name": f"repro-sim {tracer.trace_id}"},
        }
    ]
    tracks = sorted({span.track for span in tracer.spans})
    for track in tracks:
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": _PID,
                "tid": track,
                "args": {"name": tracer.track_label(track)},
            }
        )
        events.append(
            {
                "ph": "M",
                "name": "thread_sort_index",
                "pid": _PID,
                "tid": track,
                "args": {"sort_index": track},
            }
        )
    for span in tracer.spans:
        t1 = span.t1 if span.t1 is not None else end_time
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.category,
                "ts": span.t0 * 1e6,
                "dur": (t1 - span.t0) * 1e6,
                "pid": _PID,
                "tid": span.track,
                "args": _span_args(span),
            }
        )
        for t, name, attrs in span.events:
            events.append(
                {
                    "ph": "i",
                    "s": "t",  # thread-scoped instant
                    "name": name,
                    "cat": span.category,
                    "ts": t * 1e6,
                    "pid": _PID,
                    "tid": span.track,
                    "args": dict(attrs, span_id=span.span_id),
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": tracer.trace_id, "spans": len(tracer.spans)},
    }


def write_trace_json(path, tracer: Tracer, end_time: Optional[float] = None) -> Path:
    """Write the Perfetto-loadable ``.trace.json`` file; returns its path."""
    path = Path(path)
    doc = to_trace_events(tracer, end_time=end_time)
    path.write_text(json.dumps(doc, default=str))
    return path


# ---------------------------------------------------------------------- #
# JSONL span log
# ---------------------------------------------------------------------- #
def to_span_dicts(tracer: Tracer, end_time: Optional[float] = None) -> List[Dict[str, Any]]:
    """Plain-dict view of every span (JSON-serializable)."""
    if end_time is None:
        end_time = tracer.env.now
    out = []
    for span in tracer.spans:
        out.append(
            {
                "trace_id": tracer.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "name": span.name,
                "category": span.category,
                "t0": span.t0,
                "t1": span.t1 if span.t1 is not None else end_time,
                "track": span.track,
                "attrs": span.attrs,
                "events": [{"t": t, "name": n, "attrs": a} for t, n, a in span.events],
                "error": span.error,
            }
        )
    return out


def write_spans_jsonl(path, tracer: Tracer, end_time: Optional[float] = None) -> Path:
    """Write one JSON object per span per line; returns the path."""
    path = Path(path)
    with path.open("w") as fh:
        for record in to_span_dicts(tracer, end_time=end_time):
            fh.write(json.dumps(record, default=str))
            fh.write("\n")
    return path


def read_spans_jsonl(path) -> List[Dict[str, Any]]:
    """Load a span log written by :func:`write_spans_jsonl`."""
    records = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def iter_complete_events(doc: Dict[str, Any]) -> Iterable[Dict[str, Any]]:
    """The ``ph:"X"`` span events of a trace-event document (export helper)."""
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") == "X":
            yield ev
