"""The hypervisor/VM-instance model.

A :class:`VMInstance` drives an image backend through a trace of CPU bursts
and disk I/O. Booting starts with the randomized hypervisor initialization
overhead (KVM start-up, device model setup) — the main source of the access
skew measured in §3.1.3 — then replays the boot trace. The instance's
``boot_time`` corresponds to the paper's measurement: hypervisor launch to
``/etc/rc.local`` executed.
"""

from __future__ import annotations

from typing import Generator, Iterable, List, Optional

import numpy as np

from ..calibration import BootModel
from ..common.errors import SimulationError
from ..common.payload import Payload
from ..simkit.core import Timeout
from ..simkit.host import Host
from .boottrace import BootOp


class VMInstance:
    """One virtual machine bound to a host and an image backend."""

    def __init__(
        self,
        name: str,
        host: Host,
        backend,
        boot_model: Optional[BootModel] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.name = name
        self.host = host
        self.backend = backend
        self.boot_model = boot_model if boot_model is not None else BootModel()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.boot_time: Optional[float] = None
        self.booted_at: Optional[float] = None

    # ------------------------------------------------------------------ #
    def run_ops(self, ops: Iterable[BootOp]) -> Generator:
        """Replay a trace against the backend."""
        env = self.host.env
        backend = self.backend
        tracer = self.host.fabric.tracer
        if tracer.enabled:
            yield from self._run_ops_traced(ops)
            return
        for op in ops:
            kind = op.kind
            if kind == "cpu":
                if op.duration > 0:
                    yield Timeout(env, op.duration)
            elif kind == "read":
                yield from backend.read(op.offset, op.nbytes)
            elif kind == "write":
                yield from backend.write(
                    op.offset, Payload.opaque(f"vmwrite-{self.name}", op.nbytes)
                )
            else:
                raise SimulationError(f"unknown boot op {kind!r}")

    def _run_ops_traced(self, ops: Iterable[BootOp]) -> Generator:
        """run_ops with one span per trace op (guest CPU bursts vs. disk I/O)."""
        env = self.host.env
        backend = self.backend
        tracer = self.host.fabric.tracer
        for op in ops:
            kind = op.kind
            if kind == "cpu":
                if op.duration > 0:
                    with tracer.start("guest-cpu", "cpu", duration=op.duration):
                        yield Timeout(env, op.duration)
            elif kind == "read":
                with tracer.start("op:read", "vfs", offset=op.offset, nbytes=op.nbytes):
                    yield from backend.read(op.offset, op.nbytes)
            elif kind == "write":
                with tracer.start("op:write", "vfs", offset=op.offset, nbytes=op.nbytes):
                    yield from backend.write(
                        op.offset, Payload.opaque(f"vmwrite-{self.name}", op.nbytes)
                    )
            else:
                raise SimulationError(f"unknown boot op {kind!r}")

    def boot(self, trace: List[BootOp]) -> Generator:
        """Hypervisor init + backend open + boot trace. Records boot_time."""
        env = self.host.env
        t_launch = env.now
        init = self.rng.uniform(
            self.boot_model.hypervisor_init_min, self.boot_model.hypervisor_init_max
        )
        tracer = self.host.fabric.tracer
        span = None
        if tracer.enabled:
            span = tracer.start(f"boot:{self.name}", "vm", host=self.host.name)
        try:
            if span is not None:
                with tracer.start("hypervisor-init", "cpu", seconds=float(init)):
                    yield env.timeout(float(init))
                with tracer.start("backend-open", "vfs"):
                    yield from self.backend.open()
            else:
                yield env.timeout(float(init))
                yield from self.backend.open()
            yield from self.run_ops(trace)
        except BaseException as exc:
            if span is not None:
                span.set_error(exc)
            raise
        finally:
            if span is not None:
                span.finish()
        self.booted_at = env.now
        self.boot_time = env.now - t_launch
        metrics = self.host.fabric.metrics
        metrics.sample("boot-time", self.boot_time)
        metrics.observe("boot-time", self.boot_time)
        return self.boot_time

    def shutdown(self) -> Generator:
        """Clean shutdown: negligible disk access (§2.3), close the backend."""
        yield from self.backend.close()
