"""The cohort rebalance engine is bit-identical to the legacy per-flow path.

The cohort engine (PR: paper-scale fabric) replaces eager per-flow rate
updates with lazy per-link-direction rate epochs; its correctness claim is
*exact* float equality with the legacy engine, which stays available as
``rebalance="legacy"`` precisely to serve as the oracle here. Every
comparison below is ``==``, not approx: same completion times, same final
clock, same traffic counters. Event counts also match, except on
``fail_nic`` workloads where the legacy path re-arms the sentinel once per
touched NIC mid-event (the extra no-op timers never affect application
event ordering — see DESIGN.md §8).

Also covered: the ``set_nic_capacity`` downlink validation regression, the
unified traffic-accounting API, stale completion-heap entries after
``fail_nic``, and stale-entry invalidation inside max-min progressive
filling.
"""

import random

import pytest

from repro.common.errors import ProviderUnavailableError
from repro.common.units import MB
from repro.simkit.core import Environment
from repro.simkit.network import FlowNetwork
from repro.simkit.trace import Metrics


def run_random(
    rebalance,
    seed,
    fairness="equal-share",
    faults=False,
    uniform=False,
    hotspot=False,
    n_nics=10,
    n_ops=250,
):
    """A seeded adversarial workload: transfers (optionally funneled into one
    hot destination), control messages, capacity changes, NIC failures."""
    rng = random.Random(seed)
    env = Environment()
    net = FlowNetwork(env, fairness=fairness, rebalance=rebalance)

    def cap():
        return 1e8 if uniform else 1e8 * rng.uniform(0.5, 2.0)

    nics = [net.add_nic(f"n{i}", cap(), cap()) for i in range(n_nics)]
    finished = {}
    failed = {}

    def waiter(i, ev):
        try:
            yield ev
            finished[i] = env.now
        except ProviderUnavailableError:
            failed[i] = env.now

    def driver():
        alive = set(range(n_nics))
        for op in range(n_ops):
            yield env.timeout(rng.expovariate(1 / 0.003))
            r = rng.random()
            live = sorted(alive)
            if r < 0.70 and len(live) >= 2:
                s, d = rng.sample(live, 2)
                if hotspot and 0 in alive and s != 0 and rng.random() < 0.6:
                    d = 0
                ev = net.transfer(
                    nics[s], nics[d], rng.randrange(5000, 2_000_000),
                    kind=rng.choice(["bulk", "chunk"]),
                )
                env.process(waiter(op, ev))
            elif r < 0.82 and live:
                k = rng.choice(live)
                if uniform:
                    net.set_nic_capacity(
                        nics[k],
                        1e8 * rng.choice([0.25, 0.5, 1.0, 2.0]),
                        1e8 * rng.choice([0.25, 0.5, 1.0, 2.0]),
                    )
                else:
                    net.set_nic_capacity(
                        nics[k], 1e8 * rng.uniform(0.3, 2.0), 1e8 * rng.uniform(0.3, 2.0)
                    )
            elif r < 0.88 and len(live) > 3 and faults:
                k = rng.choice(live)
                alive.discard(k)
                net.fail_nic(nics[k])
            elif live:
                s, d = rng.sample(live, 2) if len(live) >= 2 else (live[0], live[0])
                net.message(nics[s], nics[d], rng.randrange(64, 4000))

    env.process(driver())
    env.run()
    assert not net._flows, "flows left dangling"
    return {
        "now": env.now,
        "events": env.event_count,
        "traffic": dict(net.metrics.traffic),
        "finished": finished,
        "failed": failed,
    }


class TestCohortMatchesLegacyExactly:
    @pytest.mark.parametrize("uniform", [False, True])
    @pytest.mark.parametrize("seed", range(6))
    def test_mixed_workload(self, seed, uniform):
        a = run_random("legacy", seed, uniform=uniform)
        b = run_random("cohort", seed, uniform=uniform)
        assert a == b  # exact: clock, event count, traffic, completion times

    @pytest.mark.parametrize("seed", range(4))
    def test_hotspot_fan_in(self, seed):
        """The paper's regime: many flows funneled into one downlink."""
        a = run_random("legacy", seed, hotspot=True)
        b = run_random("cohort", seed, hotspot=True)
        assert a == b

    @pytest.mark.parametrize("uniform", [False, True])
    @pytest.mark.parametrize("seed", range(6))
    def test_with_nic_failures(self, seed, uniform):
        """Results stay exact under fail_nic; only the no-op sentinel event
        count may differ (legacy re-arms once per touched NIC mid-event)."""
        a = run_random("legacy", seed, faults=True, uniform=uniform)
        b = run_random("cohort", seed, faults=True, uniform=uniform)
        for key in ("now", "traffic", "finished", "failed"):
            assert a[key] == b[key]

    @pytest.mark.parametrize("seed", range(3))
    def test_maxmin_unaffected_by_rebalance_flag(self, seed):
        """Max-min always runs the per-flow path; the flag must be inert."""
        a = run_random("legacy", seed, fairness="maxmin", faults=True)
        b = run_random("cohort", seed, fairness="maxmin", faults=True)
        assert a == b

    def test_cohort_is_deterministic(self):
        assert run_random("cohort", 11, faults=True) == run_random(
            "cohort", 11, faults=True
        )

    def test_unknown_rebalance_rejected(self):
        with pytest.raises(ValueError, match="rebalance"):
            FlowNetwork(Environment(), rebalance="eager")


class TestCapacityValidation:
    """Regression: only ``up_capacity > 0`` used to be validated — an
    explicit non-positive ``down_capacity`` slipped through and poisoned
    every share computed from it."""

    def setup_method(self):
        self.env = Environment()
        self.net = FlowNetwork(self.env)
        self.nic = self.net.add_nic("h0", 100 * MB)

    @pytest.mark.parametrize("bad", [0, -1, -100 * MB])
    def test_non_positive_down_capacity_rejected(self, bad):
        with pytest.raises(ValueError, match="down_capacity"):
            self.net.set_nic_capacity(self.nic, 100 * MB, bad)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_non_positive_up_capacity_rejected(self, bad):
        with pytest.raises(ValueError, match="positive"):
            self.net.set_nic_capacity(self.nic, bad)

    def test_rejected_update_leaves_capacities_untouched(self):
        with pytest.raises(ValueError):
            self.net.set_nic_capacity(self.nic, 50 * MB, -1)
        assert self.nic.up_capacity == 100 * MB
        assert self.nic.down_capacity == 100 * MB


class RecordingMetrics(Metrics):
    """Observes the unified accounting API; a direct ``traffic[kind] +=``
    anywhere in the network would bypass this hook and desynchronize the
    two counters."""

    def __init__(self):
        super().__init__()
        self.hooked = 0

    def add_traffic(self, nbytes, kind="bulk"):
        self.hooked += int(nbytes)
        super().add_traffic(nbytes, kind)


@pytest.mark.parametrize("rebalance", ["legacy", "cohort"])
class TestUnifiedTrafficAccounting:
    def test_all_paths_route_through_add_traffic(self, rebalance):
        env = Environment()
        metrics = RecordingMetrics()
        net = FlowNetwork(env, metrics=metrics, rebalance=rebalance)
        a = net.add_nic("a", 100 * MB)
        b = net.add_nic("b", 100 * MB)
        net.transfer(a, b, 10 * MB)          # bulk flow -> _complete
        net.message(a, b, 1000)              # control message
        net.transfer(a, a, 5 * MB)           # loopback (zero wire bytes)
        victim = net.transfer(b, a, 10 * MB, kind="doomed")
        victim.callbacks.append(lambda ev: None)  # swallow the abort
        env.run(env.timeout(0.01))
        net.fail_nic(b)                      # partial bytes of the victim
        env.run()
        assert metrics.hooked == metrics.total_traffic()
        assert metrics.hooked > 0
        assert metrics.traffic["doomed"] > 0  # aborted bytes were charged


@pytest.mark.parametrize("rebalance", ["legacy", "cohort"])
class TestStaleHeapEntries:
    def test_fail_nic_races_pending_sentinel(self, rebalance):
        """A sentinel armed for a flow that fail_nic aborts must not
        resurrect it: the stale heap entry has to die on generation (legacy)
        or epoch (cohort) mismatch when the timer fires."""
        env = Environment()
        net = FlowNetwork(env, rebalance=rebalance)
        a = net.add_nic("a", 100 * MB)
        b = net.add_nic("b", 100 * MB)
        c = net.add_nic("c", 100 * MB)
        doomed = net.transfer(a, b, 10 * MB)       # ETA 0.1s, sentinel armed
        doomed.callbacks.append(lambda ev: None)
        survivor = net.transfer(c, b, 30 * MB)
        env.run(env.timeout(0.05))
        net.fail_nic(a)                            # aborts `doomed` pre-ETA
        env.run()
        assert isinstance(doomed._value, ProviderUnavailableError)
        assert survivor.triggered and survivor.ok
        assert not net._flows
        # the armed-but-stale timer fired as a no-op; the survivor's bytes
        # and the victim's partial bytes are both accounted exactly once
        assert net.metrics.traffic["bulk"] < 40 * MB

    def test_completion_after_failure_uses_fresh_entries(self, rebalance):
        """After fail_nic the survivors' re-pushed ETAs must drive
        completions (the dead flow's earlier ETA is skipped)."""
        env = Environment()
        net = FlowNetwork(env, latency=0.0, rebalance=rebalance)
        a = net.add_nic("a", 100 * MB)
        b = net.add_nic("b", 100 * MB)
        c = net.add_nic("c", 100 * MB)
        fast = net.transfer(a, c, 5 * MB)          # would finish first
        fast.callbacks.append(lambda ev: None)
        slow = net.transfer(b, c, 20 * MB)
        env.run(env.timeout(0.01))
        net.fail_nic(a)
        env.run(slow)
        # survivor: 0.01s shared at 50 MB/s (0.5 MB done), rest at full rate
        assert env.now == pytest.approx(0.01 + 19.5 / 100, rel=1e-6)


class TestProgressiveFillingStaleEntries:
    def test_saturated_link_invalidates_pending_shares(self):
        """Classic water-filling: fixing the tight downlink re-pushes the
        shared uplink at a new level; its original heap entry is stale and
        must be skipped, not double-fix its flows at the old share."""
        env = Environment()
        net = FlowNetwork(env, fairness="maxmin")
        a = net.add_nic("a", 100 * MB)
        b = net.add_nic("b", 30 * MB)
        c = net.add_nic("c", 100 * MB)
        f1 = net.transfer(a, b, 50 * MB)
        f2 = net.transfer(a, b, 50 * MB)
        f3 = net.transfer(a, c, 50 * MB)
        rates = {flow: rate for flow, rate in net._progressive_filling()}
        by_dst = sorted(rates.items(), key=lambda kv: kv[0].dst.name)
        levels = [rate for _, rate in by_dst]
        # b's downlink saturates first at 15 each; the uplink's leftover
        # (100 - 30) all goes to the c-bound flow
        assert levels == [15 * MB, 15 * MB, 70 * MB]
        assert len(rates) == 3
        for ev in (f1, f2, f3):
            ev.callbacks.append(lambda _ev: None)

    def test_filling_conserves_link_capacity(self):
        """No link ends up oversubscribed even with many stale entries."""
        env = Environment()
        net = FlowNetwork(env, fairness="maxmin")
        rng = random.Random(3)
        nics = [net.add_nic(f"h{i}", 1e8 * rng.uniform(0.3, 1.5)) for i in range(8)]
        events = []
        for _ in range(40):
            s, d = rng.sample(range(8), 2)
            events.append(net.transfer(nics[s], nics[d], 10 * MB))
        rates = net._progressive_filling()
        up = {n: 0.0 for n in nics}
        down = {n: 0.0 for n in nics}
        for flow, rate in rates:
            up[flow.src] += rate
            down[flow.dst] += rate
        for n in nics:
            assert up[n] <= n.up_capacity * (1 + 1e-9)
            assert down[n] <= n.down_capacity * (1 + 1e-9)
        for ev in events:
            ev.callbacks.append(lambda _ev: None)
