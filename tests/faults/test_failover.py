"""Chunk replication + client failover: the resilient data/metadata paths."""

import pytest

from repro.blobseer import BlobSeerDeployment
from repro.common.errors import ProviderUnavailableError, StorageError
from repro.common.payload import Payload
from repro.common.units import KiB
from repro.faults import RetryPolicy
from repro.simkit import rpc
from repro.simkit.host import Fabric

CHUNK = 4 * KiB

#: fast retries so failure exhaustion costs milliseconds of simulated time
POLICY = RetryPolicy(attempts=3, base_delay=0.01, max_delay=0.05, rpc_timeout=1.0)


def pattern(n, seed=1):
    return bytes((i * 131 + seed * 17) % 256 for i in range(n))


def make(replication=2, retry=POLICY, n_data=4, n_meta=2, **kw):
    fab = Fabric(seed=37)
    data = [fab.add_host(f"node{i}") for i in range(n_data)]
    meta = [fab.add_host(f"meta{i}") for i in range(n_meta)]
    manager = fab.add_host("manager")
    client_host = fab.add_host("client")
    dep = BlobSeerDeployment(
        fab, data_hosts=data, meta_hosts=meta, vmanager_host=manager,
        replication_factor=replication, retry=retry, **kw,
    )
    return fab, dep, data, meta, client_host


def run(fab, gen):
    return fab.run(fab.env.process(gen))


def stored_copies(dep):
    return sum(len(svc.store) for svc in dep.data_services.values())


class TestReplicatedWrites:
    def test_upload_fans_out_to_k_providers(self):
        fab, dep, data, meta, ch = make(replication=2)
        client = dep.client(ch)
        payload = Payload.from_bytes(pattern(8 * CHUNK))

        def scenario():
            blob = yield from client.create(8 * CHUNK, CHUNK)
            rec = yield from client.upload(blob, payload)
            got = yield from client.read(rec.blob_id, rec.version, 0, 8 * CHUNK)
            return got

        assert run(fab, scenario()).to_bytes() == payload.to_bytes()
        assert stored_copies(dep) == 2 * 8  # every chunk lives twice

    def test_pipeline_mode_stores_the_same_replicas(self):
        results = {}
        for mode in ("parallel", "pipeline"):
            fab, dep, data, meta, ch = make(
                replication=3, replica_write_mode=mode
            )
            client = dep.client(ch)
            payload = Payload.from_bytes(pattern(4 * CHUNK))

            def scenario():
                blob = yield from client.create(4 * CHUNK, CHUNK)
                rec = yield from client.upload(blob, payload)
                got = yield from client.read(rec.blob_id, rec.version, 0, 4 * CHUNK)
                return got

            assert run(fab, scenario()).to_bytes() == payload.to_bytes()
            results[mode] = {
                name: sorted(svc.store.keys())
                for name, svc in dep.data_services.items()
            }
        assert results["parallel"] == results["pipeline"]

    def test_write_prunes_dead_replicas(self):
        """A provider that dies mid-write drops out of the chunks' refs.

        The crash lands *after* placement (pre-crash allocations still name
        the victim) but before its puts complete, so the client must give up
        on the dead replica and commit refs that only list survivors.
        """
        fab, dep, data, meta, ch = make(replication=2)
        client = dep.client(ch)
        payload = Payload.from_bytes(pattern(8 * CHUNK))

        def crash_mid_put():
            yield fab.env.timeout(0.002)
            data[1].fail()

        def scenario():
            blob = yield from client.create(8 * CHUNK, CHUNK)
            rec = yield from client.upload(blob, payload)
            # dead provider stays down: reads must never route to it
            got = yield from client.read(rec.blob_id, rec.version, 0, 8 * CHUNK)
            return got

        fab.env.process(crash_mid_put())
        assert run(fab, scenario()).to_bytes() == payload.to_bytes()
        assert fab.metrics.counters["replica-pruned"] > 0

    def test_write_fails_when_no_replica_survives(self):
        fab, dep, data, meta, ch = make(replication=1, n_data=2)
        rpc.host_down(data[0])
        rpc.host_down(data[1])
        client = dep.client(ch)

        def scenario():
            blob = yield from client.create(4 * CHUNK, CHUNK)
            yield from client.upload(blob, Payload.zeros(4 * CHUNK))

        # allocation itself refuses: no live provider can hold a replica
        with pytest.raises(StorageError):
            run(fab, scenario())


class TestFailoverReads:
    def test_read_fails_over_to_surviving_replica(self):
        fab, dep, data, meta, ch = make(replication=2)
        payload = Payload.from_bytes(pattern(16 * CHUNK))
        rec = dep.seed_blob(payload, CHUNK)
        rpc.host_down(data[0])
        client = dep.client(ch)

        def scenario():
            got = yield from client.read(rec.blob_id, rec.version, 0, 16 * CHUNK)
            return got

        assert run(fab, scenario()).to_bytes() == payload.to_bytes()
        assert fab.metrics.counters["fetch-retry"] > 0

    def test_unreplicated_read_exhausts_attempts(self):
        fab, dep, data, meta, ch = make(replication=1)
        rec = dep.seed_blob(Payload.from_bytes(pattern(16 * CHUNK)), CHUNK)
        rpc.host_down(data[0])
        client = dep.client(ch)

        def scenario():
            yield from client.read(rec.blob_id, rec.version, 0, 16 * CHUNK)

        with pytest.raises(ProviderUnavailableError):
            run(fab, scenario())
        # one backoff per failed round, minus the final raise
        assert fab.env.now >= POLICY.delay_for(0)

    def test_metadata_survives_primary_shard_loss(self):
        """meta_replication=2: every tree node lives on two shard homes."""
        fab, dep, data, meta, ch = make(replication=2)
        assert dep.meta_replication == 2
        payload = Payload.from_bytes(pattern(16 * CHUNK))
        rec = dep.seed_blob(payload, CHUNK)
        rpc.host_down(meta[0])
        client = dep.client(ch)

        def scenario():
            got = yield from client.read(rec.blob_id, rec.version, 0, 16 * CHUNK)
            return got

        assert run(fab, scenario()).to_bytes() == payload.to_bytes()
        assert fab.metrics.counters["meta-retry"] > 0

    def test_rpc_timeout_abandons_unanswered_call(self):
        """A call into a crashing host is abandoned at the policy deadline,
        not awaited forever."""
        fab, dep, data, meta, ch = make(replication=2)
        payload = Payload.from_bytes(pattern(16 * CHUNK))
        rec = dep.seed_blob(payload, CHUNK)
        client = dep.client(ch)

        def crash_later():
            yield fab.env.timeout(0.0005)
            data[0].fail()

        def scenario():
            got = yield from client.read(rec.blob_id, rec.version, 0, 16 * CHUNK)
            return got

        fab.env.process(crash_later())
        assert run(fab, scenario()).to_bytes() == payload.to_bytes()


class TestStrictlyOffPath:
    def test_defaults_disable_every_resilience_branch(self):
        fab, dep, data, meta, ch = make(replication=1, retry=None, n_meta=1)
        assert dep.retry is None
        assert dep.replication_factor == 1
        assert dep.meta_replication == 1
        rec = dep.seed_blob(Payload.from_bytes(pattern(8 * CHUNK)), CHUNK)
        assert stored_copies(dep) == 8  # exactly one copy per chunk

    def test_replication_beyond_pool_rejected(self):
        with pytest.raises(StorageError):
            make(replication=5, n_data=4)

    def test_bad_write_mode_rejected(self):
        with pytest.raises(StorageError):
            make(replica_write_mode="telepathy")
