"""Deploying a BlobSeer instance onto a simulated cluster.

A :class:`BlobSeerDeployment` wires the pieces together:

* a :class:`~repro.blobseer.provider.DataProviderService` on every compute
  node, aggregating part of its local disk into the shared pool (§3.1.1);
* :class:`~repro.blobseer.provider.MetadataProviderService` shards holding
  the distributed segment-tree nodes (assigned by node-id modulo);
* one :class:`~repro.blobseer.provider.VersionManagerService` and one
  :class:`~repro.blobseer.pmanager.ProviderManagerService` on manager nodes.

``seed_blob`` injects an already-uploaded image at time zero (the paper's
experiments start from an image previously stored in the repository; the
upload itself is not part of any measured figure).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..calibration import ServiceModel
from ..common.errors import StorageError
from ..common.payload import Payload
from ..simkit import rpc
from ..simkit.host import Fabric, Host
from .client import BlobClient
from .metadata import ChunkRef, MetadataStore, build_tree
from .pmanager import PlacementPolicy, ProviderManagerService
from .provider import DataProviderService, MetadataProviderService, VersionManagerService
from .store import KeyMinter
from .vmanager import BlobRegistry, SnapshotRecord

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.policy import RetryPolicy


class BlobSeerDeployment:
    """A running BlobSeer instance on a set of hosts."""

    def __init__(
        self,
        fabric: Fabric,
        data_hosts: Sequence[Host],
        meta_hosts: Sequence[Host],
        vmanager_host: Host,
        pmanager_host: Optional[Host] = None,
        model: Optional[ServiceModel] = None,
        placement: str = "round-robin",
        async_ack: bool = True,
        write_buffer_bytes: int = 64 * 2**20,
        cache_chunks: bool = False,
        dedup: bool = False,
        replication_factor: int = 1,
        replica_write_mode: str = "parallel",
        meta_replication: Optional[int] = None,
        retry: Optional["RetryPolicy"] = None,
        topology=None,
        rack_aware_reads: bool = False,
    ):
        if not data_hosts or not meta_hosts:
            raise StorageError("need at least one data and one metadata host")
        if replication_factor < 1 or replication_factor > len(data_hosts):
            raise StorageError(
                f"replication factor {replication_factor} impossible with "
                f"{len(data_hosts)} data hosts"
            )
        if replica_write_mode not in ("parallel", "pipeline"):
            raise StorageError(
                f"unknown replica write mode {replica_write_mode!r} "
                "(expected 'parallel' or 'pipeline')"
            )
        if meta_replication is None:
            meta_replication = min(replication_factor, len(meta_hosts))
        if meta_replication < 1 or meta_replication > len(meta_hosts):
            raise StorageError(
                f"metadata replication {meta_replication} impossible with "
                f"{len(meta_hosts)} metadata hosts"
            )
        #: replicas per chunk written through this deployment's clients
        self.replication_factor = replication_factor
        #: how replicated chunk writes travel: client fan-out or chain
        self.replica_write_mode = replica_write_mode
        #: homes per metadata tree node (consecutive shards mod n_meta)
        self.meta_replication = meta_replication
        #: client-side RetryPolicy; ``None`` keeps the original non-resilient
        #: code paths byte-identical (no timeouts, no failover)
        self.retry = retry
        #: cooperative chunk-exchange overlay (:class:`repro.p2p.PeerNetwork`);
        #: ``None`` (the default) leaves clients on the provider-only path
        self.peer_network = None
        #: hierarchical fabric description (None = flat); enables the
        #: rack-diverse placement strategy below
        self.topology = topology
        #: when set, clients prefer a same-rack replica on reads; ``None``
        #: keeps replica selection byte-identical to the seed (providers[0])
        self.read_topology = (
            topology
            if (rack_aware_reads and topology is not None and topology.multi_rack)
            else None
        )
        self.fabric = fabric
        self.model = model if model is not None else ServiceModel()
        self.metadata = MetadataStore()
        self.registry = BlobRegistry(self.metadata)
        self.minter = KeyMinter()
        #: content-addressed chunk index (None = dedup disabled). Keys are
        #: payloads (content-equality stands in for a collision-free digest).
        self.dedup_index: Optional[Dict[Payload, ChunkRef]] = {} if dedup else None
        #: in-flight commit pins (id -> refcount): chunk keys already PUT and
        #: metadata nodes already scattered by a COMMIT whose publish has not
        #: landed yet. They are unreachable from every published root, so a
        #: :func:`~repro.blobseer.gc.collect_garbage` sweep racing the commit
        #: would otherwise reclaim them and the snapshot published moments
        #: later would reference vanished chunks. Refcounts allow overlapping
        #: commits to pin the same deduplicated chunk independently.
        self.inflight_keys: Dict[int, int] = {}
        self.inflight_nodes: Dict[int, int] = {}
        self.vmanager_host = vmanager_host
        self.pmanager_host = pmanager_host if pmanager_host is not None else vmanager_host

        self.data_services: Dict[str, DataProviderService] = {}
        for host in data_hosts:
            svc = DataProviderService(
                host,
                self.model,
                write_buffer_bytes=write_buffer_bytes,
                async_ack=async_ack,
                cache_chunks=cache_chunks,
            )
            rpc.bind(host, "blob-data", svc)
            self.data_services[host.name] = svc

        self.meta_hosts: List[Host] = list(meta_hosts)
        self.meta_services: Dict[str, MetadataProviderService] = {}
        for host in self.meta_hosts:
            svc = MetadataProviderService(host, self.model)
            rpc.bind(host, "blob-meta", svc)
            self.meta_services[host.name] = svc

        self.vmanager = VersionManagerService(vmanager_host, self.registry, self.model)
        rpc.bind(vmanager_host, "blob-vmgr", self.vmanager)

        self.policy = PlacementPolicy(
            [h.name for h in data_hosts],
            strategy=placement,
            rng=fabric.rng.get("blobseer-placement"),
            replication_factor=replication_factor,
            rack_of=topology.rack_of if topology is not None else None,
        )
        self.pmanager = ProviderManagerService(self.pmanager_host, self.policy, self.model)
        rpc.bind(self.pmanager_host, "blob-pmgr", self.pmanager)

    # ------------------------------------------------------------------ #
    def pin_inflight(self, keys: Sequence[int] = (), nodes: Sequence[int] = ()):
        """Shield not-yet-published chunk keys / metadata nodes from the GC."""
        for key in keys:
            self.inflight_keys[key] = self.inflight_keys.get(key, 0) + 1
        for nid in nodes:
            self.inflight_nodes[nid] = self.inflight_nodes.get(nid, 0) + 1

    def unpin_inflight(self, keys: Sequence[int] = (), nodes: Sequence[int] = ()):
        """Release commit pins once the snapshot is published (or aborted)."""
        for key in keys:
            left = self.inflight_keys.get(key, 0) - 1
            if left > 0:
                self.inflight_keys[key] = left
            else:
                self.inflight_keys.pop(key, None)
        for nid in nodes:
            left = self.inflight_nodes.get(nid, 0) - 1
            if left > 0:
                self.inflight_nodes[nid] = left
            else:
                self.inflight_nodes.pop(nid, None)

    # ------------------------------------------------------------------ #
    def shard_host(self, node_id: int) -> Host:
        """Home metadata shard of a tree node (id-modulo placement)."""
        return self.meta_hosts[node_id % len(self.meta_hosts)]

    def shard_hosts(self, node_id: int) -> List[Host]:
        """All homes of a tree node: ``meta_replication`` consecutive shards.

        The first entry is the primary (identical to :meth:`shard_host`);
        clients read from it and fail over to the followers in order.
        """
        n = len(self.meta_hosts)
        primary = node_id % n
        return [self.meta_hosts[(primary + r) % n] for r in range(self.meta_replication)]

    def client(self, host: Host) -> BlobClient:
        client = BlobClient(host, self)
        if self.peer_network is not None:
            client.peer_agent = self.peer_network.agent_for(host)
        return client

    def provider(self, name: str) -> DataProviderService:
        return self.data_services[name]

    # ------------------------------------------------------------------ #
    def seed_blob(
        self, payload: Payload, chunk_size: int, replication: Optional[int] = None
    ) -> SnapshotRecord:
        """Inject a fully-uploaded blob at time zero (experiment setup).

        Content lands in the providers' chunk stores *cold* (not RAM-cached),
        the metadata tree is built and scattered to its shards, and the first
        snapshot is published — exactly the state an out-of-band upload would
        leave behind, with no simulated time elapsed.
        """
        size = payload.size
        if replication is None:
            replication = self.replication_factor
        blob_id = self.registry.create_blob(size, chunk_size)
        n_chunks = -(-size // chunk_size)
        placements = self.policy.allocate(n_chunks, chunk_size, replication)
        refs: Dict[int, ChunkRef] = {}
        for idx, providers in enumerate(placements):
            lo = idx * chunk_size
            hi = min(lo + chunk_size, size)
            chunk = payload.slice(lo, hi)
            key = self.minter.mint_one()
            refs[idx] = ChunkRef(key, tuple(providers), chunk.size)
            for name in providers:
                self.data_services[name].store.put(key, chunk)
            if self.dedup_index is not None:
                self.dedup_index.setdefault(chunk, refs[idx])
        before = len(self.metadata)
        root = build_tree(self.metadata, refs, n_chunks)
        for nid in range(before, len(self.metadata)):
            node = self.metadata.get(nid)
            for shard in self.shard_hosts(nid):
                self.meta_services[shard.name].nodes[nid] = node
        return self.registry.publish(blob_id, root)

    # ------------------------------------------------------------------ #
    def stored_bytes(self) -> int:
        """Physical bytes across all providers (storage-consumption metric)."""
        return sum(svc.stored_bytes for svc in self.data_services.values())

    def drain_all(self):
        """Process helper: wait for every provider's write buffer to flush."""
        procs = [
            self.fabric.env.process(svc.drain(), name=f"drain-{name}")
            for name, svc in self.data_services.items()
        ]
        yield self.fabric.env.all_of(procs)
