"""Deterministic random-number streams.

Every stochastic component of the simulation (boot-trace generation, access
skew, hypervisor init overhead, provider allocation ties, ...) draws from a
named sub-stream derived from a single experiment seed. This guarantees:

* **determinism** — the same seed replays the exact same simulated timeline,
  which the test suite asserts;
* **independence** — adding draws to one component does not perturb another
  component's stream (each name gets its own generator).

Usage::

    streams = RngStreams(seed=42)
    boot_rng = streams.get("boot-trace", vm_id)
    skew = boot_rng.uniform(0.0, 0.2)
"""

from __future__ import annotations

from typing import Hashable

import numpy as np


class RngStreams:
    """A family of independent, reproducibly-seeded numpy generators."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._cache: dict[tuple[Hashable, ...], np.random.Generator] = {}

    def get(self, *name: Hashable) -> np.random.Generator:
        """Return the generator for sub-stream ``name`` (created on first use).

        The same ``(seed, *name)`` always yields a generator producing the
        same sequence; distinct names yield statistically independent
        sequences (numpy's ``SeedSequence`` spawning guarantees this).
        """
        key = tuple(name)
        gen = self._cache.get(key)
        if gen is None:
            material = [self.seed] + [_hash_part(part) for part in key]
            gen = np.random.default_rng(np.random.SeedSequence(material))
            self._cache[key] = gen
        return gen

    def fork(self, *name: Hashable) -> "RngStreams":
        """Derive an independent stream family (e.g. one per experiment run)."""
        material = [self.seed] + [_hash_part(part) for part in name]
        child_seed = int(np.random.SeedSequence(material).generate_state(1)[0])
        return RngStreams(child_seed)


def _hash_part(part: Hashable) -> int:
    """Map an arbitrary hashable stream-name part to a stable nonnegative int.

    Python's builtin ``hash`` on str is salted per-process, so strings are
    folded explicitly to keep streams stable across runs.
    """
    if isinstance(part, (int, np.integer)):
        return int(part) & 0xFFFFFFFF
    if isinstance(part, str):
        acc = 2166136261
        for ch in part.encode():
            acc = ((acc ^ ch) * 16777619) & 0xFFFFFFFF
        return acc
    return _hash_part(repr(part))
