"""The tracked perf harness: smoke coverage plus the full gate (marked).

The cheap tests run in tier 1: they exercise the harness's measurement and
regression logic on a one-point workload and on synthetic numbers. The
full events/sec gate against the committed ``BENCH_simkit.json`` is marked
``perf`` (excluded by default, run via ``make perf`` or ``pytest -m perf``).
"""

import sys
from pathlib import Path

import pytest

BENCHMARKS = Path(__file__).resolve().parents[2] / "benchmarks"
if str(BENCHMARKS) not in sys.path:
    sys.path.insert(0, str(BENCHMARKS))

import bench_simperf  # noqa: E402


class TestMeasurement:
    def test_single_point_smoke(self):
        out = bench_simperf.measure(repeats=1, counts=(1,))
        row = out["fig4"]
        assert row["events"] > 0
        assert row["wall_s"] > 0
        assert row["events_per_s"] > 0
        assert "fig5" not in out  # restricted sweeps skip the snapshot point

    def test_event_count_is_deterministic(self):
        a = bench_simperf.run_fig4_sweep((1,))
        b = bench_simperf.run_fig4_sweep((1,))
        assert a == b


class TestRegressionGate:
    BASE = {"current": {"fig4": {"events_per_s": 1000, "events": 500, "wall_s": 1.0}}}

    def _fresh(self, eps, events=500):
        return {"fig4": {"events_per_s": eps, "events": events, "wall_s": 1.0}}

    def test_passes_within_tolerance(self):
        assert bench_simperf.check_regression(self._fresh(900), self.BASE) == []

    def test_fails_beyond_tolerance(self):
        failures = bench_simperf.check_regression(self._fresh(700), self.BASE)
        assert len(failures) == 1
        assert "below the committed" in failures[0]

    def test_fails_on_workload_change(self):
        failures = bench_simperf.check_regression(
            self._fresh(1000, events=501), self.BASE
        )
        assert len(failures) == 1
        assert "workload changed" in failures[0]

    def test_unknown_figures_ignored(self):
        fresh = {"fig9": {"events_per_s": 1, "events": 1, "wall_s": 1.0}}
        assert bench_simperf.check_regression(fresh, self.BASE) == []


class TestTrackedFile:
    def test_committed_file_shape(self):
        committed = bench_simperf.load_committed()
        for section in ("seed_baseline", "current"):
            for fig in ("fig4", "fig5"):
                row = committed[section][fig]
                required = {"wall_s", "events", "events_per_s"}
                # peak_rss_mib is informational and only recorded on
                # platforms with the resource module (see bench_simperf)
                assert required <= set(row) <= required | {"peak_rss_mib"}
        # the tentpole claim the file exists to document; wall-clock
        # speedups drift with machine load between re-records, so the
        # bound is conservative (the raw record has shown 1.8-2.3x)
        assert committed["improvement"]["fig4_wall_speedup"] >= 1.5

    def test_speedups_computed_from_sections(self):
        committed = {
            "seed_baseline": {"fig4": {"wall_s": 4.0}},
            "current": {"fig4": {"wall_s": 1.0}},
        }
        assert bench_simperf._speedups(committed) == {"fig4_wall_speedup": 4.0}


@pytest.mark.perf
def test_full_gate_against_committed_numbers():
    """The real thing: re-measure both figures and apply the gate."""
    fresh = bench_simperf.measure(repeats=bench_simperf.DEFAULT_REPEATS)
    committed = bench_simperf.load_committed()
    failures = bench_simperf.check_regression(fresh, committed)
    assert failures == [], "\n".join(failures)
