"""The off-by-default guarantee and determinism of the enabled path.

With ``p2p=False`` (the default) the exchange must be invisible: a build
that never mentions p2p and a build passing ``p2p=False`` explicitly give
bit-identical timelines. With ``p2p=True`` the timeline changes (that is
the point) but stays deterministic, and providers serve fewer bytes.
"""

import pytest

from repro.calibration import Calibration, ImageSpec
from repro.cloud import build_cloud, deploy
from repro.common.units import KiB, MiB
from repro.vmsim import make_image

CALIB = Calibration(
    image=ImageSpec(size=64 * MiB, chunk_size=256 * KiB, boot_touched_bytes=8 * MiB)
)
N_NODES = 8
SEED = 7


def _run_cycle(**cloud_kw):
    cloud = build_cloud(N_NODES, seed=SEED, calib=CALIB, **cloud_kw)
    image = make_image(CALIB.image.size, CALIB.image.boot_touched_bytes, n_regions=16)
    result = deploy(cloud, image, N_NODES, "mirror")
    return cloud, result


def _timeline(cloud, result):
    return {
        "now": cloud.env.now,
        "events": cloud.env.event_count,
        "traffic": dict(cloud.metrics.traffic),
        "boot_times": tuple(result.boot_times),
        "completion": result.completion_time,
    }


class TestOffByDefault:
    def test_disabled_is_bit_identical_to_default_build(self):
        a = _timeline(*_run_cycle())
        b = _timeline(*_run_cycle(p2p=False))
        assert a == b

    def test_disabled_build_carries_no_p2p_state(self):
        cloud, result = _run_cycle()
        assert cloud.p2p is None
        assert result.p2p_stats is None

    def test_p2p_needs_blobseer(self):
        with pytest.raises(ValueError):
            build_cloud(N_NODES, seed=SEED, calib=CALIB, with_blobseer=False, p2p=True)


class TestEnabledPath:
    def test_enabled_timeline_is_reproducible(self):
        a = _timeline(*_run_cycle(p2p=True))
        b = _timeline(*_run_cycle(p2p=True))
        assert a == b

    @pytest.mark.parametrize("directory", ["announce", "rendezvous"])
    def test_deploy_reports_stats(self, directory):
        cloud, result = _run_cycle(p2p=True, p2p_directory=directory)
        assert cloud.p2p is not None
        stats = result.p2p_stats
        assert stats is not None
        assert stats["peer_hit_ratio"] > 0.0
        assert len(result.boot_times) == N_NODES

    def test_exchange_offloads_providers(self):
        base_cloud, base = _run_cycle()
        p2p_cloud, res = _run_cycle(p2p=True)
        base_pb = base_cloud.metrics.counters["provider-bytes"]
        p2p_pb = p2p_cloud.metrics.counters["provider-bytes"]
        assert p2p_pb < base_pb
        # every instance still booted
        assert len(res.boot_times) == len(base.boot_times) == N_NODES

    def test_cache_budget_knob_reaches_the_caches(self):
        cloud, _res = _run_cycle(p2p=True, p2p_cache_bytes=2 * MiB)
        for cache in cloud.p2p.caches.values():
            assert cache.capacity_bytes == 2 * MiB
