"""Peer directories: which peers *likely* hold a chunk.

Two interchangeable strategies, selected by
:attr:`~repro.p2p.exchange.P2PConfig.directory`:

* ``announce`` — a lightweight directory service (bound on the cloud's
  manager node) where every peer announces the chunk keys it caches as a
  side effect of each fetch. Announcements ride a background process so
  they never sit on the fetch critical path; lookups are one small
  synchronous RPC per fetch batch. The directory answers with *actual*
  holders, rotated per key so repeated lookups spread load across them.
* ``rendezvous`` — no directory traffic at all: every node independently
  ranks the peer set by a deterministic hash over ``(chunk key, peer)``
  (highest-random-weight hashing) and asks the top-ranked owners. Because
  every booter of the same image fetches the same hot chunks, the owners of
  a chunk acquire it within the first deployment wave and then serve
  everyone else — candidate selection is free and uniformly spread by
  construction.

Both return candidates only; a candidate that turns out not to hold the
chunk (or is down) is a *miss* and the agent falls back to the next
candidate and ultimately to the provider path — stale directory state can
cost a round trip, never correctness.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from ..calibration import ServiceModel
from ..simkit import rpc
from ..simkit.core import Timeout
from ..simkit.host import Host

if TYPE_CHECKING:  # pragma: no cover
    from .exchange import PeerAgent

#: service name the announce directory binds under on its host
DIRECTORY_SERVICE = "p2p-dir"

#: wire bytes per (key -> holders) entry in a locate response
LOCATE_ENTRY_BYTES = 24


class RendezvousDirectory:
    """Stateless highest-random-weight ownership over the peer set."""

    name = "rendezvous"

    def __init__(self, peer_names: Sequence[str], fanout: int):
        self.peers: Tuple[str, ...] = tuple(peer_names)
        self.fanout = max(1, min(fanout, len(self.peers)))

    def owners(self, key: int) -> List[str]:
        """The ``fanout`` peers ranked highest for ``key`` (deterministic)."""
        ranked = sorted(
            self.peers,
            key=lambda name: zlib.crc32(f"{key}:{name}".encode()),
            reverse=True,
        )
        return ranked[: self.fanout]

    def locate(self, agent: "PeerAgent", keys: Sequence[int]):
        """Candidate holders per key; pure computation, no simulated time."""
        me = agent.host.name
        out: Dict[int, Tuple[str, ...]] = {}
        for key in keys:
            out[key] = tuple(name for name in self.owners(key) if name != me)
        return out
        yield  # pragma: no cover — generator protocol, body never yields

    def on_cached(self, agent: "PeerAgent", keys: Sequence[int]) -> None:
        """Rendezvous needs no announcements: ownership is computed."""


class PeerDirectoryService:
    """The announce directory's server side (one instance per cloud)."""

    def __init__(self, host: Host, model: ServiceModel, max_holders: int = 16):
        self.host = host
        self.model = model
        self.max_holders = max_holders
        #: chunk key -> insertion-ordered holder names (dict-as-ordered-set)
        self.holders: Dict[int, Dict[str, None]] = {}
        #: per-key rotation cursor spreading lookups across holders
        self._cursor: Dict[int, int] = {}

    def rpc_announce(self, caller: Host, keys: Sequence[int]):
        yield Timeout(self.host.env, self.model.metadata_node_overhead * len(keys))
        name = caller.name
        for key in keys:
            entry = self.holders.setdefault(key, {})
            if name in entry:
                continue
            if len(entry) >= self.max_holders:
                # bounded registry: drop the oldest holder for this key
                entry.pop(next(iter(entry)))
            entry[name] = None
        self.host.fabric.metrics.count("p2p-announce", len(keys))
        return None

    def rpc_locate(self, caller: Host, keys: Sequence[int], fanout: int):
        yield Timeout(self.host.env, self.model.metadata_node_overhead * len(keys))
        me = caller.name
        out: Dict[int, Tuple[str, ...]] = {}
        for key in keys:
            entry = self.holders.get(key)
            if not entry:
                out[key] = ()
                continue
            names = [n for n in entry if n != me]
            if not names:
                out[key] = ()
                continue
            cursor = self._cursor.get(key, 0)
            self._cursor[key] = cursor + 1
            shift = cursor % len(names)
            rotated = names[shift:] + names[:shift]
            out[key] = tuple(rotated[:fanout])
        self.host.fabric.metrics.count("p2p-locate", len(keys))
        return rpc.Sized(out, LOCATE_ENTRY_BYTES * len(keys))


class AnnounceDirectory:
    """Client-side handle of the announce directory."""

    name = "announce"

    def __init__(self, service_host: Host, fanout: int):
        self.service_host = service_host
        self.fanout = fanout

    def locate(self, agent: "PeerAgent", keys: Sequence[int]):
        """One locate RPC for the whole batch; {} if the directory is down."""
        if rpc.is_host_down(self.service_host):
            return {key: () for key in keys}
        try:
            out = yield from rpc.call(
                agent.host, self.service_host, DIRECTORY_SERVICE, "locate",
                tuple(keys), self.fanout,
            )
        except rpc.ProviderUnavailableError:
            return {key: () for key in keys}
        return out

    def on_cached(self, agent: "PeerAgent", keys: Sequence[int]) -> None:
        """Announce freshly cached keys off the critical path."""
        if not keys or rpc.is_host_down(self.service_host):
            return

        def announce(keys=tuple(keys)):
            try:
                yield from rpc.call(
                    agent.host, self.service_host, DIRECTORY_SERVICE,
                    "announce", keys,
                )
            except rpc.ProviderUnavailableError:
                pass  # directory (or our own host) died; announcement is lost

        agent.host.spawn(announce(), name="p2p-announce")
