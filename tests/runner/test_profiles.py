"""Profile registry, env-var validation, and calibration overrides."""

import dataclasses

import pytest

from repro.runner import (
    PAPER,
    QUICK,
    active_profile,
    apply_overrides,
    known_profiles,
    profile_calibration,
    register_profile,
    resolve_profile,
)
from repro.runner.profiles import PROFILE_ENV


class TestActiveProfile:
    def test_default_is_paper(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        assert active_profile() is PAPER

    def test_quick_selected(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "quick")
        assert active_profile() is QUICK

    def test_empty_value_means_default(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "")
        assert active_profile() is PAPER

    def test_unrecognized_value_raises_with_known_list(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "qiuck")
        with pytest.raises(ValueError) as err:
            active_profile()
        message = str(err.value)
        assert "qiuck" in message
        assert "paper" in message and "quick" in message


class TestRegistry:
    def test_resolve_known(self):
        assert resolve_profile("paper") is PAPER
        assert resolve_profile("quick") is QUICK

    def test_resolve_unknown_raises(self):
        with pytest.raises(ValueError, match="known profiles"):
            resolve_profile("nope")

    def test_register_and_resolve(self, micro_profile):
        assert resolve_profile(micro_profile.name) is micro_profile
        assert micro_profile.name in known_profiles()
        # registered profiles become valid env-var values too
        import os
        os.environ[PROFILE_ENV] = micro_profile.name
        try:
            assert active_profile() is micro_profile
        finally:
            del os.environ[PROFILE_ENV]


class TestCalibrationOverrides:
    def test_profile_calibration_uses_profile_image(self):
        calib = profile_calibration(QUICK)
        assert calib.image.size == QUICK.image_size
        assert calib.image.chunk_size == QUICK.chunk_size
        assert calib.image.boot_touched_bytes == QUICK.touched_bytes

    def test_override_applied(self):
        calib = profile_calibration(QUICK, (("image.chunk_size", 4096),))
        assert calib.image.chunk_size == 4096
        assert calib.image.size == QUICK.image_size  # untouched fields survive

    def test_override_other_section(self):
        calib = profile_calibration(QUICK, (("snapshot.diff_bytes", 123),))
        assert calib.snapshot.diff_bytes == 123

    def test_bad_override_path_raises(self):
        with pytest.raises(ValueError, match="override"):
            profile_calibration(QUICK, (("image.no_such_field", 1),))
        with pytest.raises(ValueError, match="override"):
            profile_calibration(QUICK, (("nodots", 1),))

    def test_apply_overrides_does_not_mutate(self):
        base = profile_calibration(QUICK)
        out = apply_overrides(base, (("image.chunk_size", 1024),))
        assert base.image.chunk_size == QUICK.chunk_size
        assert out.image.chunk_size == 1024
