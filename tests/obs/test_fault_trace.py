"""Trace-context propagation through retry/failover: the causal story of a
failed-then-failed-over chunk fetch must be one client span with per-attempt
children carrying the replica rank each attempt tried and why it failed."""

from repro import obs
from repro.blobseer import BlobSeerDeployment
from repro.common.payload import Payload
from repro.common.units import KiB
from repro.faults import RetryPolicy
from repro.simkit import rpc
from repro.simkit.host import Fabric

CHUNK = 4 * KiB

POLICY = RetryPolicy(attempts=3, base_delay=0.01, max_delay=0.05, rpc_timeout=1.0)


def pattern(n, seed=1):
    return bytes((i * 131 + seed * 17) % 256 for i in range(n))


def make(replication=2, retry=POLICY, n_data=4, n_meta=2):
    fab = Fabric(seed=37)
    data = [fab.add_host(f"node{i}") for i in range(n_data)]
    meta = [fab.add_host(f"meta{i}") for i in range(n_meta)]
    manager = fab.add_host("manager")
    client_host = fab.add_host("client")
    dep = BlobSeerDeployment(
        fab, data_hosts=data, meta_hosts=meta, vmanager_host=manager,
        replication_factor=replication, retry=retry,
    )
    return fab, dep, data, meta, client_host


def run(fab, gen):
    return fab.run(fab.env.process(gen))


def failover_read(traced):
    """Seed a replicated blob, kill the rank-0 provider, read it back."""
    fab, dep, data, meta, ch = make(replication=2)
    payload = Payload.from_bytes(pattern(16 * CHUNK))
    rec = dep.seed_blob(payload, CHUNK)
    tracer = obs.install_tracer(fab) if traced else None
    rpc.host_down(data[0])
    client = dep.client(ch)

    def scenario():
        got = yield from client.read(rec.blob_id, rec.version, 0, 16 * CHUNK)
        return got

    got = run(fab, scenario())
    assert got.to_bytes() == payload.to_bytes()
    assert fab.metrics.counters["fetch-retry"] > 0
    return fab, tracer


class TestFailoverTrace:
    def test_attempts_nest_under_one_client_fetch_span(self):
        _, tracer = failover_read(traced=True)
        fetches = [s for s in tracer.spans if s.name == "chunk-fetch"]
        assert len(fetches) == 1, "one client read -> one chunk-fetch span"
        fetch = fetches[0]
        assert fetch.category == "chunk"
        assert fetch.attrs["nchunks"] == 16

        attempts = [
            s for s in tracer.spans if s.name.startswith("fetch-attempt:")
        ]
        assert attempts, "per-attempt spans must exist"
        # every attempt — including those run in spawned scatter processes —
        # is causally linked to the one client fetch span
        for a in attempts:
            assert a.parent_id == fetch.span_id, a.name
            assert a.category == "chunk"

    def test_failed_attempt_records_replica_rank_and_error(self):
        _, tracer = failover_read(traced=True)
        attempts = [
            s for s in tracer.spans if s.name.startswith("fetch-attempt:")
        ]
        failed = [a for a in attempts if a.error is not None]
        assert failed, "the dead provider's attempt must be marked failed"
        for a in failed:
            assert a.attrs["attempt"] == 0
            assert a.attrs["replica"] == 0
            assert a.attrs["provider"] == "node0"
            assert "ProviderUnavailableError" in a.error

        recovered = [a for a in attempts if a.attrs["attempt"] == 1]
        assert recovered, "failover must produce a second attempt"
        for a in recovered:
            assert a.error is None
            assert a.attrs["replica"] == 1
            assert a.attrs["provider"] != "node0"

    def test_meta_walk_is_traced_too(self):
        _, tracer = failover_read(traced=True)
        walks = [s for s in tracer.spans if s.name == "meta-walk"]
        assert walks and all(w.category == "meta" for w in walks)

    def test_tracing_does_not_change_failover_timeline(self):
        fab_plain, _ = failover_read(traced=False)
        fab_traced, _ = failover_read(traced=True)
        assert fab_traced.env.now == fab_plain.env.now
        assert fab_traced.env.event_count == fab_plain.env.event_count
        assert dict(fab_traced.metrics.counters) == dict(fab_plain.metrics.counters)
