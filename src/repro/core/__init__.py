"""The paper's primary contribution: the mirroring virtual file system.

On-demand lazy mirroring of striped VM images (strategy 1: full-chunk
prefetch; strategy 2: contiguous per-chunk mirror regions) with transparent
``CLONE``/``COMMIT`` snapshotting on a versioning repository.
"""

from .api import mount
from .localmirror import LocalMirrorFile, hypervisor_policy, mmap_policy
from .modmanager import ModificationManager, ReadPlan, WritePlan
from .translator import RWTranslator
from .vfs import MirrorHandle, MirrorVFS

__all__ = [
    "LocalMirrorFile",
    "MirrorHandle",
    "MirrorVFS",
    "ModificationManager",
    "RWTranslator",
    "ReadPlan",
    "WritePlan",
    "hypervisor_policy",
    "mmap_policy",
    "mount",
]
