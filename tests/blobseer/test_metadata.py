"""Tests for versioned segment trees: shadowing, cloning, sharing (Fig. 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blobseer.metadata import (
    ChunkRef,
    MetadataStore,
    build_tree,
    capacity_for,
    clone_root,
    lookup,
    lookup_range,
    reachable_nodes,
    shared_nodes,
    write_chunks,
)


def ref(key, size=256, provider="p0"):
    return ChunkRef(key, (provider,), size)


class TestCapacity:
    @pytest.mark.parametrize(
        "n,cap", [(0, 1), (1, 1), (2, 2), (3, 4), (4, 4), (5, 8), (8192, 8192), (8193, 16384)]
    )
    def test_values(self, n, cap):
        assert capacity_for(n) == cap


class TestBuildLookup:
    def test_empty_tree(self):
        store = MetadataStore()
        assert build_tree(store, {}, 8) is None

    def test_full_tree(self):
        store = MetadataStore()
        refs = {i: ref(i) for i in range(8)}
        root = build_tree(store, refs, 8)
        for i in range(8):
            assert lookup(store, root, i) == refs[i]

    def test_sparse_tree_holes(self):
        store = MetadataStore()
        root = build_tree(store, {2: ref(2), 5: ref(5)}, 8)
        assert lookup(store, root, 2) == ref(2)
        assert lookup(store, root, 5) == ref(5)
        for i in (0, 1, 3, 4, 6, 7):
            assert lookup(store, root, i) is None

    def test_non_power_of_two_chunks(self):
        store = MetadataStore()
        refs = {i: ref(i) for i in range(5)}
        root = build_tree(store, refs, 5)
        for i in range(5):
            assert lookup(store, root, i) == refs[i]
        assert lookup(store, root, 6) is None

    def test_lookup_range(self):
        store = MetadataStore()
        refs = {i: ref(i) for i in range(16)}
        root = build_tree(store, refs, 16)
        got, visited = lookup_range(store, root, 4, 9)
        assert got == {i: refs[i] for i in range(4, 9)}
        assert visited >= 5  # at least the leaves

    def test_lookup_range_visits_few_nodes_for_point_query(self):
        store = MetadataStore()
        refs = {i: ref(i) for i in range(1024)}
        root = build_tree(store, refs, 1024)
        _, visited = lookup_range(store, root, 500, 501)
        # a point query should walk roughly one root-to-leaf path
        assert visited <= 2 * 11

    def test_single_chunk_blob(self):
        store = MetadataStore()
        root = build_tree(store, {0: ref(0)}, 1)
        assert lookup(store, root, 0) == ref(0)


class TestShadowing:
    def test_write_creates_new_snapshot_old_intact(self):
        store = MetadataStore()
        v1 = build_tree(store, {i: ref(i) for i in range(8)}, 8)
        v2 = write_chunks(store, v1, {3: ref(103)}, 8)
        assert lookup(store, v1, 3) == ref(3)  # old snapshot unchanged
        assert lookup(store, v2, 3) == ref(103)
        for i in (0, 1, 2, 4, 5, 6, 7):
            assert lookup(store, v2, i) == ref(i)

    def test_write_shares_untouched_subtrees(self):
        store = MetadataStore()
        v1 = build_tree(store, {i: ref(i) for i in range(8)}, 8)
        n_before = len(reachable_nodes(store, v1))
        v2 = write_chunks(store, v1, {0: ref(100)}, 8)
        stats = shared_nodes(store, [v1, v2])
        # Only the path to leaf 0 is new: depth log2(8)=3 + leaf = 4 new nodes.
        assert stats["union"] == n_before + 4
        assert stats["sum"] == 2 * n_before

    def test_write_into_hole(self):
        store = MetadataStore()
        v1 = build_tree(store, {0: ref(0)}, 8)
        v2 = write_chunks(store, v1, {7: ref(7)}, 8)
        assert lookup(store, v2, 0) == ref(0)
        assert lookup(store, v2, 7) == ref(7)
        assert lookup(store, v1, 7) is None

    def test_write_on_empty_root(self):
        store = MetadataStore()
        v1 = write_chunks(store, None, {2: ref(2)}, 8)
        assert lookup(store, v1, 2) == ref(2)

    def test_empty_update_returns_same_root(self):
        store = MetadataStore()
        v1 = build_tree(store, {0: ref(0)}, 8)
        assert write_chunks(store, v1, {}, 8) == v1

    def test_identical_rewrite_is_shared(self):
        """Writing the same ref produces the same root (store deduplicates)."""
        store = MetadataStore()
        v1 = build_tree(store, {i: ref(i) for i in range(4)}, 4)
        v2 = write_chunks(store, v1, {1: ref(1)}, 4)
        assert v2 == v1

    def test_consecutive_commits_totally_ordered_chain(self):
        """Fig. 3(c): two consecutive COMMITs to image B."""
        store = MetadataStore()
        a1 = build_tree(store, {i: ref(i) for i in range(4)}, 4)
        b1 = clone_root(store, a1)
        b2 = write_chunks(store, b1, {1: ref(21), 2: ref(22)}, 4)
        b3 = write_chunks(store, b2, {3: ref(33)}, 4)
        # every snapshot independently readable
        assert [lookup(store, a1, i).key for i in range(4)] == [0, 1, 2, 3]
        assert [lookup(store, b2, i).key for i in range(4)] == [0, 21, 22, 3]
        assert [lookup(store, b3, i).key for i in range(4)] == [0, 21, 22, 33]


class TestCloning:
    def test_clone_reads_identically(self):
        store = MetadataStore()
        a = build_tree(store, {i: ref(i) for i in range(8)}, 8)
        b = clone_root(store, a)
        for i in range(8):
            assert lookup(store, b, i) == lookup(store, a, i)

    def test_clone_is_constant_space(self):
        store = MetadataStore()
        a = build_tree(store, {i: ref(i) for i in range(64)}, 64)
        before = len(store)
        clone_root(store, a)
        assert len(store) - before <= 1  # at most one new root node

    def test_clone_diverges_without_interference(self):
        store = MetadataStore()
        a = build_tree(store, {i: ref(i) for i in range(8)}, 8)
        b = clone_root(store, a)
        b2 = write_chunks(store, b, {0: ref(200)}, 8)
        a2 = write_chunks(store, a, {0: ref(100)}, 8)
        assert lookup(store, a2, 0).key == 100
        assert lookup(store, b2, 0).key == 200
        assert lookup(store, a, 0).key == 0
        assert lookup(store, b, 0).key == 0

    def test_clone_of_empty(self):
        store = MetadataStore()
        assert clone_root(store, None) is None


class TestSharingStats:
    def test_many_snapshots_linear_not_quadratic(self):
        """N snapshots each touching one chunk: metadata grows O(N log C)."""
        store = MetadataStore()
        C = 256
        root = build_tree(store, {i: ref(i) for i in range(C)}, C)
        roots = [root]
        for k in range(20):
            root = write_chunks(store, root, {k % C: ref(1000 + k)}, C)
            roots.append(root)
        stats = shared_nodes(store, roots)
        depth = 9  # log2(256) + 1 levels
        assert stats["union"] <= (2 * C - 1) + 20 * depth
        # naive copies would need 21 full trees
        assert stats["sum"] >= 21 * C


# --------------------------------------------------------------------------- #
# property tests: snapshots behave like immutable dict versions
# --------------------------------------------------------------------------- #
N_CHUNKS = 16

write_op = st.dictionaries(
    st.integers(0, N_CHUNKS - 1), st.integers(100, 10_000), min_size=1, max_size=6
)


@settings(max_examples=120)
@given(st.lists(write_op, min_size=1, max_size=10))
def test_every_snapshot_matches_dict_model(writes):
    store = MetadataStore()
    root = None
    model = {}
    history = [(root, dict(model))]
    for batch in writes:
        updates = {idx: ref(key) for idx, key in batch.items()}
        root = write_chunks(store, root, updates, N_CHUNKS)
        model.update(batch)
        history.append((root, dict(model)))
    for snap_root, snap_model in history:
        for i in range(N_CHUNKS):
            got = lookup(store, snap_root, i)
            if i in snap_model:
                assert got is not None and got.key == snap_model[i]
            else:
                assert got is None
        got_range, _ = lookup_range(store, snap_root, 0, N_CHUNKS)
        assert {i: r.key for i, r in got_range.items()} == snap_model


@settings(max_examples=80)
@given(st.lists(write_op, min_size=1, max_size=8), st.integers(0, 7))
def test_clone_then_diverge_property(writes, split_at):
    store = MetadataStore()
    root = None
    for batch in writes[: split_at % max(1, len(writes))] or writes[:1]:
        root = write_chunks(store, root, {i: ref(k) for i, k in batch.items()}, N_CHUNKS)
    frozen, _ = lookup_range(store, root, 0, N_CHUNKS)
    cloned = clone_root(store, root)
    # heavy divergence on the clone
    for batch in writes:
        cloned = write_chunks(
            store, cloned, {i: ref(k + 50_000) for i, k in batch.items()}, N_CHUNKS
        )
    after, _ = lookup_range(store, root, 0, N_CHUNKS)
    assert after == frozen  # source snapshot is immutable
