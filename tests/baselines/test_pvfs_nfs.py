"""Tests for the PVFS-like striped FS and the NFS server."""

import pytest

from repro.baselines.nfs import NfsClient, NfsServer
from repro.baselines.pvfs import PvfsDeployment
from repro.common.errors import StorageError
from repro.common.payload import Payload
from repro.common.units import KiB
from repro.simkit.host import Fabric

STRIPE = 4 * KiB


def pattern(n, seed=1):
    return bytes((i * 131 + seed * 17) % 256 for i in range(n))


def make_pvfs(n=4, seed=2):
    fab = Fabric(seed=seed)
    hosts = [fab.add_host(f"node{i}") for i in range(n)]
    dep = PvfsDeployment(fab, hosts, stripe_size=STRIPE)
    return fab, dep, hosts


def run(fab, gen):
    return fab.run(fab.env.process(gen))


class TestPvfs:
    def test_create_write_read_roundtrip(self):
        fab, dep, hosts = make_pvfs()
        data = pattern(3 * STRIPE + 100)
        client = dep.client(hosts[0])

        def scenario():
            yield from client.create("/f", len(data))
            yield from client.write("/f", 0, Payload.from_bytes(data))
            got = yield from client.read("/f", 0, len(data))
            return got

        assert run(fab, scenario()).to_bytes() == data

    def test_unaligned_window(self):
        fab, dep, hosts = make_pvfs()
        data = pattern(4 * STRIPE)
        dep.seed_file("/f", Payload.from_bytes(data))
        client = dep.client(hosts[1])

        def scenario():
            got = yield from client.read("/f", STRIPE - 7, 2 * STRIPE)
            return got

        assert run(fab, scenario()).to_bytes() == data[STRIPE - 7 : 3 * STRIPE - 7]

    def test_stripes_distributed_round_robin(self):
        fab, dep, hosts = make_pvfs(n=4)
        dep.seed_file("/f", Payload.from_bytes(pattern(8 * STRIPE)))
        per_server = [dep.io_servers[h.name].stored_bytes() for h in hosts]
        assert per_server == [2 * STRIPE] * 4

    def test_write_overwrites_in_place_no_versioning(self):
        fab, dep, hosts = make_pvfs()
        data = pattern(2 * STRIPE)
        dep.seed_file("/f", Payload.from_bytes(data))
        client = dep.client(hosts[0])

        def scenario():
            yield from client.write("/f", 10, Payload.from_bytes(b"NEW"))
            got = yield from client.read("/f", 0, 20)
            return got

        got = run(fab, scenario())
        expected = bytearray(data[:20])
        expected[10:13] = b"NEW"
        assert got.to_bytes() == bytes(expected)
        assert dep.stored_bytes() == len(data)  # no extra version stored

    def test_missing_file(self):
        fab, dep, hosts = make_pvfs()
        client = dep.client(hosts[0])

        def scenario():
            yield from client.read("/missing", 0, 1)

        with pytest.raises(StorageError):
            run(fab, scenario())

    def test_eof_checks(self):
        fab, dep, hosts = make_pvfs()
        dep.seed_file("/f", Payload.from_bytes(pattern(STRIPE)))
        client = dep.client(hosts[0])

        def scenario():
            yield from client.read("/f", 0, STRIPE + 1)

        with pytest.raises(StorageError):
            run(fab, scenario())

    def test_duplicate_create(self):
        fab, dep, hosts = make_pvfs()
        client = dep.client(hosts[0])

        def scenario():
            yield from client.create("/f", 10)
            yield from client.create("/f", 10)

        with pytest.raises(StorageError):
            run(fab, scenario())

    def test_parallel_stripe_reads_faster_than_serial(self):
        """Reading N stripes from N servers beats N stripes from one server."""
        fab4, dep4, hosts4 = make_pvfs(n=4)
        big = Payload.opaque("img", 64 * STRIPE)
        dep4.seed_file("/f", big)
        c4 = dep4.client(hosts4[0])

        def scenario(client):
            t0 = client.host.env.now
            yield from client.read("/f", 0, 64 * STRIPE)
            return client.host.env.now - t0

        t4 = run(fab4, scenario(c4))

        fab1, dep1, hosts1 = make_pvfs(n=1)
        # give the single-server variant a second host to read from
        reader = fab1.add_host("reader")
        dep1.seed_file("/f", big)
        c1 = dep1.client(reader)
        t1 = run(fab1, scenario(c1))
        assert t4 < t1


class TestNfs:
    def test_read_write_roundtrip(self):
        fab = Fabric(seed=1)
        server_host = fab.add_host("nfs")
        client_host = fab.add_host("c")
        server = NfsServer(server_host)
        server.put_file("/img", Payload.from_bytes(pattern(1000)))
        client = NfsClient(client_host, server)

        def scenario():
            got = yield from client.read("/img", 100, 200)
            yield from client.write("/img", 0, Payload.from_bytes(b"hello"))
            got2 = yield from client.read("/img", 0, 5)
            return got, got2

        got, got2 = run(fab, scenario())
        assert got.to_bytes() == pattern(1000)[100:300]
        assert got2.to_bytes() == b"hello"

    def test_stat_and_missing(self):
        fab = Fabric(seed=1)
        server = NfsServer(fab.add_host("nfs"))
        server.put_file("/img", Payload.zeros(123))
        assert server.stat("/img") == 123
        with pytest.raises(StorageError):
            server.stat("/none")

    def test_single_nic_serializes_many_readers(self):
        """The central server is the bottleneck prepropagation works around."""
        fab = Fabric(seed=1)
        server = NfsServer(fab.add_host("nfs"))
        server.put_file("/img", Payload.opaque("img", 50 * 1000 * 1000))
        readers = [fab.add_host(f"r{i}") for i in range(4)]

        def read_all(h):
            client = NfsClient(h, server)
            yield from client.read("/img", 0, 50 * 1000 * 1000)

        procs = [fab.env.process(read_all(h)) for h in readers]
        fab.run(fab.env.all_of(procs))
        # 4 x 50 MB through one 117.5 MB/s NIC: at least ~1.7 s
        assert fab.env.now > 1.5
