"""Lineage forest reconstruction: ancestry, clones-of-clones, shape queries."""

import pytest

from repro.common.errors import LineageError
from repro.lineage import LineageForest

from helpers import build_chain, make, run


class TestAncestry:
    def test_chain_ancestry_reaches_seed_genesis(self, chain):
        fab, dep, hosts, rec, records = chain
        forest = LineageForest.from_registry(dep.registry)
        head = records[-1]
        path = forest.ancestry(head.blob_id, head.version)
        # 5 commits + clone v1, then across the clone edge into the seed
        # blob's history (v1 and its create v0)
        assert path[0] == (head.blob_id, head.version)
        assert path[-1] == (rec.blob_id, 0)
        assert (rec.blob_id, rec.version) in path
        assert forest.depth(head.blob_id, head.version) == len(path) - 1

    def test_clone_of_a_clone_crosses_two_edges(self, chain):
        """Satellite: ancestry of a second-generation clone spans 3 blobs."""
        fab, dep, hosts, rec, records = chain
        client = dep.client(hosts[1])
        mid = records[3]  # an interior snapshot of the first clone

        def scenario():
            second = yield from client.clone(mid.blob_id, mid.version)
            return second

        second = run(fab, scenario())
        forest = LineageForest.from_registry(dep.registry)
        path = forest.ancestry(second.blob_id, second.version)
        blobs_on_path = {b for b, _ in path}
        assert blobs_on_path == {second.blob_id, mid.blob_id, rec.blob_id}
        # the clone head's parent edge lands exactly on the cloned version
        assert forest.parent(second.blob_id, second.version) == (
            mid.blob_id, mid.version,
        )
        assert forest.is_ancestor(
            (rec.blob_id, rec.version), (second.blob_id, second.version)
        )
        assert not forest.is_ancestor(
            (records[-1].blob_id, records[-1].version),
            (second.blob_id, second.version),
        )

    def test_branch_points_and_clone_edges(self, chain):
        fab, dep, hosts, rec, records = chain
        client = dep.client(hosts[1])
        mid = records[3]

        def scenario():
            yield from client.clone(mid.blob_id, mid.version)

        run(fab, scenario())
        forest = LineageForest.from_registry(dep.registry)
        # mid now has two children: the next commit and the clone head
        assert (mid.blob_id, mid.version) in forest.branch_points()
        assert len(forest.children(mid.blob_id, mid.version)) == 2
        sources = {src for src, _ in forest.clone_edges()}
        assert (rec.blob_id, rec.version) in sources
        assert (mid.blob_id, mid.version) in sources

    def test_roots_and_heads(self, chain):
        fab, dep, hosts, rec, records = chain
        forest = LineageForest.from_registry(dep.registry)
        # every blob's create (v0) is a genesis; the chain head is a head
        assert (rec.blob_id, 0) in forest.roots()
        head = records[-1]
        assert (head.blob_id, head.version) in forest.heads()
        assert (head.blob_id, head.version - 1) not in forest.heads()

    def test_retirement_keeps_the_forest_node(self, chain):
        fab, dep, hosts, rec, records = chain
        mid = records[2]
        dep.registry.delete_version(mid.blob_id, mid.version)
        forest = LineageForest.from_registry(dep.registry)
        assert forest.is_retired(mid.blob_id, mid.version)
        # the chain through the retired node is still walkable
        head = records[-1]
        assert (mid.blob_id, mid.version) in forest.ancestry(
            head.blob_id, head.version
        )

    def test_unknown_version_raises(self, chain):
        fab, dep, hosts, rec, records = chain
        forest = LineageForest.from_registry(dep.registry)
        with pytest.raises(LineageError):
            forest.entry(999, 1)

    def test_cycle_detection(self, chain):
        fab, dep, hosts, rec, records = chain
        head = records[-1]
        # forge a cycle with a skip pointer aimed forward in the chain
        dep.registry.set_skip(
            head.blob_id, head.version - 2, (head.blob_id, head.version)
        )
        forest = LineageForest.from_registry(dep.registry)
        with pytest.raises(LineageError, match="cycle"):
            forest.ancestry(head.blob_id, head.version, follow_skips=True)
        # the raw parent walk is unaffected by the forged skip
        assert forest.ancestry(head.blob_id, head.version)


class TestStats:
    def test_stats_summarize_shape(self, chain):
        fab, dep, hosts, rec, records = chain
        stats = LineageForest.from_registry(dep.registry).stats()
        head = records[-1]
        assert stats["snapshots"] == len(dep.registry.lineage_entries())
        assert stats["clones"] == 1
        assert stats["retired"] == 0
        assert stats["skips"] == 0
        forest = LineageForest.from_registry(dep.registry)
        assert stats["max_depth"] == forest.depth(head.blob_id, head.version)

    def test_depth_with_skips_shrinks(self, chain):
        fab, dep, hosts, rec, records = chain
        head = records[-1]
        genesis = (records[0].blob_id, 0)
        dep.registry.set_skip(head.blob_id, head.version, genesis)
        forest = LineageForest.from_registry(dep.registry)
        assert forest.depth(head.blob_id, head.version, follow_skips=True) == 1
        assert forest.depth(head.blob_id, head.version) > 1
