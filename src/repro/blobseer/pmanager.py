"""The provider manager: chunk-to-provider placement.

BlobSeer's provider manager decides, for every chunk written, which data
providers receive its replicas. The goal is even load distribution so that
striping actually spreads I/O (§3.1.3). Three strategies are provided:

``round-robin``
    deterministic cycling through the provider list (what the eval uses:
    uniform striping, replication 1);
``random``
    uniform random placement (models hash-based placement);
``least-loaded``
    pick the providers with the fewest allocated bytes (greedy balancing,
    useful for the heterogeneous-diff ablation);
``rack-diverse``
    spread each chunk's replicas across distinct racks (requires a
    ``rack_of`` map from the attached topology). With replication >= the
    number of racks holding providers, every rack gets a replica, so a
    rack-local read path exists for every reader while a whole-rack
    failure still leaves live copies elsewhere.

Replication ``r`` returns ``r`` distinct providers per chunk.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..calibration import ServiceModel
from ..common.errors import StorageError
from ..simkit.host import Host


class PlacementPolicy:
    """Pure placement state machine (testable without the simulator)."""

    def __init__(
        self,
        providers: Sequence[str],
        strategy: str = "round-robin",
        rng: Optional[np.random.Generator] = None,
        replication_factor: int = 1,
        rack_of: Optional[Dict[str, int]] = None,
    ):
        if not providers:
            raise StorageError("no data providers")
        if strategy not in ("round-robin", "random", "least-loaded", "rack-diverse"):
            raise StorageError(f"unknown placement strategy {strategy!r}")
        if replication_factor < 1 or replication_factor > len(providers):
            raise StorageError(
                f"replication factor {replication_factor} impossible with "
                f"{len(providers)} providers"
            )
        self.providers = list(providers)
        self.strategy = strategy
        self.rng = rng if rng is not None else np.random.default_rng(0)
        #: default replica count when allocate() is called without one
        self.replication_factor = replication_factor
        self._cursor = 0
        self.load_bytes = {name: 0 for name in self.providers}
        if strategy == "rack-diverse":
            if rack_of is None:
                raise StorageError(
                    "rack-diverse placement requires a rack_of map (attach a topology)"
                )
            groups: Dict[int, List[str]] = {}
            for p in self.providers:
                groups.setdefault(rack_of.get(p, 0), []).append(p)
            #: rack ids ascending; within a rack, provider list order is kept
            self._racks = sorted(groups)
            self._rack_groups = {r: groups[r] for r in self._racks}
            self._rack_cursors = {r: 0 for r in self._racks}
            self._rack_start = 0

    def allocate(
        self,
        n_chunks: int,
        chunk_size: int,
        replication: Optional[int] = None,
        exclude: Sequence[str] = (),
    ) -> List[Tuple[str, ...]]:
        """Pick ``replication`` distinct providers for each of ``n_chunks`` chunks.

        ``exclude`` removes providers from consideration (crashed hosts the
        provider manager knows are down); empty in every failure-free run.
        """
        if replication is None:
            replication = self.replication_factor
        if exclude:
            return self._allocate_excluding(n_chunks, chunk_size, replication, exclude)
        if replication < 1 or replication > len(self.providers):
            raise StorageError(
                f"replication {replication} impossible with {len(self.providers)} providers"
            )
        out: List[Tuple[str, ...]] = []
        if self.strategy == "round-robin" and replication == 1:
            # Hot case (the eval uploads stripe thousands of chunks with
            # replication 1): same output as the generic loop below.
            providers = self.providers
            n = len(providers)
            cursor = self._cursor
            load = self.load_bytes
            for _ in range(n_chunks):
                p = providers[cursor]
                cursor += 1
                if cursor == n:
                    cursor = 0
                load[p] += chunk_size
                out.append((p,))
            self._cursor = cursor
            return out
        for _ in range(n_chunks):
            if self.strategy == "round-robin":
                picks = [
                    self.providers[(self._cursor + r) % len(self.providers)]
                    for r in range(replication)
                ]
                self._cursor = (self._cursor + 1) % len(self.providers)
            elif self.strategy == "random":
                idx = self.rng.choice(len(self.providers), size=replication, replace=False)
                picks = [self.providers[int(i)] for i in idx]
            elif self.strategy == "rack-diverse":
                picks = self._rack_diverse_picks(replication)
            else:  # least-loaded
                ranked = sorted(self.providers, key=lambda p: (self.load_bytes[p], p))
                picks = ranked[:replication]
            for p in picks:
                self.load_bytes[p] += chunk_size
            out.append(tuple(picks))
        return out

    def _rack_diverse_picks(
        self, replication: int, allowed: Optional[Set[str]] = None
    ) -> List[str]:
        """One chunk's replica set: one provider per rack, racks rotating.

        The starting rack rotates per chunk (so replica-0 load spreads over
        all racks) and each rack keeps its own provider cursor (so load
        spreads within the rack). Replication beyond the number of racks —
        or racks emptied by ``allowed`` filtering — falls back to cycling
        the flat provider list for the remainder.
        """
        racks = self._racks
        n_racks = len(racks)
        picks: List[str] = []
        chosen: Set[str] = set()
        start = self._rack_start
        for i in range(n_racks):
            if len(picks) == replication:
                break
            r = racks[(start + i) % n_racks]
            group = self._rack_groups[r]
            n = len(group)
            cur = self._rack_cursors[r]
            for j in range(n):
                p = group[(cur + j) % n]
                if allowed is not None and p not in allowed:
                    continue
                picks.append(p)
                chosen.add(p)
                self._rack_cursors[r] = (cur + j + 1) % n
                break
        self._rack_start = (start + 1) % n_racks
        if len(picks) < replication:
            providers = self.providers
            n = len(providers)
            cur = self._cursor
            scanned = 0
            while len(picks) < replication and scanned < n:
                p = providers[cur % n]
                cur += 1
                scanned += 1
                if p in chosen or (allowed is not None and p not in allowed):
                    continue
                picks.append(p)
                chosen.add(p)
            self._cursor = cur % n
        return picks

    def _allocate_excluding(
        self,
        n_chunks: int,
        chunk_size: int,
        replication: int,
        exclude: Sequence[str],
    ) -> List[Tuple[str, ...]]:
        """Slow path used only when some providers are known to be down."""
        excluded = set(exclude)
        eligible = [p for p in self.providers if p not in excluded]
        if replication < 1 or replication > len(eligible):
            raise StorageError(
                f"replication {replication} impossible with {len(eligible)} "
                f"live providers ({len(excluded)} excluded)"
            )
        out: List[Tuple[str, ...]] = []
        for _ in range(n_chunks):
            if self.strategy == "round-robin":
                start = self._cursor % len(eligible)
                picks = [eligible[(start + r) % len(eligible)] for r in range(replication)]
                self._cursor = (self._cursor + 1) % len(self.providers)
            elif self.strategy == "random":
                idx = self.rng.choice(len(eligible), size=replication, replace=False)
                picks = [eligible[int(i)] for i in idx]
            elif self.strategy == "rack-diverse":
                picks = self._rack_diverse_picks(replication, allowed=set(eligible))
            else:  # least-loaded
                ranked = sorted(eligible, key=lambda p: (self.load_bytes[p], p))
                picks = ranked[:replication]
            for p in picks:
                self.load_bytes[p] += chunk_size
            out.append(tuple(picks))
        return out

    def imbalance(self) -> float:
        """max/mean allocated bytes (1.0 = perfectly balanced)."""
        loads = list(self.load_bytes.values())
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean > 0 else 1.0


class ProviderManagerService:
    """RPC wrapper around a :class:`PlacementPolicy` (one per deployment)."""

    def __init__(self, host: Host, policy: PlacementPolicy, model: ServiceModel):
        self.host = host
        self.policy = policy
        self.model = model

    def rpc_allocate(self, caller: Host, n_chunks: int, chunk_size: int, replication: int):
        yield self.host.env.timeout(self.model.publish_overhead / 4)
        return self.policy.allocate(
            n_chunks, chunk_size, replication, exclude=self._down_providers()
        )

    def _down_providers(self) -> Tuple[str, ...]:
        """Providers the manager currently believes dead (crash-injection only)."""
        from ..simkit import rpc

        if not rpc._down_hosts:  # fast path: failure-free runs never filter
            return ()
        hosts = self.host.fabric.hosts
        return tuple(
            name
            for name in self.policy.providers
            if name in hosts and rpc.is_host_down(hosts[name])
        )
