"""Figure 6 — Bonnie++ sustained throughput (paper §5.4).

A single VM writes, reads back, and overwrites an 800 MB working set in
8 KiB blocks inside its image, comparing the mirror (FUSE + mmap write-back)
with a locally available raw image (hypervisor default path). Since the data
is written before being read, the mirror never goes remote.

Both runs are sweep points (``kind="bonnie"``) routed through the runner, so
Figure 7 — which reports other metrics of the same run — replays them from
the result cache instead of re-simulating.
"""

import pytest

from repro.analysis import check_shape, render_bars

from common import PointSpec, active_profile, emit, run_sweep

from repro.common.units import MiB

PROFILE = active_profile()


def _run_bonnie(kind: str):
    """One §5.4 Bonnie++ point; returns its :class:`PointResult`."""
    spec = PointSpec(kind="bonnie", profile=PROFILE.name, approach=kind, seed=3)
    return run_sweep([spec])[0]


@pytest.mark.parametrize("kind", ["local", "mirror"])
def test_fig6_run(benchmark, sweep_cache, kind):
    point = benchmark.pedantic(lambda: _run_bonnie(kind), rounds=1, iterations=1)
    sweep_cache[("bonnie", kind)] = point
    if kind == "mirror":
        # §5.4: written-then-read data never triggers remote reads
        assert point.metrics["payload_traffic"] < 2 * MiB


def test_fig6_report(benchmark, sweep_cache):
    local = sweep_cache[("bonnie", "local")].metrics
    ours = sweep_cache[("bonnie", "mirror")].metrics
    groups = {
        "local": [local["block_write_kbps"], local["block_read_kbps"],
                  local["block_overwrite_kbps"]],
        "our-approach": [ours["block_write_kbps"], ours["block_read_kbps"],
                         ours["block_overwrite_kbps"]],
    }
    table = benchmark.pedantic(
        lambda: render_bars(
            "fig6: Bonnie++ sustained throughput (KB/s)",
            ["BlockW", "BlockR", "BlockO"],
            groups,
        ),
        rounds=1,
        iterations=1,
    )
    w_ratio = ours["block_write_kbps"] / local["block_write_kbps"]
    o_ratio = ours["block_overwrite_kbps"] / local["block_overwrite_kbps"]
    r_ratio = ours["block_read_kbps"] / local["block_read_kbps"]
    checks = [
        check_shape(f"BlockW ~2x higher for ours (mmap write-back; got {w_ratio:.2f}x)", 1.5 < w_ratio < 2.6),
        check_shape(f"BlockO ~2x higher for ours (got {o_ratio:.2f}x)", 1.3 < o_ratio < 2.6),
        check_shape(f"BlockR equal for both (got {r_ratio:.2f}x)", 0.85 < r_ratio < 1.15),
    ]
    emit("fig6", table + "\n" + "\n".join(checks),
         {"labels": ["BlockW", "BlockR", "BlockO"], "groups": groups,
          "checks": checks})
    assert all(c.startswith("[PASS]") for c in checks), "\n".join(checks)
