"""Tracked paper-scale benchmark for the simulator fabric.

The paper's headline experiments are *concurrency at scale*: hundreds of VM
instances hammering a shared GigE fabric during multideployment and
multisnapshotting. This harness pins that regime with the ``scale`` profile
(see :mod:`repro.runner.profiles`): a 520-node pool whose BlobSeer
repository is concentrated on 8 dedicated provider nodes with NVMe-class
disks, so the network — not the disks — is the bottleneck and every
deployment fans hundreds of concurrent flows into 8 uplinks.

Three workload variants are measured at n ∈ {64, 256, 512}:

* ``deploy``   — fig4-style mirror multideployment;
* ``snapshot`` — fig5-style deploy + local diffs + multisnapshot;
* ``p2p``      — the cooperative-exchange deployment (peers serve chunks).

Each point runs in a **forked child process** so its peak RSS is measured
per point (``ru_maxrss`` of the child, not a monotone high-water mark of the
whole harness); wall time and the deterministic event count yield events/s.

Results are tracked in ``BENCH_scale.json`` at the repository root:

* ``baseline_precohort`` — the same measurement taken immediately before
  the cohort-based rebalancing engine landed (per-flow O(flows-on-link)
  rebalance). Kept as a static record of what the cohort engine bought.
* ``current`` — the committed measurement for the present tree.

Running as a script re-measures and **gates** (mirroring bench_simperf):
non-zero exit if fresh events/s falls more than ``REGRESSION_TOLERANCE``
below the committed ``current``, if the deterministic event count changed,
or if deploy@512 drops below ``TARGET_SPEEDUP``× the pre-cohort baseline.
``--update`` rewrites the committed ``current`` section; ``--baseline``
(re)records ``baseline_precohort`` — only meaningful on a pre-cohort tree.

Usage::

    make perf                                    # measure + regression gate
    make scale-smoke                             # tiny-n gate-logic check
    PYTHONPATH=src python benchmarks/bench_scale.py --update
    PYTHONPATH=src python benchmarks/bench_scale.py --full   # adds n=1024
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_scale.json"

if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from gates import (  # noqa: E402
    field_drift, jcopy, load_tracked, rss_mib, run_in_child,
    throughput_floor, write_tracked,
)
from repro.cloud import deploy, snapshot_all  # noqa: E402
from repro.runner import (  # noqa: E402
    SCALE,
    BenchProfile,
    apply_diffs,
    build_point_cloud,
    register_profile,
    resolve_profile,
)

#: allowed fractional drop in events/s before the gate fails
REGRESSION_TOLERANCE = 0.25

#: acceptance floor: deploy@512 events/s vs the pre-cohort baseline
TARGET_SPEEDUP = 1.5

#: best-of-N repetitions per point (each in a fresh forked child)
DEFAULT_REPEATS = 1

#: fixed seed — the simulated workload (and its event count) is identical
#: across runs and machines
SEED = 1

#: the tracked grid: variant -> instance counts
VARIANTS = ("deploy", "snapshot", "p2p")
COUNTS = SCALE.instance_counts  # (64, 256, 512)

#: headline point the ≥ TARGET_SPEEDUP acceptance criterion applies to
HEADLINE = ("deploy", 512)

#: ad-hoc profile for the ``--full`` n=1024 smoke point (informational
#: only; not part of the tracked grid)
SCALE_XL = register_profile(
    BenchProfile(
        name="scale-xl",
        pool_nodes=1030,
        instance_counts=(1024,),
        image_size=SCALE.image_size,
        chunk_size=SCALE.chunk_size,
        touched_bytes=SCALE.touched_bytes,
        n_regions=SCALE.n_regions,
        diff_bytes=SCALE.diff_bytes,
        mc_workers=SCALE.mc_workers,
        mc_total_compute=SCALE.mc_total_compute,
        bonnie_working_set=SCALE.bonnie_working_set,
        data_nodes=SCALE.data_nodes,
        meta_nodes=SCALE.meta_nodes,
        calib_overrides=SCALE.calib_overrides,
    )
)


# --------------------------------------------------------------------------- #
# workloads
# --------------------------------------------------------------------------- #
def run_workload(variant: str, n: int, profile_name: str = SCALE.name) -> int:
    """Run one scale point in-process; returns the processed event count."""
    profile = resolve_profile(profile_name)
    if variant == "deploy":
        cloud, image = build_point_cloud(profile, SEED)
        deploy(cloud, image, n, "mirror")
    elif variant == "snapshot":
        cloud, image = build_point_cloud(profile, SEED)
        res = deploy(cloud, image, n, "mirror")
        apply_diffs(cloud, image, res.vms, profile.diff_bytes)
        snapshot_all(cloud, res.vms, "mirror")
    elif variant == "p2p":
        cloud, image = build_point_cloud(profile, SEED, p2p=True)
        deploy(cloud, image, n, "mirror")
    else:
        raise ValueError(f"unknown scale variant {variant!r}")
    return cloud.env.event_count


def _measure_once(variant: str, n: int, profile_name: str) -> dict:
    t0 = time.perf_counter()
    events = run_workload(variant, n, profile_name)
    wall = time.perf_counter() - t0
    return {"wall_s": wall, "events": events, "peak_rss_mib": rss_mib()}


def measure_point(
    variant: str, n: int, profile_name: str = SCALE.name,
    repeats: int = DEFAULT_REPEATS,
) -> dict:
    """Best-of-N measurement of one point, each run in a forked child.

    The fork (see :func:`gates.run_in_child`) gives a true per-point peak
    RSS; where fork is unavailable the point runs in-process and RSS
    degrades to a monotone high-water mark.
    """
    best = None
    for _ in range(max(1, repeats)):
        row = run_in_child(
            _measure_once, variant, n, profile_name,
            label=f"scale point {variant}@{n}",
        )
        if best is None or row["wall_s"] < best["wall_s"]:
            best = row
    best["wall_s"] = round(best["wall_s"], 3)
    best["events_per_s"] = round(best["events"] / best["wall_s"]) if best["wall_s"] else 0
    return best


def measure(
    variants=VARIANTS, counts=COUNTS, profile_name: str = SCALE.name,
    repeats: int = DEFAULT_REPEATS, verbose: bool = True,
) -> dict:
    """Measure the whole grid; returns {variant: {str(n): row}}."""
    out = {}
    for variant in variants:
        out[variant] = {}
        for n in counts:
            row = measure_point(variant, n, profile_name, repeats)
            out[variant][str(n)] = row
            if verbose:
                print(
                    f"{variant}@{n}: {row['wall_s']:.3f}s wall, "
                    f"{row['events']} events, {row['events_per_s']} events/s, "
                    f"{row['peak_rss_mib']} MiB peak RSS"
                )
    return out


# --------------------------------------------------------------------------- #
# tracked file + gate
# --------------------------------------------------------------------------- #
def load_committed() -> dict:
    return load_tracked(BENCH_PATH)


def _points(section: dict):
    for variant, rows in sorted(section.items()):
        for n, row in sorted(rows.items(), key=lambda kv: int(kv[0])):
            yield variant, n, row


def check_regression(fresh: dict, committed: dict) -> list:
    """Return a list of human-readable failures (empty = gate passes)."""
    failures = []
    current = committed.get("current", {})
    for variant, n, now in _points(fresh):
        base = current.get(variant, {}).get(n)
        if base is None:
            continue
        failures += throughput_floor(
            f"{variant}@{n}", now["events_per_s"], base["events_per_s"],
            REGRESSION_TOLERANCE,
        )
        failures += field_drift(f"{variant}@{n}", now, base, ("events",))
    failures += check_target(fresh, committed)
    return failures


def check_target(fresh: dict, committed: dict) -> list:
    """The ≥ TARGET_SPEEDUP acceptance floor on the headline point."""
    variant, n = HEADLINE
    base = committed.get("baseline_precohort", {}).get(variant, {}).get(str(n))
    now = fresh.get(variant, {}).get(str(n))
    if base is None or now is None:
        return []
    ratio = now["events_per_s"] / base["events_per_s"]
    if ratio < TARGET_SPEEDUP:
        return [
            f"{variant}@{n}: {now['events_per_s']} events/s is only "
            f"{ratio:.2f}x the pre-cohort baseline "
            f"{base['events_per_s']} events/s (target ≥ {TARGET_SPEEDUP}x)"
        ]
    return []


def _speedups(committed: dict) -> dict:
    out = {}
    base = committed.get("baseline_precohort", {})
    for variant, n, row in _points(committed.get("current", {})):
        b = base.get(variant, {}).get(n)
        if b:
            out[f"{variant}@{n}"] = round(
                row["events_per_s"] / b["events_per_s"], 2
            )
    return out


# --------------------------------------------------------------------------- #
# smoke mode: tiny n, asserts the gate logic itself
# --------------------------------------------------------------------------- #
def run_smoke(repeats: int = 1) -> int:
    """``make scale-smoke``: measure tiny points and assert the gate logic.

    Uses the ``scale-smoke`` profile (20 nodes, 4 repository nodes — the
    same concentrated shape at sub-second n) and then exercises
    :func:`check_regression` against synthetic committed data: the gate must
    pass on matching numbers, flag an events/s collapse, flag an event-count
    change, and flag a headline point below the target speedup.
    """
    fresh = measure(
        variants=VARIANTS, counts=(4, 12), profile_name="scale-smoke",
        repeats=repeats,
    )

    committed = {"current": jcopy(fresh)}
    if check_regression(fresh, committed):
        print("smoke: gate failed on identical numbers", file=sys.stderr)
        return 1

    slow = jcopy(committed)
    for rows in slow["current"].values():
        for row in rows.values():
            row["events_per_s"] = row["events_per_s"] * 100 + 1000
    if not check_regression(fresh, slow):
        print("smoke: gate missed an events/s collapse", file=sys.stderr)
        return 1

    drifted = jcopy(committed)
    drifted["current"]["deploy"]["12"]["events"] += 1
    if not any(
        ": events " in f for f in check_regression(fresh, drifted)
    ):
        print("smoke: gate missed an event-count change", file=sys.stderr)
        return 1

    headline_v, headline_n = HEADLINE
    behind = {
        "current": committed["current"],
        "baseline_precohort": {
            headline_v: {
                str(headline_n): {
                    "events_per_s": 10**9, "events": 1, "wall_s": 1.0,
                }
            }
        },
    }
    synthetic_fresh = {
        headline_v: {str(headline_n): {"events_per_s": 10**9 // 2, "events": 1}}
    }
    if not check_target(synthetic_fresh, behind):
        print("smoke: gate missed a below-target headline point", file=sys.stderr)
        return 1

    print("scale smoke passed (gate logic verified)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite BENCH_scale.json's 'current' section with this run",
    )
    parser.add_argument(
        "--baseline", action="store_true",
        help="record this run as 'baseline_precohort' (pre-cohort tree only)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny-n run on the scale-smoke profile + gate-logic self-test",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="additionally smoke-run deployment at n=1024 (informational)",
    )
    parser.add_argument(
        "--repeats", type=int, default=DEFAULT_REPEATS, help="best-of-N runs"
    )
    parser.add_argument(
        "--variants", nargs="+", default=list(VARIANTS), choices=VARIANTS,
    )
    parser.add_argument(
        "--counts", nargs="+", type=int, default=list(COUNTS),
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error(f"--repeats must be >= 1, got {args.repeats}")

    if args.smoke:
        return run_smoke(repeats=args.repeats)

    fresh = measure(
        variants=tuple(args.variants), counts=tuple(args.counts),
        repeats=args.repeats,
    )
    if args.full:
        row = measure_point("deploy", 1024, SCALE_XL.name, repeats=1)
        print(
            f"deploy@1024 (smoke): {row['wall_s']:.3f}s wall, "
            f"{row['events']} events, {row['events_per_s']} events/s, "
            f"{row['peak_rss_mib']} MiB peak RSS"
        )

    committed = load_committed() if BENCH_PATH.exists() else {}

    if args.baseline or args.update:
        committed.setdefault("profile", SCALE.name)
        committed.setdefault("seed", SEED)
        if args.baseline:
            committed["baseline_precohort"] = fresh
        if args.update:
            committed["current"] = fresh
        committed["speedup_vs_precohort"] = _speedups(committed)
        write_tracked(BENCH_PATH, committed)
        print(f"updated {BENCH_PATH}")
        return 0

    if not committed.get("current"):
        print(f"no committed numbers at {BENCH_PATH}; run with --update first")
        return 1
    failures = check_regression(fresh, committed)
    if failures:
        for f in failures:
            print(f"SCALE REGRESSION: {f}", file=sys.stderr)
        return 1
    speedups = _speedups(committed)
    if speedups:
        print("committed speedups vs pre-cohort baseline:", json.dumps(speedups))
    print("scale gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
