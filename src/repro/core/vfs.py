"""The mirroring virtual file system: the paper's contribution (§3, §4).

:class:`MirrorVFS` plays the role of the FUSE module running on every
compute node: it exposes repository snapshots as plain local files the
hypervisor can open, read and write through a POSIX-like interface, while

* lazily mirroring content on demand from the striped repository,
* keeping all writes local,
* exposing the ``CLONE`` and ``COMMIT`` control primitives (the paper
  implements them as ``ioctl``\\ s trapped by the FUSE module).

An open image is a :class:`MirrorHandle`. Closing a handle persists the
modification state next to the local file; re-opening the same image on the
same node restores it (§4.2). The handle tracks its *commit target*:
initially the source blob itself; after ``ioctl_clone`` the private clone,
so consecutive ``COMMIT``\\ s build the clone's totally ordered snapshot
history (Fig. 3(c)).
"""

from __future__ import annotations

from typing import Generator, Optional

from ..blobseer.client import BlobClient
from ..blobseer.vmanager import SnapshotRecord
from ..calibration import FuseModel
from ..common.errors import MirrorStateError
from ..common.payload import Payload
from ..simkit.host import Host
from .localmirror import LocalMirrorFile
from .modmanager import ModificationManager
from .translator import RWTranslator


class MirrorHandle:
    """An open mirrored image: the 'raw file' the hypervisor sees."""

    def __init__(
        self,
        vfs: "MirrorVFS",
        path: str,
        source_blob: int,
        source_version: int,
        size: int,
        chunk_size: int,
        modmgr: ModificationManager,
        local: LocalMirrorFile,
    ):
        self.vfs = vfs
        self.path = path
        self.source_blob = source_blob
        self.source_version = source_version
        self.size = size
        self.chunk_size = chunk_size
        self.modmgr = modmgr
        self.local = local
        self.translator = RWTranslator(
            modmgr, local, vfs.client, source_blob, source_version,
            full_chunk_prefetch=vfs.full_chunk_prefetch,
        )
        #: blob receiving COMMITs (the clone once ioctl_clone ran)
        self.target_blob: int = source_blob
        self.target_version: int = source_version
        #: chunk indices touched by explicit reads/writes (consumption signal
        #: for the profile-guided prefetcher)
        self.touched_chunks: set = set()
        self._closed = False

    # ------------------------------------------------------------------ #
    # POSIX-ish data plane
    # ------------------------------------------------------------------ #
    def read(self, offset: int, nbytes: int) -> Generator:
        """``pread``: returns a Payload of exactly ``nbytes``."""
        self._check()
        if offset < 0 or offset + nbytes > self.size:
            raise MirrorStateError(f"read [{offset},{offset + nbytes}) beyond image")
        self.touched_chunks.update(self.modmgr.chunks_overlapping(offset, offset + nbytes))
        tracer = self.vfs.host.fabric.tracer
        if tracer.enabled:
            span = tracer.start("vfs:read", "vfs", offset=offset, nbytes=nbytes)
            try:
                data = yield from self.translator.read(offset, nbytes)
            except BaseException as exc:
                span.set_error(exc)
                raise
            finally:
                span.finish()
        else:
            data = yield from self.translator.read(offset, nbytes)
        return data

    def write(self, offset: int, payload: Payload) -> Generator:
        """``pwrite``: always local (plus strategy-2 gap fills)."""
        self._check()
        if offset < 0 or offset + payload.size > self.size:
            raise MirrorStateError(f"write [{offset},{offset + payload.size}) beyond image")
        tracer = self.vfs.host.fabric.tracer
        if tracer.enabled:
            span = tracer.start("vfs:write", "vfs", offset=offset, nbytes=payload.size)
            try:
                yield from self.translator.write(offset, payload)
            except BaseException as exc:
                span.set_error(exc)
                raise
            finally:
                span.finish()
        else:
            yield from self.translator.write(offset, payload)

    def close(self) -> Generator:
        """munmap + persist modification state for a later re-open."""
        self._check()
        state = {
            "modmgr": self.modmgr.to_state(),
            "source": (self.source_blob, self.source_version),
            "target": (self.target_blob, self.target_version),
        }
        yield from self.local.persist_state(state)
        self._closed = True

    # ------------------------------------------------------------------ #
    # control plane (the two ioctls)
    # ------------------------------------------------------------------ #
    def ioctl_clone(self) -> Generator:
        """CLONE: create a private writable lineage for this instance.

        Returns the clone's first :class:`SnapshotRecord`. Subsequent
        COMMITs publish into the clone.
        """
        self._check()
        tracer = self.vfs.host.fabric.tracer
        if tracer.enabled:
            span = tracer.start(
                "ioctl:CLONE", "snapshot",
                blob=self.source_blob, version=self.source_version,
            )
            try:
                rec: SnapshotRecord = yield from self.vfs.client.clone(
                    self.source_blob, self.source_version
                )
            except BaseException as exc:
                span.set_error(exc)
                raise
            finally:
                span.finish()
        else:
            rec = yield from self.vfs.client.clone(
                self.source_blob, self.source_version
            )
        self.target_blob = rec.blob_id
        self.target_version = rec.version
        self.vfs.host.fabric.metrics.count("ioctl-clone")
        return rec

    def ioctl_commit(self) -> Generator:
        """COMMIT: publish all local modifications as a new snapshot.

        The new snapshot is standalone (readable as a full raw image) yet
        physically stores only the dirty chunks; everything else is shared
        through the segment trees. Returns the new record; a COMMIT with no
        local modifications returns the current target snapshot unchanged.
        """
        self._check()
        metrics = self.vfs.host.fabric.metrics
        tracer = self.vfs.host.fabric.tracer
        span = None
        if tracer.enabled:
            span = tracer.start("ioctl:COMMIT", "snapshot", blob=self.target_blob)
        try:
            updates = yield from self.translator.collect_dirty_chunks()
            if span is not None:
                span.set(dirty_chunks=len(updates))
            if not updates:
                rec = yield from self.vfs.client._lookup_snapshot(
                    self.target_blob, self.target_version
                )
                return rec
            rec: SnapshotRecord = yield from self.vfs.client.write_chunks(
                self.target_blob, updates, base_version=self.target_version
            )
        except BaseException as exc:
            if span is not None:
                span.set_error(exc)
            raise
        finally:
            if span is not None:
                span.finish()
        self.target_version = rec.version
        self.modmgr.clear_dirty()
        metrics.count("ioctl-commit")
        metrics.count("commit-chunks", len(updates))
        return rec

    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        return self._closed

    def _check(self) -> None:
        if self._closed:
            raise MirrorStateError(f"{self.path}: handle is closed")


class MirrorVFS:
    """Per-compute-node mirroring module (the FUSE process)."""

    def __init__(
        self,
        host: Host,
        client: BlobClient,
        fuse: Optional[FuseModel] = None,
        full_chunk_prefetch: bool = True,
    ):
        if client.host is not host:
            raise MirrorStateError("client must be bound to the VFS host")
        self.host = host
        self.client = client
        self.fuse = fuse if fuse is not None else FuseModel()
        #: strategy-1 switch (False only for the no-prefetch ablation)
        self.full_chunk_prefetch = full_chunk_prefetch

    def open(self, blob_id: int, version: Optional[int] = None, path: Optional[str] = None) -> Generator:
        """Open a repository snapshot as a local raw image file.

        First open creates an empty sparse local file of the snapshot's
        size; a re-open of the same ``path`` restores the persisted
        modification state (locally mirrored content survives).
        """
        snap = yield from self.client._lookup_snapshot(blob_id, version)
        if path is None:
            path = f"/mirror/blob{snap.blob_id}@{snap.version}"
        local = LocalMirrorFile(self.host, path, snap.size, self.fuse)
        state = local.load_state()
        if state is not None:
            if tuple(state["source"]) != (snap.blob_id, snap.version):
                raise MirrorStateError(
                    f"{path}: persisted state belongs to blob "
                    f"{state['source']}, not ({snap.blob_id}, {snap.version})"
                )
            modmgr = ModificationManager.from_state(state["modmgr"])
            handle = MirrorHandle(
                self, path, snap.blob_id, snap.version, snap.size, snap.chunk_size,
                modmgr, local,
            )
            handle.target_blob, handle.target_version = state["target"]
        else:
            modmgr = ModificationManager(
                snap.size, snap.chunk_size, enforce_contiguity=self.full_chunk_prefetch
            )
            handle = MirrorHandle(
                self, path, snap.blob_id, snap.version, snap.size, snap.chunk_size,
                modmgr, local,
            )
        self.host.fabric.metrics.count("mirror-open")
        return handle
