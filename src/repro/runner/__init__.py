"""Parallel sweep-execution engine with a content-keyed result cache.

Every paper figure is a sweep of independent deterministic simulations —
fresh cloud per point, fixed seed. This subsystem describes each point as a
picklable :class:`PointSpec`, fans cache-missing points out over a
``multiprocessing`` pool, replays already-simulated points from a persistent
content-keyed cache, and streams :class:`PointResult` values back in
deterministic order. Sequential (``jobs=1``) and parallel runs of the same
sweep are bit-identical.
"""

from .cache import CODE_VERSION, ResultCache, default_cache_dir, point_key
from .engine import SweepError, SweepRunner, SweepStats
from .points import apply_diffs, build_point_cloud, execute_point, known_kinds
from .profiles import (
    CHURN,
    CHURN_SMOKE,
    LINEAGE,
    LINEAGE_SMOKE,
    P2P,
    PAPER,
    QUICK,
    SCALE,
    SCALE_SMOKE,
    BenchProfile,
    active_profile,
    apply_overrides,
    known_profiles,
    profile_calibration,
    register_profile,
    resolve_profile,
)
from .spec import POINT_KINDS, PointResult, PointSpec

__all__ = [
    "BenchProfile",
    "CHURN",
    "CHURN_SMOKE",
    "CODE_VERSION",
    "LINEAGE",
    "LINEAGE_SMOKE",
    "P2P",
    "PAPER",
    "POINT_KINDS",
    "PointResult",
    "PointSpec",
    "QUICK",
    "ResultCache",
    "SCALE",
    "SCALE_SMOKE",
    "SweepError",
    "SweepRunner",
    "SweepStats",
    "active_profile",
    "apply_diffs",
    "apply_overrides",
    "build_point_cloud",
    "default_cache_dir",
    "execute_point",
    "known_kinds",
    "known_profiles",
    "point_key",
    "profile_calibration",
    "register_profile",
    "resolve_profile",
]
