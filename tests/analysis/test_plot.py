"""Tests for the ASCII chart renderer."""

from repro.analysis import Figure, Series, ascii_chart


def make_figure():
    fig = Figure("figX", "demo", "instances", "seconds")
    flat = Series("flat")
    rising = Series("rising")
    for n in (1, 20, 40, 60, 80, 110):
        flat.add(n, 10.0)
        rising.add(n, n * 0.5)
    fig.add_series(flat)
    fig.add_series(rising)
    return fig


class TestAsciiChart:
    def test_contains_axes_and_legend(self):
        text = ascii_chart(make_figure())
        assert "instances: 1 .. 110" in text
        assert "o=flat" in text and "x=rising" in text
        assert text.count("|") >= 16  # the y-axis rows

    def test_markers_present(self):
        text = ascii_chart(make_figure())
        assert "o" in text and "x" in text

    def test_flat_series_on_one_row(self):
        fig = Figure("f", "t", "x", "y")
        s = Series("only")
        for n in (0, 10, 20):
            s.add(n, 5.0)
        fig.add_series(s)
        text = ascii_chart(fig, width=30, height=10)
        rows_with_marker = [line for line in text.splitlines() if "o" in line and line.startswith("|")]
        assert len(rows_with_marker) == 1

    def test_rising_series_spans_rows(self):
        fig = Figure("f", "t", "x", "y")
        s = Series("up")
        for n in range(5):
            s.add(n, float(n))
        fig.add_series(s)
        text = ascii_chart(fig, width=30, height=10)
        rows_with_marker = [line for line in text.splitlines() if "o" in line and line.startswith("|")]
        assert len(rows_with_marker) >= 5

    def test_empty_figure(self):
        fig = Figure("f", "t", "x", "y")
        assert "(no data)" in ascii_chart(fig)

    def test_overlap_marked(self):
        fig = Figure("f", "t", "x", "y")
        a = Series("a")
        b = Series("b")
        for n in (0, 10):
            a.add(n, 1.0)
            b.add(n, 1.0)  # exact overlap
        fig.add_series(a)
        fig.add_series(b)
        assert "?" in ascii_chart(fig, width=20, height=6)
