"""Peer directories: which peers *likely* hold a chunk.

Two interchangeable strategies, selected by
:attr:`~repro.p2p.exchange.P2PConfig.directory`:

* ``announce`` — a lightweight directory service (bound on the cloud's
  manager node) where every peer announces the chunk keys it caches as a
  side effect of each fetch. Announcements ride a background process so
  they never sit on the fetch critical path; lookups are one small
  synchronous RPC per fetch batch. The directory answers with *actual*
  holders, rotated per key so repeated lookups spread load across them.
* ``rendezvous`` — no directory traffic at all: every node independently
  ranks the peer set by a deterministic hash over ``(chunk key, peer)``
  (highest-random-weight hashing) and asks the top-ranked owners. Because
  every booter of the same image fetches the same hot chunks, the owners of
  a chunk acquire it within the first deployment wave and then serve
  everyone else — candidate selection is free and uniformly spread by
  construction.

Both return candidates only; a candidate that turns out not to hold the
chunk (or is down) is a *miss* and the agent falls back to the next
candidate and ultimately to the provider path — stale directory state can
cost a round trip, never correctness.

When a multi-rack :class:`~repro.topo.Topology` is attached (and the cloud
is built ``topo_aware``), both strategies *rack-rank* their candidate
lists: same-rack holders come first (stable partition, preserving the
strategy's own order within each group), so a chunk cached anywhere in the
reader's rack is fetched without crossing the oversubscribed uplink. With
no topology the ranking is the identity function — candidate order is
byte-identical to the seed.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from ..calibration import ServiceModel
from ..simkit import rpc
from ..simkit.core import Timeout
from ..simkit.host import Host

if TYPE_CHECKING:  # pragma: no cover
    from .exchange import PeerAgent

#: service name the announce directory binds under on its host
DIRECTORY_SERVICE = "p2p-dir"

#: wire bytes per (key -> holders) entry in a locate response
LOCATE_ENTRY_BYTES = 24


def rack_ranked(
    topology, me: str, names: Tuple[str, ...]
) -> Tuple[str, ...]:
    """Stable-partition candidates: same-rack as ``me`` first.

    Order within each partition is preserved, so whatever spreading the
    strategy already does (HRW rank, rotation cursor) survives inside the
    rack groups. ``topology=None`` returns ``names`` unchanged.
    """
    if topology is None or len(names) < 2:
        return names
    my_rack = topology.rack(me)
    same = tuple(n for n in names if topology.rack(n) == my_rack)
    if not same or len(same) == len(names):
        return names
    return same + tuple(n for n in names if topology.rack(n) != my_rack)


class RendezvousDirectory:
    """Stateless highest-random-weight ownership over the peer set."""

    name = "rendezvous"

    def __init__(self, peer_names: Sequence[str], fanout: int, topology=None):
        self.peers: Tuple[str, ...] = tuple(peer_names)
        self.fanout = max(1, min(fanout, len(self.peers)))
        #: multi-rack topology for rack-ranking, or None (seed order)
        self.topology = topology

    def ranked(self, key: int) -> List[str]:
        """Every peer in highest-random-weight order for ``key``."""
        return sorted(
            self.peers,
            key=lambda name: zlib.crc32(f"{key}:{name}".encode()),
            reverse=True,
        )

    def owners(self, key: int) -> List[str]:
        """The ``fanout`` peers ranked highest for ``key`` (deterministic)."""
        return self.ranked(key)[: self.fanout]

    def locate(self, agent: "PeerAgent", keys: Sequence[int]):
        """Candidate holders per key; pure computation, no simulated time."""
        me = agent.host.name
        topo = self.topology
        out: Dict[int, Tuple[str, ...]] = {}
        for key in keys:
            if topo is None:
                out[key] = tuple(n for n in self.owners(key) if n != me)
            else:
                # rack-local rendezvous: partition the *full* HRW order by
                # rack before truncating, so each rack converges on its own
                # top-ranked holders and fetches stay off the uplink
                ranked = tuple(n for n in self.ranked(key) if n != me)
                out[key] = rack_ranked(topo, me, ranked)[: self.fanout]
        return out
        yield  # pragma: no cover — generator protocol, body never yields

    def on_cached(self, agent: "PeerAgent", keys: Sequence[int]) -> None:
        """Rendezvous needs no announcements: ownership is computed."""


class PeerDirectoryService:
    """The announce directory's server side (one instance per cloud)."""

    def __init__(
        self, host: Host, model: ServiceModel, max_holders: int = 16, topology=None
    ):
        self.host = host
        self.model = model
        self.max_holders = max_holders
        #: multi-rack topology: rank holders by the caller's rack before
        #: truncating to fanout (the server sees *all* holders, the client
        #: only the fanout-sized answer — ranking must happen here)
        self.topology = topology
        #: chunk key -> insertion-ordered holder names (dict-as-ordered-set)
        self.holders: Dict[int, Dict[str, None]] = {}
        #: per-key rotation cursor spreading lookups across holders
        self._cursor: Dict[int, int] = {}

    def rpc_announce(self, caller: Host, keys: Sequence[int]):
        yield Timeout(self.host.env, self.model.metadata_node_overhead * len(keys))
        name = caller.name
        for key in keys:
            entry = self.holders.setdefault(key, {})
            if name in entry:
                continue
            if len(entry) >= self.max_holders:
                # bounded registry: drop the oldest holder for this key
                entry.pop(next(iter(entry)))
            entry[name] = None
        self.host.fabric.metrics.count("p2p-announce", len(keys))
        return None

    def rpc_locate(self, caller: Host, keys: Sequence[int], fanout: int):
        yield Timeout(self.host.env, self.model.metadata_node_overhead * len(keys))
        me = caller.name
        out: Dict[int, Tuple[str, ...]] = {}
        for key in keys:
            entry = self.holders.get(key)
            if not entry:
                out[key] = ()
                continue
            names = [n for n in entry if n != me]
            if not names:
                out[key] = ()
                continue
            cursor = self._cursor.get(key, 0)
            self._cursor[key] = cursor + 1
            topo = self.topology
            if topo is not None:
                my_rack = topo.rack(me)
                same = [n for n in names if topo.rack(n) == my_rack]
                if same:
                    # rotate within the same-rack holders (load spreading),
                    # then pad with cross-rack ones up to fanout
                    rest = [n for n in names if topo.rack(n) != my_rack]
                    shift = cursor % len(same)
                    ranked = same[shift:] + same[:shift] + rest
                    out[key] = tuple(ranked[:fanout])
                    continue
            shift = cursor % len(names)
            rotated = names[shift:] + names[:shift]
            out[key] = tuple(rotated[:fanout])
        self.host.fabric.metrics.count("p2p-locate", len(keys))
        return rpc.Sized(out, LOCATE_ENTRY_BYTES * len(keys))


class AnnounceDirectory:
    """Client-side handle of the announce directory."""

    name = "announce"

    def __init__(self, service_host: Host, fanout: int, topology=None):
        self.service_host = service_host
        self.fanout = fanout
        #: multi-rack topology for rack-ranking, or None (seed order)
        self.topology = topology

    def locate(self, agent: "PeerAgent", keys: Sequence[int]):
        """One locate RPC for the whole batch; {} if the directory is down."""
        if rpc.is_host_down(self.service_host):
            return {key: () for key in keys}
        try:
            out = yield from rpc.call(
                agent.host, self.service_host, DIRECTORY_SERVICE, "locate",
                tuple(keys), self.fanout,
            )
        except rpc.ProviderUnavailableError:
            return {key: () for key in keys}
        topo = self.topology
        if topo is not None:
            # re-rank client side: no extra directory traffic, and the
            # server's rotation cursor stays shared across all peers
            me = agent.host.name
            out = {key: rack_ranked(topo, me, names) for key, names in out.items()}
        return out

    def on_cached(self, agent: "PeerAgent", keys: Sequence[int]) -> None:
        """Announce freshly cached keys off the critical path."""
        if not keys or rpc.is_host_down(self.service_host):
            return

        def announce(keys=tuple(keys)):
            try:
                yield from rpc.call(
                    agent.host, self.service_host, DIRECTORY_SERVICE,
                    "announce", keys,
                )
            except rpc.ProviderUnavailableError:
                pass  # directory (or our own host) died; announcement is lost

        agent.host.spawn(announce(), name="p2p-announce")
