"""Tests for the disk model, hosts, and the RPC layer."""

import pytest

from repro.common.errors import ProviderUnavailableError, SimulationError
from repro.common.payload import Payload
from repro.common.units import MB, MiB
from repro.simkit import rpc
from repro.simkit.core import Environment
from repro.simkit.disk import Disk, FileDevice, WritePolicy
from repro.simkit.host import Fabric


class TestDisk:
    def test_sequential_read_time(self):
        env = Environment()
        disk = Disk(env, "d", read_bandwidth=55 * MB)

        def proc():
            yield from disk.read(55 * MB)
            return env.now

        assert env.run(env.process(proc())) == pytest.approx(1.0, rel=1e-6)

    def test_random_read_adds_seek(self):
        env = Environment()
        disk = Disk(env, "d", read_bandwidth=55 * MB, seek_time=0.008)

        def proc():
            yield from disk.read(55 * MB, sequential=False)
            return env.now

        assert env.run(env.process(proc())) == pytest.approx(1.008, rel=1e-6)

    def test_disk_queue_serializes(self):
        env = Environment()
        disk = Disk(env, "d", read_bandwidth=10 * MB)
        ends = []

        def reader():
            yield from disk.read(10 * MB)
            ends.append(env.now)

        env.process(reader())
        env.process(reader())
        env.run()
        assert ends == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_metrics_counted(self):
        from repro.simkit.trace import Metrics

        env = Environment()
        m = Metrics()
        disk = Disk(env, "d", metrics=m)

        def proc():
            yield from disk.write(5 * MB)

        env.run(env.process(proc()))
        assert m.counters["disk-write"] == 1
        assert m.counters["disk-write-bytes"] == 5 * MB


class TestFileDevice:
    def _make(self, policy_kwargs=None):
        env = Environment()
        disk = Disk(env, "d", write_bandwidth=55 * MB)
        kwargs = dict(
            name="test",
            write_absorb_bandwidth=400 * MB,
            cached_read_bandwidth=500 * MB,
            per_op_overhead=0.0,
            dirty_budget=100 * MiB,
        )
        kwargs.update(policy_kwargs or {})
        dev = FileDevice(env, disk, WritePolicy(**kwargs), size=1024 * MiB)
        return env, dev

    def test_write_within_budget_at_absorb_speed(self):
        env, dev = self._make()

        def proc():
            yield from dev.write(40 * MB)
            return env.now

        t = env.run(env.process(proc()))
        assert t == pytest.approx(0.1, rel=1e-3)

    def test_write_over_budget_throttled_to_disk(self):
        env, dev = self._make()
        dev.dirty = 100 * MiB  # budget exhausted

        def proc():
            yield from dev.write(55 * MB)
            return env.now

        t = env.run(env.process(proc()))
        assert t == pytest.approx(1.0, rel=1e-2)

    def test_cached_read_fast_uncached_hits_disk(self):
        env, dev = self._make()
        times = {}

        def proc():
            t0 = env.now
            yield from dev.read(50 * MB, cached=True)
            times["cached"] = env.now - t0
            t0 = env.now
            yield from dev.read(55 * MB, cached=False)
            times["disk"] = env.now - t0

        env.run(env.process(proc()))
        assert times["cached"] == pytest.approx(0.1, rel=1e-3)
        assert times["disk"] == pytest.approx(1.0, rel=1e-2)

    def test_per_op_overhead_applied(self):
        env, dev = self._make({"per_op_overhead": 0.001})

        def proc():
            yield from dev.metadata_op()
            return env.now

        assert env.run(env.process(proc())) == pytest.approx(0.001)

    def test_flusher_drains_dirty(self):
        env, dev = self._make()

        def proc():
            yield from dev.write(20 * MB)

        env.run(env.process(proc()))
        env.run()  # let the background flusher finish
        assert dev.dirty == 0


class TestHostFabric:
    def test_add_host_and_files(self):
        fab = Fabric(seed=0)
        h = fab.add_host("n1")
        f = h.create_file("/img", 100)
        f.write(0, Payload.from_bytes(b"x" * 100))
        assert h.open_file("/img").read(0, 3).to_bytes() == b"xxx"
        assert h.exists("/img")
        h.unlink("/img")
        assert not h.exists("/img")

    def test_duplicate_host_rejected(self):
        fab = Fabric(seed=0)
        fab.add_host("n1")
        with pytest.raises(SimulationError):
            fab.add_host("n1")

    def test_duplicate_file_rejected(self):
        fab = Fabric(seed=0)
        h = fab.add_host("n1")
        h.create_file("/a", 10)
        with pytest.raises(SimulationError):
            h.create_file("/a", 10)

    def test_missing_file_raises(self):
        fab = Fabric(seed=0)
        h = fab.add_host("n1")
        with pytest.raises(SimulationError):
            h.open_file("/nope")

    def test_compute_occupies_core(self):
        fab = Fabric(seed=0)
        h = fab.add_host("n1", cores=1)
        ends = []

        def job():
            yield from h.compute(1.0)
            ends.append(fab.env.now)

        h.spawn(job())
        h.spawn(job())
        fab.run()
        assert ends == [pytest.approx(1.0), pytest.approx(2.0)]


class EchoService:
    def __init__(self, host):
        self.host = host

    def rpc_echo(self, caller, value):
        yield self.host.env.timeout(0.001)
        return value

    def rpc_fetch(self, caller, nbytes):
        yield self.host.env.timeout(0.0)
        return Payload.zeros(nbytes)


class TestRpc:
    def _setup(self):
        fab = Fabric(seed=0)
        a = fab.add_host("a")
        b = fab.add_host("b")
        rpc.bind(b, "svc", EchoService(b))
        return fab, a, b

    def test_roundtrip(self):
        fab, a, b = self._setup()

        def client():
            return (yield from rpc.call(a, b, "svc", "echo", 7))

        assert fab.run(fab.env.process(client())) == 7

    def test_bulk_response_is_flow(self):
        fab, a, b = self._setup()

        def client():
            payload = yield from rpc.call(a, b, "svc", "fetch", 10 * MB)
            return payload

        p = fab.run(fab.env.process(client()))
        assert p.size == 10 * MB
        assert fab.metrics.traffic["payload"] == 10 * MB
        # ~10MB at 117.5 MB/s
        assert fab.env.now == pytest.approx(10 * MB / (117.5 * MB), rel=0.05)

    def test_unknown_service(self):
        fab, a, b = self._setup()

        def client():
            yield from rpc.call(a, b, "nope", "echo", 1)

        with pytest.raises(SimulationError):
            fab.run(fab.env.process(client()))

    def test_unknown_method(self):
        fab, a, b = self._setup()

        def client():
            yield from rpc.call(a, b, "svc", "nope")

        with pytest.raises(SimulationError):
            fab.run(fab.env.process(client()))

    def test_host_down_raises_after_timeout(self):
        fab, a, b = self._setup()
        rpc.host_down(b)

        def client():
            yield from rpc.call(a, b, "svc", "echo", 1)

        with pytest.raises(ProviderUnavailableError):
            fab.run(fab.env.process(client()))
        assert fab.env.now >= rpc.RPC_TIMEOUT

    def test_host_recovers(self):
        fab, a, b = self._setup()
        rpc.host_down(b)
        rpc.host_up(b)

        def client():
            return (yield from rpc.call(a, b, "svc", "echo", 3))

        assert fab.run(fab.env.process(client())) == 3

    def test_double_bind_rejected(self):
        fab, a, b = self._setup()
        with pytest.raises(SimulationError):
            rpc.bind(b, "svc", EchoService(b))

    def test_rpc_counted(self):
        fab, a, b = self._setup()

        def client():
            yield from rpc.call(a, b, "svc", "echo", 1)
            yield from rpc.call(a, b, "svc", "echo", 2)

        fab.run(fab.env.process(client()))
        assert fab.metrics.counters["rpc"] == 2
