"""Reconstructing the snapshot forest from the version manager's lineage log.

A :class:`LineageForest` is a pure, immutable view over the
:class:`~repro.blobseer.vmanager.BlobRegistry`'s append-only lineage log:
every snapshot ever published is a node; parent edges follow the previous
snapshot of the same blob (ordinary COMMITs), jump across blobs at CLONE
points, and survive churn retirements (a retired snapshot stays in the
forest, flagged). On top of that graph the forest answers the queries the
rest of the subsystem needs: ancestry chains (the restore scan path, with
or without honoring compaction skip pointers), depths, branch points, heads
and per-blob chains.

Building the forest reads registry state directly — it is an analysis
structure with no simulated cost; the *simulated* per-hop price of walking
a chain is paid by restore's ``lineage_entry`` RPCs, not here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..blobseer.vmanager import BlobRegistry, LineageEntry, VersionKey
from ..common.errors import LineageError


class LineageForest:
    """An immutable snapshot-ancestry view built from the lineage log."""

    def __init__(self, entries: List[LineageEntry]):
        self._entries: Dict[VersionKey, LineageEntry] = {
            e.key: e for e in entries
        }
        self._children: Dict[VersionKey, List[VersionKey]] = {}
        for e in entries:
            if e.parent is not None:
                self._children.setdefault(e.parent, []).append(e.key)
        for kids in self._children.values():
            kids.sort()

    @classmethod
    def from_registry(cls, registry: BlobRegistry) -> "LineageForest":
        return cls(registry.lineage_entries())

    # ------------------------------------------------------------------ #
    def entry(self, blob_id: int, version: int) -> LineageEntry:
        entry = self._entries.get((blob_id, version))
        if entry is None:
            raise LineageError(
                f"no lineage record for blob {blob_id} v{version}"
            )
        return entry

    def __contains__(self, key: VersionKey) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def parent(self, blob_id: int, version: int) -> Optional[VersionKey]:
        return self.entry(blob_id, version).parent

    def children(self, blob_id: int, version: int) -> Tuple[VersionKey, ...]:
        return tuple(self._children.get((blob_id, version), ()))

    def is_retired(self, blob_id: int, version: int) -> bool:
        return self.entry(blob_id, version).retired

    # ------------------------------------------------------------------ #
    def ancestry(
        self, blob_id: int, version: int, follow_skips: bool = False
    ) -> List[VersionKey]:
        """The chain from ``(blob, version)`` back to its genesis, inclusive.

        ``follow_skips=True`` walks the compacted chain (skip pointers
        taken where present) — exactly the hops a restore scan pays after
        flattening; the default walks raw parent edges.
        """
        chain: List[VersionKey] = []
        seen = set()
        key: Optional[VersionKey] = (blob_id, version)
        while key is not None:
            if key in seen:
                raise LineageError(
                    f"lineage cycle through blob {key[0]} v{key[1]}"
                )
            seen.add(key)
            chain.append(key)
            entry = self.entry(*key)
            key = entry.next_hop() if follow_skips else entry.parent
        return chain

    def depth(self, blob_id: int, version: int, follow_skips: bool = False) -> int:
        """Edges between a snapshot and its genesis (0 for a genesis)."""
        return len(self.ancestry(blob_id, version, follow_skips)) - 1

    def is_ancestor(
        self, ancestor: VersionKey, descendant: VersionKey
    ) -> bool:
        """Whether ``ancestor`` lies on ``descendant``'s raw parent chain."""
        return tuple(ancestor) in (
            tuple(k) for k in self.ancestry(*descendant)
        )

    # ------------------------------------------------------------------ #
    def roots(self) -> Tuple[VersionKey, ...]:
        """Genesis snapshots (no parent edge), sorted."""
        return tuple(sorted(k for k, e in self._entries.items() if e.parent is None))

    def heads(self) -> Tuple[VersionKey, ...]:
        """Snapshots with no descendants (live or retired), sorted."""
        return tuple(sorted(k for k in self._entries if not self._children.get(k)))

    def branch_points(self) -> Tuple[VersionKey, ...]:
        """Snapshots with more than one child (CLONE fan-out), sorted."""
        return tuple(sorted(
            k for k, kids in self._children.items() if len(kids) > 1
        ))

    def clone_edges(self) -> Tuple[Tuple[VersionKey, VersionKey], ...]:
        """(source, clone-head) pairs for every CLONE in the forest."""
        return tuple(sorted(
            (e.parent, e.key)
            for e in self._entries.values()
            if e.kind == "clone" and e.parent is not None
        ))

    def blob_chain(self, blob_id: int) -> Tuple[VersionKey, ...]:
        """All of one blob's snapshots in version order (live or retired)."""
        return tuple(sorted(k for k in self._entries if k[0] == blob_id))

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        """Whole-forest shape summary (benchmark artifacts, CLI output)."""
        retired = sum(1 for e in self._entries.values() if e.retired)
        skips = sum(1 for e in self._entries.values() if e.skip is not None)
        max_depth = 0
        for key in self.heads():
            max_depth = max(max_depth, self.depth(*key))
        return {
            "snapshots": len(self._entries),
            "retired": retired,
            "roots": len(self.roots()),
            "heads": len(self.heads()),
            "branch_points": len(self.branch_points()),
            "clones": len(self.clone_edges()),
            "skips": skips,
            "max_depth": max_depth,
        }
