"""Additional broadcast-mode tests (disk staging variants, fanout effects)."""

import pytest

from repro.baselines.broadcast import broadcast
from repro.common.payload import Payload
from repro.common.units import MB
from repro.simkit.host import Fabric


def make_cluster(n, seed=19):
    fab = Fabric(seed=seed)
    source = fab.add_host("source")
    targets = [fab.add_host(f"n{i}") for i in range(n)]
    return fab, source, targets


def run_broadcast(n=6, **kwargs):
    fab, source, targets = make_cluster(n)

    def scenario():
        report = yield from broadcast(
            fab, source, targets, Payload.opaque("img", 50 * MB), "/img", **kwargs
        )
        return report

    return fab.run(fab.env.process(scenario()))


class TestStagingVariants:
    def test_forward_from_disk_slower(self):
        page_cache = run_broadcast(forward_from_disk=False).makespan
        disk_staged = run_broadcast(forward_from_disk=True).makespan
        assert disk_staged > page_cache

    def test_skip_source_disk_read(self):
        cold_source = run_broadcast(read_from_disk_at_source=True).makespan
        warm_source = run_broadcast(read_from_disk_at_source=False).makespan
        assert warm_source < cold_source

    def test_higher_fanout_shallower_but_contended(self):
        f2 = run_broadcast(n=12, fanout=2)
        f4 = run_broadcast(n=12, fanout=4)
        assert f4.depth < f2.depth
        # both deliver to everyone
        assert len(f4.finish_times) == len(f2.finish_times) == 12

    def test_finish_times_respect_tree_depth(self):
        report = run_broadcast(n=14, fanout=2)
        # the roots' children finish before the deepest leaves
        first_level = {"n0", "n1"}
        deepest = max(report.finish_times.values())
        for name in first_level:
            assert report.finish_times[name] < deepest
