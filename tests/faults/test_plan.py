"""FaultPlan/FaultEvent: pure values, validation, generators, JSON."""

import pytest

from repro.faults import FaultEvent, FaultPlan


class TestFaultEventValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(at=1.0, kind="meteor-strike", target="node000")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="must be >= 0"):
            FaultEvent(at=-0.5, kind="provider-crash", target="node000")

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="duration must be >= 0"):
            FaultEvent(at=1.0, kind="provider-crash", target="n", duration=-1.0)

    def test_degradation_factor_below_one_rejected(self):
        with pytest.raises(ValueError, match="factor must be >= 1"):
            FaultEvent(at=1.0, kind="disk-stall", target="n", factor=0.5)


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan(
            (
                FaultEvent(at=3.0, kind="provider-crash", target="b"),
                FaultEvent(at=1.0, kind="provider-crash", target="a"),
            )
        )
        assert [e.at for e in plan.events] == [1.0, 3.0]

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert len(FaultPlan()) == 0
        assert FaultPlan().describe() == "empty fault plan"

    def test_describe_mentions_permanence(self):
        plan = FaultPlan(
            (FaultEvent(at=2.0, kind="provider-crash", target="node003"),)
        )
        assert "permanent" in plan.describe()
        assert "node003" in plan.describe()

    def test_json_round_trip(self):
        plan = FaultPlan.staggered_crashes(
            [f"node{i:03d}" for i in range(8)], 3, window=6.0, mttr=1.5
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_json_round_trip_preserves_degradations(self):
        plan = FaultPlan.degradations(
            ["a", "b"], "nic-degrade", at=1.0, duration=4.0, factor=8.0
        )
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan
        assert all(e.factor == 8.0 for e in again.events)


class TestGenerators:
    TARGETS = tuple(f"node{i:03d}" for i in range(10))

    def test_staggered_is_deterministic(self):
        a = FaultPlan.staggered_crashes(self.TARGETS, 4, window=5.0)
        b = FaultPlan.staggered_crashes(self.TARGETS, 4, window=5.0)
        assert a == b

    def test_staggered_spreads_times_evenly(self):
        plan = FaultPlan.staggered_crashes(self.TARGETS, 4, window=5.0)
        assert [e.at for e in plan.events] == [1.0, 2.0, 3.0, 4.0]

    def test_staggered_skips_adjacent_victims_first(self):
        """Round-robin replica pairs (i, i+1) must not both die early."""
        plan = FaultPlan.staggered_crashes(self.TARGETS, 5, window=5.0)
        victims = [e.target for e in sorted(plan.events, key=lambda e: e.at)]
        assert victims == ["node000", "node002", "node004", "node006", "node008"]

    def test_staggered_mttr_sets_duration(self):
        plan = FaultPlan.staggered_crashes(self.TARGETS, 2, window=4.0, mttr=2.5)
        assert all(e.duration == 2.5 for e in plan.events)

    def test_too_many_crashes_rejected(self):
        with pytest.raises(ValueError, match="crashes > "):
            FaultPlan.staggered_crashes(self.TARGETS[:2], 3, window=5.0)
        with pytest.raises(ValueError, match="crashes > "):
            FaultPlan.random_crashes(self.TARGETS[:2], 3, window=5.0)

    def test_no_targets_rejected(self):
        with pytest.raises(ValueError, match="no targets"):
            FaultPlan.staggered_crashes([], 1, window=5.0)

    def test_random_same_seed_identical(self):
        a = FaultPlan.random_crashes(self.TARGETS, 4, window=5.0, seed=42)
        b = FaultPlan.random_crashes(self.TARGETS, 4, window=5.0, seed=42)
        assert a == b

    def test_random_different_seed_differs(self):
        a = FaultPlan.random_crashes(self.TARGETS, 4, window=5.0, seed=1)
        b = FaultPlan.random_crashes(self.TARGETS, 4, window=5.0, seed=2)
        assert a != b

    def test_random_victims_distinct(self):
        plan = FaultPlan.random_crashes(self.TARGETS, 6, window=5.0, seed=7)
        victims = [e.target for e in plan.events]
        assert len(set(victims)) == len(victims)
        assert all(0.0 <= e.at <= 5.0 for e in plan.events)
