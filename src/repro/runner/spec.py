"""Picklable descriptions of sweep points and their structured results.

A :class:`PointSpec` is a pure value: everything needed to reproduce one
measurement point (profile, kind of experiment, approach, scale, seed,
calibration overrides, kind-specific parameters) and nothing else. Executing
the same spec always yields the same simulated timeline, which is what makes
both the multiprocessing fan-out and the content-keyed result cache safe.

A :class:`PointResult` is the plain-data outcome: scalar metrics, small
per-instance series, event counters, and the harness wall time. Both types
round-trip through JSON (the cache format) without losing float precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

#: kinds of points the executor registry knows how to run
POINT_KINDS = (
    "deploy", "snapshot", "bonnie", "montecarlo", "resilience", "p2p", "churn",
    "lineage", "topo",
)


def _freeze(pairs: Any) -> tuple:
    """Canonicalize a dict/iterable of (key, value) pairs to a sorted tuple."""
    if pairs is None:
        return ()
    if isinstance(pairs, Mapping):
        items = pairs.items()
    else:
        items = [tuple(p) for p in pairs]
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class PointSpec:
    """One measurement point of a sweep, as a pure picklable value."""

    kind: str
    profile: str
    approach: str = ""
    n: int = 0
    seed: int = 1
    #: calibration overrides: (("image.chunk_size", 65536), ...)
    overrides: tuple = ()
    #: kind-specific knobs: (("mirror_prefetch", False), ...)
    params: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "overrides", _freeze(self.overrides))
        object.__setattr__(self, "params", _freeze(self.params))

    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def label(self) -> str:
        """Short human-readable identity (error messages, progress lines)."""
        bits = [self.kind, self.profile]
        if self.approach:
            bits.append(self.approach)
        if self.n:
            bits.append(f"n={self.n}")
        bits.append(f"seed={self.seed}")
        bits += [f"{k}={v}" for k, v in self.overrides]
        bits += [f"{k}={v}" for k, v in self.params]
        return " ".join(bits)

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "profile": self.profile,
            "approach": self.approach,
            "n": self.n,
            "seed": self.seed,
            "overrides": [list(p) for p in self.overrides],
            "params": [list(p) for p in self.params],
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "PointSpec":
        return cls(
            kind=data["kind"],
            profile=data["profile"],
            approach=data.get("approach", ""),
            n=int(data.get("n", 0)),
            seed=int(data.get("seed", 1)),
            overrides=data.get("overrides", ()),
            params=data.get("params", ()),
        )


@dataclass(frozen=True)
class PointResult:
    """Structured outcome of executing one :class:`PointSpec`."""

    spec: PointSpec
    #: scalar metrics, e.g. completion_time, total_traffic, block_write_kbps
    metrics: Dict[str, float] = field(default_factory=dict)
    #: small per-instance series, e.g. boot_times, snapshot_durations
    series: Dict[str, tuple] = field(default_factory=dict)
    #: simulator event counters (deterministic; used by the ablations)
    counters: Dict[str, int] = field(default_factory=dict)
    #: total events the simulation processed (deterministic)
    event_count: int = 0
    #: harness wall time for this point (informational; not cached identity)
    wall_s: float = 0.0
    #: whether this result was replayed from the result cache
    cached: bool = False

    # ---- conveniences mirroring DeploymentResult / SnapshotCampaignResult --
    @property
    def n_instances(self) -> int:
        return self.spec.n

    @property
    def boot_times(self) -> tuple:
        return self.series.get("boot_times", ())

    @property
    def per_instance(self) -> tuple:
        """Per-instance snapshot durations (Fig. 5 campaigns)."""
        return self.series.get("snapshot_durations", ())

    @property
    def init_time(self) -> float:
        return self.metrics.get("init_time", 0.0)

    @property
    def avg_boot_time(self) -> float:
        return self.metrics.get("avg_boot_time", 0.0)

    @property
    def completion_time(self) -> float:
        return self.metrics.get("completion_time", 0.0)

    @property
    def total_traffic(self) -> float:
        return self.metrics.get("total_traffic", 0.0)

    @property
    def avg_time(self) -> float:
        return self.metrics.get("avg_time", 0.0)

    @property
    def total_bytes_moved(self) -> float:
        return self.metrics.get("total_bytes_moved", 0.0)

    def metric(self, name: str) -> float:
        try:
            return self.metrics[name]
        except KeyError:
            raise KeyError(
                f"point {self.spec.label()!r} has no metric {name!r}; "
                f"available: {', '.join(sorted(self.metrics))}"
            ) from None

    def to_json(self) -> dict:
        return {
            "spec": self.spec.to_json(),
            "metrics": dict(self.metrics),
            "series": {k: list(v) for k, v in self.series.items()},
            "counters": dict(self.counters),
            "event_count": self.event_count,
            "wall_s": self.wall_s,
        }

    @classmethod
    def from_json(cls, data: Mapping, cached: bool = False) -> "PointResult":
        return cls(
            spec=PointSpec.from_json(data["spec"]),
            metrics=dict(data.get("metrics", {})),
            series={k: tuple(v) for k, v in data.get("series", {}).items()},
            counters=dict(data.get("counters", {})),
            event_count=int(data.get("event_count", 0)),
            wall_s=float(data.get("wall_s", 0.0)),
            cached=cached,
        )
