"""Tracer core: nesting, context propagation, and the null tracer."""

from repro.obs.span import NULL_TRACER, Span, Tracer
from repro.simkit import Fabric


def make_tracer():
    fab = Fabric(seed=1)
    tracer = Tracer(fab.env)
    fab.env._tracer = tracer
    return fab, tracer


class TestNesting:
    def test_siblings_share_parent(self):
        fab, tr = make_tracer()

        def proc():
            with tr.start("outer", "rpc"):
                yield fab.env.timeout(1.0)
                with tr.start("a", "net"):
                    yield fab.env.timeout(1.0)
                with tr.start("b", "net"):
                    yield fab.env.timeout(1.0)

        fab.run(fab.env.process(proc()))
        outer, a, b = tr.spans
        assert outer.parent_id is None
        assert a.parent_id == outer.span_id
        assert b.parent_id == outer.span_id
        assert (a.t0, a.t1) == (1.0, 2.0)
        assert (outer.t0, outer.t1) == (0.0, 3.0)

    def test_sequential_spans_do_not_nest(self):
        fab, tr = make_tracer()

        def proc():
            with tr.start("first", "cpu"):
                yield fab.env.timeout(1.0)
            with tr.start("second", "cpu"):
                yield fab.env.timeout(1.0)

        fab.run(fab.env.process(proc()))
        first, second = tr.spans
        assert second.parent_id is None  # first already finished

    def test_explicit_parent_overrides_context(self):
        fab, tr = make_tracer()

        def proc():
            root = tr.start("root", "vm")
            with tr.start("inner", "cpu"):
                orphan = tr.start("pinned", "net", parent=root)
                orphan.finish()
                yield fab.env.timeout(1.0)
            root.finish()

        fab.run(fab.env.process(proc()))
        by_name = {s.name: s for s in tr.spans}
        assert by_name["pinned"].parent_id == by_name["root"].span_id

    def test_exception_inside_with_marks_error(self):
        fab, tr = make_tracer()

        def proc():
            try:
                with tr.start("doomed", "rpc"):
                    yield fab.env.timeout(1.0)
                    raise ValueError("boom")
            except ValueError:
                pass

        fab.run(fab.env.process(proc()))
        (span,) = tr.spans
        assert span.error == "ValueError: boom"
        assert span.t1 == 1.0


class TestSpawnPropagation:
    def test_child_process_inherits_open_span(self):
        fab, tr = make_tracer()

        def child():
            with tr.start("child-work", "net"):
                yield fab.env.timeout(1.0)

        def parent():
            with tr.start("parent-op", "rpc"):
                proc = fab.env.process(child())
                yield proc

        fab.run(fab.env.process(parent()))
        by_name = {s.name: s for s in tr.spans}
        assert by_name["child-work"].parent_id == by_name["parent-op"].span_id

    def test_process_batch_inherits_too(self):
        fab, tr = make_tracer()

        def child(i):
            with tr.start(f"batch-{i}", "net"):
                yield fab.env.timeout(1.0)

        def parent():
            with tr.start("scatter", "chunk"):
                procs = fab.env.process_batch([child(0), child(1)])
                yield fab.env.all_of(procs)

        fab.run(fab.env.process(parent()))
        by_name = {s.name: s for s in tr.spans}
        for name in ("batch-0", "batch-1"):
            assert by_name[name].parent_id == by_name["scatter"].span_id

    def test_no_open_span_means_no_parent(self):
        fab, tr = make_tracer()

        def child():
            with tr.start("lonely", "cpu"):
                yield fab.env.timeout(1.0)

        fab.run(fab.env.process(child()))
        (span,) = tr.spans
        assert span.parent_id is None

    def test_sibling_processes_get_distinct_tracks(self):
        fab, tr = make_tracer()

        def child(i):
            with tr.start(f"c{i}", "cpu"):
                yield fab.env.timeout(1.0)

        def parent():
            procs = [fab.env.process(child(i), name=f"child-{i}") for i in range(2)]
            yield fab.env.all_of(procs)

        fab.run(fab.env.process(parent()))
        tracks = {s.track for s in tr.spans}
        assert len(tracks) == 2


class TestAsyncSpans:
    def test_start_async_is_not_ambient(self):
        fab, tr = make_tracer()

        def proc():
            flow = tr.start_async("flow", "net")
            with tr.start("next-op", "rpc"):
                yield fab.env.timeout(1.0)
            flow.finish()

        fab.run(fab.env.process(proc()))
        by_name = {s.name: s for s in tr.spans}
        # next-op must NOT nest under the async flow span
        assert by_name["next-op"].parent_id is None
        assert by_name["flow"].t1 == 1.0


class TestLifecycle:
    def test_finish_is_idempotent(self):
        fab, tr = make_tracer()

        def proc():
            s = tr.start("s", "cpu")
            yield fab.env.timeout(1.0)
            s.finish()
            yield fab.env.timeout(1.0)
            s.finish()  # second call must not move t1

        fab.run(fab.env.process(proc()))
        assert tr.spans[0].t1 == 1.0

    def test_finish_open_spans_closes_leaks(self):
        fab, tr = make_tracer()

        def proc():
            tr.start("leaked", "rpc")
            yield fab.env.timeout(2.0)

        fab.run(fab.env.process(proc()))
        assert tr.spans[0].t1 is None
        assert tr.finish_open_spans() == 1
        assert tr.spans[0].t1 == 2.0

    def test_duration_of_open_span_is_zero(self):
        fab, tr = make_tracer()
        span = tr.start("open", "cpu")
        assert span.duration == 0.0
        span.finish()

    def test_events_record_sim_time(self):
        fab, tr = make_tracer()

        def proc():
            with tr.start("s", "rpc") as s:
                yield fab.env.timeout(0.5)
                s.event("retry", attempt=1)
                yield fab.env.timeout(0.5)

        fab.run(fab.env.process(proc()))
        (t, name, attrs) = tr.spans[0].events[0]
        assert (t, name, attrs) == (0.5, "retry", {"attempt": 1})


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        span = NULL_TRACER.start("x", "rpc", foo=1)
        assert span is NULL_TRACER.start_async("y")
        # the full span surface must no-op without error
        with span as s:
            s.set(bar=2)
            s.event("e")
            s.set_error(ValueError("x"))
        span.finish()
        assert NULL_TRACER.current() is None
        assert NULL_TRACER.finish_open_spans() == 0
        assert NULL_TRACER.spans == []

    def test_fabric_defaults_to_null_tracer(self):
        fab = Fabric(seed=1)
        assert fab.tracer is NULL_TRACER
        assert fab.network.tracer is NULL_TRACER
        assert fab.env._tracer is None


class TestInstallUninstall:
    def test_install_wires_all_three_hooks(self):
        from repro import obs

        fab = Fabric(seed=1)
        tracer = obs.install_tracer(fab)
        assert fab.tracer is tracer
        assert fab.network.tracer is tracer
        assert fab.env._tracer is tracer
        obs.uninstall_tracer(fab)
        assert fab.tracer is NULL_TRACER
        assert fab.env._tracer is None

    def test_span_repr_mentions_name(self):
        fab, tr = make_tracer()
        s = tr.start("boot:vm0", "vm")
        assert isinstance(s, Span)
        s.finish()
