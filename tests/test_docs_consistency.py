"""Keep the documentation honest: referenced artifacts must exist."""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).parent.parent


class TestDesignDoc:
    def test_every_module_in_map_exists(self):
        text = (REPO / "DESIGN.md").read_text()
        block = text.split("```")[1]  # the module-map code block
        missing = []
        for line in block.splitlines():
            match = re.match(r"\s+(\w+/|\w+\.py)", line)
            if match and ".py" in line:
                rel = line.strip().split()[0]
                # reconstruct path: indentation encodes the package
                continue
        # simpler: every "name.py" token in the block exists somewhere in src/
        for name in set(re.findall(r"(\w+\.py)", block)):
            hits = list((REPO / "src").rglob(name))
            hits += list((REPO / "benchmarks").glob(name))
            if not hits:
                missing.append(name)
        assert not missing, f"DESIGN.md references missing modules: {missing}"

    def test_bench_targets_exist(self):
        text = (REPO / "DESIGN.md").read_text()
        for ref in re.findall(r"`benchmarks/(bench_\w+\.py)", text):
            assert (REPO / "benchmarks" / ref).exists(), ref

    def test_bench_test_names_exist(self):
        text = (REPO / "DESIGN.md").read_text()
        fig4 = (REPO / "benchmarks" / "bench_fig4_multideployment.py").read_text()
        fig5 = (REPO / "benchmarks" / "bench_fig5_multisnapshotting.py").read_text()
        for name in re.findall(r"::(\w+)`", text):
            assert f"def {name}" in fig4 + fig5, name


class TestReadme:
    def test_examples_listed_exist(self):
        text = (REPO / "README.md").read_text()
        for ref in re.findall(r"examples/(\w+\.py)", text):
            assert (REPO / "examples" / ref).exists(), ref

    def test_docs_referenced_exist(self):
        for doc in ("DESIGN.md", "EXPERIMENTS.md", "README.md"):
            assert (REPO / doc).exists()


class TestExperimentsDoc:
    def test_covers_every_figure(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for fig in ("Figure 4", "Figure 5", "Figure 6", "Figure 7", "Figure 8"):
            assert fig in text, f"EXPERIMENTS.md missing {fig}"
        for panel in ("4(a)", "4(b)", "4(c)", "4(d)", "5(a)", "5(b)"):
            assert panel in text, f"EXPERIMENTS.md missing panel {panel}"

    def test_deviations_documented(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        assert "Deviations" in text


class TestChurnDocs:
    def test_design_doc_covers_churn_modules(self):
        text = (REPO / "DESIGN.md").read_text()
        assert "repro.churn" in text
        for mod in ("arrivals.py", "scheduler.py", "lifecycle.py",
                    "slo.py", "engine.py"):
            assert (REPO / "src" / "repro" / "churn" / mod).exists(), mod
            assert mod in text, f"DESIGN.md module map missing churn {mod}"

    def test_experiments_doc_covers_churn(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        assert "churn" in text
        assert "BENCH_churn.json" in text

    def test_readme_quickstart_covers_churn(self):
        text = (REPO / "README.md").read_text()
        assert "python -m repro churn" in text
        assert "make churn-smoke" in text

    def test_tracked_churn_numbers_exist(self):
        import json
        data = json.loads((REPO / "BENCH_churn.json").read_text())
        current = data["current"]
        assert set(current["policy"]) == {"first-fit", "least-loaded", "locality"}
        assert set(current["gc"]) == {"gc", "nogc"}

    def test_makefile_and_ci_wire_churn_smoke(self):
        assert "churn-smoke:" in (REPO / "Makefile").read_text()
        assert "churn-smoke" in (
            REPO / ".github" / "workflows" / "ci.yml").read_text()


class TestLineageDocs:
    def test_design_doc_covers_lineage_modules(self):
        text = (REPO / "DESIGN.md").read_text()
        assert "repro.lineage" in text
        for mod in ("tree.py", "dedup.py", "restore.py", "compact.py"):
            assert (REPO / "src" / "repro" / "lineage" / mod).exists(), mod
            assert mod in text, f"DESIGN.md module map missing lineage {mod}"

    def test_experiments_doc_covers_lineage(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        assert "restore" in text
        assert "BENCH_lineage.json" in text

    def test_readme_quickstart_covers_lineage(self):
        text = (REPO / "README.md").read_text()
        assert "python -m repro lineage" in text
        assert "make lineage-smoke" in text

    def test_tracked_lineage_numbers_exist(self):
        import json
        data = json.loads((REPO / "BENCH_lineage.json").read_text())
        rows = data["current"]["restore"]
        depths = data["depths"]
        for mode in ("off", "flatten"):
            for d in depths:
                assert f"{mode}-d{d}" in rows, f"missing {mode}-d{d}"
        assert f"merge-d{depths[-1]}" in rows
        assert data["current"]["determinism"]["identical"] is True

    def test_makefile_and_ci_wire_lineage_smoke(self):
        assert "lineage-smoke:" in (REPO / "Makefile").read_text()
        assert "lineage-smoke" in (
            REPO / ".github" / "workflows" / "ci.yml").read_text()


class TestBenchmarkCoverage:
    def test_one_bench_file_per_figure(self):
        bench_dir = REPO / "benchmarks"
        for fig in (4, 5, 6, 7, 8):
            hits = list(bench_dir.glob(f"bench_fig{fig}_*.py"))
            assert hits, f"no benchmark for figure {fig}"

    def test_examples_have_docstrings_and_main(self):
        for script in (REPO / "examples").glob("*.py"):
            text = script.read_text()
            assert text.lstrip().startswith(("#!", '"""')), script.name
            assert "__main__" in text, f"{script.name} is not runnable"
