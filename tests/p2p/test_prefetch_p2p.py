"""Prefetcher x peer-exchange interplay (paper §7 + the p2p extension).

The access-profile prefetcher warms a node's mirror ahead of the boot reads;
with the exchange enabled those prefetched chunks also land in the node's
peer cache, so one warmed node seeds everyone else's boot.
"""

from repro.core import MirrorVFS
from repro.core.prefetch import AccessProfile, Prefetcher

from p2p_setup import CHUNK, IMG, build, read_all, run

N_CHUNKS = IMG // CHUNK


def full_profile():
    profile = AccessProfile(CHUNK)
    profile.record_run(list(range(N_CHUNKS)))
    return profile


def prefetch_everything(dep, host, rec, window=N_CHUNKS):
    fab = dep.fabric

    def scenario():
        vfs = MirrorVFS(host, dep.client(host))
        handle = yield from vfs.open(rec.blob_id, rec.version)
        prefetcher = Prefetcher(handle, full_profile(), window=window)
        fetched = yield prefetcher.start()
        yield fab.env.timeout(0.05)  # drain the async announces
        return fetched

    return scenario()


class TestPrefetchSeedsPeers:
    def test_prefetched_chunks_are_peer_servable(self):
        fab, dep, hosts, rec, data, net = build()
        fetched = run(fab, prefetch_everything(dep, hosts[0], rec))
        assert fetched == N_CHUNKS
        assert len(net.caches["node0"]) == N_CHUNKS
        provider_gets = fab.metrics.counters["chunk-get"]
        # a cold node's boot reads are now served by the warmed peer
        assert run(fab, read_all(dep, hosts[1], rec)) == data
        assert fab.metrics.counters["p2p-chunk-hit"] > 0
        assert fab.metrics.counters["chunk-get"] < provider_gets * 2

    def test_peer_served_reads_return_identical_bytes(self):
        fab, dep, hosts, rec, data, net = build()
        run(fab, prefetch_everything(dep, hosts[0], rec))
        for host in hosts[1:]:
            assert run(fab, read_all(dep, host, rec)) == data


class TestWindowWithPeers:
    def test_lookahead_window_respected_when_peers_serve(self):
        fab, dep, hosts, rec, data, net = build()
        run(fab, read_all(dep, hosts[0], rec))  # warm a peer: fetches get fast

        def scenario():
            vfs = MirrorVFS(hosts[1], dep.client(hosts[1]))
            handle = yield from vfs.open(rec.blob_id, rec.version)
            prefetcher = Prefetcher(handle, full_profile(), window=2)
            prefetcher.start()
            yield fab.env.timeout(0.5)  # plenty of time, nothing consumed
            fetched_while_stalled = prefetcher.fetched
            prefetcher.stop()
            return fetched_while_stalled

        # fast peer serving must not let the prefetcher run ahead of the
        # consumer beyond its look-ahead budget
        assert run(fab, scenario()) <= 2


class TestPrefetchCrashFallback:
    def test_warm_peer_crash_falls_back_with_identical_bytes(self):
        fab, dep, hosts, rec, data, net = build()
        run(fab, prefetch_everything(dep, hosts[0], rec))

        def crasher():
            deadline = fab.env.now + 5.0
            while fab.metrics.counters["p2p-serve-hit"] == 0:
                if fab.env.now > deadline:  # pragma: no cover - watchdog
                    return
                yield fab.env.timeout(1e-4)
            hosts[0].fail()

        fab.env.process(crasher())
        assert run(fab, read_all(dep, hosts[1], rec)) == data
        assert net.stats()["peer_failovers"] >= 1
