"""The BLOB client: the access library linked into every compute node.

A :class:`BlobClient` is bound to one host and talks to the deployment's
services over the simulated fabric. It implements the full BLOB API the
mirroring module needs:

* ``create`` / ``upload`` — register a blob and stripe content onto the
  data providers (write path: allocate -> parallel chunk PUTs -> metadata
  node scatter -> publish);
* ``read`` / ``fetch_chunks`` — versioned reads: metadata segment-tree
  traversal (batched per shard, client-side cache of the immutable nodes),
  then parallel chunk GETs grouped per data provider;
* ``write_chunks`` — the COMMIT data path: produces a *new snapshot* of the
  blob sharing all untouched chunks and metadata with its predecessor;
* ``clone`` — the CLONE primitive: a new blob sharing everything.

Replica failover: a chunk GET that hits a dead provider retries the other
replicas recorded in the chunk's :class:`~repro.blobseer.metadata.ChunkRef`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..common.errors import ChunkNotFoundError, ProviderUnavailableError, StorageError
from ..common.payload import Payload
from ..simkit import rpc
from ..simkit.core import Timeout
from ..simkit.host import Host
from .metadata import ChunkRef, NodeId, TreeNode, capacity_for, write_chunks
from .vmanager import SnapshotRecord

#: marker for "latest published version"
LATEST = None


class BlobClient:
    """Per-host access library for one BlobSeer deployment."""

    def __init__(self, host: Host, deployment: "BlobSeerDeployment"):
        self.host = host
        self.deployment = deployment
        self._node_cache: Dict[NodeId, TreeNode] = {}
        self._snap_cache: Dict[Tuple[int, int], SnapshotRecord] = {}
        #: cooperative-exchange agent (:mod:`repro.p2p`); ``None`` keeps the
        #: provider-only fetch path byte-identical to a build without p2p
        self.peer_agent = None

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _parallel(self, gens: Sequence) -> List:
        if len(gens) == 1:
            # Overwhelmingly common (single shard / single provider): run
            # inline instead of paying a Process bootstrap + AllOf per fetch.
            result = yield from gens[0]
            return [result]
        procs = self.host.env.process_batch(gens)
        results = yield self.host.env.all_of(procs)
        return results

    def _lookup_snapshot(self, blob_id: int, version: Optional[int]):
        if version is not None:
            cached = self._snap_cache.get((blob_id, version))
            if cached is not None:
                return cached
        rec: SnapshotRecord = yield from rpc.call(
            self.host, self.deployment.vmanager_host, "blob-vmgr", "lookup", blob_id, version
        )
        self._snap_cache[(blob_id, rec.version)] = rec
        return rec

    def _get_nodes(self, ids: Sequence[NodeId]):
        """Fetch tree nodes into the client cache, batched per metadata shard.

        Returns the cache dict itself (a superset of ``ids``) rather than
        building a per-call subset: callers only index by the ids they asked
        for, and tree nodes are immutable once published.
        """
        cache = self._node_cache
        missing = [nid for nid in ids if nid not in cache]
        if missing:
            tracer = self.host.fabric.tracer
            span = None
            if tracer.enabled:
                span = tracer.start("meta-walk", "meta", nodes=len(missing))
            try:
                if self.deployment.retry is not None:
                    yield from self._get_nodes_resilient(missing)
                    return cache
                by_shard: Dict[Host, List[NodeId]] = {}
                for nid in missing:
                    by_shard.setdefault(self.deployment.shard_host(nid), []).append(nid)
                fetches = [
                    rpc.call(self.host, shard, "blob-meta", "get_nodes", shard_ids)
                    for shard, shard_ids in by_shard.items()
                ]
                batches = yield from self._parallel(fetches)
                for batch in batches:
                    cache.update(batch)
            except BaseException as exc:
                if span is not None:
                    span.set_error(exc)
                raise
            finally:
                if span is not None:
                    span.finish()
        return cache

    # ------------------------------------------------------------------ #
    # resilience (active only when the deployment carries a RetryPolicy;
    # with ``retry=None`` none of these run and the legacy paths above
    # execute byte-identically)
    # ------------------------------------------------------------------ #
    def _call_with_timeout(
        self, callee: Host, service_name: str, method: str, *args,
        request_bytes: int = rpc.REQUEST_BYTES,
    ):
        """``rpc.call`` bounded by the retry policy's per-RPC deadline.

        The call runs in a child process raced against a timeout; on
        expiry the child is interrupted (its in-flight flow is abandoned)
        and the caller sees :class:`ProviderUnavailableError`, exactly like
        a fail-stop crash — so one failover path covers both.
        """
        policy = self.deployment.retry
        env = self.host.env
        proc = env.process(
            rpc.call(
                self.host, callee, service_name, method, *args,
                request_bytes=request_bytes,
            ),
            name=f"rpc-{method}@{callee.name}",
        )
        deadline = Timeout(env, policy.rpc_timeout)
        yield env.any_of((proc, deadline))
        if proc.triggered:
            if proc.ok:
                return proc.value
            raise proc.value  # failed in the same timestep the deadline fired
        proc.interrupt("rpc-timeout")
        raise ProviderUnavailableError(
            f"{callee.name}: {method} timed out after {policy.rpc_timeout:g}s"
        )

    def _get_nodes_resilient(self, missing: Sequence[NodeId]):
        """Metadata fetch with multi-home failover + bounded backoff.

        Attempt ``a`` asks node ``nid``'s home of rank ``a mod k`` (the
        primary first), so a lost shard redirects its nodes to the replica
        homes while untouched shards keep serving their primaries.
        """
        dep = self.deployment
        policy = dep.retry
        metrics = self.host.fabric.metrics
        cache = self._node_cache
        pending: List[NodeId] = list(missing)
        for attempt in range(policy.attempts):
            by_shard: Dict[Host, List[NodeId]] = {}
            for nid in pending:
                homes = dep.shard_hosts(nid)
                by_shard.setdefault(homes[attempt % len(homes)], []).append(nid)

            def guarded(shard: Host, shard_ids: List[NodeId]):
                try:
                    batch = yield from self._call_with_timeout(
                        shard, "blob-meta", "get_nodes", shard_ids
                    )
                except (ProviderUnavailableError, ChunkNotFoundError):
                    return None
                return batch

            groups = list(by_shard.items())
            batches = yield from self._parallel(
                [guarded(shard, shard_ids) for shard, shard_ids in groups]
            )
            pending = []
            for batch, (_shard, shard_ids) in zip(batches, groups):
                if batch is None:
                    pending.extend(shard_ids)
                else:
                    cache.update(batch)
            if not pending:
                return cache
            metrics.count("meta-retry")
            yield self.host.env.timeout(policy.delay_for(attempt))
        raise ProviderUnavailableError(
            f"metadata nodes {pending[:5]} unreachable after "
            f"{policy.attempts} attempts"
        )

    def _fetch_refs_resilient(self, refs: Dict[int, ChunkRef]):
        """Chunk fetch with replica failover + bounded backoff.

        Attempt ``a`` reads each still-missing chunk from its replica of
        rank ``a mod k``, batched per provider; failed groups roll over to
        the next attempt after an exponential-backoff delay.
        """
        dep = self.deployment
        policy = dep.retry
        metrics = self.host.fabric.metrics
        out: Dict[int, Payload] = {}
        pending: List[int] = sorted(refs)
        if not pending:
            return out
        for attempt in range(policy.attempts):
            by_provider: Dict[str, List[int]] = {}
            for idx in pending:
                providers = refs[idx].providers
                by_provider.setdefault(providers[attempt % len(providers)], []).append(idx)

            def guarded(provider_name: str, indices: List[int]):
                keys = [refs[i].key for i in indices]
                provider = dep.fabric.hosts[provider_name]
                tracer = self.host.fabric.tracer
                aspan = None
                if tracer.enabled:
                    # one span per failover attempt: which replica rank was
                    # asked, and (on failure) why the attempt died
                    aspan = tracer.start(
                        f"fetch-attempt:{attempt}", "chunk",
                        provider=provider_name, attempt=attempt,
                        replica=attempt % len(refs[indices[0]].providers),
                        nchunks=len(indices),
                    )
                try:
                    combined = yield from self._call_with_timeout(
                        provider, "blob-data", "get_chunks", keys
                    )
                except (ProviderUnavailableError, ChunkNotFoundError) as exc:
                    if aspan is not None:
                        aspan.set_error(exc)
                        aspan.finish()
                    return None
                except BaseException as exc:
                    if aspan is not None:
                        aspan.set_error(exc)
                        aspan.finish()
                    raise
                if aspan is not None:
                    aspan.finish()
                group: Dict[int, Payload] = {}
                cursor = 0
                for i in indices:
                    size = refs[i].size
                    group[i] = combined.slice(cursor, cursor + size)
                    cursor += size
                return group

            work = sorted(by_provider.items())
            groups = yield from self._parallel(
                [guarded(name, indices) for name, indices in work]
            )
            pending = []
            for group, (_name, indices) in zip(groups, work):
                if group is None:
                    pending.extend(indices)
                else:
                    out.update(group)
            if not pending:
                return out
            pending.sort()
            metrics.count("fetch-retry")
            yield self.host.env.timeout(policy.delay_for(attempt))
        raise ProviderUnavailableError(
            f"chunks {pending[:5]} unreachable on every replica after "
            f"{policy.attempts} attempts"
        )

    def _put_replicated(self, new_refs: Dict[int, ChunkRef], updates: Dict[int, Payload]):
        """Replicated chunk PUTs under a retry policy and/or chain pipelining.

        * ``parallel`` mode — the client streams each replica group itself,
          retrying per provider with backoff. Providers that stay dead are
          pruned from the affected :class:`ChunkRef`\\ s (the write degrades
          to fewer replicas instead of failing); only a chunk with *zero*
          surviving replicas aborts the commit.
        * ``pipeline`` mode — each replica set is written once through a
          store-and-forward chain starting at its head; on failure the chain
          is retried rotated one rank (idempotent provider puts make the
          resend safe).

        Returns the (possibly pruned) refs to record in the metadata.
        """
        dep = self.deployment
        policy = dep.retry
        env = self.host.env
        metrics = self.host.fabric.metrics
        attempts = policy.attempts if policy is not None else 1

        if dep.replica_write_mode == "pipeline":
            by_chain: Dict[Tuple[str, ...], List[int]] = {}
            for idx in sorted(new_refs):
                by_chain.setdefault(new_refs[idx].providers, []).append(idx)

            def put_chain(chain: Tuple[str, ...], indices: List[int]):
                items = [(new_refs[i].key, updates[i]) for i in indices]
                total = sum(p.size for _, p in items)
                for attempt in range(attempts):
                    shift = attempt % len(chain)
                    rotated = chain[shift:] + chain[:shift]
                    head = dep.fabric.hosts[rotated[0]]
                    try:
                        if policy is not None:
                            yield from self._call_with_timeout(
                                head, "blob-data", "put_chunks_chain",
                                items, rotated[1:],
                                request_bytes=total + 64 * len(items),
                            )
                        else:
                            yield from rpc.call(
                                self.host, head, "blob-data", "put_chunks_chain",
                                items, rotated[1:],
                                request_bytes=total + 64 * len(items),
                            )
                        return
                    except (ProviderUnavailableError, ChunkNotFoundError):
                        if policy is None or attempt + 1 == attempts:
                            raise
                        metrics.count("put-retry")
                        yield env.timeout(policy.delay_for(attempt))

            yield from self._parallel(
                [put_chain(chain, idxs) for chain, idxs in sorted(by_chain.items())]
            )
            return new_refs

        # parallel mode with retries + replica pruning
        by_provider: Dict[str, List[int]] = {}
        for idx in sorted(new_refs):
            for name in new_refs[idx].providers:
                by_provider.setdefault(name, []).append(idx)

        def put_group(provider_name: str, indices: List[int]):
            items = [(new_refs[i].key, updates[i]) for i in indices]
            total = sum(p.size for _, p in items)
            provider = dep.fabric.hosts[provider_name]
            for attempt in range(attempts):
                try:
                    yield from self._call_with_timeout(
                        provider, "blob-data", "put_chunks", items,
                        request_bytes=total + 64 * len(items),
                    )
                    return True
                except (ProviderUnavailableError, ChunkNotFoundError):
                    if attempt + 1 < attempts:
                        metrics.count("put-retry")
                        yield env.timeout(policy.delay_for(attempt))
            return False

        work = sorted(by_provider.items())
        results = yield from self._parallel(
            [put_group(name, indices) for name, indices in work]
        )
        dead = {name for ok, (name, _) in zip(results, work) if not ok}
        if not dead:
            return new_refs
        pruned: Dict[int, ChunkRef] = {}
        n_pruned = 0
        for idx, ref in new_refs.items():
            kept = tuple(p for p in ref.providers if p not in dead)
            if not kept:
                raise ProviderUnavailableError(
                    f"chunk {idx}: every replica target "
                    f"{ref.providers} failed during write"
                )
            if len(kept) != len(ref.providers):
                n_pruned += 1
                ref = ChunkRef(ref.key, kept, ref.size)
            pruned[idx] = ref
        metrics.count("replica-pruned", n_pruned)
        return pruned

    def _refs_for_range(self, root: Optional[NodeId], c_lo: int, c_hi: int):
        """Traverse the segment tree level by level, fetching nodes in batches.

        The cache is consulted inline: after warmup most traversals are fully
        cached and the loop runs without delegating to the fetch generator.
        """
        refs: Dict[int, ChunkRef] = {}
        frontier: List[NodeId] = [root] if root is not None else []
        cache = self._node_cache
        while frontier:
            missing = [nid for nid in frontier if nid not in cache]
            if missing:
                yield from self._get_nodes(missing)
            next_frontier: List[NodeId] = []
            for nid in frontier:
                node = cache[nid]
                lo = node.lo
                if node.hi <= c_lo or lo >= c_hi:
                    continue
                # A populated leaf always carries a ref; interior (and hole)
                # nodes never do, and their child slots are None — so the
                # ref test replaces the is_leaf property call per node.
                ref = node.ref
                if ref is not None:
                    refs[lo] = ref
                    continue
                left = node.left
                if left is not None:
                    next_frontier.append(left)
                right = node.right
                if right is not None:
                    next_frontier.append(right)
            frontier = next_frontier
        return refs

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def create(self, size: int, chunk_size: int):
        """Register a new empty blob; returns its id."""
        blob_id = yield from rpc.call(
            self.host, self.deployment.vmanager_host, "blob-vmgr", "create_blob", size, chunk_size
        )
        return blob_id

    def upload(self, blob_id: int, payload: Payload, replication: Optional[int] = None):
        """Stripe full content onto the providers; returns the snapshot record."""
        snap = yield from self._lookup_snapshot(blob_id, LATEST)
        n_chunks = -(-snap.size // snap.chunk_size)
        updates = {}
        for idx in range(n_chunks):
            lo = idx * snap.chunk_size
            hi = min(lo + snap.chunk_size, snap.size)
            updates[idx] = payload.slice(lo, hi)
        rec = yield from self.write_chunks(blob_id, updates, replication=replication)
        return rec

    def read(self, blob_id: int, version: Optional[int], offset: int, nbytes: int):
        """Versioned range read; holes read as zeros."""
        snap = yield from self._lookup_snapshot(blob_id, version)
        if offset < 0 or offset + nbytes > snap.size:
            raise StorageError(f"read beyond blob size {snap.size}")
        if nbytes == 0:
            return Payload()
        cs = snap.chunk_size
        c_lo, c_hi = offset // cs, -(-(offset + nbytes) // cs)
        chunks = yield from self.fetch_chunk_range(blob_id, version, c_lo, c_hi)
        parts: List[Payload] = []
        for idx in range(c_lo, c_hi):
            size = min(cs, snap.size - idx * cs)
            parts.append(chunks.get(idx, Payload.zeros(size)))
        whole = Payload.concat(parts)
        base = c_lo * cs
        return whole.slice(offset - base, offset + nbytes - base)

    def fetch_chunk_range(self, blob_id: int, version: Optional[int], c_lo: int, c_hi: int):
        """Fetch whole chunks ``[c_lo, c_hi)``; returns {index: payload} (holes absent)."""
        snap = yield from self._lookup_snapshot(blob_id, version)
        refs = yield from self._refs_for_range(snap.root, c_lo, c_hi)
        result = yield from self.fetch_refs(refs)
        return result

    def fetch_refs(self, refs: Dict[int, ChunkRef]):
        """Fetch the chunks described by ``refs``, grouped per provider, in parallel."""
        tracer = self.host.fabric.tracer
        if tracer.enabled and refs:
            span = tracer.start("chunk-fetch", "chunk", nchunks=len(refs))
            try:
                result = yield from self._fetch_refs_impl(refs)
                return result
            except BaseException as exc:
                span.set_error(exc)
                raise
            finally:
                span.finish()
        result = yield from self._fetch_refs_impl(refs)
        return result

    def _fetch_refs_impl(self, refs: Dict[int, ChunkRef]):
        if self.peer_agent is not None:
            result = yield from self.peer_agent.fetch_refs(self, refs)
            return result
        result = yield from self._fetch_refs_providers(refs)
        return result

    def _read_replica(self, ref: ChunkRef) -> str:
        """Which replica to read: same-rack when the deployment is rack-aware.

        ``read_topology`` is None unless the cloud was built rack-aware, so
        the default path stays exactly ``providers[0]`` (seed behavior).
        """
        providers = ref.providers
        topo = self.deployment.read_topology
        if topo is None or len(providers) == 1:
            return providers[0]
        my_rack = topo.rack(self.host.name)
        for p in providers:
            if topo.rack(p) == my_rack:
                return p
        return providers[0]

    def _fetch_refs_providers(self, refs: Dict[int, ChunkRef]):
        """The provider-only fetch path (also the p2p fallback of last resort)."""
        if self.deployment.retry is not None:
            result = yield from self._fetch_refs_resilient(refs)
            return result
        by_provider: Dict[str, List[int]] = {}
        for idx, ref in refs.items():
            by_provider.setdefault(self._read_replica(ref), []).append(idx)

        def fetch_group(provider_name: str, indices: List[int], replica: int = 0):
            indices = sorted(indices)
            keys = [refs[i].key for i in indices]
            provider = self.deployment.fabric.hosts[provider_name]
            try:
                combined = yield from rpc.call(
                    self.host, provider, "blob-data", "get_chunks", keys
                )
            except ProviderUnavailableError:
                # Fail over chunk by chunk to the next replica.
                out: Dict[int, Payload] = {}
                for idx in indices:
                    ref = refs[idx]
                    if replica + 1 >= len(ref.providers):
                        raise
                    alt = self.deployment.fabric.hosts[ref.providers[replica + 1]]
                    payload = yield from rpc.call(
                        self.host, alt, "blob-data", "get_chunks", [ref.key]
                    )
                    out[idx] = payload
                return out
            out = {}
            cursor = 0
            for idx in indices:
                size = refs[idx].size
                out[idx] = combined.slice(cursor, cursor + size)
                cursor += size
            return out

        groups = yield from self._parallel(
            [fetch_group(p, idxs) for p, idxs in sorted(by_provider.items())]
        )
        merged: Dict[int, Payload] = {}
        for group in groups:
            merged.update(group)
        return merged

    def write_chunks(
        self,
        blob_id: int,
        updates: Dict[int, Payload],
        base_version: Optional[int] = None,
        replication: Optional[int] = None,
    ):
        """COMMIT data path: write whole chunks, publish a new snapshot.

        ``updates`` maps chunk index -> full chunk payload. The new snapshot
        equals ``base_version`` (default: latest) with those chunks replaced;
        everything else is shared by shadowing.

        When the deployment runs with deduplication, chunks whose content is
        already stored (by any blob) are referenced instead of re-pushed:
        the client fingerprints them (CPU cost) and queries the version
        manager's content index before allocating providers.

        Everything this commit stores is unreachable from published roots
        until the final publish lands, so freshly minted chunk keys and
        metadata nodes are pinned against :func:`~repro.blobseer.gc.
        collect_garbage` for the duration (released on success *and* abort).
        """
        dep = self.deployment
        pinned_keys: List[int] = []
        pinned_nodes: List[int] = []
        try:
            rec = yield from self._write_chunks_pinned(
                blob_id, updates, base_version, replication,
                pinned_keys, pinned_nodes,
            )
        finally:
            dep.unpin_inflight(keys=pinned_keys, nodes=pinned_nodes)
        return rec

    def _write_chunks_pinned(
        self,
        blob_id: int,
        updates: Dict[int, Payload],
        base_version: Optional[int],
        replication: Optional[int],
        pinned_keys: List[int],
        pinned_nodes: List[int],
    ):
        """COMMIT body; records GC pins in the caller-owned lists."""
        dep = self.deployment
        if replication is None:
            replication = dep.replication_factor
        snap = yield from self._lookup_snapshot(blob_id, base_version)
        for idx, payload in updates.items():
            expected = min(snap.chunk_size, snap.size - idx * snap.chunk_size)
            if payload.size != expected:
                raise StorageError(
                    f"chunk {idx}: payload {payload.size} B, expected {expected} B"
                )

        # 0. deduplication: reference already-stored content instead of pushing
        dedup_refs: Dict[int, ChunkRef] = {}
        if dep.dedup_index is not None and updates:
            total = sum(p.size for p in updates.values())
            yield self.host.env.timeout(total / dep.model.fingerprint_bandwidth)
            dedup_refs = yield from rpc.call(
                self.host, dep.vmanager_host, "blob-vmgr", "dedup_query",
                dict(updates), dep.dedup_index,
                request_bytes=40 * len(updates),
            )
            self.host.fabric.metrics.count("dedup-reused", len(dedup_refs))
            updates = {idx: p for idx, p in updates.items() if idx not in dedup_refs}

        # 1. placement
        tracer = self.host.fabric.tracer
        pspan = None
        if tracer.enabled:
            pspan = tracer.start("chunk-publish", "chunk", nchunks=len(updates))
        try:
            indices = sorted(updates)
            placements = yield from rpc.call(
                self.host, dep.pmanager_host, "blob-pmgr", "allocate",
                len(indices), snap.chunk_size, replication,
            )

            # 2. chunk PUTs to every replica
            new_refs: Dict[int, ChunkRef] = {}
            for idx, providers in zip(indices, placements):
                key = dep.minter.mint_one()
                new_refs[idx] = ChunkRef(key, tuple(providers), updates[idx].size)

            # pin before the first PUT yields; dedup'd refs may point at
            # chunks another still-unpublished commit registered, so pin
            # those too (refcounted)
            pin = [new_refs[idx].key for idx in indices]
            pin += [ref.key for ref in dedup_refs.values()]
            pinned_keys.extend(pin)
            dep.pin_inflight(keys=pin)

            if dep.retry is None and dep.replica_write_mode == "parallel":
                # Original path: parallel fan-out grouped per provider, no
                # timeouts, fail-fast (byte-identical to the pre-fault code).
                by_provider: Dict[str, List[Tuple[int, Payload]]] = {}
                for idx in indices:
                    ref = new_refs[idx]
                    for name in ref.providers:
                        by_provider.setdefault(name, []).append((ref.key, updates[idx]))

                def put_group(provider_name: str, items: List[Tuple[int, Payload]]):
                    provider = dep.fabric.hosts[provider_name]
                    total = sum(p.size for _, p in items)
                    yield from rpc.call(
                        self.host, provider, "blob-data", "put_chunks", items,
                        request_bytes=total + 64 * len(items),
                    )

                yield from self._parallel(
                    [put_group(p, items) for p, items in sorted(by_provider.items())]
                )
            else:
                new_refs = yield from self._put_replicated(new_refs, updates)
        except BaseException as exc:
            if pspan is not None:
                pspan.set_error(exc)
            raise
        finally:
            if pspan is not None:
                pspan.finish()

        # register freshly pushed content, then fold in deduplicated refs
        if dep.dedup_index is not None:
            for idx, payload in updates.items():
                dep.dedup_index.setdefault(payload, new_refs[idx])
        new_refs.update(dedup_refs)

        # 3. metadata: build the shadowed tree, scatter new nodes to every
        # home shard (one home per node unless meta_replication > 1)
        n_chunks = -(-snap.size // snap.chunk_size)
        before = len(dep.metadata)
        new_root = write_chunks(dep.metadata, snap.root, new_refs, n_chunks)
        new_node_ids = range(before, len(dep.metadata))
        pinned_nodes.extend(new_node_ids)
        dep.pin_inflight(nodes=new_node_ids)
        by_shard: Dict[Host, Dict[NodeId, TreeNode]] = {}
        for nid in new_node_ids:
            node = dep.metadata.get(nid)
            for home in dep.shard_hosts(nid):
                by_shard.setdefault(home, {})[nid] = node
        mspan = None
        if tracer.enabled and by_shard:
            mspan = tracer.start("meta-scatter", "meta", nodes=len(new_node_ids))
        try:
            if by_shard:
                puts = list(by_shard.items())
                if dep.retry is None:
                    yield from self._parallel(
                        [
                            rpc.call(self.host, shard, "blob-meta", "put_nodes", nodes)
                            for shard, nodes in puts
                        ]
                    )
                else:
                    def guarded_put(shard: Host, nodes: Dict[NodeId, TreeNode]):
                        try:
                            yield from self._call_with_timeout(
                                shard, "blob-meta", "put_nodes", nodes
                            )
                        except (ProviderUnavailableError, ChunkNotFoundError):
                            return False
                        return True

                    oks = yield from self._parallel(
                        [guarded_put(shard, nodes) for shard, nodes in puts]
                    )
                    ok_shards = {shard.name for ok, (shard, _) in zip(oks, puts) if ok}
                    for nid in new_node_ids:
                        if not any(h.name in ok_shards for h in dep.shard_hosts(nid)):
                            raise ProviderUnavailableError(
                                f"metadata node {nid}: no home shard accepted the write"
                            )
        except BaseException as exc:
            if mspan is not None:
                mspan.set_error(exc)
            raise
        finally:
            if mspan is not None:
                mspan.finish()

        # 4. publish: the version manager orders the snapshot
        rec: SnapshotRecord = yield from rpc.call(
            self.host, dep.vmanager_host, "blob-vmgr", "publish", blob_id, new_root
        )
        self._snap_cache[(blob_id, rec.version)] = rec
        return rec

    def clone(self, blob_id: int, version: Optional[int] = None):
        """CLONE primitive: returns the first snapshot record of the new blob."""
        rec: SnapshotRecord = yield from rpc.call(
            self.host, self.deployment.vmanager_host, "blob-vmgr", "clone", blob_id, version
        )
        self._snap_cache[(rec.blob_id, rec.version)] = rec
        return rec
