"""Discrete-event cluster substrate: engine, resources, network, disks, hosts."""

from .core import AllOf, AnyOf, Environment, Event, Process, Timeout
from .disk import Disk, FileDevice, WritePolicy
from .host import Fabric, Host
from .network import FlowNetwork, Nic
from .resources import Container, Request, Resource, Store
from .trace import Metrics, SampleStats

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Disk",
    "Environment",
    "Event",
    "Fabric",
    "FileDevice",
    "FlowNetwork",
    "Host",
    "Metrics",
    "Nic",
    "Process",
    "Request",
    "Resource",
    "SampleStats",
    "Store",
    "Timeout",
    "WritePolicy",
]
