"""Peer failures must cost a fallback, never correctness."""

import pytest

from repro.faults import RetryPolicy
from repro.simkit import rpc

from p2p_setup import CHUNK, IMG, build, read_all, run

#: fast retries so failure exhaustion costs milliseconds of simulated time
POLICY = RetryPolicy(attempts=3, base_delay=0.01, max_delay=0.05, rpc_timeout=1.0)


class TestDownPeer:
    def test_known_down_peer_skipped_without_timeout(self):
        fab, dep, hosts, rec, data, net = build()
        run(fab, read_all(dep, hosts[0], rec))
        rpc.host_down(hosts[0])
        t0 = fab.env.now
        assert run(fab, read_all(dep, hosts[1], rec)) == data
        stats = net.stats()
        # the dead holder was skipped up front: no failed RPC, no timeout
        assert stats["peer_failovers"] == 0
        assert stats["chunks_from_peers"] == 0
        assert fab.env.now - t0 < rpc.RPC_TIMEOUT

    def test_down_directory_degrades_to_providers(self):
        fab, dep, hosts, rec, data, net = build()
        run(fab, read_all(dep, hosts[0], rec))
        rpc.host_down(net.directory.service_host)
        assert run(fab, read_all(dep, hosts[1], rec)) == data
        assert net.stats()["chunks_from_peers"] == 0


class TestPeerCrash:
    @pytest.mark.parametrize("retry", [None, POLICY])
    def test_crash_while_serving_falls_back_to_providers(self, retry):
        fab, dep, hosts, rec, data, net = build(retry=retry)
        run(fab, read_all(dep, hosts[0], rec))

        def crasher():
            # fail the only holder the moment it starts serving node1
            deadline = fab.env.now + 5.0
            while fab.metrics.counters["p2p-serve-hit"] == 0:
                if fab.env.now > deadline:  # pragma: no cover - watchdog
                    return
                yield fab.env.timeout(1e-4)
            hosts[0].fail()

        fab.env.process(crasher())
        assert run(fab, read_all(dep, hosts[1], rec)) == data
        stats = net.stats()
        assert stats["peer_failovers"] >= 1
        assert stats["chunks_from_providers"] > IMG // CHUNK  # fallback used

    def test_crash_loses_the_cache(self):
        fab, dep, hosts, rec, data, net = build()
        run(fab, read_all(dep, hosts[0], rec))
        assert len(net.caches["node0"]) > 0
        hosts[0].fail()
        assert len(net.caches["node0"]) == 0
