"""Peer directories: rendezvous ownership and the announce service."""

from types import SimpleNamespace

from repro.calibration import ServiceModel
from repro.p2p import DIRECTORY_SERVICE, PeerDirectoryService, RendezvousDirectory
from repro.simkit import rpc
from repro.simkit.host import Fabric


def fake_agent(name):
    return SimpleNamespace(host=SimpleNamespace(name=name))


def drive(gen):
    """Run a no-yield generator to its return value."""
    try:
        next(gen)
    except StopIteration as stop:
        return stop.value
    raise AssertionError("locate should not touch the simulated clock")


class TestRendezvous:
    PEERS = [f"node{i}" for i in range(6)]

    def test_owners_deterministic(self):
        a = RendezvousDirectory(self.PEERS, fanout=2)
        b = RendezvousDirectory(self.PEERS, fanout=2)
        for key in range(20):
            assert a.owners(key) == b.owners(key)

    def test_fanout_clamped_to_peer_count(self):
        d = RendezvousDirectory(["n0", "n1"], fanout=5)
        assert d.fanout == 2
        assert len(d.owners(1)) == 2

    def test_ownership_spreads_over_peers(self):
        d = RendezvousDirectory(self.PEERS, fanout=1)
        owners = {d.owners(key)[0] for key in range(64)}
        assert len(owners) > 1  # not everything hashed onto one peer

    def test_locate_excludes_requester(self):
        d = RendezvousDirectory(self.PEERS, fanout=len(self.PEERS))
        out = drive(d.locate(fake_agent("node3"), [1, 2, 3]))
        for cands in out.values():
            assert "node3" not in cands
            assert len(cands) == len(self.PEERS) - 1

    def test_on_cached_is_free(self):
        d = RendezvousDirectory(self.PEERS, fanout=2)
        assert d.on_cached(fake_agent("node0"), [1, 2]) is None


def setup_service(max_holders=16):
    fab = Fabric(seed=5)
    hosts = [fab.add_host(f"node{i}") for i in range(4)]
    manager = fab.add_host("manager")
    svc = PeerDirectoryService(manager, ServiceModel(), max_holders=max_holders)
    rpc.bind(manager, DIRECTORY_SERVICE, svc)
    return fab, hosts, manager, svc


def call(fab, caller, manager, method, *args):
    def scenario():
        out = yield from rpc.call(caller, manager, DIRECTORY_SERVICE, method, *args)
        return out

    return fab.run(fab.env.process(scenario()))


class TestAnnounceService:
    def test_announce_then_locate(self):
        fab, hosts, manager, svc = setup_service()
        call(fab, hosts[0], manager, "announce", (1, 2))
        out = call(fab, hosts[1], manager, "locate", (1, 2, 3), 2)
        assert out[1] == ("node0",)
        assert out[2] == ("node0",)
        assert out[3] == ()  # never announced

    def test_locate_excludes_caller(self):
        fab, hosts, manager, svc = setup_service()
        call(fab, hosts[0], manager, "announce", (1,))
        assert call(fab, hosts[0], manager, "locate", (1,), 2)[1] == ()

    def test_rotation_spreads_lookups(self):
        fab, hosts, manager, svc = setup_service()
        for h in hosts[:3]:
            call(fab, h, manager, "announce", (1,))
        first = call(fab, hosts[3], manager, "locate", (1,), 1)[1]
        second = call(fab, hosts[3], manager, "locate", (1,), 1)[1]
        assert first != second  # the cursor rotated the holder list

    def test_max_holders_bounded(self):
        fab, hosts, manager, svc = setup_service(max_holders=2)
        for h in hosts[:3]:
            call(fab, h, manager, "announce", (7,))
        assert len(svc.holders[7]) == 2
        # the oldest holder was dropped to admit the newest
        assert "node0" not in svc.holders[7]
        assert "node2" in svc.holders[7]

    def test_duplicate_announce_is_idempotent(self):
        fab, hosts, manager, svc = setup_service()
        call(fab, hosts[0], manager, "announce", (1,))
        call(fab, hosts[0], manager, "announce", (1,))
        assert list(svc.holders[1]) == ["node0"]

    def test_lookup_counts_metrics(self):
        fab, hosts, manager, svc = setup_service()
        call(fab, hosts[0], manager, "announce", (1, 2))
        call(fab, hosts[1], manager, "locate", (1,), 2)
        assert fab.metrics.counters["p2p-announce"] == 2
        assert fab.metrics.counters["p2p-locate"] == 1
